#!/usr/bin/env bash
# Runs every experiment binary at full scale and collects the outputs under
# results/ (tables as CSV via the binaries themselves, logs as .txt).
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release -p sst-bench

mkdir -p results/logs
for exp in ${SST_EXPS:-e1_configs e2_workloads e3_speedup_vs_inorder e4_vs_ooo \
           e5_latency_sweep e6_dq_sweep e7_ckpt_sweep e8_stb_sweep \
           e9_area_proxy e10_cmp_throughput e11_mlp e12_failures \
           a1_defer_threshold a2_bypass_window}; do
    echo "== running $exp =="
    ./target/release/$exp 2>&1 | tee "results/logs/$exp.txt"
done
echo "all experiments complete; see results/"
