#!/usr/bin/env bash
# Runs the full experiment suite (E1-E12, E14, A1-A4) through the sst-run
# orchestrator: parallel across CPUs, served from results/cache/ on
# repeat runs, with per-experiment CSV/JSON under results/ and a run
# manifest at results/manifest.json.
#
# Environment:
#   SST_EXPS="e4 a1 ..."   run a subset (default: all, which includes the
#                          E14 open-loop traffic sweep; set e.g.
#                          SST_EXPS="e14" for just the load sweep, or list
#                          ids without e14 to skip it). Legacy binary
#                          names (e4_vs_ooo, a3_confidence_gate) work too.
#   SST_JOBS=N             worker threads (default: all cores)
#   SST_SCALE=smoke|full   workload scale (default full)
#   SST_SEED, SST_RESULTS, SST_MAX_CYCLES — see `sst-run --help`
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release -p sst-harness

mkdir -p results/logs
jobs_flag=()
[ -n "${SST_JOBS:-}" ] && jobs_flag=(--jobs "$SST_JOBS")

if [ -n "${SST_EXPS:-}" ]; then
    # Word-splitting of SST_EXPS into separate experiment tokens is the
    # interface: SST_EXPS="e3 e4 a1".
    # shellcheck disable=SC2086
    ./target/release/sst-run $SST_EXPS "${jobs_flag[@]+"${jobs_flag[@]}"}" 2>&1 | tee results/logs/run.txt
else
    ./target/release/sst-run all "${jobs_flag[@]+"${jobs_flag[@]}"}" 2>&1 | tee results/logs/run.txt
fi
echo "all experiments complete; see results/ (manifest: results/manifest.json)"
