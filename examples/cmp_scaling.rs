//! CMP scaling: a ROCK-style chip multiprocessor sharing one L2 and one
//! DRAM channel. Shows aggregate throughput for 1/2/4 SST cores on a
//! multiprogrammed commercial mix.
//!
//! ```sh
//! cargo run --release -p sst-sim --example cmp_scaling
//! ```

use sst_mem::MemConfig;
use sst_sim::report::{f2, Table};
use sst_sim::{CmpSystem, CoreModel};
use sst_workloads::Scale;

fn main() {
    println!("== SST CMP throughput scaling (erp mix, shared L2) ==\n");
    let mut table = Table::new(["cores", "throughput IPC", "scaling", "DRAM reads"]);
    let mut base: Option<f64> = None;

    for n in [1usize, 2, 4] {
        let r = CmpSystem::homogeneous(
            CoreModel::Sst,
            "erp",
            Scale::Smoke,
            7,
            n,
            &MemConfig::default(),
        )
        .run(2_000_000_000);
        let t = r.throughput_ipc();
        let b = *base.get_or_insert(t);
        table.row([
            n.to_string(),
            f2(t),
            format!("{:.2}x", t / b),
            r.mem.dram_reads.to_string(),
        ]);
    }
    println!("{}", table.to_markdown());
    println!("Sub-linear scaling past a few cores reflects the shared L2");
    println!("port and DRAM channel — the contention the full experiment");
    println!("(e10_cmp_throughput) quantifies up to 16 cores.");
}
