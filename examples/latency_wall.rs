//! The latency wall: sweep DRAM latency and watch each mechanism's
//! tolerance. As memory gets slower, the in-order core collapses linearly
//! while SST's advantage widens — the paper's motivation figure.
//!
//! ```sh
//! cargo run --release -p sst-sim --example latency_wall
//! ```

use sst_mem::MemConfig;
use sst_sim::report::{f3, Table};
use sst_sim::{CoreModel, System};
use sst_workloads::{Scale, Workload};

fn main() {
    println!("== IPC vs DRAM base latency (erp workload) ==\n");
    let mut table = Table::new(["dram cycles", "in-order", "sst", "sst advantage"]);

    for base in [100u64, 200, 400, 800] {
        let mut cfg = MemConfig::default();
        cfg.dram.base_cycles = base;

        let mut ipcs = Vec::new();
        for model in [CoreModel::InOrder, CoreModel::Sst] {
            let w = Workload::by_name("erp", Scale::Smoke, 11).expect("erp exists");
            let r = System::with_mem(model, &w, &cfg)
                .run_checked(2_000_000_000)
                .expect("cosim clean");
            ipcs.push(r.measured_ipc());
        }
        table.row([
            base.to_string(),
            f3(ipcs[0]),
            f3(ipcs[1]),
            format!("{:.2}x", ipcs[1] / ipcs[0]),
        ]);
    }
    println!("{}", table.to_markdown());
    println!("The advantage column should grow with latency: SST converts");
    println!("waiting time into useful execute-ahead work.");
}
