//! Quickstart: assemble a small program, run it on an SST core with
//! co-simulation, and print what the speculation machinery did.
//!
//! ```sh
//! cargo run --release -p sst-sim --example quickstart
//! ```

use sst_core::{SstConfig, SstCore};
use sst_isa::{assemble, Reg};
use sst_mem::{MemConfig, MemSystem};
use sst_sim::RetireChecker;
use sst_uarch::Core;

fn main() {
    // A pointer chase with independent work: the canonical pattern SST
    // accelerates. `table` is a tiny in-source linked structure; each
    // iteration loads a far-apart node (off-chip miss), does dependent
    // work on it, and advances an independent counter the core can run
    // ahead on.
    let program = assemble(
        r#"
        .data
        node3:  .word64 0          # patched: -> node0
                .word64 30
        .align 4096
        node1:  .word64 0          # -> node2
                .word64 10
        .align 4096
        node2:  .word64 0          # -> node3
                .word64 20
        .align 4096
        node0:  .word64 0          # -> node1
                .word64 0

        .text
        main:
            la   x1, node0
            la   x2, node1
            sd   x2, 0(x1)         # link the chain: 0 -> 1 -> 2 -> 3 -> 0
            la   x1, node1
            la   x2, node2
            sd   x2, 0(x1)
            la   x1, node2
            la   x2, node3
            sd   x2, 0(x1)
            la   x1, node3
            la   x2, node0
            sd   x2, 0(x1)

            la   x10, node0        # chase cursor
            li   x11, 64           # hops
            li   x12, 0            # dependent sum
            li   x13, 0            # independent work counter
        loop:
            ld   x14, 8(x10)       # payload (depends on the chase)
            add  x12, x12, x14
            ld   x10, 0(x10)       # next hop (the miss)
            addi x13, x13, 1       # independent work
            addi x13, x13, 1
            addi x11, x11, -1
            bne  x11, x0, loop
            halt
        "#,
    )
    .expect("assembles");

    let mut mem = MemSystem::new(&MemConfig::default(), 1);
    program.load_into(mem.mem_mut());

    let mut core = SstCore::new(SstConfig::sst(), 0, &program);
    let mut checker = RetireChecker::new(&program);

    while !core.halted() {
        core.tick(&mut mem.bus(0));
        for c in core.drain_commits() {
            checker.check(&c).expect("co-simulation clean");
        }
    }

    println!("== quickstart: SST core on a 64-hop pointer chase ==");
    println!("cycles:              {}", core.cycle());
    println!("instructions:        {}", core.retired());
    println!(
        "IPC:                 {:.3}",
        core.retired() as f64 / core.cycle() as f64
    );
    println!("speculation episodes: {}", core.stats.episodes);
    println!("instructions deferred: {}", core.stats.deferred);
    println!("instructions replayed: {}", core.stats.replayed);
    println!("epochs committed:     {}", core.stats.epochs_committed);
    println!("deferred-branch fails: {}", core.stats.fail_branch);
    println!("DQ high-water mark:   {}", core.dq_high_water());
    println!(
        "dependent sum (architectural check): {}",
        core.regs().value(Reg::x(12))
    );
    println!();
    println!("every committed instruction was verified against the");
    println!("functional reference interpreter ({} checked).", checker.checked());
}
