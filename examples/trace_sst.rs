//! Programmatic trace capture: run an SST core on the OLTP workload
//! with the typed event sink enabled, print the per-phase cycle table,
//! and write a Chrome-trace JSON next to the current directory.
//!
//! ```sh
//! cargo run --release -p sst-sim --example trace_sst
//! ```
//!
//! Open `trace_sst.json` in `chrome://tracing` or
//! [ui.perfetto.dev](https://ui.perfetto.dev): the core track shows the
//! normal → execute-ahead → replay phase spans with checkpoint, defer,
//! and replay markers on top; the memory track shows every MSHR miss as
//! a duration slice; the counter rows sample DQ/STB occupancy.
//!
//! Tracing is observation-only — the `RunResult` printed here is
//! byte-identical to an untraced run of the same system (the
//! `trace_equiv` suite enforces this), so numbers from a traced run can
//! be quoted without caveats.

use sst_obs::ChromeTrace;
use sst_sim::{CoreModel, System};
use sst_workloads::{Scale, Workload};

fn main() {
    let w = Workload::by_name("oltp", Scale::Smoke, 12345).expect("oltp exists");
    let sys = System::new(CoreModel::Sst, &w).without_cosim().with_tracing();
    let (result, trace) = sys.run_with_trace(2_000_000_000).expect("run completes");

    println!("== trace_sst: SST core on oltp (smoke scale) ==");
    println!("instructions: {}", result.insts);
    println!("cycles:       {}", result.cycles);
    println!("IPC:          {:.3}", result.ipc());
    println!();
    println!("where the cycles went (RunResult::phases):");
    let total: u64 = result.phases.iter().map(|&(_, v)| v).sum();
    for (phase, cycles) in &result.phases {
        println!(
            "  {phase:<8} {cycles:>12} cycles  {:>5.1}%",
            *cycles as f64 * 100.0 / total.max(1) as f64
        );
    }
    assert_eq!(total, result.cycles, "phase rows partition the timeline");

    let mut chrome = ChromeTrace::new();
    chrome.name_process(1, "sst/oltp");
    if let Some(core) = &trace.core {
        chrome.name_thread(1, 0, "core");
        chrome.add_track(1, 0, "core", core);
        println!();
        println!("core ring: {} events ({} dropped)", core.len(), core.dropped());
    }
    if let Some(mem) = &trace.mem {
        chrome.name_thread(1, 1, "mem");
        chrome.add_track(1, 1, "mem", mem);
        println!("mem ring:  {} events ({} dropped)", mem.len(), mem.dropped());
    }

    let out = "trace_sst.json";
    std::fs::write(out, chrome.finish()).expect("writable cwd");
    println!();
    println!("wrote {out} — open it in chrome://tracing or ui.perfetto.dev");
}
