//! OLTP study: the paper's motivating scenario. Runs the OLTP workload on
//! the full core lineup and prints per-model IPC, speedups, and the
//! speculation/stall anatomy of the SST run.
//!
//! ```sh
//! cargo run --release -p sst-sim --example oltp_study
//! ```

use sst_sim::report::{f3, pct, Table};
use sst_sim::{CoreModel, System};
use sst_workloads::{Scale, Workload};

fn main() {
    let w = Workload::by_name("oltp", Scale::Smoke, 42).expect("oltp exists");
    println!("== OLTP on every core model ==");
    println!("workload: {} ({})", w.name, w.description);
    println!();

    let mut table = Table::new(["model", "cycles", "IPC", "vs in-order", "L2 MPKI"]);
    let mut baseline_ipc = None;

    for model in CoreModel::lineup() {
        let w = Workload::by_name("oltp", Scale::Smoke, 42).expect("oltp exists");
        let r = System::measure(model, &w, 1_000_000_000);
        let ipc = r.measured_ipc();
        let base = *baseline_ipc.get_or_insert(ipc);
        table.row([
            r.model.clone(),
            r.cycles.to_string(),
            f3(ipc),
            pct(ipc / base),
            f3(r.mem.l2.mpki(r.insts)),
        ]);
    }
    println!("{}", table.to_markdown());

    println!("Reading the table: the SST core should clearly beat the");
    println!("in-order and scout machines, edge out execute-ahead, and be");
    println!("competitive with (or better than) the larger out-of-order");
    println!("cores — the paper's headline shape. Run the full-scale");
    println!("version with `cargo run --release -p sst-bench --bin e4_vs_ooo`.");
}
