//! Functional-interpreter throughput mini-bench.
//!
//! Measures `Interp::run` (the event-free fast-forward hot loop) and
//! `Interp::step` (the evented path the co-sim checker and functional
//! warming use) over a load/store/branch kernel shaped like the workload
//! inner loops. Sampled simulation leans on `run` between measurement
//! intervals, so the fast path must sustain well above the 50 Minst/s
//! effective-throughput target on its own.
//!
//! ```text
//! cargo run --release -p sst-isa --example interp_bench
//! ```

use std::hint::black_box;
use std::time::Instant;

use sst_isa::{Asm, Interp, Program, Reg, StopReason};

/// A never-halting streaming kernel: 512-qword buffer sweep with a
/// load+increment+store per element, pointer arithmetic, and two branch
/// levels — roughly the instruction mix of the commercial kernels.
fn kernel() -> Program {
    let mut a = Asm::new();
    let buf = a.reserve(4096);
    let outer = a.here();
    a.la(Reg::x(1), buf);
    a.li(Reg::x(3), 512);
    let inner = a.here();
    a.ld(Reg::x(2), Reg::x(1), 0);
    a.addi(Reg::x(2), Reg::x(2), 1);
    a.sd(Reg::x(2), Reg::x(1), 0);
    a.addi(Reg::x(1), Reg::x(1), 8);
    a.addi(Reg::x(3), Reg::x(3), -1);
    a.bne(Reg::x(3), Reg::ZERO, inner);
    a.addi(Reg::x(5), Reg::x(5), 1);
    a.j(outer);
    a.finish().expect("kernel assembles")
}

fn main() {
    const STEPS: u64 = 20_000_000;
    let p = kernel();

    let mut best_run = f64::MAX;
    for _ in 0..3 {
        let mut i = Interp::new(&p);
        let t0 = Instant::now();
        let out = black_box(i.run(STEPS).expect("no trap"));
        let dt = t0.elapsed().as_secs_f64();
        assert_eq!(out.stop, StopReason::StepLimit);
        assert_eq!(out.steps, STEPS);
        best_run = best_run.min(dt);
    }

    let mut best_step = f64::MAX;
    for _ in 0..3 {
        let mut i = Interp::new(&p);
        let t0 = Instant::now();
        for _ in 0..STEPS {
            black_box(i.step().expect("no trap"));
        }
        let dt = t0.elapsed().as_secs_f64();
        best_step = best_step.min(dt);
    }

    let run_mips = STEPS as f64 / best_run / 1e6;
    let step_mips = STEPS as f64 / best_step / 1e6;
    println!("Interp::run  {run_mips:8.1} Minst/s  (best of 3, {STEPS} insts)");
    println!("Interp::step {step_mips:8.1} Minst/s  (best of 3, {STEPS} insts)");
    println!(
        "fast-forward target >= 50 Minst/s: {}",
        if run_mips >= 50.0 { "met" } else { "MISSED" }
    );
}
