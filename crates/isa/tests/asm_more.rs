//! Extended assembler coverage: every mnemonic, operand forms, error
//! reporting, and data-directive layout.

use sst_isa::{assemble, AluOp, BranchCond, FpuOp, Inst, Interp, MemWidth, Reg, StopReason};

fn one(src: &str) -> Inst {
    let full = format!("{src}\nhalt\n");
    assemble(&full).unwrap_or_else(|e| panic!("{src}: {e}")).decode_all()[0]
}

#[test]
fn every_alu_mnemonic_parses() {
    for (m, op) in [
        ("add", AluOp::Add),
        ("sub", AluOp::Sub),
        ("and", AluOp::And),
        ("or", AluOp::Or),
        ("xor", AluOp::Xor),
        ("sll", AluOp::Sll),
        ("srl", AluOp::Srl),
        ("sra", AluOp::Sra),
        ("slt", AluOp::Slt),
        ("sltu", AluOp::Sltu),
        ("mul", AluOp::Mul),
        ("mulh", AluOp::Mulh),
        ("div", AluOp::Div),
        ("divu", AluOp::Divu),
        ("rem", AluOp::Rem),
        ("remu", AluOp::Remu),
    ] {
        match one(&format!("{m} x1, x2, x3")) {
            Inst::Alu { op: o, rd, rs1, rs2 } => {
                assert_eq!(o, op, "{m}");
                assert_eq!((rd, rs1, rs2), (Reg::x(1), Reg::x(2), Reg::x(3)));
            }
            other => panic!("{m} parsed to {other:?}"),
        }
    }
}

#[test]
fn every_imm_mnemonic_parses() {
    for (m, op, imm) in [
        ("addi", AluOp::Add, -5i64),
        ("andi", AluOp::And, 255),
        ("ori", AluOp::Or, 16),
        ("xori", AluOp::Xor, 1),
        ("slli", AluOp::Sll, 3),
        ("srli", AluOp::Srl, 4),
        ("srai", AluOp::Sra, 5),
        ("slti", AluOp::Slt, -1),
        ("sltiu", AluOp::Sltu, 9),
    ] {
        match one(&format!("{m} x4, x5, {imm}")) {
            Inst::AluImm { op: o, imm: i, .. } => {
                assert_eq!(o, op, "{m}");
                assert_eq!(i, imm, "{m}");
            }
            other => panic!("{m} parsed to {other:?}"),
        }
    }
}

#[test]
fn every_load_store_mnemonic_parses() {
    let loads = [
        ("lb", MemWidth::B1, true),
        ("lbu", MemWidth::B1, false),
        ("lh", MemWidth::B2, true),
        ("lhu", MemWidth::B2, false),
        ("lw", MemWidth::B4, true),
        ("lwu", MemWidth::B4, false),
        ("ld", MemWidth::B8, true),
    ];
    for (m, w, s) in loads {
        match one(&format!("{m} x1, -8(x2)")) {
            Inst::Load { width, signed, offset, .. } => {
                assert_eq!((width, signed, offset), (w, s, -8), "{m}");
            }
            other => panic!("{m} parsed to {other:?}"),
        }
    }
    for (m, w) in [
        ("sb", MemWidth::B1),
        ("sh", MemWidth::B2),
        ("sw", MemWidth::B4),
        ("sd", MemWidth::B8),
    ] {
        match one(&format!("{m} x1, 16(x2)")) {
            Inst::Store { width, offset, .. } => assert_eq!((width, offset), (w, 16), "{m}"),
            other => panic!("{m} parsed to {other:?}"),
        }
    }
    // FP aliases share the 8-byte form.
    match one("fld f1, 0(x2)") {
        Inst::Load { rd, .. } => assert_eq!(rd, Reg::f(1)),
        other => panic!("fld parsed to {other:?}"),
    }
    match one("fsd f3, 0(x2)") {
        Inst::Store { src, .. } => assert_eq!(src, Reg::f(3)),
        other => panic!("fsd parsed to {other:?}"),
    }
}

#[test]
fn every_branch_mnemonic_parses() {
    for (m, c) in [
        ("beq", BranchCond::Eq),
        ("bne", BranchCond::Ne),
        ("blt", BranchCond::Lt),
        ("bge", BranchCond::Ge),
        ("bltu", BranchCond::Ltu),
        ("bgeu", BranchCond::Geu),
    ] {
        let src = format!("t: nop\n {m} x1, x2, t\n halt\n");
        let p = assemble(&src).unwrap();
        match p.decode_all()[1] {
            Inst::Branch { cond, offset, .. } => {
                assert_eq!(cond, c, "{m}");
                assert_eq!(offset, -1, "{m}");
            }
            other => panic!("{m} parsed to {other:?}"),
        }
    }
}

#[test]
fn fpu_mnemonics_parse() {
    for (m, op) in [
        ("fadd", FpuOp::Fadd),
        ("fsub", FpuOp::Fsub),
        ("fmul", FpuOp::Fmul),
        ("fdiv", FpuOp::Fdiv),
        ("fmin", FpuOp::Fmin),
        ("fmax", FpuOp::Fmax),
        ("feq", FpuOp::Feq),
        ("flt", FpuOp::Flt),
        ("fle", FpuOp::Fle),
    ] {
        match one(&format!("{m} f1, f2, f3")) {
            Inst::Fpu { op: o, .. } => assert_eq!(o, op, "{m}"),
            other => panic!("{m} parsed to {other:?}"),
        }
    }
    for (m, op) in [
        ("fsqrt", FpuOp::Fsqrt),
        ("fcvt.d.l", FpuOp::CvtIntToF),
        ("fcvt.l.d", FpuOp::CvtFToInt),
    ] {
        match one(&format!("{m} f1, f2")) {
            Inst::Fpu { op: o, rs2, .. } => {
                assert_eq!(o, op, "{m}");
                assert_eq!(rs2, Reg::ZERO, "{m}: unary rs2 canonicalized");
            }
            other => panic!("{m} parsed to {other:?}"),
        }
    }
}

#[test]
fn wrong_operand_counts_are_reported_with_lines() {
    for (line, src) in [
        (1, "add x1, x2\n"),
        (2, "nop\nld x1\n"),
        (3, "nop\nnop\nbeq x1, x2\n"),
    ] {
        let e = assemble(src).unwrap_err();
        assert_eq!(e.line, line, "{src:?}");
        assert!(e.msg.contains("operand"), "{src:?}: {e}");
    }
}

#[test]
fn bad_registers_rejected() {
    for src in ["add x32, x1, x2\n", "add q1, x1, x2\n", "ld f32, 0(x1)\n"] {
        let e = assemble(src).unwrap_err();
        assert!(e.msg.contains("register"), "{src:?}: {e}");
    }
}

#[test]
fn byte_directive_range_checked() {
    assert!(assemble(".data\nb: .byte 255, -128, 0\n.text\nhalt\n").is_ok());
    let e = assemble(".data\nb: .byte 256\n.text\nhalt\n").unwrap_err();
    assert!(e.msg.contains("range"), "{e}");
}

#[test]
fn word32_and_f64_layout() {
    let p = assemble(
        ".data\nw: .word32 0x11223344, 0x55667788\nf: .f64 1.0\n.text\nla x1, w\nlwu x2, 0(x1)\nlwu x3, 4(x1)\nla x4, f\nld f0, 0(x4)\nhalt\n",
    )
    .unwrap();
    let mut i = Interp::new(&p);
    assert_eq!(i.run(100).unwrap().stop, StopReason::Halt);
    assert_eq!(i.state().read(Reg::x(2)), 0x11223344);
    assert_eq!(i.state().read(Reg::x(3)), 0x55667788);
    assert_eq!(f64::from_bits(i.state().read(Reg::f(0))), 1.0);
}

#[test]
fn bare_data_labels_bind_to_next_datum() {
    let p = assemble(
        ".data\n.byte 1\nlbl:\n.word64 42\n.text\nla x1, lbl\nld x2, 0(x1)\nhalt\n",
    )
    .unwrap();
    let mut i = Interp::new(&p);
    i.run(100).unwrap();
    assert_eq!(i.state().read(Reg::x(2)), 42, "label respects the .word64 alignment");
}

#[test]
fn comments_and_blank_lines_ignored() {
    let p = assemble(
        "# leading comment\n\n  ; semicolon comment\nli x1, 3 # trailing\n\nhalt ; done\n",
    )
    .unwrap();
    let mut i = Interp::new(&p);
    i.run(10).unwrap();
    assert_eq!(i.state().read(Reg::x(1)), 3);
}

#[test]
fn prefetch_parses_and_is_neutral() {
    match one("prefetch 32(x7)") {
        Inst::Prefetch { base, offset } => {
            assert_eq!(base, Reg::x(7));
            assert_eq!(offset, 32);
        }
        other => panic!("prefetch parsed to {other:?}"),
    }
}
