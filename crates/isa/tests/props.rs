//! Randomized property tests for the ISA: encode/decode round-trips, `li`
//! expansion correctness, ALU semantics, and sparse-memory invariants.
//! Driven by the workspace's deterministic PRNG (fixed seeds, so failures
//! reproduce exactly); build with `--features ext` for more cases.

use sst_isa::{
    assemble, decode, disasm, encode, AluOp, Asm, BranchCond, FpuOp, Inst, Interp, MemWidth, Reg,
    SparseMem,
};
use sst_prng::Prng;

fn cases(base: usize) -> usize {
    if cfg!(feature = "ext") {
        base * 8
    } else {
        base
    }
}

fn arb_reg(r: &mut Prng) -> Reg {
    Reg::from_index(r.gen_range(0..64u8)).unwrap()
}

const ALU_OPS: [AluOp; 16] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Sll,
    AluOp::Srl,
    AluOp::Sra,
    AluOp::Slt,
    AluOp::Sltu,
    AluOp::Mul,
    AluOp::Mulh,
    AluOp::Div,
    AluOp::Divu,
    AluOp::Rem,
    AluOp::Remu,
];

const WIDTHS: [MemWidth; 4] = [MemWidth::B1, MemWidth::B2, MemWidth::B4, MemWidth::B8];

const CONDS: [BranchCond; 6] = [
    BranchCond::Eq,
    BranchCond::Ne,
    BranchCond::Lt,
    BranchCond::Ge,
    BranchCond::Ltu,
    BranchCond::Geu,
];

const FPU_OPS: [FpuOp; 12] = [
    FpuOp::Fadd,
    FpuOp::Fsub,
    FpuOp::Fmul,
    FpuOp::Fdiv,
    FpuOp::Fmin,
    FpuOp::Fmax,
    FpuOp::Fsqrt,
    FpuOp::Feq,
    FpuOp::Flt,
    FpuOp::Fle,
    FpuOp::CvtIntToF,
    FpuOp::CvtFToInt,
];

fn arb_alu_op(r: &mut Prng) -> AluOp {
    ALU_OPS[r.gen_range(0..ALU_OPS.len())]
}

/// Encodable instructions with in-range immediates.
fn arb_inst(r: &mut Prng) -> Inst {
    match r.gen_range(0..11u32) {
        0 => Inst::Alu {
            op: arb_alu_op(r),
            rd: arb_reg(r),
            rs1: arb_reg(r),
            rs2: arb_reg(r),
        },
        1 => {
            let op = arb_alu_op(r);
            let imm = r.gen_range(-2048i64..=2047);
            // Respect per-op immediate domains.
            let imm = match op {
                AluOp::And | AluOp::Or | AluOp::Xor => imm.rem_euclid(4096),
                AluOp::Sll | AluOp::Srl | AluOp::Sra => imm.rem_euclid(64),
                _ => imm,
            };
            Inst::AluImm {
                op,
                rd: arb_reg(r),
                rs1: arb_reg(r),
                imm,
            }
        }
        2 => Inst::Lui {
            rd: arb_reg(r),
            imm: r.gen_range(-131072i64..=131071),
        },
        3 => {
            let width = WIDTHS[r.gen_range(0..WIDTHS.len())];
            let signed = if width == MemWidth::B8 {
                true
            } else {
                r.gen::<bool>()
            };
            Inst::Load {
                width,
                signed,
                rd: arb_reg(r),
                base: arb_reg(r),
                offset: r.gen_range(-2048i64..=2047),
            }
        }
        4 => Inst::Store {
            width: WIDTHS[r.gen_range(0..WIDTHS.len())],
            src: arb_reg(r),
            base: arb_reg(r),
            offset: r.gen_range(-2048i64..=2047),
        },
        5 => Inst::Branch {
            cond: CONDS[r.gen_range(0..CONDS.len())],
            rs1: arb_reg(r),
            rs2: arb_reg(r),
            offset: r.gen_range(-2048i64..=2047),
        },
        6 => Inst::Jal {
            rd: arb_reg(r),
            offset: r.gen_range(-131072i64..=131071),
        },
        7 => Inst::Jalr {
            rd: arb_reg(r),
            base: arb_reg(r),
            offset: r.gen_range(-2048i64..=2047),
        },
        8 => {
            let op = FPU_OPS[r.gen_range(0..FPU_OPS.len())];
            let rs2 = if op.is_unary() { Reg::ZERO } else { arb_reg(r) };
            Inst::Fpu {
                op,
                rd: arb_reg(r),
                rs1: arb_reg(r),
                rs2,
            }
        }
        9 => Inst::Prefetch {
            base: arb_reg(r),
            offset: r.gen_range(-2048i64..=2047),
        },
        _ => Inst::Halt,
    }
}

#[test]
fn encode_decode_roundtrip() {
    let mut r = Prng::seed_from_u64(0x15a_0001);
    for _ in 0..cases(512) {
        let inst = arb_inst(&mut r);
        let word = encode(inst).expect("generated instructions are encodable");
        let back = decode(word).expect("encoded words decode");
        assert_eq!(inst, back);
    }
}

#[test]
fn decode_never_panics() {
    let mut r = Prng::seed_from_u64(0x15a_0002);
    for _ in 0..cases(4096) {
        let word: u32 = r.gen();
        let _ = decode(word); // Ok or Err, but never a panic
    }
}

#[test]
fn decoded_reencodes_identically() {
    let mut r = Prng::seed_from_u64(0x15a_0003);
    for _ in 0..cases(4096) {
        let word: u32 = r.gen();
        if let Ok(inst) = decode(word) {
            // Decoded instructions must re-encode (possibly canonicalized,
            // e.g. unary FPU rs2), and the canonical form is a fixed point.
            let w2 = encode(inst).expect("decoded instructions are encodable");
            let i2 = decode(w2).expect("re-encoded word decodes");
            assert_eq!(inst, i2);
        }
    }
}

#[test]
fn li_loads_exact_value() {
    let mut r = Prng::seed_from_u64(0x15a_0004);
    for case in 0..cases(64) {
        // Mix raw 64-bit patterns with small and boundary values.
        let v: i64 = match case % 4 {
            0 => r.gen::<u64>() as i64,
            1 => r.gen_range(-4096i64..4096),
            2 => [i64::MIN, i64::MAX, 0, -1, 1 << 31, -(1 << 31)][case / 4 % 6],
            _ => (r.gen::<u64>() as i64) >> r.gen_range(0..64u32),
        };
        let mut a = Asm::new();
        a.li(Reg::x(1), v);
        a.halt();
        let p = a.finish().unwrap();
        let mut i = Interp::new(&p);
        i.run(64).unwrap();
        assert_eq!(i.state().read(Reg::x(1)) as i64, v, "li {v}");
    }
}

#[test]
fn alu_add_sub_inverse() {
    let mut r = Prng::seed_from_u64(0x15a_0005);
    for _ in 0..cases(512) {
        let (a, b): (u64, u64) = (r.gen(), r.gen());
        let sum = AluOp::Add.eval(a, b);
        assert_eq!(AluOp::Sub.eval(sum, b), a);
    }
}

#[test]
fn alu_shifts_mask_amount() {
    let mut r = Prng::seed_from_u64(0x15a_0006);
    for _ in 0..cases(512) {
        let (a, sh): (u64, u64) = (r.gen(), r.gen());
        assert_eq!(AluOp::Sll.eval(a, sh), AluOp::Sll.eval(a, sh & 0x3f));
        assert_eq!(AluOp::Srl.eval(a, sh), AluOp::Srl.eval(a, sh & 0x3f));
        assert_eq!(AluOp::Sra.eval(a, sh), AluOp::Sra.eval(a, sh & 0x3f));
    }
}

#[test]
fn slt_matches_signed_compare() {
    let mut r = Prng::seed_from_u64(0x15a_0007);
    for _ in 0..cases(512) {
        let (a, b): (i64, i64) = (r.gen(), r.gen());
        assert_eq!(AluOp::Slt.eval(a as u64, b as u64), (a < b) as u64);
        assert_eq!(BranchCond::Lt.eval(a as u64, b as u64), a < b);
    }
}

#[test]
fn sparse_mem_rw_roundtrip() {
    let mut r = Prng::seed_from_u64(0x15a_0008);
    for _ in 0..cases(256) {
        let addr = r.gen_range(0..u64::MAX - 8);
        let val: u64 = r.gen();
        let n = r.gen_range(1..=8u64);
        let mut m = SparseMem::new();
        m.write_le(addr, n, val);
        let mask = if n == 8 { u64::MAX } else { (1u64 << (8 * n)) - 1 };
        assert_eq!(m.read_le(addr, n), val & mask);
    }
}

#[test]
fn sparse_mem_disjoint_writes_do_not_interfere() {
    let mut r = Prng::seed_from_u64(0x15a_0009);
    let mut done = 0;
    while done < cases(256) {
        let a = r.gen_range(0..1_000_000u64);
        let b = r.gen_range(0..1_000_000u64);
        if a.abs_diff(b) < 8 {
            continue;
        }
        done += 1;
        let (va, vb): (u64, u64) = (r.gen(), r.gen());
        let mut m = SparseMem::new();
        m.write_u64(a, va);
        m.write_u64(b, vb);
        assert_eq!(m.read_u64(a), va);
        assert_eq!(m.read_u64(b), vb);
    }
}

#[test]
fn disasm_reassembles_for_alu() {
    let mut r = Prng::seed_from_u64(0x15a_000a);
    for _ in 0..cases(256) {
        let inst = Inst::Alu {
            op: arb_alu_op(&mut r),
            rd: arb_reg(&mut r),
            rs1: arb_reg(&mut r),
            rs2: arb_reg(&mut r),
        };
        let text = format!("{}\nhalt\n", disasm(inst));
        let p = assemble(&text).expect("disassembly of ALU ops reassembles");
        assert_eq!(p.decode_all()[0], inst);
    }
}

#[test]
fn branch_eval_consistency() {
    let mut r = Prng::seed_from_u64(0x15a_000b);
    for _ in 0..cases(512) {
        use BranchCond::*;
        let cond = CONDS[r.gen_range(0..CONDS.len())];
        let (a, b): (u64, u64) = (r.gen(), r.gen());
        let res = cond.eval(a, b);
        let opposite = match cond {
            Eq => Ne,
            Ne => Eq,
            Lt => Ge,
            Ge => Lt,
            Ltu => Geu,
            Geu => Ltu,
        };
        assert_eq!(res, !opposite.eval(a, b));
    }
}
