//! Property-based tests for the ISA: encode/decode round-trips, `li`
//! expansion correctness, ALU semantics, and sparse-memory invariants.

use proptest::prelude::*;
use sst_isa::{
    assemble, decode, disasm, encode, AluOp, Asm, BranchCond, FpuOp, Inst, Interp, MemWidth, Reg,
    SparseMem,
};

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..64).prop_map(|i| Reg::from_index(i).unwrap())
}

fn arb_alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Sll),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Mul),
        Just(AluOp::Mulh),
        Just(AluOp::Div),
        Just(AluOp::Divu),
        Just(AluOp::Rem),
        Just(AluOp::Remu),
    ]
}

fn arb_width() -> impl Strategy<Value = MemWidth> {
    prop_oneof![
        Just(MemWidth::B1),
        Just(MemWidth::B2),
        Just(MemWidth::B4),
        Just(MemWidth::B8),
    ]
}

fn arb_cond() -> impl Strategy<Value = BranchCond> {
    prop_oneof![
        Just(BranchCond::Eq),
        Just(BranchCond::Ne),
        Just(BranchCond::Lt),
        Just(BranchCond::Ge),
        Just(BranchCond::Ltu),
        Just(BranchCond::Geu),
    ]
}

fn arb_fpu_op() -> impl Strategy<Value = FpuOp> {
    prop_oneof![
        Just(FpuOp::Fadd),
        Just(FpuOp::Fsub),
        Just(FpuOp::Fmul),
        Just(FpuOp::Fdiv),
        Just(FpuOp::Fmin),
        Just(FpuOp::Fmax),
        Just(FpuOp::Fsqrt),
        Just(FpuOp::Feq),
        Just(FpuOp::Flt),
        Just(FpuOp::Fle),
        Just(FpuOp::CvtIntToF),
        Just(FpuOp::CvtFToInt),
    ]
}

/// Encodable instructions with in-range immediates.
fn arb_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (arb_alu_op(), arb_reg(), arb_reg(), arb_reg())
            .prop_map(|(op, rd, rs1, rs2)| Inst::Alu { op, rd, rs1, rs2 }),
        (arb_alu_op(), arb_reg(), arb_reg(), -2048i64..=2047).prop_map(|(op, rd, rs1, imm)| {
            // Respect per-op immediate domains.
            let imm = match op {
                AluOp::And | AluOp::Or | AluOp::Xor => imm.rem_euclid(4096),
                AluOp::Sll | AluOp::Srl | AluOp::Sra => imm.rem_euclid(64),
                _ => imm,
            };
            Inst::AluImm { op, rd, rs1, imm }
        }),
        (arb_reg(), -131072i64..=131071).prop_map(|(rd, imm)| Inst::Lui { rd, imm }),
        (arb_width(), any::<bool>(), arb_reg(), arb_reg(), -2048i64..=2047).prop_map(
            |(width, signed, rd, base, offset)| {
                let signed = if width == MemWidth::B8 { true } else { signed };
                Inst::Load {
                    width,
                    signed,
                    rd,
                    base,
                    offset,
                }
            }
        ),
        (arb_width(), arb_reg(), arb_reg(), -2048i64..=2047).prop_map(
            |(width, src, base, offset)| Inst::Store {
                width,
                src,
                base,
                offset
            }
        ),
        (arb_cond(), arb_reg(), arb_reg(), -2048i64..=2047).prop_map(
            |(cond, rs1, rs2, offset)| Inst::Branch {
                cond,
                rs1,
                rs2,
                offset
            }
        ),
        (arb_reg(), -131072i64..=131071).prop_map(|(rd, offset)| Inst::Jal { rd, offset }),
        (arb_reg(), arb_reg(), -2048i64..=2047)
            .prop_map(|(rd, base, offset)| Inst::Jalr { rd, base, offset }),
        (arb_fpu_op(), arb_reg(), arb_reg(), arb_reg()).prop_map(|(op, rd, rs1, rs2)| {
            let rs2 = if op.is_unary() { Reg::ZERO } else { rs2 };
            Inst::Fpu { op, rd, rs1, rs2 }
        }),
        (arb_reg(), -2048i64..=2047).prop_map(|(base, offset)| Inst::Prefetch { base, offset }),
        Just(Inst::Halt),
    ]
}

proptest! {
    #[test]
    fn encode_decode_roundtrip(inst in arb_inst()) {
        let word = encode(inst).expect("generated instructions are encodable");
        let back = decode(word).expect("encoded words decode");
        prop_assert_eq!(inst, back);
    }

    #[test]
    fn decode_never_panics(word in any::<u32>()) {
        let _ = decode(word); // Ok or Err, but never a panic
    }

    #[test]
    fn decoded_reencodes_identically(word in any::<u32>()) {
        if let Ok(inst) = decode(word) {
            // Decoded instructions must re-encode (possibly canonicalized,
            // e.g. unary FPU rs2), and the canonical form is a fixed point.
            let w2 = encode(inst).expect("decoded instructions are encodable");
            let i2 = decode(w2).expect("re-encoded word decodes");
            prop_assert_eq!(inst, i2);
        }
    }

    #[test]
    fn li_loads_exact_value(v in any::<i64>()) {
        let mut a = Asm::new();
        a.li(Reg::x(1), v);
        a.halt();
        let p = a.finish().unwrap();
        let mut i = Interp::new(&p);
        i.run(64).unwrap();
        prop_assert_eq!(i.state().read(Reg::x(1)) as i64, v);
    }

    #[test]
    fn alu_add_sub_inverse(a in any::<u64>(), b in any::<u64>()) {
        let sum = AluOp::Add.eval(a, b);
        prop_assert_eq!(AluOp::Sub.eval(sum, b), a);
    }

    #[test]
    fn alu_shifts_mask_amount(a in any::<u64>(), sh in any::<u64>()) {
        prop_assert_eq!(AluOp::Sll.eval(a, sh), AluOp::Sll.eval(a, sh & 0x3f));
        prop_assert_eq!(AluOp::Srl.eval(a, sh), AluOp::Srl.eval(a, sh & 0x3f));
        prop_assert_eq!(AluOp::Sra.eval(a, sh), AluOp::Sra.eval(a, sh & 0x3f));
    }

    #[test]
    fn slt_matches_signed_compare(a in any::<i64>(), b in any::<i64>()) {
        prop_assert_eq!(AluOp::Slt.eval(a as u64, b as u64), (a < b) as u64);
        prop_assert_eq!(
            BranchCond::Lt.eval(a as u64, b as u64),
            a < b
        );
    }

    #[test]
    fn sparse_mem_rw_roundtrip(addr in 0u64..u64::MAX - 8, val in any::<u64>(), n in 1u64..=8) {
        let mut m = SparseMem::new();
        m.write_le(addr, n, val);
        let mask = if n == 8 { u64::MAX } else { (1u64 << (8 * n)) - 1 };
        prop_assert_eq!(m.read_le(addr, n), val & mask);
    }

    #[test]
    fn sparse_mem_disjoint_writes_do_not_interfere(
        a in 0u64..1_000_000,
        b in 0u64..1_000_000,
        va in any::<u64>(),
        vb in any::<u64>(),
    ) {
        prop_assume!(a.abs_diff(b) >= 8);
        let mut m = SparseMem::new();
        m.write_u64(a, va);
        m.write_u64(b, vb);
        prop_assert_eq!(m.read_u64(a), va);
        prop_assert_eq!(m.read_u64(b), vb);
    }

    #[test]
    fn disasm_reassembles_for_alu(op in arb_alu_op(), rd in arb_reg(), rs1 in arb_reg(), rs2 in arb_reg()) {
        let inst = Inst::Alu { op, rd, rs1, rs2 };
        let text = format!("{}\nhalt\n", disasm(inst));
        let p = assemble(&text).expect("disassembly of ALU ops reassembles");
        prop_assert_eq!(p.decode_all()[0], inst);
    }

    #[test]
    fn branch_eval_consistency(cond in arb_cond(), a in any::<u64>(), b in any::<u64>()) {
        use BranchCond::*;
        let r = cond.eval(a, b);
        let opposite = match cond {
            Eq => Ne, Ne => Eq, Lt => Ge, Ge => Lt, Ltu => Geu, Geu => Ltu,
        };
        prop_assert_eq!(r, !opposite.eval(a, b));
    }
}
