//! Additional interpreter and program-representation coverage: control
//! transfer edge semantics, width/extension matrices, disassembly of
//! every class, and Program helpers.

use sst_isa::{
    assemble, disasm, Asm, Inst, Interp, MemEffect, MemWidth, Program, Reg, StopReason,
};

#[test]
fn jalr_masks_low_bits() {
    let mut a = Asm::new();
    let target = a.label();
    // Compute target | 3 and jump through it: the low bits must be masked.
    a.li(Reg::x(1), 0); // patched below via la-equivalent at runtime
    let patch_idx = 0;
    let _ = patch_idx;
    a.halt(); // placeholder flow; real flow below
    a.bind(target);
    a.halt();
    let p0 = a.finish().unwrap();
    let tgt_pc = p0.text_base + 8; // the bound halt

    let mut a = Asm::new();
    a.li(Reg::x(1), (tgt_pc | 3) as i64);
    a.jalr(Reg::x(5), Reg::x(1), 0);
    a.halt(); // skipped
    a.nop(); // tgt region filler — we rebuild with matching layout below
    let p = a.finish().unwrap();
    // The jalr target (tgt_pc|3)&!3 must be 4-aligned and inside text.
    let mut i = Interp::new(&p);
    i.step().unwrap(); // li (may be >1 inst; step until jalr)
    loop {
        let ev = i.step().unwrap();
        if matches!(ev.inst, Inst::Jalr { .. }) {
            assert_eq!(ev.next_pc % 4, 0, "jalr target aligned");
            break;
        }
    }
}

#[test]
fn jal_links_return_address() {
    let p = assemble(
        "main: jal x5, f\nhalt\nf: halt\n",
    )
    .unwrap();
    let mut i = Interp::new(&p);
    let ev = i.step().unwrap();
    assert_eq!(ev.reg_write, Some((Reg::x(5), p.entry + 4)));
    assert_eq!(ev.next_pc, p.entry + 8);
}

#[test]
fn store_width_matrix() {
    for (width, mask) in [
        (MemWidth::B1, 0xffu64),
        (MemWidth::B2, 0xffff),
        (MemWidth::B4, 0xffff_ffff),
        (MemWidth::B8, u64::MAX),
    ] {
        let mut a = Asm::new();
        let buf = a.reserve(16);
        a.la(Reg::x(1), buf);
        a.li(Reg::x(2), -1); // all ones
        a.store(width, Reg::x(2), Reg::x(1), 0);
        a.ld(Reg::x(3), Reg::x(1), 0);
        a.halt();
        let p = a.finish().unwrap();
        let mut i = Interp::new(&p);
        i.run(100).unwrap();
        assert_eq!(i.state().read(Reg::x(3)), mask, "{width:?}");
    }
}

#[test]
fn load_events_report_extended_value() {
    let mut a = Asm::new();
    let buf = a.data_u64(&[0xffff_ffff_ffff_ffff]);
    a.la(Reg::x(1), buf);
    a.lw(Reg::x(2), Reg::x(1), 0);
    a.halt();
    let p = a.finish().unwrap();
    let mut i = Interp::new(&p);
    loop {
        let ev = i.step().unwrap();
        if let MemEffect::Load { bytes, value, .. } = ev.mem {
            assert_eq!(bytes, 4);
            assert_eq!(value, u64::MAX, "sign-extended in the event");
            break;
        }
        assert!(!ev.halted, "no load seen");
    }
}

#[test]
fn disasm_covers_every_class() {
    let cases: Vec<(Inst, &str)> = vec![
        (Inst::NOP, "addi"),
        (
            Inst::Alu {
                op: sst_isa::AluOp::Xor,
                rd: Reg::x(1),
                rs1: Reg::x(2),
                rs2: Reg::x(3),
            },
            "xor x1, x2, x3",
        ),
        (
            Inst::Lui {
                rd: Reg::x(4),
                imm: -1,
            },
            "lui x4, -1",
        ),
        (
            Inst::Load {
                width: MemWidth::B2,
                signed: false,
                rd: Reg::x(1),
                base: Reg::x(2),
                offset: -4,
            },
            "lhu x1, -4(x2)",
        ),
        (
            Inst::Store {
                width: MemWidth::B4,
                src: Reg::x(5),
                base: Reg::SP,
                offset: 12,
            },
            "sw x5, 12(x2)",
        ),
        (
            Inst::Branch {
                cond: sst_isa::BranchCond::Ltu,
                rs1: Reg::x(1),
                rs2: Reg::x(2),
                offset: 5,
            },
            "bltu x1, x2, .+5",
        ),
        (
            Inst::Jal {
                rd: Reg::LINK,
                offset: -2,
            },
            "jal x1, .-2",
        ),
        (
            Inst::Jalr {
                rd: Reg::ZERO,
                base: Reg::LINK,
                offset: 0,
            },
            "jalr x0, 0(x1)",
        ),
        (
            Inst::Fpu {
                op: sst_isa::FpuOp::Fsqrt,
                rd: Reg::f(1),
                rs1: Reg::f(2),
                rs2: Reg::ZERO,
            },
            "fsqrt f1, f2",
        ),
        (
            Inst::Prefetch {
                base: Reg::x(9),
                offset: 64,
            },
            "prefetch 64(x9)",
        ),
        (Inst::Halt, "halt"),
    ];
    for (inst, expect) in cases {
        let text = disasm(inst);
        assert!(
            text.contains(expect.split(' ').next().unwrap()),
            "{inst:?} -> {text} (expected {expect})"
        );
        if expect.contains(' ') {
            assert_eq!(text, expect, "{inst:?}");
        }
    }
}

#[test]
fn program_helpers() {
    let mut a = Asm::new();
    a.nop();
    a.nop();
    a.halt();
    let p = a.finish().unwrap();
    assert_eq!(p.len_insts(), 3);
    assert!(p.image_bytes() >= 12);
    let all = p.decode_all();
    assert_eq!(all.len(), 3);
    assert_eq!(all[2], Inst::Halt);
    assert_eq!(Program::default().len_insts(), 0);
}

#[test]
fn run_to_exact_halt_count() {
    let p = assemble("li x1, 2\nloop: addi x1, x1, -1\nbne x1, x0, loop\nhalt\n").unwrap();
    let mut i = Interp::new(&p);
    let out = i.run(u64::MAX).unwrap();
    assert_eq!(out.stop, StopReason::Halt);
    assert_eq!(out.steps, 1 + 2 + 2 + 1); // li + two loop iterations + halt
    assert_eq!(i.retired(), out.steps);
}
