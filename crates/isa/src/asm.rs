//! Text assembler.
//!
//! [`assemble`] turns assembly source into a [`Program`]. Syntax:
//!
//! ```text
//! .text                      # switch to the text section (default)
//! main:                      # labels end with ':'
//!     li   x5, 0x1234        # pseudo: loads any 64-bit constant
//!     la   x6, table         # pseudo: loads a data label's address
//!     ld   x7, 8(x6)         # loads/stores use offset(base)
//!     beq  x7, x0, done      # branches take a text label
//!     j    main              # pseudo: jal x0
//! done:
//!     halt
//!
//! .data
//! table:  .word64 1, 2, 3    # 64-bit little-endian words
//! msg:    .byte 1, 2, 0xff   # raw bytes
//! vec:    .f64 1.5, -2.0     # f64 bit patterns
//! buf:    .zero 4096         # sparse zero reservation
//!         .align 64          # align the data cursor
//! ```
//!
//! Comments start with `#` or `;`. Registers are `x0..x31` / `f0..f31` with
//! aliases `zero`, `ra`, `sp`. Data labels must not collide with text labels.
//! The assembler is two-pass: data is laid out first, so `la` may reference
//! data labels defined later in the file; text labels may be forward
//! references as usual.

use std::collections::HashMap;
use std::fmt;

use crate::{Asm, Label, MemWidth, Program, Reg};

/// Error from [`assemble`], carrying the 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number of the offending source line.
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

fn err(line: usize, msg: impl Into<String>) -> AsmError {
    AsmError {
        line,
        msg: msg.into(),
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Section {
    Text,
    Data,
}

/// Strips a comment and trims whitespace.
fn clean(line: &str) -> &str {
    let no_comment = match line.find(['#', ';']) {
        Some(pos) => &line[..pos],
        None => line,
    };
    no_comment.trim()
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, AsmError> {
    let t = tok.trim();
    match t {
        "zero" => return Ok(Reg::ZERO),
        "ra" => return Ok(Reg::LINK),
        "sp" => return Ok(Reg::SP),
        _ => {}
    }
    let (kind, num) = t.split_at(1.min(t.len()));
    let n: u8 = num
        .parse()
        .map_err(|_| err(line, format!("bad register `{t}`")))?;
    match kind {
        "x" if n < 32 => Ok(Reg::x(n)),
        "f" if n < 32 => Ok(Reg::f(n)),
        _ => Err(err(line, format!("bad register `{t}`"))),
    }
}

fn parse_int(tok: &str, line: usize) -> Result<i64, AsmError> {
    let t = tok.trim();
    let (neg, body) = match t.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, t),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        u64::from_str_radix(&hex.replace('_', ""), 16)
            .map_err(|_| err(line, format!("bad integer `{t}`")))? as i64
    } else {
        body.replace('_', "")
            .parse::<i64>()
            .map_err(|_| err(line, format!("bad integer `{t}`")))?
    };
    Ok(if neg { v.wrapping_neg() } else { v })
}

fn parse_f64(tok: &str, line: usize) -> Result<f64, AsmError> {
    tok.trim()
        .parse::<f64>()
        .map_err(|_| err(line, format!("bad float `{tok}`")))
}

/// Parses `offset(base)`, or a bare `(base)` / `offset` form.
fn parse_mem_operand(tok: &str, line: usize) -> Result<(i64, Reg), AsmError> {
    let t = tok.trim();
    if let Some(open) = t.find('(') {
        let close = t
            .rfind(')')
            .ok_or_else(|| err(line, format!("missing `)` in `{t}`")))?;
        let off_str = t[..open].trim();
        let offset = if off_str.is_empty() {
            0
        } else {
            parse_int(off_str, line)?
        };
        let base = parse_reg(&t[open + 1..close], line)?;
        Ok((offset, base))
    } else {
        Err(err(line, format!("expected offset(base), got `{t}`")))
    }
}

struct TextCtx {
    labels: HashMap<String, Label>,
    bound: HashMap<String, bool>,
}

impl TextCtx {
    fn get(&mut self, a: &mut Asm, name: &str) -> Label {
        if let Some(&l) = self.labels.get(name) {
            return l;
        }
        let l = a.label();
        self.labels.insert(name.to_string(), l);
        self.bound.insert(name.to_string(), false);
        l
    }
}

/// Assembles a source string into a [`Program`].
///
/// See the [module documentation](self) for the accepted syntax.
///
/// # Errors
///
/// Returns an [`AsmError`] with the offending line for any syntax error,
/// unknown mnemonic, duplicate or undefined label, or out-of-range operand.
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    let mut a = Asm::new();

    // ---- pass 1: lay out the data section, collecting data-label addresses.
    // A label's address is where the *next datum* lands, after that datum's
    // own alignment — so bare labels are held pending until a directive is
    // seen.
    let mut data_labels: HashMap<String, u64> = HashMap::new();
    {
        let mut section = Section::Text;
        let mut pending: Vec<(String, usize)> = Vec::new();
        for (i, raw) in source.lines().enumerate() {
            let lno = i + 1;
            let mut line = clean(raw);
            if line.is_empty() {
                continue;
            }
            if line == ".text" {
                section = Section::Text;
                continue;
            }
            if line == ".data" {
                section = Section::Data;
                continue;
            }
            if section != Section::Data {
                continue;
            }
            if let Some(colon) = line.find(':') {
                let name = line[..colon].trim();
                if name.is_empty() || name.contains(char::is_whitespace) {
                    return Err(err(lno, "bad label"));
                }
                if data_labels.contains_key(name) || pending.iter().any(|(n, _)| n == name) {
                    return Err(err(lno, format!("duplicate data label `{name}`")));
                }
                pending.push((name.to_string(), lno));
                line = line[colon + 1..].trim();
                if line.is_empty() {
                    continue;
                }
            }
            let addr = data_directive_addr_probe(&mut a, line, lno)?;
            for (name, _) in pending.drain(..) {
                data_labels.insert(name, addr);
            }
            apply_data_directive(&mut a, line, lno)?;
        }
        // Trailing labels point at the end of the data image.
        let tail = a.data_cursor_addr();
        for (name, _) in pending.drain(..) {
            data_labels.insert(name, tail);
        }
    }

    // ---- pass 2: assemble the text section.
    let mut ctx = TextCtx {
        labels: HashMap::new(),
        bound: HashMap::new(),
    };
    let mut section = Section::Text;
    for (i, raw) in source.lines().enumerate() {
        let lno = i + 1;
        let mut line = clean(raw);
        if line.is_empty() {
            continue;
        }
        if line == ".text" {
            section = Section::Text;
            continue;
        }
        if line == ".data" {
            section = Section::Data;
            continue;
        }
        if section != Section::Text {
            continue;
        }
        while let Some(colon) = line.find(':') {
            let name = line[..colon].trim().to_string();
            if name.is_empty() || name.contains(char::is_whitespace) {
                return Err(err(lno, "bad label"));
            }
            if data_labels.contains_key(&name) {
                return Err(err(lno, format!("label `{name}` already used in .data")));
            }
            let l = ctx.get(&mut a, &name);
            if ctx.bound[&name] {
                return Err(err(lno, format!("duplicate label `{name}`")));
            }
            a.bind(l);
            ctx.bound.insert(name, true);
            line = line[colon + 1..].trim();
        }
        if line.is_empty() {
            continue;
        }
        emit_inst(&mut a, &mut ctx, &data_labels, line, lno)?;
    }

    for (name, bound) in &ctx.bound {
        if !bound {
            return Err(AsmError {
                line: 0,
                msg: format!("undefined label `{name}`"),
            });
        }
    }

    a.finish().map_err(|e| AsmError {
        line: 0,
        msg: e.to_string(),
    })
}

/// Returns the address the next datum of `directive` will occupy (applying
/// only its alignment), without emitting anything.
fn data_directive_addr_probe(a: &mut Asm, directive: &str, lno: usize) -> Result<u64, AsmError> {
    let d = directive.trim();
    if d.starts_with(".word64") || d.starts_with(".f64") {
        a.align_data(8);
    } else if d.starts_with(".word32") {
        a.align_data(4);
    } else if let Some(rest) = d.strip_prefix(".align") {
        let n = parse_int(rest, lno)?;
        if n <= 0 || !(n as u64).is_power_of_two() {
            return Err(err(lno, "alignment must be a positive power of two"));
        }
        a.align_data(n as u64);
    }
    Ok(a.data_cursor_addr())
}

fn apply_data_directive(a: &mut Asm, directive: &str, lno: usize) -> Result<(), AsmError> {
    let d = directive.trim();
    if d.is_empty() {
        return Ok(());
    }
    let (name, rest) = match d.find(char::is_whitespace) {
        Some(pos) => (&d[..pos], d[pos..].trim()),
        None => (d, ""),
    };
    match name {
        ".word64" => {
            let vals = split_list(rest)
                .map(|t| parse_int(t, lno).map(|v| v as u64))
                .collect::<Result<Vec<_>, _>>()?;
            a.data_u64(&vals);
        }
        ".word32" => {
            a.align_data(4);
            for t in split_list(rest) {
                let v = parse_int(t, lno)? as u32;
                a.data_bytes(&v.to_le_bytes());
            }
        }
        ".byte" => {
            for t in split_list(rest) {
                let v = parse_int(t, lno)?;
                if !(0..=255).contains(&v) && !(-128..0).contains(&v) {
                    return Err(err(lno, format!("byte value {v} out of range")));
                }
                a.data_bytes(&[(v & 0xff) as u8]);
            }
        }
        ".f64" => {
            let vals = split_list(rest)
                .map(|t| parse_f64(t, lno))
                .collect::<Result<Vec<_>, _>>()?;
            a.data_f64(&vals);
        }
        ".zero" => {
            let n = parse_int(rest, lno)?;
            if n < 0 {
                return Err(err(lno, "negative .zero size"));
            }
            a.reserve(n as u64);
        }
        ".align" => {
            // already applied by the probe when labelled; idempotent anyway
            let n = parse_int(rest, lno)?;
            if n <= 0 || !(n as u64).is_power_of_two() {
                return Err(err(lno, "alignment must be a positive power of two"));
            }
            a.align_data(n as u64);
        }
        other => return Err(err(lno, format!("unknown data directive `{other}`"))),
    }
    Ok(())
}

fn split_list(s: &str) -> impl Iterator<Item = &str> {
    s.split(',').map(str::trim).filter(|t| !t.is_empty())
}

fn emit_inst(
    a: &mut Asm,
    ctx: &mut TextCtx,
    data_labels: &HashMap<String, u64>,
    line: &str,
    lno: usize,
) -> Result<(), AsmError> {
    use crate::{AluOp, BranchCond, FpuOp};

    let (mn, rest) = match line.find(char::is_whitespace) {
        Some(pos) => (&line[..pos], line[pos..].trim()),
        None => (line, ""),
    };
    let ops: Vec<&str> = split_list(rest).collect();

    let need = |n: usize| -> Result<(), AsmError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(err(
                lno,
                format!("`{mn}` expects {n} operands, got {}", ops.len()),
            ))
        }
    };

    let alu3 = |m: &str| -> Option<AluOp> {
        Some(match m {
            "add" => AluOp::Add,
            "sub" => AluOp::Sub,
            "and" => AluOp::And,
            "or" => AluOp::Or,
            "xor" => AluOp::Xor,
            "sll" => AluOp::Sll,
            "srl" => AluOp::Srl,
            "sra" => AluOp::Sra,
            "slt" => AluOp::Slt,
            "sltu" => AluOp::Sltu,
            "mul" => AluOp::Mul,
            "mulh" => AluOp::Mulh,
            "div" => AluOp::Div,
            "divu" => AluOp::Divu,
            "rem" => AluOp::Rem,
            "remu" => AluOp::Remu,
            _ => return None,
        })
    };
    let alui = |m: &str| -> Option<AluOp> {
        Some(match m {
            "addi" => AluOp::Add,
            "andi" => AluOp::And,
            "ori" => AluOp::Or,
            "xori" => AluOp::Xor,
            "slli" => AluOp::Sll,
            "srli" => AluOp::Srl,
            "srai" => AluOp::Sra,
            "slti" => AluOp::Slt,
            "sltiu" => AluOp::Sltu,
            _ => return None,
        })
    };
    let load_kind = |m: &str| -> Option<(MemWidth, bool)> {
        Some(match m {
            "lb" => (MemWidth::B1, true),
            "lbu" => (MemWidth::B1, false),
            "lh" => (MemWidth::B2, true),
            "lhu" => (MemWidth::B2, false),
            "lw" => (MemWidth::B4, true),
            "lwu" => (MemWidth::B4, false),
            "ld" | "fld" => (MemWidth::B8, true),
            _ => return None,
        })
    };
    let store_kind = |m: &str| -> Option<MemWidth> {
        Some(match m {
            "sb" => MemWidth::B1,
            "sh" => MemWidth::B2,
            "sw" => MemWidth::B4,
            "sd" | "fsd" => MemWidth::B8,
            _ => return None,
        })
    };
    let br_kind = |m: &str| -> Option<BranchCond> {
        Some(match m {
            "beq" => BranchCond::Eq,
            "bne" => BranchCond::Ne,
            "blt" => BranchCond::Lt,
            "bge" => BranchCond::Ge,
            "bltu" => BranchCond::Ltu,
            "bgeu" => BranchCond::Geu,
            _ => return None,
        })
    };
    let fpu_bin = |m: &str| -> Option<FpuOp> {
        Some(match m {
            "fadd" => FpuOp::Fadd,
            "fsub" => FpuOp::Fsub,
            "fmul" => FpuOp::Fmul,
            "fdiv" => FpuOp::Fdiv,
            "fmin" => FpuOp::Fmin,
            "fmax" => FpuOp::Fmax,
            "feq" => FpuOp::Feq,
            "flt" => FpuOp::Flt,
            "fle" => FpuOp::Fle,
            _ => return None,
        })
    };

    if let Some(op) = alu3(mn) {
        need(3)?;
        a.alu(
            op,
            parse_reg(ops[0], lno)?,
            parse_reg(ops[1], lno)?,
            parse_reg(ops[2], lno)?,
        );
        return Ok(());
    }
    if let Some(op) = alui(mn) {
        need(3)?;
        a.alu_imm(
            op,
            parse_reg(ops[0], lno)?,
            parse_reg(ops[1], lno)?,
            parse_int(ops[2], lno)?,
        );
        return Ok(());
    }
    if let Some((w, s)) = load_kind(mn) {
        need(2)?;
        let rd = parse_reg(ops[0], lno)?;
        let (off, base) = parse_mem_operand(ops[1], lno)?;
        a.load(w, s, rd, base, off);
        return Ok(());
    }
    if let Some(w) = store_kind(mn) {
        need(2)?;
        let src = parse_reg(ops[0], lno)?;
        let (off, base) = parse_mem_operand(ops[1], lno)?;
        a.store(w, src, base, off);
        return Ok(());
    }
    if let Some(c) = br_kind(mn) {
        need(3)?;
        let rs1 = parse_reg(ops[0], lno)?;
        let rs2 = parse_reg(ops[1], lno)?;
        let target = ctx.get(a, ops[2]);
        a.branch(c, rs1, rs2, target);
        return Ok(());
    }
    if let Some(op) = fpu_bin(mn) {
        need(3)?;
        a.fpu(
            op,
            parse_reg(ops[0], lno)?,
            parse_reg(ops[1], lno)?,
            parse_reg(ops[2], lno)?,
        );
        return Ok(());
    }

    match mn {
        "lui" => {
            need(2)?;
            let rd = parse_reg(ops[0], lno)?;
            let imm = parse_int(ops[1], lno)?;
            a.inst(crate::Inst::Lui { rd, imm });
        }
        "fsqrt" | "fcvt.d.l" | "fcvt.l.d" => {
            need(2)?;
            let op = match mn {
                "fsqrt" => FpuOp::Fsqrt,
                "fcvt.d.l" => FpuOp::CvtIntToF,
                _ => FpuOp::CvtFToInt,
            };
            a.fpu(
                op,
                parse_reg(ops[0], lno)?,
                parse_reg(ops[1], lno)?,
                Reg::ZERO,
            );
        }
        "beqz" | "bnez" => {
            need(2)?;
            let rs1 = parse_reg(ops[0], lno)?;
            let target = ctx.get(a, ops[1]);
            let cond = if mn == "beqz" {
                BranchCond::Eq
            } else {
                BranchCond::Ne
            };
            a.branch(cond, rs1, Reg::ZERO, target);
        }
        "jal" => match ops.len() {
            1 => {
                let t = ctx.get(a, ops[0]);
                a.jal(Reg::LINK, t);
            }
            2 => {
                let rd = parse_reg(ops[0], lno)?;
                let t = ctx.get(a, ops[1]);
                a.jal(rd, t);
            }
            n => return Err(err(lno, format!("`jal` expects 1 or 2 operands, got {n}"))),
        },
        "j" => {
            need(1)?;
            let t = ctx.get(a, ops[0]);
            a.j(t);
        }
        "call" => {
            need(1)?;
            let t = ctx.get(a, ops[0]);
            a.call(t);
        }
        "jalr" => {
            need(2)?;
            let rd = parse_reg(ops[0], lno)?;
            let (off, base) = parse_mem_operand(ops[1], lno)?;
            a.jalr(rd, base, off);
        }
        "ret" => {
            need(0)?;
            a.ret();
        }
        "mv" | "fmv" => {
            need(2)?;
            a.mv(parse_reg(ops[0], lno)?, parse_reg(ops[1], lno)?);
        }
        "li" => {
            need(2)?;
            a.li(parse_reg(ops[0], lno)?, parse_int(ops[1], lno)?);
        }
        "la" => {
            need(2)?;
            let rd = parse_reg(ops[0], lno)?;
            let addr = *data_labels
                .get(ops[1])
                .ok_or_else(|| err(lno, format!("unknown data label `{}`", ops[1])))?;
            a.la(rd, addr);
        }
        "prefetch" => {
            need(1)?;
            let (off, base) = parse_mem_operand(ops[0], lno)?;
            a.prefetch(base, off);
        }
        "nop" => {
            need(0)?;
            a.nop();
        }
        "halt" => {
            need(0)?;
            a.halt();
        }
        other => return Err(err(lno, format!("unknown mnemonic `{other}`"))),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Interp, StopReason};

    #[test]
    fn full_featured_source_assembles_and_runs() {
        let p = assemble(
            r#"
            .data
            table: .word64 3, 1, 4, 1, 5
            buf:   .zero 64
            vals:  .f64 2.0, 8.0

            .text
            main:
                la   x10, table
                li   x11, 5
                li   x12, 0       # sum
            loop:
                ld   x13, 0(x10)
                add  x12, x12, x13
                addi x10, x10, 8
                addi x11, x11, -1
                bnez x11, loop
                la   x14, buf
                sd   x12, 0(x14)
                la   x15, vals
                fld  f0, 0(x15)
                fld  f1, 8(x15)
                fmul f2, f0, f1
                call square
                halt
            square:
                mul  x12, x12, x12
                ret
            "#,
        )
        .unwrap();
        let mut i = Interp::new(&p);
        let out = i.run(10_000).unwrap();
        assert_eq!(out.stop, StopReason::Halt);
        assert_eq!(i.state().read(Reg::x(12)), 14 * 14);
        assert_eq!(f64::from_bits(i.state().read(Reg::f(2))), 16.0);
    }

    #[test]
    fn forward_data_label_reference() {
        // `la` before the .data section that defines the label.
        let p = assemble(
            r#"
            .text
                la  x1, value
                ld  x2, 0(x1)
                halt
            .data
            value: .word64 42
            "#,
        )
        .unwrap();
        let mut i = Interp::new(&p);
        i.run(100).unwrap();
        assert_eq!(i.state().read(Reg::x(2)), 42);
    }

    #[test]
    fn unknown_mnemonic_reports_line() {
        let e = assemble("  bogus x1, x2\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.msg.contains("bogus"));
    }

    #[test]
    fn duplicate_label_rejected() {
        let e = assemble("a:\n nop\na:\n halt\n").unwrap_err();
        assert!(e.msg.contains("duplicate"));
    }

    #[test]
    fn undefined_text_label_rejected() {
        let e = assemble(" j nowhere\n halt\n").unwrap_err();
        assert!(e.msg.contains("nowhere"));
    }

    #[test]
    fn register_aliases() {
        let p = assemble(
            r#"
            li sp, 100
            li ra, 200
            add x3, sp, ra
            mv x4, zero
            halt
            "#,
        )
        .unwrap();
        let mut i = Interp::new(&p);
        i.run(100).unwrap();
        assert_eq!(i.state().read(Reg::x(3)), 300);
        assert_eq!(i.state().read(Reg::x(4)), 0);
    }

    #[test]
    fn hex_and_negative_immediates() {
        let p = assemble(" li x1, 0xff\n li x2, -16\n add x3, x1, x2\n halt\n").unwrap();
        let mut i = Interp::new(&p);
        i.run(100).unwrap();
        assert_eq!(i.state().read(Reg::x(3)), 0xef);
    }

    #[test]
    fn label_and_inst_on_same_line() {
        let p = assemble("start: li x1, 1\n j end\n li x1, 9\nend: halt\n").unwrap();
        let mut i = Interp::new(&p);
        i.run(100).unwrap();
        assert_eq!(i.state().read(Reg::x(1)), 1);
    }

    #[test]
    fn data_text_label_collision_rejected() {
        let e = assemble(".data\nd: .word64 1\n.text\nd: halt\n").unwrap_err();
        assert!(e.msg.contains("already used"));
    }

    #[test]
    fn prefetch_and_alignment_directives() {
        let p = assemble(
            r#"
            .data
                .align 64
            big: .zero 128
            .text
                la x1, big
                prefetch 0(x1)
                halt
            "#,
        )
        .unwrap();
        let mut i = Interp::new(&p);
        assert_eq!(i.run(100).unwrap().stop, StopReason::Halt);
    }
}
