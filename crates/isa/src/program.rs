use crate::{decode, Inst, SparseMem, INST_BYTES};

/// A contiguous initialized data region of a [`Program`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Segment {
    /// First byte address of the segment.
    pub base: u64,
    /// Segment contents.
    pub bytes: Vec<u8>,
}

impl Segment {
    /// One-past-the-end address of the segment.
    pub fn end(&self) -> u64 {
        self.base + self.bytes.len() as u64
    }
}

/// A complete executable image: encoded text, initialized data segments,
/// and an entry point.
///
/// Programs are produced by the [`crate::Asm`] builder or the
/// [`crate::assemble`] text assembler and consumed in two ways:
///
/// * [`Program::load_into`] writes the byte image into a [`SparseMem`]
///   (the path timing cores use — their instruction caches fetch and decode
///   real bytes);
/// * [`Program::inst_at`] decodes directly from the text vector (the fast
///   path used by the functional interpreter).
#[derive(Clone, Debug)]
pub struct Program {
    /// Base address of the text segment.
    pub text_base: u64,
    /// Encoded instruction words, contiguous from `text_base`.
    pub text: Vec<u32>,
    /// Initialized data segments.
    pub data: Vec<Segment>,
    /// Initial program counter.
    pub entry: u64,
}

/// Default text segment base used by the builders.
pub const DEFAULT_TEXT_BASE: u64 = 0x1_0000;
/// Default first data segment base used by the builders.
pub const DEFAULT_DATA_BASE: u64 = 0x100_0000;

impl Program {
    /// Creates an empty program at the default bases.
    pub fn new() -> Program {
        Program {
            text_base: DEFAULT_TEXT_BASE,
            text: Vec::new(),
            data: Vec::new(),
            entry: DEFAULT_TEXT_BASE,
        }
    }

    /// Number of instructions in the text segment.
    pub fn len_insts(&self) -> usize {
        self.text.len()
    }

    /// One-past-the-end PC of the text segment.
    pub fn end_pc(&self) -> u64 {
        self.text_base + self.text.len() as u64 * INST_BYTES
    }

    /// `true` if `pc` addresses an instruction inside the text segment.
    pub fn contains_pc(&self, pc: u64) -> bool {
        pc >= self.text_base && pc < self.end_pc() && (pc - self.text_base) % INST_BYTES == 0
    }

    /// Decodes the instruction at `pc`, if `pc` lies in the text segment.
    pub fn inst_at(&self, pc: u64) -> Option<Inst> {
        if !self.contains_pc(pc) {
            return None;
        }
        let idx = ((pc - self.text_base) / INST_BYTES) as usize;
        decode(self.text[idx]).ok()
    }

    /// Decodes the entire text segment in order.
    pub fn decode_all(&self) -> Vec<Inst> {
        self.text
            .iter()
            .map(|&w| decode(w).expect("program text contains only valid encodings"))
            .collect()
    }

    /// Writes the full byte image (text + data) into `mem`.
    pub fn load_into(&self, mem: &mut SparseMem) {
        for (i, &w) in self.text.iter().enumerate() {
            mem.write_u32(self.text_base + i as u64 * INST_BYTES, w);
        }
        for seg in &self.data {
            mem.write_bytes(seg.base, &seg.bytes);
        }
    }

    /// Total size of the initialized image in bytes (text + data).
    pub fn image_bytes(&self) -> u64 {
        self.text.len() as u64 * INST_BYTES
            + self.data.iter().map(|s| s.bytes.len() as u64).sum::<u64>()
    }
}

impl Default for Program {
    fn default() -> Program {
        Program::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{encode, AluOp, Reg};

    fn tiny() -> Program {
        let mut p = Program::new();
        p.text = vec![
            encode(Inst::AluImm {
                op: AluOp::Add,
                rd: Reg::x(1),
                rs1: Reg::ZERO,
                imm: 7,
            })
            .unwrap(),
            encode(Inst::Halt).unwrap(),
        ];
        p.data.push(Segment {
            base: DEFAULT_DATA_BASE,
            bytes: vec![1, 2, 3, 4],
        });
        p
    }

    #[test]
    fn pc_bounds() {
        let p = tiny();
        assert!(p.contains_pc(p.text_base));
        assert!(p.contains_pc(p.text_base + 4));
        assert!(!p.contains_pc(p.text_base + 8));
        assert!(!p.contains_pc(p.text_base + 2), "misaligned pc");
        assert!(!p.contains_pc(p.text_base - 4));
        assert_eq!(p.end_pc(), p.text_base + 8);
    }

    #[test]
    fn inst_at_decodes() {
        let p = tiny();
        assert_eq!(p.inst_at(p.text_base + 4), Some(Inst::Halt));
        assert_eq!(p.inst_at(p.text_base + 8), None);
        assert_eq!(p.decode_all().len(), 2);
    }

    #[test]
    fn load_into_writes_text_and_data() {
        let p = tiny();
        let mut m = SparseMem::new();
        p.load_into(&mut m);
        assert_eq!(m.read_u32(p.text_base), p.text[0]);
        assert_eq!(m.read_u32(p.text_base + 4), p.text[1]);
        assert_eq!(m.read_u32(DEFAULT_DATA_BASE), 0x0403_0201);
        assert_eq!(p.image_bytes(), 12);
    }
}
