//! Versioned binary snapshot codec.
//!
//! Snapshots serialize full run state — architectural registers, sparse
//! memory, and per-model timing state — so a run can pause at cycle *c*
//! and resume byte-identically. The format is deliberately dumb:
//!
//! * little-endian fixed-width integers, no varints;
//! * length-prefixed byte strings (`u64` length);
//! * four-byte ASCII section tags ahead of every structure, so a
//!   truncated or corrupt snapshot fails with a *structured* error
//!   naming the section, never a panic;
//! * a single format version checked up front
//!   ([`SNAPSHOT_VERSION`]).
//!
//! Everything that serializes state does so through [`SnapWriter`] /
//! [`SnapReader`] in its *own* module (private fields stay private);
//! this module only owns the byte-level encoding and the error type.

use std::fmt;

/// Current snapshot format version. Bumped on any layout change; old
/// snapshots are rejected with [`SnapError::BadVersion`], never
/// misparsed.
pub const SNAPSHOT_VERSION: u32 = 1;

/// A structured snapshot decode/restore failure.
///
/// Restoring from bytes must never panic: malformed input surfaces as
/// one of these variants instead.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapError {
    /// The buffer ended before a read completed.
    Truncated,
    /// A value or section marker failed validation; the string names
    /// what was expected.
    Corrupt(String),
    /// The snapshot was written by an incompatible format version.
    BadVersion {
        /// Version found in the snapshot header.
        found: u32,
        /// Version this build understands.
        supported: u32,
    },
    /// The component does not support snapshotting.
    Unsupported(&'static str),
    /// The snapshot is well-formed but describes a different run
    /// (wrong model, workload, or configuration).
    Mismatch(String),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Truncated => write!(f, "snapshot truncated"),
            SnapError::Corrupt(what) => write!(f, "snapshot corrupt: {what}"),
            SnapError::BadVersion { found, supported } => {
                write!(f, "snapshot version {found} not supported (this build reads {supported})")
            }
            SnapError::Unsupported(what) => write!(f, "{what} does not support snapshots"),
            SnapError::Mismatch(what) => write!(f, "snapshot mismatch: {what}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// Appends snapshot fields to a growing byte buffer.
#[derive(Clone, Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// An empty writer.
    pub fn new() -> SnapWriter {
        SnapWriter::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The serialized bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning the serialized bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes a four-byte ASCII section tag.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not exactly four bytes (a writer-side bug, not
    /// an input condition).
    pub fn tag(&mut self, t: &str) {
        assert_eq!(t.len(), 4, "section tags are exactly four bytes");
        self.buf.extend_from_slice(t.as_bytes());
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Writes a boolean as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Writes `Some(v)`/`None` as a boolean followed by the value.
    pub fn put_opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(v) => {
                self.put_bool(true);
                self.put_u64(v);
            }
            None => self.put_bool(false),
        }
    }

    /// Writes a length-prefixed byte string.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_u64(b.len() as u64);
        self.buf.extend_from_slice(b);
    }

    /// Writes raw bytes with no length prefix (fixed-size payloads).
    pub fn put_raw(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }
}

/// Reads snapshot fields back out of a byte buffer.
///
/// Every read returns a [`SnapError`] on malformed input; nothing here
/// panics on bad bytes.
#[derive(Clone, Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> SnapReader<'a> {
        SnapReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Consumes a four-byte section tag, failing with a structured
    /// error if it does not match `t`.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] or [`SnapError::Corrupt`] naming the
    /// expected section.
    pub fn tag(&mut self, t: &str) -> Result<(), SnapError> {
        assert_eq!(t.len(), 4, "section tags are exactly four bytes");
        let got = self.take(4)?;
        if got != t.as_bytes() {
            return Err(SnapError::Corrupt(format!(
                "expected section {t:?}, found {:?}",
                String::from_utf8_lossy(got)
            )));
        }
        Ok(())
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] at end of buffer.
    pub fn take_u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] at end of buffer.
    pub fn take_u32(&mut self) -> Result<u32, SnapError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("four bytes")))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] at end of buffer.
    pub fn take_u64(&mut self) -> Result<u64, SnapError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("eight bytes")))
    }

    /// Reads a little-endian `i64`.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] at end of buffer.
    pub fn take_i64(&mut self) -> Result<i64, SnapError> {
        let b = self.take(8)?;
        Ok(i64::from_le_bytes(b.try_into().expect("eight bytes")))
    }

    /// Reads a `u64` and converts it to `usize`.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`], or [`SnapError::Corrupt`] if the value
    /// does not fit a `usize`.
    pub fn take_usize(&mut self) -> Result<usize, SnapError> {
        let v = self.take_u64()?;
        usize::try_from(v).map_err(|_| SnapError::Corrupt(format!("count {v} overflows usize")))
    }

    /// Reads a boolean; any byte other than 0 or 1 is corruption.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] or [`SnapError::Corrupt`].
    pub fn take_bool(&mut self) -> Result<bool, SnapError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SnapError::Corrupt(format!("boolean byte {b:#04x}"))),
        }
    }

    /// Reads an optional `u64` written by [`SnapWriter::put_opt_u64`].
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] or [`SnapError::Corrupt`].
    pub fn take_opt_u64(&mut self) -> Result<Option<u64>, SnapError> {
        if self.take_bool()? {
            Ok(Some(self.take_u64()?))
        } else {
            Ok(None)
        }
    }

    /// Reads a length-prefixed byte string. The declared length is
    /// validated against the remaining buffer before any allocation, so
    /// a corrupt length cannot trigger a huge reservation.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] or [`SnapError::Corrupt`].
    pub fn take_bytes(&mut self) -> Result<&'a [u8], SnapError> {
        let n = self.take_usize()?;
        if n > self.remaining() {
            return Err(SnapError::Truncated);
        }
        self.take(n)
    }

    /// Reads `n` raw bytes (fixed-size payloads written by
    /// [`SnapWriter::put_raw`]).
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] at end of buffer.
    pub fn take_raw(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] or [`SnapError::Corrupt`] on invalid
    /// UTF-8.
    pub fn take_str(&mut self) -> Result<String, SnapError> {
        let b = self.take_bytes()?;
        String::from_utf8(b.to_vec())
            .map_err(|_| SnapError::Corrupt("string is not UTF-8".to_string()))
    }

    /// Asserts the whole buffer was consumed; trailing garbage is
    /// corruption.
    ///
    /// # Errors
    ///
    /// [`SnapError::Corrupt`] if bytes remain.
    pub fn finish(&self) -> Result<(), SnapError> {
        if self.remaining() != 0 {
            return Err(SnapError::Corrupt(format!(
                "{} trailing bytes after the last section",
                self.remaining()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut w = SnapWriter::new();
        w.tag("TEST");
        w.put_u8(0xab);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX - 1);
        w.put_i64(-12345);
        w.put_bool(true);
        w.put_bool(false);
        w.put_opt_u64(Some(7));
        w.put_opt_u64(None);
        w.put_bytes(b"hello");
        w.put_str("world");
        let bytes = w.into_bytes();

        let mut r = SnapReader::new(&bytes);
        r.tag("TEST").unwrap();
        assert_eq!(r.take_u8().unwrap(), 0xab);
        assert_eq!(r.take_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.take_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.take_i64().unwrap(), -12345);
        assert!(r.take_bool().unwrap());
        assert!(!r.take_bool().unwrap());
        assert_eq!(r.take_opt_u64().unwrap(), Some(7));
        assert_eq!(r.take_opt_u64().unwrap(), None);
        assert_eq!(r.take_bytes().unwrap(), b"hello");
        assert_eq!(r.take_str().unwrap(), "world");
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_structured() {
        let mut w = SnapWriter::new();
        w.put_u64(42);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = SnapReader::new(&bytes[..cut]);
            assert_eq!(r.take_u64(), Err(SnapError::Truncated), "cut at {cut}");
        }
    }

    #[test]
    fn bad_tag_names_section() {
        let mut w = SnapWriter::new();
        w.tag("AAAA");
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let e = r.tag("BBBB").unwrap_err();
        match e {
            SnapError::Corrupt(s) => assert!(s.contains("BBBB") && s.contains("AAAA"), "{s}"),
            other => panic!("wrong error {other:?}"),
        }
    }

    #[test]
    fn bogus_length_is_truncation_not_allocation() {
        let mut w = SnapWriter::new();
        w.put_u64(u64::MAX); // absurd length prefix
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(
            r.take_bytes(),
            Err(SnapError::Truncated) | Err(SnapError::Corrupt(_))
        ));
    }

    #[test]
    fn bad_bool_byte_is_corrupt() {
        let mut r = SnapReader::new(&[7u8]);
        assert!(matches!(r.take_bool(), Err(SnapError::Corrupt(_))));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut w = SnapWriter::new();
        w.put_u8(1);
        w.put_u8(2);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        r.take_u8().unwrap();
        assert!(matches!(r.finish(), Err(SnapError::Corrupt(_))));
    }

    #[test]
    fn errors_display() {
        let v = SnapError::BadVersion { found: 9, supported: 1 };
        assert!(v.to_string().contains('9'));
        assert!(SnapError::Truncated.to_string().contains("truncated"));
        assert!(SnapError::Unsupported("x").to_string().contains("x"));
        assert!(SnapError::Mismatch("m".into()).to_string().contains("m"));
    }
}
