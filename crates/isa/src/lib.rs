//! # sst-isa
//!
//! The instruction-set architecture used throughout the `rock-sst` workspace:
//! a 64-bit RISC ISA that stands in for SPARC V9 in our reproduction of
//! *Simultaneous Speculative Threading* (Chaudhry et al., ISCA 2009).
//!
//! SST is an ISA-agnostic pipeline organization; what the simulator needs
//! from the ISA is an explicit register dataflow (so the hardware can track
//! "not there" dependences), loads/stores, and branches. This crate provides:
//!
//! * [`Inst`] — the decoded instruction form used by every pipeline model,
//!   with dependence-query helpers ([`Inst::dest`], [`Inst::sources`], ...).
//! * [`encode`]/[`decode`] — a fixed 32-bit binary encoding, so programs are
//!   real byte images that instruction caches can fetch.
//! * [`Asm`] — a programmatic assembler/builder with labels, used by the
//!   workload generators.
//! * [`assemble`] — a two-pass text assembler with the usual directives and
//!   pseudo-instructions, used by examples and tests.
//! * [`SparseMem`] — a paged sparse byte-addressable memory image.
//! * [`Interp`] — a functional reference interpreter. Every timing core in
//!   the workspace co-simulates against it at retirement, which is the
//!   primary correctness oracle for the speculation machinery.
//!
//! ## Quick example
//!
//! ```
//! use sst_isa::{assemble, Interp, StopReason};
//!
//! let program = assemble(
//!     r#"
//!     .text
//!     main:
//!         li   x5, 10        # loop count
//!         li   x6, 0         # accumulator
//!     loop:
//!         add  x6, x6, x5
//!         addi x5, x5, -1
//!         bne  x5, x0, loop
//!         halt
//!     "#,
//! )
//! .unwrap();
//!
//! let mut interp = Interp::new(&program);
//! let outcome = interp.run(1_000).unwrap();
//! assert_eq!(outcome.stop, StopReason::Halt);
//! assert_eq!(interp.state().read(sst_isa::Reg::x(6)), 55);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asm;
mod builder;
mod encode;
mod inst;
mod interp;
mod program;
mod reg;
mod snap;
mod sparse_mem;

pub use asm::{assemble, AsmError};
pub use builder::{Asm, BuildError, Label};
pub use encode::{decode, encode, DecodeError, EncodeError};
pub use inst::{disasm, AluOp, BranchCond, FpuOp, Inst, InstClass, MemWidth};
pub use interp::{ArchState, Interp, MemEffect, RunOutcome, StepEvent, StopReason, Trap};
pub use program::{Program, Segment, DEFAULT_DATA_BASE, DEFAULT_TEXT_BASE};
pub use reg::Reg;
pub use snap::{SnapError, SnapReader, SnapWriter, SNAPSHOT_VERSION};
pub use sparse_mem::SparseMem;

/// Number of architectural registers (32 integer + 32 floating point,
/// addressed through one unified 6-bit index as the checkpoint hardware
/// sees them).
pub const NUM_REGS: usize = 64;

/// Size of one encoded instruction in bytes.
pub const INST_BYTES: u64 = 4;
