use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use crate::{SnapError, SnapReader, SnapWriter};

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const PAGE_MASK: u64 = (PAGE_SIZE as u64) - 1;

/// Page-number hasher: a single Fibonacci multiply. Page numbers are
/// small dense integers and every simulated load, store, and fetch
/// funnels through the page map, so the default SipHash showed up as a
/// top entry in the simulation profile.
#[derive(Default)]
struct PageHasher(u64);

impl Hasher for PageHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0 ^ n).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

type PageMap = HashMap<u64, Box<[u8; PAGE_SIZE]>, BuildHasherDefault<PageHasher>>;

/// A sparse, byte-addressable 64-bit memory image.
///
/// Pages are allocated lazily on first write; reads of untouched memory
/// return zero. This is the backing store behind every cache hierarchy in
/// the workspace and the memory of the functional interpreter — both views
/// share a single `SparseMem`, so the timing and functional models observe
/// identical memory contents.
///
/// Accesses may straddle page boundaries and have no alignment requirement;
/// multi-byte values are little-endian.
#[derive(Clone, Default)]
pub struct SparseMem {
    pages: PageMap,
}

impl SparseMem {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> SparseMem {
        SparseMem::default()
    }

    /// Number of 4 KiB pages currently materialized.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(p) => p[(addr & PAGE_MASK) as usize],
            None => 0,
        }
    }

    /// Writes one byte, materializing the page if needed.
    pub fn write_u8(&mut self, addr: u64, val: u8) {
        let page = self
            .pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
        page[(addr & PAGE_MASK) as usize] = val;
    }

    /// Reads `n <= 8` bytes little-endian into a `u64`.
    ///
    /// # Panics
    ///
    /// Panics if `n > 8`.
    pub fn read_le(&self, addr: u64, n: u64) -> u64 {
        assert!(n <= 8, "at most 8 bytes per access");
        let off = (addr & PAGE_MASK) as usize;
        if off + n as usize <= PAGE_SIZE {
            // Within one page: a single map lookup for the whole access
            // (the overwhelmingly common case).
            let Some(p) = self.pages.get(&(addr >> PAGE_SHIFT)) else {
                return 0;
            };
            let mut v = 0u64;
            for (i, &b) in p[off..off + n as usize].iter().enumerate() {
                v |= (b as u64) << (8 * i);
            }
            return v;
        }
        let mut v = 0u64;
        for i in 0..n {
            v |= (self.read_u8(addr.wrapping_add(i)) as u64) << (8 * i);
        }
        v
    }

    /// Writes the low `n <= 8` bytes of `val` little-endian.
    ///
    /// # Panics
    ///
    /// Panics if `n > 8`.
    pub fn write_le(&mut self, addr: u64, n: u64, val: u64) {
        assert!(n <= 8, "at most 8 bytes per access");
        let off = (addr & PAGE_MASK) as usize;
        if off + n as usize <= PAGE_SIZE {
            let page = self
                .pages
                .entry(addr >> PAGE_SHIFT)
                .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
            for (i, b) in page[off..off + n as usize].iter_mut().enumerate() {
                *b = (val >> (8 * i)) as u8;
            }
            return;
        }
        for i in 0..n {
            self.write_u8(addr.wrapping_add(i), (val >> (8 * i)) as u8);
        }
    }

    /// Reads a little-endian `u32` (used for instruction fetch).
    pub fn read_u32(&self, addr: u64) -> u32 {
        self.read_le(addr, 4) as u32
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: u64, val: u32) {
        self.write_le(addr, 4, val as u64);
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&self, addr: u64) -> u64 {
        self.read_le(addr, 8)
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: u64, val: u64) {
        self.write_le(addr, 8, val);
    }

    /// Copies a byte slice into memory starting at `addr`.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        let mut addr = addr;
        let mut rest = bytes;
        while !rest.is_empty() {
            let off = (addr & PAGE_MASK) as usize;
            let n = rest.len().min(PAGE_SIZE - off);
            let page = self
                .pages
                .entry(addr >> PAGE_SHIFT)
                .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
            page[off..off + n].copy_from_slice(&rest[..n]);
            addr = addr.wrapping_add(n as u64);
            rest = &rest[n..];
        }
    }

    /// Serializes the materialized pages in ascending page-number order
    /// (sorted so two equal memories always serialize byte-identically,
    /// regardless of map iteration order).
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.tag("SMEM");
        let mut nums: Vec<u64> = self.pages.keys().copied().collect();
        nums.sort_unstable();
        w.put_usize(nums.len());
        for pn in nums {
            w.put_u64(pn);
            w.put_raw(&self.pages[&pn][..]);
        }
    }

    /// Replaces the contents with pages written by
    /// [`SparseMem::save_state`].
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] on truncated input or duplicate pages;
    /// the memory is unchanged on error.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.tag("SMEM")?;
        let n = r.take_usize()?;
        let mut pages = PageMap::default();
        for _ in 0..n {
            let pn = r.take_u64()?;
            let raw = r.take_raw(PAGE_SIZE)?;
            let mut page = Box::new([0u8; PAGE_SIZE]);
            page[..].copy_from_slice(raw);
            if pages.insert(pn, page).is_some() {
                return Err(SnapError::Corrupt(format!("duplicate memory page {pn:#x}")));
            }
        }
        self.pages = pages;
        Ok(())
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: u64, buf: &mut [u8]) {
        let mut addr = addr;
        let mut rest = &mut buf[..];
        while !rest.is_empty() {
            let off = (addr & PAGE_MASK) as usize;
            let n = rest.len().min(PAGE_SIZE - off);
            match self.pages.get(&(addr >> PAGE_SHIFT)) {
                Some(p) => rest[..n].copy_from_slice(&p[off..off + n]),
                None => rest[..n].fill(0),
            }
            addr = addr.wrapping_add(n as u64);
            rest = &mut rest[n..];
        }
    }
}

impl std::fmt::Debug for SparseMem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SparseMem")
            .field("pages", &self.pages.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_memory_reads_zero() {
        let m = SparseMem::new();
        assert_eq!(m.read_u64(0xdead_beef_0000), 0);
        assert_eq!(m.page_count(), 0);
    }

    #[test]
    fn rw_roundtrip_all_widths() {
        let mut m = SparseMem::new();
        m.write_u8(10, 0xab);
        assert_eq!(m.read_u8(10), 0xab);
        m.write_le(100, 2, 0xbeef);
        assert_eq!(m.read_le(100, 2), 0xbeef);
        m.write_u32(200, 0xdead_beef);
        assert_eq!(m.read_u32(200), 0xdead_beef);
        m.write_u64(300, 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_u64(300), 0x0123_4567_89ab_cdef);
    }

    #[test]
    fn little_endian_layout() {
        let mut m = SparseMem::new();
        m.write_u32(0, 0x0403_0201);
        assert_eq!(m.read_u8(0), 1);
        assert_eq!(m.read_u8(1), 2);
        assert_eq!(m.read_u8(2), 3);
        assert_eq!(m.read_u8(3), 4);
    }

    #[test]
    fn cross_page_access() {
        let mut m = SparseMem::new();
        let addr = PAGE_SIZE as u64 - 4; // straddles the first page boundary
        m.write_u64(addr, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u64(addr), 0x1122_3344_5566_7788);
        assert_eq!(m.page_count(), 2);
    }

    #[test]
    fn partial_write_preserves_neighbors() {
        let mut m = SparseMem::new();
        m.write_u64(0, u64::MAX);
        m.write_le(2, 2, 0);
        assert_eq!(m.read_u64(0), 0xffff_ffff_0000_ffff);
    }

    #[test]
    fn bytes_roundtrip() {
        let mut m = SparseMem::new();
        let data: Vec<u8> = (0..=255).collect();
        m.write_bytes(5000, &data);
        let mut out = vec![0u8; 256];
        m.read_bytes(5000, &mut out);
        assert_eq!(data, out);
    }
}
