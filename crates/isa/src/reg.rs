use std::fmt;

/// An architectural register name.
///
/// The ISA exposes 32 integer registers `x0..x31` and 32 floating-point
/// registers `f0..f31`. Internally (and in the checkpoint hardware of every
/// core model) both files live in one unified 64-entry register space:
/// indices `0..=31` are the integer file, `32..=63` the FP file. `x0` is
/// hardwired to zero; writes to it are dropped.
///
/// `Reg` is a thin validated index, cheap to copy and to use as an array
/// index via [`Reg::index`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(u8);

impl Reg {
    /// The hardwired-zero integer register `x0`.
    pub const ZERO: Reg = Reg(0);
    /// Conventional link register (`x1`), written by `jal`/`jalr` pseudos.
    pub const LINK: Reg = Reg(1);
    /// Conventional stack pointer (`x2`).
    pub const SP: Reg = Reg(2);

    /// Returns integer register `xN`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    pub const fn x(n: u8) -> Reg {
        assert!(n < 32, "integer register index out of range");
        Reg(n)
    }

    /// Returns floating-point register `fN`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    pub const fn f(n: u8) -> Reg {
        assert!(n < 32, "fp register index out of range");
        Reg(32 + n)
    }

    /// Builds a register from its unified 6-bit index.
    ///
    /// Returns `None` if `idx >= 64`.
    pub const fn from_index(idx: u8) -> Option<Reg> {
        if idx < 64 {
            Some(Reg(idx))
        } else {
            None
        }
    }

    /// The unified index in `0..64`, suitable for indexing register files.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The unified index as the raw `u8` used by the binary encoding.
    pub const fn raw(self) -> u8 {
        self.0
    }

    /// `true` for `x0`, whose value is always zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// `true` if this names one of the integer registers `x0..x31`.
    pub const fn is_int(self) -> bool {
        self.0 < 32
    }

    /// `true` if this names one of the FP registers `f0..f31`.
    pub const fn is_fp(self) -> bool {
        self.0 >= 32
    }

    /// Iterates over all 64 architectural registers in index order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0u8..64).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_int() {
            write!(f, "x{}", self.0)
        } else {
            write!(f, "f{}", self.0 - 32)
        }
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_and_fp_ranges() {
        assert_eq!(Reg::x(0).index(), 0);
        assert_eq!(Reg::x(31).index(), 31);
        assert_eq!(Reg::f(0).index(), 32);
        assert_eq!(Reg::f(31).index(), 63);
        assert!(Reg::x(5).is_int());
        assert!(!Reg::x(5).is_fp());
        assert!(Reg::f(5).is_fp());
    }

    #[test]
    fn zero_register() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::x(1).is_zero());
        assert!(!Reg::f(0).is_zero());
    }

    #[test]
    fn from_index_bounds() {
        assert_eq!(Reg::from_index(63), Some(Reg::f(31)));
        assert_eq!(Reg::from_index(64), None);
        assert_eq!(Reg::from_index(0), Some(Reg::ZERO));
    }

    #[test]
    fn display_names() {
        assert_eq!(Reg::x(7).to_string(), "x7");
        assert_eq!(Reg::f(12).to_string(), "f12");
    }

    #[test]
    fn all_covers_everything_once() {
        let regs: Vec<Reg> = Reg::all().collect();
        assert_eq!(regs.len(), 64);
        assert_eq!(regs[0], Reg::ZERO);
        assert_eq!(regs[63], Reg::f(31));
    }

    #[test]
    #[should_panic]
    fn x_out_of_range_panics() {
        let _ = Reg::x(32);
    }

    #[test]
    #[should_panic]
    fn f_out_of_range_panics() {
        let _ = Reg::f(32);
    }
}
