//! Programmatic assembler.
//!
//! [`Asm`] is the builder the workload generators use to construct programs
//! in code, with forward-referencing labels, `li`/`la` constant expansion,
//! and a data-segment allocator.

use std::fmt;

use crate::program::{DEFAULT_DATA_BASE, DEFAULT_TEXT_BASE};
use crate::{encode, AluOp, BranchCond, EncodeError, FpuOp, Inst, MemWidth, Program, Reg, Segment, INST_BYTES};


/// A code label created by [`Asm::label`] and bound by [`Asm::bind`].
///
/// Labels may be referenced before they are bound; offsets are resolved by
/// [`Asm::finish`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Label(usize);

/// Error produced by [`Asm::finish`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildError {
    /// A referenced label was never bound.
    UnboundLabel(Label),
    /// A resolved control-flow offset does not fit its encoding field.
    OffsetOutOfRange {
        /// Index of the offending instruction in the text segment.
        inst_index: usize,
        /// The resolved offset in instructions.
        offset: i64,
    },
    /// A directly emitted instruction had an unencodable field.
    Encode {
        /// Index of the offending instruction in the text segment.
        inst_index: usize,
        /// Underlying encoding error.
        source: EncodeError,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnboundLabel(l) => write!(f, "label {l:?} was referenced but never bound"),
            BuildError::OffsetOutOfRange { inst_index, offset } => write!(
                f,
                "instruction {inst_index}: branch/jump offset {offset} out of range"
            ),
            BuildError::Encode { inst_index, source } => {
                write!(f, "instruction {inst_index}: {source}")
            }
        }
    }
}

impl std::error::Error for BuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildError::Encode { source, .. } => Some(source),
            _ => None,
        }
    }
}

enum Slot {
    /// A fully formed instruction.
    Done(Inst),
    /// A branch whose offset awaits label resolution.
    Branch { cond: BranchCond, rs1: Reg, rs2: Reg, target: Label },
    /// A jal whose offset awaits label resolution.
    Jal { rd: Reg, target: Label },
}

/// Programmatic assembler with labels and a data allocator.
///
/// # Example
///
/// ```
/// use sst_isa::{Asm, Reg, Interp, StopReason};
///
/// let mut a = Asm::new();
/// let table = a.data_u64(&[5, 10, 15, 20]);
/// a.la(Reg::x(10), table);
/// a.li(Reg::x(11), 0); // sum
/// a.li(Reg::x(12), 4); // count
/// let top = a.here();
/// a.ld(Reg::x(13), Reg::x(10), 0);
/// a.add(Reg::x(11), Reg::x(11), Reg::x(13));
/// a.addi(Reg::x(10), Reg::x(10), 8);
/// a.addi(Reg::x(12), Reg::x(12), -1);
/// a.bne(Reg::x(12), Reg::ZERO, top);
/// a.halt();
///
/// let program = a.finish().unwrap();
/// let mut interp = Interp::new(&program);
/// assert_eq!(interp.run(1_000).unwrap().stop, StopReason::Halt);
/// assert_eq!(interp.state().read(Reg::x(11)), 50);
/// ```
pub struct Asm {
    text_base: u64,
    slots: Vec<Slot>,
    labels: Vec<Option<usize>>,
    data_base: u64,
    data: Vec<u8>,
    data_cursor: u64,
    /// Sparse holes created by [`Asm::reserve`]: (position in `data` where
    /// the hole starts, hole length in bytes).
    pending_gaps: Vec<(usize, u64)>,
}

impl Asm {
    /// Creates a builder with the default text and data bases.
    pub fn new() -> Asm {
        Asm::with_bases(DEFAULT_TEXT_BASE, DEFAULT_DATA_BASE)
    }

    /// Creates a builder with explicit text and data segment bases.
    ///
    /// # Panics
    ///
    /// Panics if `text_base` is not 4-byte aligned.
    pub fn with_bases(text_base: u64, data_base: u64) -> Asm {
        assert!(text_base % INST_BYTES == 0, "text base must be aligned");
        Asm {
            text_base,
            slots: Vec::new(),
            labels: Vec::new(),
            data_base,
            data: Vec::new(),
            data_cursor: data_base,
            pending_gaps: Vec::new(),
        }
    }

    // ---- labels -----------------------------------------------------------

    /// Declares a new, unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the next emitted instruction.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound (each label is bound exactly once).
    pub fn bind(&mut self, label: Label) {
        let slot = &mut self.labels[label.0];
        assert!(slot.is_none(), "label bound twice");
        *slot = Some(self.slots.len());
    }

    /// Declares and immediately binds a label at the current position.
    pub fn here(&mut self) -> Label {
        let l = self.label();
        self.bind(l);
        l
    }

    /// The address a bound label resolves to, or `None` if unbound.
    pub fn addr_of(&self, label: Label) -> Option<u64> {
        self.labels[label.0].map(|idx| self.text_base + idx as u64 * INST_BYTES)
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` if no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The PC the next emitted instruction will occupy.
    pub fn cur_pc(&self) -> u64 {
        self.text_base + self.slots.len() as u64 * INST_BYTES
    }

    // ---- raw emission ------------------------------------------------------

    /// Emits an already-formed instruction.
    pub fn inst(&mut self, inst: Inst) {
        self.slots.push(Slot::Done(inst));
    }

    // ---- ALU ---------------------------------------------------------------

    /// Emits a register-register ALU operation.
    pub fn alu(&mut self, op: AluOp, rd: Reg, rs1: Reg, rs2: Reg) {
        self.inst(Inst::Alu { op, rd, rs1, rs2 });
    }

    /// Emits a register-immediate ALU operation.
    pub fn alu_imm(&mut self, op: AluOp, rd: Reg, rs1: Reg, imm: i64) {
        self.inst(Inst::AluImm { op, rd, rs1, imm });
    }

    /// `add rd, rs1, rs2`
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Add, rd, rs1, rs2);
    }

    /// `sub rd, rs1, rs2`
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Sub, rd, rs1, rs2);
    }

    /// `and rd, rs1, rs2`
    pub fn and(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::And, rd, rs1, rs2);
    }

    /// `or rd, rs1, rs2`
    pub fn or(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Or, rd, rs1, rs2);
    }

    /// `xor rd, rs1, rs2`
    pub fn xor(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Xor, rd, rs1, rs2);
    }

    /// `mul rd, rs1, rs2`
    pub fn mul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Mul, rd, rs1, rs2);
    }

    /// `div rd, rs1, rs2`
    pub fn div(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Div, rd, rs1, rs2);
    }

    /// `rem rd, rs1, rs2`
    pub fn rem(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Rem, rd, rs1, rs2);
    }

    /// `sll rd, rs1, rs2`
    pub fn sll(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Sll, rd, rs1, rs2);
    }

    /// `addi rd, rs1, imm`
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.alu_imm(AluOp::Add, rd, rs1, imm);
    }

    /// `andi rd, rs1, imm` (immediate zero-extended)
    pub fn andi(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.alu_imm(AluOp::And, rd, rs1, imm);
    }

    /// `ori rd, rs1, imm` (immediate zero-extended)
    pub fn ori(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.alu_imm(AluOp::Or, rd, rs1, imm);
    }

    /// `xori rd, rs1, imm` (immediate zero-extended)
    pub fn xori(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.alu_imm(AluOp::Xor, rd, rs1, imm);
    }

    /// `slli rd, rs1, sh`
    pub fn slli(&mut self, rd: Reg, rs1: Reg, sh: i64) {
        self.alu_imm(AluOp::Sll, rd, rs1, sh);
    }

    /// `srli rd, rs1, sh`
    pub fn srli(&mut self, rd: Reg, rs1: Reg, sh: i64) {
        self.alu_imm(AluOp::Srl, rd, rs1, sh);
    }

    /// `srai rd, rs1, sh`
    pub fn srai(&mut self, rd: Reg, rs1: Reg, sh: i64) {
        self.alu_imm(AluOp::Sra, rd, rs1, sh);
    }

    /// `slti rd, rs1, imm`
    pub fn slti(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.alu_imm(AluOp::Slt, rd, rs1, imm);
    }

    /// `mv rd, rs` (pseudo: `add rd, rs, x0`; also moves between files)
    pub fn mv(&mut self, rd: Reg, rs: Reg) {
        self.alu(AluOp::Add, rd, rs, Reg::ZERO);
    }

    /// `nop`
    pub fn nop(&mut self) {
        self.inst(Inst::NOP);
    }

    /// Loads an arbitrary 64-bit constant, expanding into an
    /// `addi`/`slli`/`ori` sequence (1–11 instructions).
    pub fn li(&mut self, rd: Reg, value: i64) {
        if (-2048..=2047).contains(&value) {
            self.addi(rd, Reg::ZERO, value);
            return;
        }
        // Peel 11-bit chunks off the low end until the head fits in a signed
        // 12-bit immediate, then rebuild MSB-first with shift/or pairs.
        let mut chunks: Vec<i64> = Vec::new();
        let mut head = value;
        while !(-2048..=2047).contains(&head) {
            chunks.push(head & 0x7ff);
            head >>= 11; // arithmetic shift keeps the sign in the head
        }
        self.addi(rd, Reg::ZERO, head);
        for chunk in chunks.into_iter().rev() {
            self.slli(rd, rd, 11);
            if chunk != 0 {
                self.ori(rd, rd, chunk);
            }
        }
    }

    /// Loads an address constant (pseudo for [`Asm::li`]).
    pub fn la(&mut self, rd: Reg, addr: u64) {
        self.li(rd, addr as i64);
    }

    // ---- memory ------------------------------------------------------------

    /// Emits a load of the given width/signedness.
    pub fn load(&mut self, width: MemWidth, signed: bool, rd: Reg, base: Reg, offset: i64) {
        self.inst(Inst::Load {
            width,
            signed,
            rd,
            base,
            offset,
        });
    }

    /// Emits a store of the given width.
    pub fn store(&mut self, width: MemWidth, src: Reg, base: Reg, offset: i64) {
        self.inst(Inst::Store {
            width,
            src,
            base,
            offset,
        });
    }

    /// `ld rd, offset(base)` — 64-bit load.
    pub fn ld(&mut self, rd: Reg, base: Reg, offset: i64) {
        self.load(MemWidth::B8, true, rd, base, offset);
    }

    /// `lw rd, offset(base)` — 32-bit sign-extending load.
    pub fn lw(&mut self, rd: Reg, base: Reg, offset: i64) {
        self.load(MemWidth::B4, true, rd, base, offset);
    }

    /// `lwu rd, offset(base)` — 32-bit zero-extending load.
    pub fn lwu(&mut self, rd: Reg, base: Reg, offset: i64) {
        self.load(MemWidth::B4, false, rd, base, offset);
    }

    /// `lbu rd, offset(base)` — byte zero-extending load.
    pub fn lbu(&mut self, rd: Reg, base: Reg, offset: i64) {
        self.load(MemWidth::B1, false, rd, base, offset);
    }

    /// `sd src, offset(base)` — 64-bit store.
    pub fn sd(&mut self, src: Reg, base: Reg, offset: i64) {
        self.store(MemWidth::B8, src, base, offset);
    }

    /// `sw src, offset(base)` — 32-bit store.
    pub fn sw(&mut self, src: Reg, base: Reg, offset: i64) {
        self.store(MemWidth::B4, src, base, offset);
    }

    /// `sb src, offset(base)` — byte store.
    pub fn sb(&mut self, src: Reg, base: Reg, offset: i64) {
        self.store(MemWidth::B1, src, base, offset);
    }

    /// `prefetch offset(base)` — software prefetch hint.
    pub fn prefetch(&mut self, base: Reg, offset: i64) {
        self.inst(Inst::Prefetch { base, offset });
    }

    // ---- control flow ------------------------------------------------------

    /// Emits a conditional branch to `target`.
    pub fn branch(&mut self, cond: BranchCond, rs1: Reg, rs2: Reg, target: Label) {
        self.slots.push(Slot::Branch {
            cond,
            rs1,
            rs2,
            target,
        });
    }

    /// `beq rs1, rs2, target`
    pub fn beq(&mut self, rs1: Reg, rs2: Reg, target: Label) {
        self.branch(BranchCond::Eq, rs1, rs2, target);
    }

    /// `bne rs1, rs2, target`
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, target: Label) {
        self.branch(BranchCond::Ne, rs1, rs2, target);
    }

    /// `blt rs1, rs2, target` (signed)
    pub fn blt(&mut self, rs1: Reg, rs2: Reg, target: Label) {
        self.branch(BranchCond::Lt, rs1, rs2, target);
    }

    /// `bge rs1, rs2, target` (signed)
    pub fn bge(&mut self, rs1: Reg, rs2: Reg, target: Label) {
        self.branch(BranchCond::Ge, rs1, rs2, target);
    }

    /// `bltu rs1, rs2, target` (unsigned)
    pub fn bltu(&mut self, rs1: Reg, rs2: Reg, target: Label) {
        self.branch(BranchCond::Ltu, rs1, rs2, target);
    }

    /// `bgeu rs1, rs2, target` (unsigned)
    pub fn bgeu(&mut self, rs1: Reg, rs2: Reg, target: Label) {
        self.branch(BranchCond::Geu, rs1, rs2, target);
    }

    /// `jal rd, target`
    pub fn jal(&mut self, rd: Reg, target: Label) {
        self.slots.push(Slot::Jal { rd, target });
    }

    /// `j target` (pseudo: `jal x0, target`)
    pub fn j(&mut self, target: Label) {
        self.jal(Reg::ZERO, target);
    }

    /// `call target` (pseudo: `jal x1, target`)
    pub fn call(&mut self, target: Label) {
        self.jal(Reg::LINK, target);
    }

    /// `jalr rd, offset(base)`
    pub fn jalr(&mut self, rd: Reg, base: Reg, offset: i64) {
        self.inst(Inst::Jalr { rd, base, offset });
    }

    /// `ret` (pseudo: `jalr x0, 0(x1)`)
    pub fn ret(&mut self) {
        self.jalr(Reg::ZERO, Reg::LINK, 0);
    }

    /// `halt`
    pub fn halt(&mut self) {
        self.inst(Inst::Halt);
    }

    // ---- floating point -----------------------------------------------------

    /// Emits a floating-point operation.
    pub fn fpu(&mut self, op: FpuOp, rd: Reg, rs1: Reg, rs2: Reg) {
        self.inst(Inst::Fpu { op, rd, rs1, rs2 });
    }

    /// `fadd rd, rs1, rs2`
    pub fn fadd(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.fpu(FpuOp::Fadd, rd, rs1, rs2);
    }

    /// `fsub rd, rs1, rs2`
    pub fn fsub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.fpu(FpuOp::Fsub, rd, rs1, rs2);
    }

    /// `fmul rd, rs1, rs2`
    pub fn fmul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.fpu(FpuOp::Fmul, rd, rs1, rs2);
    }

    /// `fdiv rd, rs1, rs2`
    pub fn fdiv(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.fpu(FpuOp::Fdiv, rd, rs1, rs2);
    }

    // ---- data segment --------------------------------------------------------

    /// The address the next appended datum will occupy.
    pub fn data_cursor_addr(&self) -> u64 {
        self.data_cursor
    }

    /// Aligns the data cursor up to a multiple of `align` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn align_data(&mut self, align: u64) {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let cur = self.data_cursor;
        let next = (cur + align - 1) & !(align - 1);
        self.skip_data(next - cur);
    }

    fn skip_data(&mut self, n: u64) {
        self.data.extend(std::iter::repeat(0).take(n as usize));
        self.data_cursor += n;
    }

    /// Appends raw bytes to the data segment; returns their address.
    pub fn data_bytes(&mut self, bytes: &[u8]) -> u64 {
        let addr = self.data_cursor;
        self.data.extend_from_slice(bytes);
        self.data_cursor += bytes.len() as u64;
        addr
    }

    /// Appends 64-bit little-endian words; returns the address of the first.
    pub fn data_u64(&mut self, words: &[u64]) -> u64 {
        self.align_data(8);
        let addr = self.data_cursor;
        for &w in words {
            let le = w.to_le_bytes();
            self.data.extend_from_slice(&le);
        }
        self.data_cursor += words.len() as u64 * 8;
        addr
    }

    /// Appends `f64` values as raw bits; returns the address of the first.
    pub fn data_f64(&mut self, vals: &[f64]) -> u64 {
        let words: Vec<u64> = vals.iter().map(|v| v.to_bits()).collect();
        self.data_u64(&words)
    }

    /// Reserves `n` zero bytes; returns their address.
    ///
    /// The reservation stays sparse (no bytes are stored in the program
    /// image), so multi-megabyte work buffers are cheap.
    pub fn reserve(&mut self, n: u64) -> u64 {
        // Flush current bytes into place and restart the cursor past the gap,
        // leaving the gap out of the image entirely.
        let addr = self.data_cursor;
        self.data_cursor += n;
        self.pending_gaps.push((self.data.len(), n));
        addr
    }

    // ---- finish ----------------------------------------------------------------

    /// Resolves labels and produces the final [`Program`].
    ///
    /// # Errors
    ///
    /// Fails if a referenced label was never bound, a branch/jump target is
    /// out of encoding range, or an emitted instruction had an unencodable
    /// immediate.
    pub fn finish(self) -> Result<Program, BuildError> {
        let mut text = Vec::with_capacity(self.slots.len());
        for (idx, slot) in self.slots.iter().enumerate() {
            let inst = match *slot {
                Slot::Done(i) => i,
                Slot::Branch {
                    cond,
                    rs1,
                    rs2,
                    target,
                } => {
                    let t = self.labels[target.0].ok_or(BuildError::UnboundLabel(target))?;
                    let offset = t as i64 - idx as i64;
                    if !(-2048..=2047).contains(&offset) {
                        return Err(BuildError::OffsetOutOfRange {
                            inst_index: idx,
                            offset,
                        });
                    }
                    Inst::Branch {
                        cond,
                        rs1,
                        rs2,
                        offset,
                    }
                }
                Slot::Jal { rd, target } => {
                    let t = self.labels[target.0].ok_or(BuildError::UnboundLabel(target))?;
                    let offset = t as i64 - idx as i64;
                    if !(-131072..=131071).contains(&offset) {
                        return Err(BuildError::OffsetOutOfRange {
                            inst_index: idx,
                            offset,
                        });
                    }
                    Inst::Jal { rd, offset }
                }
            };
            let word = encode(inst).map_err(|source| BuildError::Encode {
                inst_index: idx,
                source,
            })?;
            text.push(word);
        }

        // Split the accumulated data bytes into segments around sparse gaps.
        let mut data_segments = Vec::new();
        let mut seg_start_addr = self.data_base;
        let mut byte_pos = 0usize;
        for &(gap_at, gap_len) in &self.pending_gaps {
            if gap_at > byte_pos {
                data_segments.push(Segment {
                    base: seg_start_addr,
                    bytes: self.data[byte_pos..gap_at].to_vec(),
                });
            }
            seg_start_addr += (gap_at - byte_pos) as u64 + gap_len;
            byte_pos = gap_at;
        }
        if self.data.len() > byte_pos {
            data_segments.push(Segment {
                base: seg_start_addr,
                bytes: self.data[byte_pos..].to_vec(),
            });
        }

        Ok(Program {
            text_base: self.text_base,
            text,
            data: data_segments,
            entry: self.text_base,
        })
    }
}

impl Default for Asm {
    fn default() -> Asm {
        Asm::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels() {
        let mut a = Asm::new();
        let fwd = a.label();
        a.beq(Reg::x(1), Reg::x(2), fwd); // idx 0 -> idx 2, offset +2
        a.nop(); // idx 1
        a.bind(fwd);
        let back = a.here();
        a.bne(Reg::x(1), Reg::x(2), back); // idx 2 -> idx 2, offset 0
        a.j(back); // idx 3 -> idx 2, offset -1
        let p = a.finish().unwrap();
        let insts = p.decode_all();
        assert_eq!(
            insts[0],
            Inst::Branch {
                cond: BranchCond::Eq,
                rs1: Reg::x(1),
                rs2: Reg::x(2),
                offset: 2
            }
        );
        assert_eq!(
            insts[3],
            Inst::Jal {
                rd: Reg::ZERO,
                offset: -1
            }
        );
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut a = Asm::new();
        let l = a.label();
        a.j(l);
        assert!(matches!(a.finish(), Err(BuildError::UnboundLabel(_))));
    }

    #[test]
    fn branch_out_of_range_is_an_error() {
        let mut a = Asm::new();
        let top = a.here();
        for _ in 0..3000 {
            a.nop();
        }
        a.beq(Reg::x(1), Reg::x(2), top);
        assert!(matches!(
            a.finish(),
            Err(BuildError::OffsetOutOfRange { .. })
        ));
    }

    #[test]
    fn li_small_is_single_addi() {
        let mut a = Asm::new();
        a.li(Reg::x(1), -7);
        let p = a.finish().unwrap();
        assert_eq!(p.len_insts(), 1);
    }

    #[test]
    fn data_layout_and_alignment() {
        let mut a = Asm::new();
        let b = a.data_bytes(&[1, 2, 3]);
        let w = a.data_u64(&[0xdead]);
        assert_eq!(b % 1, 0);
        assert_eq!(w % 8, 0, "u64 data is 8-byte aligned");
        assert!(w >= b + 3);
        a.halt();
        let p = a.finish().unwrap();
        let mut m = crate::SparseMem::new();
        p.load_into(&mut m);
        assert_eq!(m.read_u8(b), 1);
        assert_eq!(m.read_u64(w), 0xdead);
    }

    #[test]
    fn reserve_creates_sparse_gap() {
        let mut a = Asm::new();
        let before = a.data_u64(&[11]);
        let gap = a.reserve(1 << 20); // 1 MiB hole, no bytes in the image
        let after = a.data_u64(&[22]);
        a.halt();
        let p = a.finish().unwrap();
        assert_eq!(after, gap + (1 << 20));
        let image: u64 = p.data.iter().map(|s| s.bytes.len() as u64).sum();
        assert!(image < 64, "gap must not be materialized, got {image}");
        let mut m = crate::SparseMem::new();
        p.load_into(&mut m);
        assert_eq!(m.read_u64(before), 11);
        assert_eq!(m.read_u64(gap), 0);
        assert_eq!(m.read_u64(after), 22);
    }

    #[test]
    fn cur_pc_tracks_emission() {
        let mut a = Asm::new();
        let start = a.cur_pc();
        a.nop();
        a.nop();
        assert_eq!(a.cur_pc(), start + 8);
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
    }
}
