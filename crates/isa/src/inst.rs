use std::fmt;

use crate::Reg;

/// Integer ALU operation, used by both register-register and
/// register-immediate instruction forms.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum AluOp {
    Add,
    Sub,
    And,
    Or,
    Xor,
    /// Shift left logical (shift amount is the low 6 bits of the operand).
    Sll,
    /// Shift right logical.
    Srl,
    /// Shift right arithmetic.
    Sra,
    /// Set-if-less-than, signed; result is 0 or 1.
    Slt,
    /// Set-if-less-than, unsigned; result is 0 or 1.
    Sltu,
    /// Low 64 bits of the signed product.
    Mul,
    /// High 64 bits of the signed product.
    Mulh,
    /// Signed division; division by zero yields all-ones, overflow wraps.
    Div,
    /// Unsigned division; division by zero yields all-ones.
    Divu,
    /// Signed remainder; remainder by zero yields the dividend.
    Rem,
    /// Unsigned remainder; remainder by zero yields the dividend.
    Remu,
}

impl AluOp {
    /// Evaluates the operation on two 64-bit operand values.
    ///
    /// This single definition is shared by the functional interpreter and by
    /// every timing core's execute stage, so functional and timing models
    /// cannot disagree about arithmetic.
    pub fn eval(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Sll => a.wrapping_shl((b & 0x3f) as u32),
            AluOp::Srl => a.wrapping_shr((b & 0x3f) as u32),
            AluOp::Sra => ((a as i64).wrapping_shr((b & 0x3f) as u32)) as u64,
            AluOp::Slt => ((a as i64) < (b as i64)) as u64,
            AluOp::Sltu => (a < b) as u64,
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Mulh => (((a as i64 as i128) * (b as i64 as i128)) >> 64) as u64,
            AluOp::Div => {
                if b == 0 {
                    u64::MAX
                } else {
                    (a as i64).wrapping_div(b as i64) as u64
                }
            }
            AluOp::Divu => a.checked_div(b).unwrap_or(u64::MAX),
            AluOp::Rem => {
                if b == 0 {
                    a
                } else {
                    (a as i64).wrapping_rem(b as i64) as u64
                }
            }
            AluOp::Remu => {
                if b == 0 {
                    a
                } else {
                    a % b
                }
            }
        }
    }

    /// `true` for multiply/divide/remainder, which occupy the long-latency
    /// integer unit in every core model.
    pub fn is_long_latency(self) -> bool {
        matches!(
            self,
            AluOp::Mul | AluOp::Mulh | AluOp::Div | AluOp::Divu | AluOp::Rem | AluOp::Remu
        )
    }

    /// Assembly mnemonic (register-register form).
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Sll => "sll",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
            AluOp::Mul => "mul",
            AluOp::Mulh => "mulh",
            AluOp::Div => "div",
            AluOp::Divu => "divu",
            AluOp::Rem => "rem",
            AluOp::Remu => "remu",
        }
    }
}

/// Floating-point operation on `f64` values stored as raw bits in the
/// unified register file. Comparison ops produce a 0/1 integer result.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum FpuOp {
    Fadd,
    Fsub,
    Fmul,
    Fdiv,
    Fmin,
    Fmax,
    /// Square root; unary (`rs2` is ignored and must be `x0` in the encoding).
    Fsqrt,
    /// Set-if-equal on f64 operands; 0/1 result.
    Feq,
    /// Set-if-less-than on f64 operands; 0/1 result.
    Flt,
    /// Set-if-less-or-equal on f64 operands; 0/1 result.
    Fle,
    /// Convert signed 64-bit integer to f64 (`rs2` ignored).
    CvtIntToF,
    /// Convert f64 to signed 64-bit integer, truncating (`rs2` ignored).
    CvtFToInt,
}

impl FpuOp {
    /// Evaluates the operation on two raw 64-bit operand values.
    ///
    /// Binary operands are interpreted as `f64` bit patterns; comparison and
    /// conversion results are produced in the integer domain where
    /// appropriate. NaN comparisons are false, matching IEEE semantics.
    pub fn eval(self, a: u64, b: u64) -> u64 {
        let fa = f64::from_bits(a);
        let fb = f64::from_bits(b);
        match self {
            FpuOp::Fadd => (fa + fb).to_bits(),
            FpuOp::Fsub => (fa - fb).to_bits(),
            FpuOp::Fmul => (fa * fb).to_bits(),
            FpuOp::Fdiv => (fa / fb).to_bits(),
            FpuOp::Fmin => fa.min(fb).to_bits(),
            FpuOp::Fmax => fa.max(fb).to_bits(),
            FpuOp::Fsqrt => fa.sqrt().to_bits(),
            FpuOp::Feq => (fa == fb) as u64,
            FpuOp::Flt => (fa < fb) as u64,
            FpuOp::Fle => (fa <= fb) as u64,
            FpuOp::CvtIntToF => ((a as i64) as f64).to_bits(),
            FpuOp::CvtFToInt => {
                // Saturating truncation: NaN maps to 0.
                if fa.is_nan() {
                    0
                } else if fa >= i64::MAX as f64 {
                    i64::MAX as u64
                } else if fa <= i64::MIN as f64 {
                    i64::MIN as u64
                } else {
                    (fa as i64) as u64
                }
            }
        }
    }

    /// `true` for the unary operations that read only `rs1`.
    pub fn is_unary(self) -> bool {
        matches!(self, FpuOp::Fsqrt | FpuOp::CvtIntToF | FpuOp::CvtFToInt)
    }

    /// `true` for divide/sqrt, which occupy the long-latency FP unit.
    pub fn is_long_latency(self) -> bool {
        matches!(self, FpuOp::Fdiv | FpuOp::Fsqrt)
    }

    /// Assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FpuOp::Fadd => "fadd",
            FpuOp::Fsub => "fsub",
            FpuOp::Fmul => "fmul",
            FpuOp::Fdiv => "fdiv",
            FpuOp::Fmin => "fmin",
            FpuOp::Fmax => "fmax",
            FpuOp::Fsqrt => "fsqrt",
            FpuOp::Feq => "feq",
            FpuOp::Flt => "flt",
            FpuOp::Fle => "fle",
            FpuOp::CvtIntToF => "fcvt.d.l",
            FpuOp::CvtFToInt => "fcvt.l.d",
        }
    }
}

/// Branch comparison condition.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum BranchCond {
    Eq,
    Ne,
    Lt,
    Ge,
    Ltu,
    Geu,
}

impl BranchCond {
    /// Evaluates the condition on two operand values.
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => (a as i64) < (b as i64),
            BranchCond::Ge => (a as i64) >= (b as i64),
            BranchCond::Ltu => a < b,
            BranchCond::Geu => a >= b,
        }
    }

    /// Assembly mnemonic (`beq`, `bne`, ...).
    pub fn mnemonic(self) -> &'static str {
        match self {
            BranchCond::Eq => "beq",
            BranchCond::Ne => "bne",
            BranchCond::Lt => "blt",
            BranchCond::Ge => "bge",
            BranchCond::Ltu => "bltu",
            BranchCond::Geu => "bgeu",
        }
    }
}

/// Memory access width in bytes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum MemWidth {
    B1,
    B2,
    B4,
    B8,
}

impl MemWidth {
    /// Width in bytes.
    pub const fn bytes(self) -> u64 {
        match self {
            MemWidth::B1 => 1,
            MemWidth::B2 => 2,
            MemWidth::B4 => 4,
            MemWidth::B8 => 8,
        }
    }
}

/// A decoded instruction.
///
/// This is the form every pipeline model operates on. The binary encoding
/// ([`crate::encode`]/[`crate::decode`]) round-trips through this type.
///
/// Note that the register file is unified (see [`Reg`]): loads and stores may
/// target FP registers directly (`fld`/`fsd` in assembly are the same `Load`/
/// `Store` variants with an FP destination/source), and ALU `add` serves as
/// the universal register move, including between files.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Inst {
    /// Register-register ALU operation: `rd = op(rs1, rs2)`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// First source.
        rs1: Reg,
        /// Second source.
        rs2: Reg,
    },
    /// Register-immediate ALU operation: `rd = op(rs1, imm)`.
    ///
    /// Arithmetic/comparison immediates are sign-extended 12-bit values;
    /// logical immediates (`and`/`or`/`xor`) are zero-extended 12-bit values
    /// so that constants can be assembled with `sll`/`or` chains.
    AluImm {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs1: Reg,
        /// Immediate operand (already extended).
        imm: i64,
    },
    /// Load upper immediate: `rd = sign_extend(imm) << 12`.
    Lui {
        /// Destination register.
        rd: Reg,
        /// 18-bit signed immediate.
        imm: i64,
    },
    /// Memory load: `rd = mem[rs1 + offset]`, zero- or sign-extended.
    Load {
        /// Access width.
        width: MemWidth,
        /// Whether the loaded value is sign-extended to 64 bits.
        signed: bool,
        /// Destination register.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Signed 12-bit byte offset.
        offset: i64,
    },
    /// Memory store: `mem[base + offset] = src` (low `width` bytes).
    Store {
        /// Access width.
        width: MemWidth,
        /// Register holding the value to store.
        src: Reg,
        /// Base address register.
        base: Reg,
        /// Signed 12-bit byte offset.
        offset: i64,
    },
    /// Conditional branch: `if cond(rs1, rs2) pc += offset * 4`.
    Branch {
        /// Comparison condition.
        cond: BranchCond,
        /// First comparison source.
        rs1: Reg,
        /// Second comparison source.
        rs2: Reg,
        /// Signed offset in *instructions* (not bytes) from this instruction.
        offset: i64,
    },
    /// Jump-and-link: `rd = pc + 4; pc += offset * 4`.
    Jal {
        /// Link destination (use `x0` for a plain jump).
        rd: Reg,
        /// Signed offset in instructions from this instruction.
        offset: i64,
    },
    /// Indirect jump-and-link: `rd = pc + 4; pc = (base + offset) & !3`.
    Jalr {
        /// Link destination (use `x0` for a plain indirect jump).
        rd: Reg,
        /// Register holding the target address.
        base: Reg,
        /// Signed 12-bit byte offset added to the target.
        offset: i64,
    },
    /// Floating-point operation (see [`FpuOp`]); comparisons and `fcvt.l.d`
    /// write an integer-domain value but may still target any register.
    Fpu {
        /// Operation.
        op: FpuOp,
        /// Destination register.
        rd: Reg,
        /// First source.
        rs1: Reg,
        /// Second source (ignored by unary ops).
        rs2: Reg,
    },
    /// Software prefetch hint for address `base + offset`. No architectural
    /// effect; timing models may initiate a cache fill.
    Prefetch {
        /// Base address register.
        base: Reg,
        /// Signed 12-bit byte offset.
        offset: i64,
    },
    /// Stops the program. Used by every workload to mark completion.
    Halt,
}

/// Coarse instruction class, used for statistics and functional-unit binding.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum InstClass {
    IntAlu,
    IntMulDiv,
    Load,
    Store,
    Branch,
    Jump,
    Fp,
    FpDiv,
    Prefetch,
    Halt,
}

impl InstClass {
    /// Position of this class in [`InstClass::ALL`] (declaration order, so
    /// the discriminant is the index — no scan).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Short display label used in statistics tables.
    pub fn label(self) -> &'static str {
        match self {
            InstClass::IntAlu => "int-alu",
            InstClass::IntMulDiv => "int-muldiv",
            InstClass::Load => "load",
            InstClass::Store => "store",
            InstClass::Branch => "branch",
            InstClass::Jump => "jump",
            InstClass::Fp => "fp",
            InstClass::FpDiv => "fp-div",
            InstClass::Prefetch => "prefetch",
            InstClass::Halt => "halt",
        }
    }

    /// All classes, in display order.
    pub const ALL: [InstClass; 10] = [
        InstClass::IntAlu,
        InstClass::IntMulDiv,
        InstClass::Load,
        InstClass::Store,
        InstClass::Branch,
        InstClass::Jump,
        InstClass::Fp,
        InstClass::FpDiv,
        InstClass::Prefetch,
        InstClass::Halt,
    ];
}

impl Inst {
    /// A canonical no-op (`addi x0, x0, 0`).
    pub const NOP: Inst = Inst::AluImm {
        op: AluOp::Add,
        rd: Reg::ZERO,
        rs1: Reg::ZERO,
        imm: 0,
    };

    /// The destination register written by this instruction, if any.
    ///
    /// Writes to `x0` are reported as `None`: they are architecturally
    /// invisible and the pipelines must not create dependences on them.
    pub fn dest(self) -> Option<Reg> {
        let rd = match self {
            Inst::Alu { rd, .. }
            | Inst::AluImm { rd, .. }
            | Inst::Lui { rd, .. }
            | Inst::Load { rd, .. }
            | Inst::Jal { rd, .. }
            | Inst::Jalr { rd, .. }
            | Inst::Fpu { rd, .. } => rd,
            Inst::Store { .. } | Inst::Branch { .. } | Inst::Prefetch { .. } | Inst::Halt => {
                return None
            }
        };
        if rd.is_zero() {
            None
        } else {
            Some(rd)
        }
    }

    /// The source registers read by this instruction.
    ///
    /// Reads of `x0` are reported as `None` (its value is constant, so no
    /// dependence exists). For a store, the *data* register is the second
    /// source and the *address base* the first.
    pub fn sources(self) -> [Option<Reg>; 2] {
        fn src(r: Reg) -> Option<Reg> {
            if r.is_zero() {
                None
            } else {
                Some(r)
            }
        }
        match self {
            Inst::Alu { rs1, rs2, .. } => [src(rs1), src(rs2)],
            Inst::AluImm { rs1, .. } => [src(rs1), None],
            Inst::Lui { .. } | Inst::Jal { .. } | Inst::Halt => [None, None],
            Inst::Load { base, .. } => [src(base), None],
            Inst::Store { src: data, base, .. } => [src(base), src(data)],
            Inst::Branch { rs1, rs2, .. } => [src(rs1), src(rs2)],
            Inst::Jalr { base, .. } => [src(base), None],
            Inst::Fpu { op, rs1, rs2, .. } => {
                if op.is_unary() {
                    [src(rs1), None]
                } else {
                    [src(rs1), src(rs2)]
                }
            }
            Inst::Prefetch { base, .. } => [src(base), None],
        }
    }

    /// The register whose value feeds the memory *address* computation, if
    /// this instruction accesses memory.
    pub fn addr_base(self) -> Option<Reg> {
        match self {
            Inst::Load { base, .. } | Inst::Store { base, .. } | Inst::Prefetch { base, .. } => {
                Some(base)
            }
            _ => None,
        }
    }

    /// `true` for loads (architectural memory reads).
    pub fn is_load(self) -> bool {
        matches!(self, Inst::Load { .. })
    }

    /// `true` for stores.
    pub fn is_store(self) -> bool {
        matches!(self, Inst::Store { .. })
    }

    /// `true` for any memory-accessing instruction, including prefetch.
    pub fn is_mem(self) -> bool {
        matches!(
            self,
            Inst::Load { .. } | Inst::Store { .. } | Inst::Prefetch { .. }
        )
    }

    /// `true` for conditional branches.
    pub fn is_branch(self) -> bool {
        matches!(self, Inst::Branch { .. })
    }

    /// `true` for any instruction that can redirect the PC.
    pub fn is_control(self) -> bool {
        matches!(
            self,
            Inst::Branch { .. } | Inst::Jal { .. } | Inst::Jalr { .. }
        )
    }

    /// `true` if the control-flow target is not computable from the
    /// instruction word alone (i.e., `jalr`).
    pub fn is_indirect(self) -> bool {
        matches!(self, Inst::Jalr { .. })
    }

    /// The coarse class of this instruction.
    pub fn class(self) -> InstClass {
        match self {
            Inst::Alu { op, .. } | Inst::AluImm { op, .. } => {
                if op.is_long_latency() {
                    InstClass::IntMulDiv
                } else {
                    InstClass::IntAlu
                }
            }
            Inst::Lui { .. } => InstClass::IntAlu,
            Inst::Load { .. } => InstClass::Load,
            Inst::Store { .. } => InstClass::Store,
            Inst::Branch { .. } => InstClass::Branch,
            Inst::Jal { .. } | Inst::Jalr { .. } => InstClass::Jump,
            Inst::Fpu { op, .. } => {
                if op.is_long_latency() {
                    InstClass::FpDiv
                } else {
                    InstClass::Fp
                }
            }
            Inst::Prefetch { .. } => InstClass::Prefetch,
            Inst::Halt => InstClass::Halt,
        }
    }

    /// For direct control transfers, the target PC given this instruction's
    /// own PC. Returns `None` for non-control and indirect instructions.
    pub fn direct_target(self, pc: u64) -> Option<u64> {
        match self {
            Inst::Branch { offset, .. } | Inst::Jal { offset, .. } => {
                Some(pc.wrapping_add_signed(offset * 4))
            }
            _ => None,
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::disasm(*self))
    }
}

/// Renders an instruction in assembly syntax.
///
/// Branch and jump offsets are printed in instruction units prefixed with
/// `.` (e.g. `beq x1, x2, .-3`), matching what [`crate::assemble`] accepts.
pub fn disasm(inst: Inst) -> String {
    match inst {
        Inst::Alu { op, rd, rs1, rs2 } => {
            format!("{} {rd}, {rs1}, {rs2}", op.mnemonic())
        }
        Inst::AluImm { op, rd, rs1, imm } => {
            format!("{}i {rd}, {rs1}, {imm}", op.mnemonic())
        }
        Inst::Lui { rd, imm } => format!("lui {rd}, {imm}"),
        Inst::Load {
            width,
            signed,
            rd,
            base,
            offset,
        } => {
            let m = match (width, signed) {
                (MemWidth::B1, true) => "lb",
                (MemWidth::B1, false) => "lbu",
                (MemWidth::B2, true) => "lh",
                (MemWidth::B2, false) => "lhu",
                (MemWidth::B4, true) => "lw",
                (MemWidth::B4, false) => "lwu",
                (MemWidth::B8, _) => "ld",
            };
            format!("{m} {rd}, {offset}({base})")
        }
        Inst::Store {
            width,
            src,
            base,
            offset,
        } => {
            let m = match width {
                MemWidth::B1 => "sb",
                MemWidth::B2 => "sh",
                MemWidth::B4 => "sw",
                MemWidth::B8 => "sd",
            };
            format!("{m} {src}, {offset}({base})")
        }
        Inst::Branch {
            cond,
            rs1,
            rs2,
            offset,
        } => format!("{} {rs1}, {rs2}, .{offset:+}", cond.mnemonic()),
        Inst::Jal { rd, offset } => format!("jal {rd}, .{offset:+}"),
        Inst::Jalr { rd, base, offset } => format!("jalr {rd}, {offset}({base})"),
        Inst::Fpu { op, rd, rs1, rs2 } => {
            if op.is_unary() {
                format!("{} {rd}, {rs1}", op.mnemonic())
            } else {
                format!("{} {rd}, {rs1}, {rs2}", op.mnemonic())
            }
        }
        Inst::Prefetch { base, offset } => format!("prefetch {offset}({base})"),
        Inst::Halt => "halt".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_index_matches_all_order() {
        for (i, c) in InstClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i, "{c:?} out of declaration order");
        }
    }

    #[test]
    fn alu_eval_basics() {
        assert_eq!(AluOp::Add.eval(2, 3), 5);
        assert_eq!(AluOp::Sub.eval(2, 3), u64::MAX);
        assert_eq!(AluOp::Slt.eval((-1i64) as u64, 0), 1);
        assert_eq!(AluOp::Sltu.eval((-1i64) as u64, 0), 0);
        assert_eq!(AluOp::Sra.eval((-8i64) as u64, 1), (-4i64) as u64);
        assert_eq!(AluOp::Srl.eval(8, 1), 4);
        assert_eq!(AluOp::Sll.eval(1, 65), 2, "shift amount is masked to 6 bits");
    }

    #[test]
    fn div_by_zero_is_defined() {
        assert_eq!(AluOp::Div.eval(5, 0), u64::MAX);
        assert_eq!(AluOp::Divu.eval(5, 0), u64::MAX);
        assert_eq!(AluOp::Rem.eval(5, 0), 5);
        assert_eq!(AluOp::Remu.eval(5, 0), 5);
    }

    #[test]
    fn div_overflow_wraps() {
        let min = i64::MIN as u64;
        let neg1 = (-1i64) as u64;
        assert_eq!(AluOp::Div.eval(min, neg1), min);
        assert_eq!(AluOp::Rem.eval(min, neg1), 0);
    }

    #[test]
    fn mulh_matches_wide_multiply() {
        let a = 0x1234_5678_9abc_def0u64;
        let b = (-3i64) as u64;
        let wide = (a as i64 as i128) * (b as i64 as i128);
        assert_eq!(AluOp::Mulh.eval(a, b), (wide >> 64) as u64);
        assert_eq!(AluOp::Mul.eval(a, b), wide as u64);
    }

    #[test]
    fn fpu_eval_basics() {
        let two = 2.0f64.to_bits();
        let three = 3.0f64.to_bits();
        assert_eq!(f64::from_bits(FpuOp::Fadd.eval(two, three)), 5.0);
        assert_eq!(f64::from_bits(FpuOp::Fmul.eval(two, three)), 6.0);
        assert_eq!(FpuOp::Flt.eval(two, three), 1);
        assert_eq!(FpuOp::Feq.eval(two, two), 1);
        assert_eq!(f64::from_bits(FpuOp::Fsqrt.eval(9.0f64.to_bits(), 0)), 3.0);
    }

    #[test]
    fn fpu_nan_compares_false() {
        let nan = f64::NAN.to_bits();
        assert_eq!(FpuOp::Feq.eval(nan, nan), 0);
        assert_eq!(FpuOp::Flt.eval(nan, nan), 0);
        assert_eq!(FpuOp::Fle.eval(nan, nan), 0);
    }

    #[test]
    fn fcvt_saturates() {
        assert_eq!(FpuOp::CvtFToInt.eval(f64::NAN.to_bits(), 0), 0);
        assert_eq!(
            FpuOp::CvtFToInt.eval(1e300f64.to_bits(), 0),
            i64::MAX as u64
        );
        assert_eq!(
            FpuOp::CvtFToInt.eval((-1e300f64).to_bits(), 0),
            i64::MIN as u64
        );
        assert_eq!(FpuOp::CvtFToInt.eval(42.9f64.to_bits(), 0), 42);
        assert_eq!(
            f64::from_bits(FpuOp::CvtIntToF.eval((-7i64) as u64, 0)),
            -7.0
        );
    }

    #[test]
    fn dest_hides_x0() {
        let i = Inst::AluImm {
            op: AluOp::Add,
            rd: Reg::ZERO,
            rs1: Reg::x(3),
            imm: 1,
        };
        assert_eq!(i.dest(), None);
        let i = Inst::AluImm {
            op: AluOp::Add,
            rd: Reg::x(4),
            rs1: Reg::x(3),
            imm: 1,
        };
        assert_eq!(i.dest(), Some(Reg::x(4)));
    }

    #[test]
    fn sources_hide_x0_and_unary_rs2() {
        let i = Inst::Alu {
            op: AluOp::Add,
            rd: Reg::x(1),
            rs1: Reg::ZERO,
            rs2: Reg::x(2),
        };
        assert_eq!(i.sources(), [None, Some(Reg::x(2))]);
        let f = Inst::Fpu {
            op: FpuOp::Fsqrt,
            rd: Reg::f(1),
            rs1: Reg::f(2),
            rs2: Reg::f(9),
        };
        assert_eq!(f.sources(), [Some(Reg::f(2)), None]);
    }

    #[test]
    fn store_sources_order() {
        let s = Inst::Store {
            width: MemWidth::B8,
            src: Reg::x(7),
            base: Reg::x(8),
            offset: 16,
        };
        assert_eq!(s.sources(), [Some(Reg::x(8)), Some(Reg::x(7))]);
        assert_eq!(s.dest(), None);
        assert!(s.is_store() && s.is_mem() && !s.is_load());
    }

    #[test]
    fn classes() {
        assert_eq!(Inst::NOP.class(), InstClass::IntAlu);
        assert_eq!(
            Inst::Alu {
                op: AluOp::Div,
                rd: Reg::x(1),
                rs1: Reg::x(2),
                rs2: Reg::x(3)
            }
            .class(),
            InstClass::IntMulDiv
        );
        assert_eq!(Inst::Halt.class(), InstClass::Halt);
        assert_eq!(
            Inst::Jal {
                rd: Reg::ZERO,
                offset: -2
            }
            .class(),
            InstClass::Jump
        );
    }

    #[test]
    fn direct_target_computation() {
        let b = Inst::Branch {
            cond: BranchCond::Eq,
            rs1: Reg::x(1),
            rs2: Reg::x(2),
            offset: -3,
        };
        assert_eq!(b.direct_target(0x1000), Some(0x1000 - 12));
        let j = Inst::Jal {
            rd: Reg::ZERO,
            offset: 5,
        };
        assert_eq!(j.direct_target(0x1000), Some(0x1000 + 20));
        assert_eq!(Inst::Halt.direct_target(0x1000), None);
        let jr = Inst::Jalr {
            rd: Reg::ZERO,
            base: Reg::x(1),
            offset: 0,
        };
        assert_eq!(jr.direct_target(0x1000), None);
        assert!(jr.is_indirect());
    }
}
