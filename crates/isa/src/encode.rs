//! Fixed 32-bit binary encoding.
//!
//! Layout (bit 31 is the MSB):
//!
//! ```text
//! [31:24] opcode
//! [23:18] field A   (rd, or rs1 for branches, or data reg for stores)
//! [17:12] field B   (rs1, or rs2 for branches)
//! [11:6]  field C   (rs2)                      -- register forms only
//! [11:0]  imm12     (sign- or zero-extended)   -- immediate forms
//! [17:0]  imm18     (sign-extended)            -- jal / lui
//! ```
//!
//! Every operation has its own opcode byte, so decode is a single match.
//! Branch and `jal` offsets are encoded in instruction units (words).

use std::fmt;

use crate::{AluOp, BranchCond, FpuOp, Inst, MemWidth, Reg};

/// Error produced by [`encode`] when an instruction's fields do not fit the
/// binary format.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EncodeError {
    /// A signed immediate is outside `[-2048, 2047]`.
    Imm12OutOfRange(i64),
    /// A zero-extended logical immediate is outside `[0, 4095]`.
    UImm12OutOfRange(i64),
    /// A jump/`lui` immediate is outside `[-131072, 131071]`.
    Imm18OutOfRange(i64),
    /// A shift amount is outside `[0, 63]`.
    ShiftOutOfRange(i64),
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::Imm12OutOfRange(v) => {
                write!(f, "immediate {v} does not fit in signed 12 bits")
            }
            EncodeError::UImm12OutOfRange(v) => {
                write!(f, "logical immediate {v} does not fit in unsigned 12 bits")
            }
            EncodeError::Imm18OutOfRange(v) => {
                write!(f, "offset {v} does not fit in signed 18 bits")
            }
            EncodeError::ShiftOutOfRange(v) => write!(f, "shift amount {v} is not in 0..64"),
        }
    }
}

impl std::error::Error for EncodeError {}

/// Error produced by [`decode`] for an invalid instruction word.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DecodeError {
    /// The offending word.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid instruction word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

// Opcode bytes. Grouped; gaps are reserved.
const OP_ALU_BASE: u8 = 0x01; // +AluOp index, reg-reg
const OP_ALUI_BASE: u8 = 0x11; // +AluOp index, reg-imm
const OP_LUI: u8 = 0x21;
const OP_LB: u8 = 0x22;
const OP_LBU: u8 = 0x23;
const OP_LH: u8 = 0x24;
const OP_LHU: u8 = 0x25;
const OP_LW: u8 = 0x26;
const OP_LWU: u8 = 0x27;
const OP_LD: u8 = 0x28;
const OP_SB: u8 = 0x29;
const OP_SH: u8 = 0x2a;
const OP_SW: u8 = 0x2b;
const OP_SD: u8 = 0x2c;
const OP_BR_BASE: u8 = 0x2d; // +BranchCond index
const OP_JAL: u8 = 0x33;
const OP_JALR: u8 = 0x34;
const OP_FPU_BASE: u8 = 0x35; // +FpuOp index
const OP_PREFETCH: u8 = 0x41;
const OP_HALT: u8 = 0x42;

fn alu_index(op: AluOp) -> u8 {
    match op {
        AluOp::Add => 0,
        AluOp::Sub => 1,
        AluOp::And => 2,
        AluOp::Or => 3,
        AluOp::Xor => 4,
        AluOp::Sll => 5,
        AluOp::Srl => 6,
        AluOp::Sra => 7,
        AluOp::Slt => 8,
        AluOp::Sltu => 9,
        AluOp::Mul => 10,
        AluOp::Mulh => 11,
        AluOp::Div => 12,
        AluOp::Divu => 13,
        AluOp::Rem => 14,
        AluOp::Remu => 15,
    }
}

fn alu_from_index(i: u8) -> Option<AluOp> {
    Some(match i {
        0 => AluOp::Add,
        1 => AluOp::Sub,
        2 => AluOp::And,
        3 => AluOp::Or,
        4 => AluOp::Xor,
        5 => AluOp::Sll,
        6 => AluOp::Srl,
        7 => AluOp::Sra,
        8 => AluOp::Slt,
        9 => AluOp::Sltu,
        10 => AluOp::Mul,
        11 => AluOp::Mulh,
        12 => AluOp::Div,
        13 => AluOp::Divu,
        14 => AluOp::Rem,
        15 => AluOp::Remu,
        _ => return None,
    })
}

fn br_index(c: BranchCond) -> u8 {
    match c {
        BranchCond::Eq => 0,
        BranchCond::Ne => 1,
        BranchCond::Lt => 2,
        BranchCond::Ge => 3,
        BranchCond::Ltu => 4,
        BranchCond::Geu => 5,
    }
}

fn br_from_index(i: u8) -> Option<BranchCond> {
    Some(match i {
        0 => BranchCond::Eq,
        1 => BranchCond::Ne,
        2 => BranchCond::Lt,
        3 => BranchCond::Ge,
        4 => BranchCond::Ltu,
        5 => BranchCond::Geu,
        _ => return None,
    })
}

fn fpu_index(op: FpuOp) -> u8 {
    match op {
        FpuOp::Fadd => 0,
        FpuOp::Fsub => 1,
        FpuOp::Fmul => 2,
        FpuOp::Fdiv => 3,
        FpuOp::Fmin => 4,
        FpuOp::Fmax => 5,
        FpuOp::Fsqrt => 6,
        FpuOp::Feq => 7,
        FpuOp::Flt => 8,
        FpuOp::Fle => 9,
        FpuOp::CvtIntToF => 10,
        FpuOp::CvtFToInt => 11,
    }
}

fn fpu_from_index(i: u8) -> Option<FpuOp> {
    Some(match i {
        0 => FpuOp::Fadd,
        1 => FpuOp::Fsub,
        2 => FpuOp::Fmul,
        3 => FpuOp::Fdiv,
        4 => FpuOp::Fmin,
        5 => FpuOp::Fmax,
        6 => FpuOp::Fsqrt,
        7 => FpuOp::Feq,
        8 => FpuOp::Flt,
        9 => FpuOp::Fle,
        10 => FpuOp::CvtIntToF,
        11 => FpuOp::CvtFToInt,
        _ => return None,
    })
}

/// `true` for logical immediate operations whose immediate is zero-extended.
fn is_logical_imm(op: AluOp) -> bool {
    matches!(op, AluOp::And | AluOp::Or | AluOp::Xor)
}

fn is_shift(op: AluOp) -> bool {
    matches!(op, AluOp::Sll | AluOp::Srl | AluOp::Sra)
}

fn check_imm12(v: i64) -> Result<u32, EncodeError> {
    if (-2048..=2047).contains(&v) {
        Ok((v as u32) & 0xfff)
    } else {
        Err(EncodeError::Imm12OutOfRange(v))
    }
}

fn check_uimm12(v: i64) -> Result<u32, EncodeError> {
    if (0..=4095).contains(&v) {
        Ok(v as u32)
    } else {
        Err(EncodeError::UImm12OutOfRange(v))
    }
}

fn check_imm18(v: i64) -> Result<u32, EncodeError> {
    if (-131072..=131071).contains(&v) {
        Ok((v as u32) & 0x3ffff)
    } else {
        Err(EncodeError::Imm18OutOfRange(v))
    }
}

fn check_shift(v: i64) -> Result<u32, EncodeError> {
    if (0..=63).contains(&v) {
        Ok(v as u32)
    } else {
        Err(EncodeError::ShiftOutOfRange(v))
    }
}

fn sext(v: u32, bits: u32) -> i64 {
    let shift = 64 - bits;
    (((v as u64) << shift) as i64) >> shift
}

fn word(op: u8, a: u8, b: u8, c: u8) -> u32 {
    ((op as u32) << 24) | ((a as u32 & 0x3f) << 18) | ((b as u32 & 0x3f) << 12) | ((c as u32 & 0x3f) << 6)
}

fn word_imm(op: u8, a: u8, b: u8, imm12: u32) -> u32 {
    ((op as u32) << 24) | ((a as u32 & 0x3f) << 18) | ((b as u32 & 0x3f) << 12) | (imm12 & 0xfff)
}

fn word_imm18(op: u8, a: u8, imm18: u32) -> u32 {
    ((op as u32) << 24) | ((a as u32 & 0x3f) << 18) | (imm18 & 0x3ffff)
}

/// Encodes a decoded instruction into its 32-bit word.
///
/// # Errors
///
/// Returns an [`EncodeError`] when an immediate or offset does not fit the
/// field width; see the error variants for the exact ranges.
pub fn encode(inst: Inst) -> Result<u32, EncodeError> {
    Ok(match inst {
        Inst::Alu { op, rd, rs1, rs2 } => {
            word(OP_ALU_BASE + alu_index(op), rd.raw(), rs1.raw(), rs2.raw())
        }
        Inst::AluImm { op, rd, rs1, imm } => {
            let enc = if is_logical_imm(op) {
                check_uimm12(imm)?
            } else if is_shift(op) {
                check_shift(imm)?
            } else {
                check_imm12(imm)?
            };
            word_imm(OP_ALUI_BASE + alu_index(op), rd.raw(), rs1.raw(), enc)
        }
        Inst::Lui { rd, imm } => word_imm18(OP_LUI, rd.raw(), check_imm18(imm)?),
        Inst::Load {
            width,
            signed,
            rd,
            base,
            offset,
        } => {
            let op = match (width, signed) {
                (MemWidth::B1, true) => OP_LB,
                (MemWidth::B1, false) => OP_LBU,
                (MemWidth::B2, true) => OP_LH,
                (MemWidth::B2, false) => OP_LHU,
                (MemWidth::B4, true) => OP_LW,
                (MemWidth::B4, false) => OP_LWU,
                (MemWidth::B8, _) => OP_LD,
            };
            word_imm(op, rd.raw(), base.raw(), check_imm12(offset)?)
        }
        Inst::Store {
            width,
            src,
            base,
            offset,
        } => {
            let op = match width {
                MemWidth::B1 => OP_SB,
                MemWidth::B2 => OP_SH,
                MemWidth::B4 => OP_SW,
                MemWidth::B8 => OP_SD,
            };
            word_imm(op, src.raw(), base.raw(), check_imm12(offset)?)
        }
        Inst::Branch {
            cond,
            rs1,
            rs2,
            offset,
        } => word_imm(
            OP_BR_BASE + br_index(cond),
            rs1.raw(),
            rs2.raw(),
            check_imm12(offset)?,
        ),
        Inst::Jal { rd, offset } => word_imm18(OP_JAL, rd.raw(), check_imm18(offset)?),
        Inst::Jalr { rd, base, offset } => {
            word_imm(OP_JALR, rd.raw(), base.raw(), check_imm12(offset)?)
        }
        Inst::Fpu { op, rd, rs1, rs2 } => {
            let rs2 = if op.is_unary() { Reg::ZERO } else { rs2 };
            word(OP_FPU_BASE + fpu_index(op), rd.raw(), rs1.raw(), rs2.raw())
        }
        Inst::Prefetch { base, offset } => {
            word_imm(OP_PREFETCH, 0, base.raw(), check_imm12(offset)?)
        }
        Inst::Halt => word(OP_HALT, 0, 0, 0),
    })
}

/// Decodes a 32-bit instruction word.
///
/// # Errors
///
/// Returns a [`DecodeError`] for reserved opcode bytes. All register fields
/// are 6 bits and therefore always valid.
pub fn decode(w: u32) -> Result<Inst, DecodeError> {
    let op = (w >> 24) as u8;
    let a = Reg::from_index(((w >> 18) & 0x3f) as u8).expect("6-bit field");
    let b = Reg::from_index(((w >> 12) & 0x3f) as u8).expect("6-bit field");
    let c = Reg::from_index(((w >> 6) & 0x3f) as u8).expect("6-bit field");
    let imm12 = w & 0xfff;
    let imm18 = w & 0x3ffff;

    let inst = match op {
        _ if (OP_ALU_BASE..OP_ALU_BASE + 16).contains(&op) => {
            let alu = alu_from_index(op - OP_ALU_BASE).expect("range-checked");
            Inst::Alu {
                op: alu,
                rd: a,
                rs1: b,
                rs2: c,
            }
        }
        _ if (OP_ALUI_BASE..OP_ALUI_BASE + 16).contains(&op) => {
            let alu = alu_from_index(op - OP_ALUI_BASE).expect("range-checked");
            let imm = if is_shift(alu) {
                // Hardware masks shift amounts to 6 bits; canonicalize so
                // decode(encode(i)) is a fixed point.
                (imm12 & 0x3f) as i64
            } else if is_logical_imm(alu) {
                imm12 as i64
            } else {
                sext(imm12, 12)
            };
            Inst::AluImm {
                op: alu,
                rd: a,
                rs1: b,
                imm,
            }
        }
        OP_LUI => Inst::Lui {
            rd: a,
            imm: sext(imm18, 18),
        },
        OP_LB | OP_LBU | OP_LH | OP_LHU | OP_LW | OP_LWU | OP_LD => {
            let (width, signed) = match op {
                OP_LB => (MemWidth::B1, true),
                OP_LBU => (MemWidth::B1, false),
                OP_LH => (MemWidth::B2, true),
                OP_LHU => (MemWidth::B2, false),
                OP_LW => (MemWidth::B4, true),
                OP_LWU => (MemWidth::B4, false),
                _ => (MemWidth::B8, true),
            };
            Inst::Load {
                width,
                signed,
                rd: a,
                base: b,
                offset: sext(imm12, 12),
            }
        }
        OP_SB | OP_SH | OP_SW | OP_SD => {
            let width = match op {
                OP_SB => MemWidth::B1,
                OP_SH => MemWidth::B2,
                OP_SW => MemWidth::B4,
                _ => MemWidth::B8,
            };
            Inst::Store {
                width,
                src: a,
                base: b,
                offset: sext(imm12, 12),
            }
        }
        _ if (OP_BR_BASE..OP_BR_BASE + 6).contains(&op) => {
            let cond = br_from_index(op - OP_BR_BASE).expect("range-checked");
            Inst::Branch {
                cond,
                rs1: a,
                rs2: b,
                offset: sext(imm12, 12),
            }
        }
        OP_JAL => Inst::Jal {
            rd: a,
            offset: sext(imm18, 18),
        },
        OP_JALR => Inst::Jalr {
            rd: a,
            base: b,
            offset: sext(imm12, 12),
        },
        _ if (OP_FPU_BASE..OP_FPU_BASE + 12).contains(&op) => {
            let fop = fpu_from_index(op - OP_FPU_BASE).expect("range-checked");
            // Canonicalize the unused rs2 field of unary ops so that
            // decode(encode(i)) is a fixed point.
            let rs2 = if fop.is_unary() { Reg::ZERO } else { c };
            Inst::Fpu {
                op: fop,
                rd: a,
                rs1: b,
                rs2,
            }
        }
        OP_PREFETCH => Inst::Prefetch {
            base: b,
            offset: sext(imm12, 12),
        },
        OP_HALT => Inst::Halt,
        _ => return Err(DecodeError { word: w }),
    };
    Ok(inst)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(i: Inst) {
        let w = encode(i).expect("encodable");
        let back = decode(w).expect("decodable");
        assert_eq!(i, back, "word {w:#010x}");
    }

    #[test]
    fn roundtrip_representatives() {
        roundtrip(Inst::Alu {
            op: AluOp::Sub,
            rd: Reg::x(31),
            rs1: Reg::f(0),
            rs2: Reg::f(31),
        });
        roundtrip(Inst::AluImm {
            op: AluOp::Add,
            rd: Reg::x(1),
            rs1: Reg::x(2),
            imm: -2048,
        });
        roundtrip(Inst::AluImm {
            op: AluOp::Or,
            rd: Reg::x(1),
            rs1: Reg::x(2),
            imm: 4095,
        });
        roundtrip(Inst::AluImm {
            op: AluOp::Sll,
            rd: Reg::x(1),
            rs1: Reg::x(2),
            imm: 63,
        });
        roundtrip(Inst::Lui {
            rd: Reg::x(3),
            imm: -131072,
        });
        roundtrip(Inst::Load {
            width: MemWidth::B4,
            signed: false,
            rd: Reg::f(7),
            base: Reg::x(9),
            offset: 2047,
        });
        roundtrip(Inst::Store {
            width: MemWidth::B1,
            src: Reg::x(30),
            base: Reg::SP,
            offset: -1,
        });
        roundtrip(Inst::Branch {
            cond: BranchCond::Geu,
            rs1: Reg::x(4),
            rs2: Reg::x(5),
            offset: -100,
        });
        roundtrip(Inst::Jal {
            rd: Reg::LINK,
            offset: 131071,
        });
        roundtrip(Inst::Jalr {
            rd: Reg::ZERO,
            base: Reg::x(10),
            offset: 8,
        });
        roundtrip(Inst::Fpu {
            op: FpuOp::Fdiv,
            rd: Reg::f(1),
            rs1: Reg::f(2),
            rs2: Reg::f(3),
        });
        roundtrip(Inst::Prefetch {
            base: Reg::x(6),
            offset: 64,
        });
        roundtrip(Inst::Halt);
    }

    #[test]
    fn unary_fpu_normalizes_rs2() {
        let i = Inst::Fpu {
            op: FpuOp::Fsqrt,
            rd: Reg::f(1),
            rs1: Reg::f(2),
            rs2: Reg::f(9),
        };
        let w = encode(i).unwrap();
        let back = decode(w).unwrap();
        match back {
            Inst::Fpu { op, rs2, .. } => {
                assert_eq!(op, FpuOp::Fsqrt);
                assert_eq!(rs2, Reg::ZERO, "unary rs2 is canonicalized to x0");
            }
            other => panic!("decoded to {other:?}"),
        }
    }

    #[test]
    fn out_of_range_immediates_rejected() {
        assert_eq!(
            encode(Inst::AluImm {
                op: AluOp::Add,
                rd: Reg::x(1),
                rs1: Reg::x(1),
                imm: 2048
            }),
            Err(EncodeError::Imm12OutOfRange(2048))
        );
        assert_eq!(
            encode(Inst::AluImm {
                op: AluOp::And,
                rd: Reg::x(1),
                rs1: Reg::x(1),
                imm: -1
            }),
            Err(EncodeError::UImm12OutOfRange(-1))
        );
        assert_eq!(
            encode(Inst::AluImm {
                op: AluOp::Sll,
                rd: Reg::x(1),
                rs1: Reg::x(1),
                imm: 64
            }),
            Err(EncodeError::ShiftOutOfRange(64))
        );
        assert_eq!(
            encode(Inst::Jal {
                rd: Reg::ZERO,
                offset: 131072
            }),
            Err(EncodeError::Imm18OutOfRange(131072))
        );
    }

    #[test]
    fn reserved_opcodes_fail_decode() {
        assert!(decode(0x0000_0000).is_err());
        assert!(decode(0xff00_0000).is_err());
        assert!(decode((0x43u32) << 24).is_err());
    }

    #[test]
    fn negative_offsets_sign_extend() {
        let w = encode(Inst::Branch {
            cond: BranchCond::Eq,
            rs1: Reg::x(1),
            rs2: Reg::x(2),
            offset: -1,
        })
        .unwrap();
        match decode(w).unwrap() {
            Inst::Branch { offset, .. } => assert_eq!(offset, -1),
            other => panic!("decoded to {other:?}"),
        }
    }
}
