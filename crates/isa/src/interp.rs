use std::fmt;

use crate::{Inst, Program, Reg, SparseMem, INST_BYTES, NUM_REGS};

/// Architectural register + PC state.
#[derive(Clone, PartialEq, Eq)]
pub struct ArchState {
    regs: [u64; NUM_REGS],
    /// Current program counter.
    pub pc: u64,
}

impl ArchState {
    /// Creates a zeroed state with the given entry PC.
    pub fn new(entry: u64) -> ArchState {
        ArchState {
            regs: [0; NUM_REGS],
            pc: entry,
        }
    }

    /// Reads a register (reads of `x0` always return zero).
    pub fn read(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Writes a register (writes to `x0` are dropped).
    pub fn write(&mut self, r: Reg, v: u64) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }

    /// A snapshot of all 64 registers in unified-index order.
    pub fn regs(&self) -> &[u64; NUM_REGS] {
        &self.regs
    }
}

impl fmt::Debug for ArchState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "pc = {:#x}", self.pc)?;
        for r in Reg::all() {
            let v = self.read(r);
            if v != 0 {
                writeln!(f, "  {r} = {v:#x}")?;
            }
        }
        Ok(())
    }
}

/// An architectural trap raised by [`Interp::step`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Trap {
    /// The PC left the text segment or was misaligned.
    BadPc(u64),
    /// The instruction word at the PC failed to decode.
    BadInst {
        /// PC of the undecodable word.
        pc: u64,
        /// The word itself.
        word: u32,
    },
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::BadPc(pc) => write!(f, "pc {pc:#x} is outside the text segment"),
            Trap::BadInst { pc, word } => {
                write!(f, "invalid instruction {word:#010x} at pc {pc:#x}")
            }
        }
    }
}

impl std::error::Error for Trap {}

/// The memory effect of one retired instruction, as reported in
/// [`StepEvent`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemEffect {
    /// No memory access.
    None,
    /// A load of `bytes` bytes from `addr` returning `value` (post-extension).
    Load {
        /// Byte address.
        addr: u64,
        /// Access size in bytes.
        bytes: u64,
        /// Architectural result written to the destination.
        value: u64,
    },
    /// A store of the low `bytes` bytes of `value` to `addr`.
    Store {
        /// Byte address.
        addr: u64,
        /// Access size in bytes.
        bytes: u64,
        /// Value stored (low `bytes` significant).
        value: u64,
    },
}

/// Everything observable about one functional step. Timing cores compare
/// their retirement stream against these events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StepEvent {
    /// PC of the retired instruction.
    pub pc: u64,
    /// The instruction itself.
    pub inst: Inst,
    /// PC of the next instruction (reflects taken branches).
    pub next_pc: u64,
    /// Register write performed, if any.
    pub reg_write: Option<(Reg, u64)>,
    /// Memory effect, if any.
    pub mem: MemEffect,
    /// `true` if this step was `halt`.
    pub halted: bool,
}

/// Why [`Interp::run`] stopped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StopReason {
    /// A `halt` instruction retired.
    Halt,
    /// The step budget was exhausted before `halt`.
    StepLimit,
}

/// Result of [`Interp::run`].
#[derive(Clone, Copy, Debug)]
pub struct RunOutcome {
    /// Why the run stopped.
    pub stop: StopReason,
    /// Instructions retired (including the `halt`, if any).
    pub steps: u64,
}

/// Functional reference interpreter.
///
/// Executes one instruction per [`Interp::step`] with no timing model. It is
/// the golden model for co-simulation: every timing core in the workspace
/// checks its retirement stream against an `Interp` running the same
/// program (see `sst-sim`'s `RetireChecker`).
pub struct Interp {
    program: Program,
    state: ArchState,
    mem: SparseMem,
    halted: bool,
    retired: u64,
}

impl Interp {
    /// Creates an interpreter with the program's image loaded into a fresh
    /// memory.
    pub fn new(program: &Program) -> Interp {
        let mut mem = SparseMem::new();
        program.load_into(&mut mem);
        Interp {
            program: program.clone(),
            state: ArchState::new(program.entry),
            mem,
            halted: false,
            retired: 0,
        }
    }

    /// Current architectural state.
    pub fn state(&self) -> &ArchState {
        &self.state
    }

    /// The data memory image (shared view; text lives here too).
    pub fn mem(&self) -> &SparseMem {
        &self.mem
    }

    /// Mutable access to memory (for tests that poke inputs).
    pub fn mem_mut(&mut self) -> &mut SparseMem {
        &mut self.mem
    }

    /// `true` once a `halt` has retired; further steps are no-ops.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Total instructions retired.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Executes one instruction.
    ///
    /// After `halt` retires the interpreter latches [`Interp::is_halted`]
    /// and replays the same halt event on subsequent calls.
    ///
    /// # Errors
    ///
    /// Returns a [`Trap`] if the PC leaves the text segment or the fetched
    /// word cannot be decoded. The state is unchanged on error.
    pub fn step(&mut self) -> Result<StepEvent, Trap> {
        let pc = self.state.pc;
        if self.halted {
            return Ok(StepEvent {
                pc,
                inst: Inst::Halt,
                next_pc: pc,
                reg_write: None,
                mem: MemEffect::None,
                halted: true,
            });
        }
        let inst = self
            .program
            .inst_at(pc)
            .ok_or(Trap::BadPc(pc))?;

        let mut next_pc = pc.wrapping_add(INST_BYTES);
        let mut reg_write = None;
        let mut mem_effect = MemEffect::None;
        let mut halted = false;

        match inst {
            Inst::Alu { op, rd, rs1, rs2 } => {
                let v = op.eval(self.state.read(rs1), self.state.read(rs2));
                reg_write = Some((rd, v));
            }
            Inst::AluImm { op, rd, rs1, imm } => {
                let v = op.eval(self.state.read(rs1), imm as u64);
                reg_write = Some((rd, v));
            }
            Inst::Lui { rd, imm } => {
                reg_write = Some((rd, (imm << 12) as u64));
            }
            Inst::Load {
                width,
                signed,
                rd,
                base,
                offset,
            } => {
                let addr = self.state.read(base).wrapping_add_signed(offset);
                let bytes = width.bytes();
                let raw = self.mem.read_le(addr, bytes);
                let value = if signed && bytes < 8 {
                    let shift = 64 - bytes * 8;
                    (((raw << shift) as i64) >> shift) as u64
                } else {
                    raw
                };
                reg_write = Some((rd, value));
                mem_effect = MemEffect::Load { addr, bytes, value };
            }
            Inst::Store {
                width,
                src,
                base,
                offset,
            } => {
                let addr = self.state.read(base).wrapping_add_signed(offset);
                let bytes = width.bytes();
                let value = self.state.read(src);
                self.mem.write_le(addr, bytes, value);
                mem_effect = MemEffect::Store { addr, bytes, value };
            }
            Inst::Branch {
                cond,
                rs1,
                rs2,
                offset,
            } => {
                if cond.eval(self.state.read(rs1), self.state.read(rs2)) {
                    next_pc = pc.wrapping_add_signed(offset * 4);
                }
            }
            Inst::Jal { rd, offset } => {
                reg_write = Some((rd, pc.wrapping_add(INST_BYTES)));
                next_pc = pc.wrapping_add_signed(offset * 4);
            }
            Inst::Jalr { rd, base, offset } => {
                let target = self.state.read(base).wrapping_add_signed(offset) & !3u64;
                reg_write = Some((rd, pc.wrapping_add(INST_BYTES)));
                next_pc = target;
            }
            Inst::Fpu { op, rd, rs1, rs2 } => {
                let v = op.eval(self.state.read(rs1), self.state.read(rs2));
                reg_write = Some((rd, v));
            }
            Inst::Prefetch { .. } => {}
            Inst::Halt => {
                halted = true;
                next_pc = pc;
            }
        }

        if let Some((rd, v)) = reg_write {
            self.state.write(rd, v);
            if rd.is_zero() {
                reg_write = None;
            }
        }
        self.state.pc = next_pc;
        self.halted = halted;
        self.retired += 1;

        Ok(StepEvent {
            pc,
            inst,
            next_pc,
            reg_write,
            mem: mem_effect,
            halted,
        })
    }

    /// Runs until `halt` or until `max_steps` instructions retire.
    ///
    /// # Errors
    ///
    /// Propagates the first [`Trap`].
    pub fn run(&mut self, max_steps: u64) -> Result<RunOutcome, Trap> {
        let mut steps = 0;
        while steps < max_steps {
            let ev = self.step()?;
            steps += 1;
            if ev.halted {
                return Ok(RunOutcome {
                    stop: StopReason::Halt,
                    steps,
                });
            }
        }
        Ok(RunOutcome {
            stop: StopReason::StepLimit,
            steps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Asm, BranchCond};

    #[test]
    fn arithmetic_loop_sums() {
        let mut a = Asm::new();
        a.li(Reg::x(5), 100);
        a.li(Reg::x(6), 0);
        let top = a.here();
        a.add(Reg::x(6), Reg::x(6), Reg::x(5));
        a.addi(Reg::x(5), Reg::x(5), -1);
        a.bne(Reg::x(5), Reg::ZERO, top);
        a.halt();
        let p = a.finish().unwrap();
        let mut i = Interp::new(&p);
        let out = i.run(10_000).unwrap();
        assert_eq!(out.stop, StopReason::Halt);
        assert_eq!(i.state().read(Reg::x(6)), 5050);
    }

    #[test]
    fn li_expansion_handles_big_constants() {
        for &v in &[
            0x7fff_ffff_ffff_ffffi64,
            i64::MIN,
            -1,
            0x1234_5678,
            -0x1234_5678_9abc,
            4096,
            -4097,
            0xdead_beef_cafe_i64,
        ] {
            let mut a = Asm::new();
            a.li(Reg::x(1), v);
            a.halt();
            let p = a.finish().unwrap();
            let mut i = Interp::new(&p);
            i.run(100).unwrap();
            assert_eq!(i.state().read(Reg::x(1)) as i64, v, "li {v:#x}");
        }
    }

    #[test]
    fn loads_extend_correctly() {
        let mut a = Asm::new();
        let addr = a.data_bytes(&[0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0]);
        a.la(Reg::x(1), addr);
        a.lbu(Reg::x(2), Reg::x(1), 0);
        a.load(crate::MemWidth::B1, true, Reg::x(3), Reg::x(1), 0);
        a.lw(Reg::x(4), Reg::x(1), 0);
        a.lwu(Reg::x(5), Reg::x(1), 0);
        a.halt();
        let p = a.finish().unwrap();
        let mut i = Interp::new(&p);
        i.run(100).unwrap();
        assert_eq!(i.state().read(Reg::x(2)), 0xff);
        assert_eq!(i.state().read(Reg::x(3)), u64::MAX);
        assert_eq!(i.state().read(Reg::x(4)), u64::MAX);
        assert_eq!(i.state().read(Reg::x(5)), 0xffff_ffff);
    }

    #[test]
    fn store_load_roundtrip_and_event() {
        let mut a = Asm::new();
        let buf = a.reserve(64);
        a.la(Reg::x(1), buf);
        a.li(Reg::x(2), 0x55);
        a.sd(Reg::x(2), Reg::x(1), 8);
        a.ld(Reg::x(3), Reg::x(1), 8);
        a.halt();
        let p = a.finish().unwrap();
        let mut i = Interp::new(&p);
        // step through to observe the store event
        let mut store_seen = false;
        loop {
            let ev = i.step().unwrap();
            if let MemEffect::Store { addr, bytes, value } = ev.mem {
                assert_eq!(addr, buf + 8);
                assert_eq!(bytes, 8);
                assert_eq!(value, 0x55);
                store_seen = true;
            }
            if ev.halted {
                break;
            }
        }
        assert!(store_seen);
        assert_eq!(i.state().read(Reg::x(3)), 0x55);
    }

    #[test]
    fn branch_taken_and_not_taken() {
        let mut a = Asm::new();
        a.li(Reg::x(1), 1);
        let skip = a.label();
        a.branch(BranchCond::Eq, Reg::x(1), Reg::ZERO, skip); // not taken
        a.li(Reg::x(2), 11);
        a.bind(skip);
        let skip2 = a.label();
        a.branch(BranchCond::Ne, Reg::x(1), Reg::ZERO, skip2); // taken
        a.li(Reg::x(2), 99); // skipped
        a.bind(skip2);
        a.halt();
        let p = a.finish().unwrap();
        let mut i = Interp::new(&p);
        i.run(100).unwrap();
        assert_eq!(i.state().read(Reg::x(2)), 11);
    }

    #[test]
    fn jal_jalr_call_ret() {
        let mut a = Asm::new();
        let func = a.label();
        a.call(func); // x1 = ret addr
        a.halt();
        a.bind(func);
        a.li(Reg::x(10), 77);
        a.ret();
        let p = a.finish().unwrap();
        let mut i = Interp::new(&p);
        let out = i.run(100).unwrap();
        assert_eq!(out.stop, StopReason::Halt);
        assert_eq!(i.state().read(Reg::x(10)), 77);
    }

    #[test]
    fn fp_kernel() {
        let mut a = Asm::new();
        let vals = a.data_f64(&[1.5, 2.5]);
        a.la(Reg::x(1), vals);
        a.ld(Reg::f(0), Reg::x(1), 0);
        a.ld(Reg::f(1), Reg::x(1), 8);
        a.fadd(Reg::f(2), Reg::f(0), Reg::f(1));
        a.fmul(Reg::f(3), Reg::f(2), Reg::f(2));
        a.halt();
        let p = a.finish().unwrap();
        let mut i = Interp::new(&p);
        i.run(100).unwrap();
        assert_eq!(f64::from_bits(i.state().read(Reg::f(2))), 4.0);
        assert_eq!(f64::from_bits(i.state().read(Reg::f(3))), 16.0);
    }

    #[test]
    fn bad_pc_traps() {
        let mut a = Asm::new();
        a.li(Reg::x(1), 0);
        a.jalr(Reg::ZERO, Reg::x(1), 0); // jump to 0: outside text
        let p = a.finish().unwrap();
        let mut i = Interp::new(&p);
        i.step().unwrap();
        i.step().unwrap();
        assert_eq!(i.step(), Err(Trap::BadPc(0)));
    }

    #[test]
    fn halt_latches() {
        let mut a = Asm::new();
        a.halt();
        let p = a.finish().unwrap();
        let mut i = Interp::new(&p);
        let e1 = i.step().unwrap();
        assert!(e1.halted);
        let e2 = i.step().unwrap();
        assert!(e2.halted);
        assert!(i.is_halted());
        assert_eq!(i.retired(), 1, "latched halt replays do not retire");
    }

    #[test]
    fn x0_writes_dropped_in_events() {
        let mut a = Asm::new();
        a.addi(Reg::ZERO, Reg::ZERO, 5);
        a.halt();
        let p = a.finish().unwrap();
        let mut i = Interp::new(&p);
        let ev = i.step().unwrap();
        assert_eq!(ev.reg_write, None);
        assert_eq!(i.state().read(Reg::ZERO), 0);
    }

    #[test]
    fn running_to_step_limit() {
        let mut a = Asm::new();
        let top = a.here();
        a.j(top);
        let p = a.finish().unwrap();
        let mut i = Interp::new(&p);
        let out = i.run(50).unwrap();
        assert_eq!(out.stop, StopReason::StepLimit);
        assert_eq!(out.steps, 50);
    }
}
