use std::fmt;

use crate::{Inst, Program, Reg, SnapError, SnapReader, SnapWriter, SparseMem, INST_BYTES, NUM_REGS};

/// Architectural register + PC state.
#[derive(Clone, PartialEq, Eq)]
pub struct ArchState {
    regs: [u64; NUM_REGS],
    /// Current program counter.
    pub pc: u64,
}

impl ArchState {
    /// Creates a zeroed state with the given entry PC.
    pub fn new(entry: u64) -> ArchState {
        ArchState {
            regs: [0; NUM_REGS],
            pc: entry,
        }
    }

    /// Reads a register (reads of `x0` always return zero).
    pub fn read(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Writes a register (writes to `x0` are dropped).
    pub fn write(&mut self, r: Reg, v: u64) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }

    /// A snapshot of all 64 registers in unified-index order.
    pub fn regs(&self) -> &[u64; NUM_REGS] {
        &self.regs
    }

    /// Serializes the register file and PC.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.tag("ARCH");
        for &v in &self.regs {
            w.put_u64(v);
        }
        w.put_u64(self.pc);
    }

    /// Restores state written by [`ArchState::save_state`].
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] on truncated or corrupt input; the state
    /// is unspecified (but memory-safe) on error.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.tag("ARCH")?;
        for v in self.regs.iter_mut() {
            *v = r.take_u64()?;
        }
        self.pc = r.take_u64()?;
        Ok(())
    }
}

impl fmt::Debug for ArchState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "pc = {:#x}", self.pc)?;
        for r in Reg::all() {
            let v = self.read(r);
            if v != 0 {
                writeln!(f, "  {r} = {v:#x}")?;
            }
        }
        Ok(())
    }
}

/// An architectural trap raised by [`Interp::step`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Trap {
    /// The PC left the text segment or was misaligned.
    BadPc(u64),
    /// The instruction word at the PC failed to decode.
    BadInst {
        /// PC of the undecodable word.
        pc: u64,
        /// The word itself.
        word: u32,
    },
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::BadPc(pc) => write!(f, "pc {pc:#x} is outside the text segment"),
            Trap::BadInst { pc, word } => {
                write!(f, "invalid instruction {word:#010x} at pc {pc:#x}")
            }
        }
    }
}

impl std::error::Error for Trap {}

/// The memory effect of one retired instruction, as reported in
/// [`StepEvent`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemEffect {
    /// No memory access.
    None,
    /// A load of `bytes` bytes from `addr` returning `value` (post-extension).
    Load {
        /// Byte address.
        addr: u64,
        /// Access size in bytes.
        bytes: u64,
        /// Architectural result written to the destination.
        value: u64,
    },
    /// A store of the low `bytes` bytes of `value` to `addr`.
    Store {
        /// Byte address.
        addr: u64,
        /// Access size in bytes.
        bytes: u64,
        /// Value stored (low `bytes` significant).
        value: u64,
    },
}

/// Everything observable about one functional step. Timing cores compare
/// their retirement stream against these events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StepEvent {
    /// PC of the retired instruction.
    pub pc: u64,
    /// The instruction itself.
    pub inst: Inst,
    /// PC of the next instruction (reflects taken branches).
    pub next_pc: u64,
    /// Register write performed, if any.
    pub reg_write: Option<(Reg, u64)>,
    /// Memory effect, if any.
    pub mem: MemEffect,
    /// `true` if this step was `halt`.
    pub halted: bool,
}

/// Why [`Interp::run`] stopped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StopReason {
    /// A `halt` instruction retired.
    Halt,
    /// The step budget was exhausted before `halt`.
    StepLimit,
}

/// Result of [`Interp::run`].
#[derive(Clone, Copy, Debug)]
pub struct RunOutcome {
    /// Why the run stopped.
    pub stop: StopReason,
    /// Instructions retired (including the `halt`, if any).
    pub steps: u64,
}

/// Functional reference interpreter.
///
/// Executes one instruction per [`Interp::step`] with no timing model. It is
/// the golden model for co-simulation: every timing core in the workspace
/// checks its retirement stream against an `Interp` running the same
/// program (see `sst-sim`'s `RetireChecker`).
pub struct Interp {
    program: Program,
    state: ArchState,
    mem: SparseMem,
    halted: bool,
    retired: u64,
    /// Text predecoded once at construction: `decoded[i]` is the
    /// instruction at `text_base + 4*i`, or `None` for an undecodable
    /// word. Pure memoization of the immutable `program.text` — the
    /// per-step decode was the functional fast-forward bottleneck.
    decoded: Vec<Option<Inst>>,
    text_base: u64,
}

impl Interp {
    /// Creates an interpreter with the program's image loaded into a fresh
    /// memory.
    pub fn new(program: &Program) -> Interp {
        let mut mem = SparseMem::new();
        program.load_into(&mut mem);
        let decoded = program.text.iter().map(|&w| crate::decode(w).ok()).collect();
        Interp {
            state: ArchState::new(program.entry),
            mem,
            halted: false,
            retired: 0,
            decoded,
            text_base: program.text_base,
            program: program.clone(),
        }
    }

    /// Current architectural state.
    pub fn state(&self) -> &ArchState {
        &self.state
    }

    /// The data memory image (shared view; text lives here too).
    pub fn mem(&self) -> &SparseMem {
        &self.mem
    }

    /// Mutable access to memory (for tests that poke inputs).
    pub fn mem_mut(&mut self) -> &mut SparseMem {
        &mut self.mem
    }

    /// The program being interpreted.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// `true` once a `halt` has retired; further steps are no-ops.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Total instructions retired.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Executes one instruction.
    ///
    /// After `halt` retires the interpreter latches [`Interp::is_halted`]
    /// and replays the same halt event on subsequent calls.
    ///
    /// # Errors
    ///
    /// Returns a [`Trap`] if the PC leaves the text segment or the fetched
    /// word cannot be decoded. The state is unchanged on error.
    pub fn step(&mut self) -> Result<StepEvent, Trap> {
        let pc = self.state.pc;
        if self.halted {
            return Ok(StepEvent {
                pc,
                inst: Inst::Halt,
                next_pc: pc,
                reg_write: None,
                mem: MemEffect::None,
                halted: true,
            });
        }
        let inst = self.inst_fast(pc)?;
        let (next_pc, reg_write, mem, halted) = self.dispatch(pc, inst);
        Ok(StepEvent {
            pc,
            inst,
            next_pc,
            reg_write,
            mem,
            halted,
        })
    }

    /// Predecoded-table fetch: bounds + alignment check, then a slot
    /// read. Out-of-text and undecodable words both trap as
    /// [`Trap::BadPc`], matching the `Program::inst_at` path this
    /// replaced.
    #[inline(always)]
    fn inst_fast(&self, pc: u64) -> Result<Inst, Trap> {
        let off = pc.wrapping_sub(self.text_base);
        if off % INST_BYTES != 0 {
            return Err(Trap::BadPc(pc));
        }
        match self.decoded.get((off / INST_BYTES) as usize) {
            Some(&Some(inst)) => Ok(inst),
            _ => Err(Trap::BadPc(pc)),
        }
    }

    /// Executes one decoded instruction against the architectural state,
    /// returning `(next_pc, reg_write, mem_effect, halted)`. Shared by
    /// the evented [`Interp::step`] and the event-free [`Interp::run`]
    /// hot loop so the two paths cannot diverge.
    #[inline(always)]
    fn dispatch(&mut self, pc: u64, inst: Inst) -> (u64, Option<(Reg, u64)>, MemEffect, bool) {
        let mut next_pc = pc.wrapping_add(INST_BYTES);
        let mut reg_write = None;
        let mut mem_effect = MemEffect::None;
        let mut halted = false;

        match inst {
            Inst::Alu { op, rd, rs1, rs2 } => {
                let v = op.eval(self.state.read(rs1), self.state.read(rs2));
                reg_write = Some((rd, v));
            }
            Inst::AluImm { op, rd, rs1, imm } => {
                let v = op.eval(self.state.read(rs1), imm as u64);
                reg_write = Some((rd, v));
            }
            Inst::Lui { rd, imm } => {
                reg_write = Some((rd, (imm << 12) as u64));
            }
            Inst::Load {
                width,
                signed,
                rd,
                base,
                offset,
            } => {
                let addr = self.state.read(base).wrapping_add_signed(offset);
                let bytes = width.bytes();
                let raw = self.mem.read_le(addr, bytes);
                let value = if signed && bytes < 8 {
                    let shift = 64 - bytes * 8;
                    (((raw << shift) as i64) >> shift) as u64
                } else {
                    raw
                };
                reg_write = Some((rd, value));
                mem_effect = MemEffect::Load { addr, bytes, value };
            }
            Inst::Store {
                width,
                src,
                base,
                offset,
            } => {
                let addr = self.state.read(base).wrapping_add_signed(offset);
                let bytes = width.bytes();
                let value = self.state.read(src);
                self.mem.write_le(addr, bytes, value);
                mem_effect = MemEffect::Store { addr, bytes, value };
            }
            Inst::Branch {
                cond,
                rs1,
                rs2,
                offset,
            } => {
                if cond.eval(self.state.read(rs1), self.state.read(rs2)) {
                    next_pc = pc.wrapping_add_signed(offset * 4);
                }
            }
            Inst::Jal { rd, offset } => {
                reg_write = Some((rd, pc.wrapping_add(INST_BYTES)));
                next_pc = pc.wrapping_add_signed(offset * 4);
            }
            Inst::Jalr { rd, base, offset } => {
                let target = self.state.read(base).wrapping_add_signed(offset) & !3u64;
                reg_write = Some((rd, pc.wrapping_add(INST_BYTES)));
                next_pc = target;
            }
            Inst::Fpu { op, rd, rs1, rs2 } => {
                let v = op.eval(self.state.read(rs1), self.state.read(rs2));
                reg_write = Some((rd, v));
            }
            Inst::Prefetch { .. } => {}
            Inst::Halt => {
                halted = true;
                next_pc = pc;
            }
        }

        if let Some((rd, v)) = reg_write {
            self.state.write(rd, v);
            if rd.is_zero() {
                reg_write = None;
            }
        }
        self.state.pc = next_pc;
        self.halted = halted;
        self.retired += 1;

        (next_pc, reg_write, mem_effect, halted)
    }

    /// Runs until `halt` or until `max_steps` instructions retire.
    ///
    /// This is the functional fast-forward hot loop: it executes through
    /// [`Interp::dispatch`] directly, skipping per-step [`StepEvent`]
    /// assembly (use [`Interp::step`] when the events matter).
    ///
    /// # Errors
    ///
    /// Propagates the first [`Trap`].
    pub fn run(&mut self, max_steps: u64) -> Result<RunOutcome, Trap> {
        if max_steps == 0 {
            return Ok(RunOutcome {
                stop: StopReason::StepLimit,
                steps: 0,
            });
        }
        if self.halted {
            // A latched halt replays as a single halt step, as `step` does.
            return Ok(RunOutcome {
                stop: StopReason::Halt,
                steps: 1,
            });
        }
        let mut steps = 0;
        while steps < max_steps {
            let pc = self.state.pc;
            let inst = self.inst_fast(pc)?;
            let (_, _, _, halted) = self.dispatch(pc, inst);
            steps += 1;
            if halted {
                return Ok(RunOutcome {
                    stop: StopReason::Halt,
                    steps,
                });
            }
        }
        Ok(RunOutcome {
            stop: StopReason::StepLimit,
            steps,
        })
    }

    /// Runs until `halt` or until `max_steps` instructions retire,
    /// handing every step's [`StepEvent`] to `on_step`.
    ///
    /// Semantically equivalent to calling [`Interp::step`] in a loop —
    /// including replaying a single halt event when the halt is already
    /// latched — but monomorphized over the callback, so the dispatch
    /// loop and the observer inline into one hot loop. This is the
    /// functional-warming path of sampled simulation: hundreds of
    /// thousands of instructions per call, each feeding cache tags and
    /// the branch predictor.
    ///
    /// # Errors
    ///
    /// Propagates the first [`Trap`]; steps before it have already been
    /// observed.
    pub fn run_traced<F: FnMut(&StepEvent)>(
        &mut self,
        max_steps: u64,
        mut on_step: F,
    ) -> Result<RunOutcome, Trap> {
        if max_steps == 0 {
            return Ok(RunOutcome {
                stop: StopReason::StepLimit,
                steps: 0,
            });
        }
        if self.halted {
            let pc = self.state.pc;
            on_step(&StepEvent {
                pc,
                inst: Inst::Halt,
                next_pc: pc,
                reg_write: None,
                mem: MemEffect::None,
                halted: true,
            });
            return Ok(RunOutcome {
                stop: StopReason::Halt,
                steps: 1,
            });
        }
        let mut steps = 0;
        while steps < max_steps {
            let pc = self.state.pc;
            let inst = self.inst_fast(pc)?;
            let (next_pc, reg_write, mem, halted) = self.dispatch(pc, inst);
            steps += 1;
            on_step(&StepEvent {
                pc,
                inst,
                next_pc,
                reg_write,
                mem,
                halted,
            });
            if halted {
                return Ok(RunOutcome {
                    stop: StopReason::Halt,
                    steps,
                });
            }
        }
        Ok(RunOutcome {
            stop: StopReason::StepLimit,
            steps,
        })
    }

    /// Serializes the interpreter's mutable state (registers, PC, halt
    /// latch, retire count, memory). The program itself is *not*
    /// serialized — restore requires an interpreter built over the same
    /// program, which the caller validates by workload name.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.tag("INTP");
        self.state.save_state(w);
        w.put_bool(self.halted);
        w.put_u64(self.retired);
        self.mem.save_state(w);
    }

    /// Restores state written by [`Interp::save_state`].
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] on truncated or corrupt input.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.tag("INTP")?;
        self.state.restore_state(r)?;
        self.halted = r.take_bool()?;
        self.retired = r.take_u64()?;
        self.mem.restore_state(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Asm, BranchCond};

    #[test]
    fn arithmetic_loop_sums() {
        let mut a = Asm::new();
        a.li(Reg::x(5), 100);
        a.li(Reg::x(6), 0);
        let top = a.here();
        a.add(Reg::x(6), Reg::x(6), Reg::x(5));
        a.addi(Reg::x(5), Reg::x(5), -1);
        a.bne(Reg::x(5), Reg::ZERO, top);
        a.halt();
        let p = a.finish().unwrap();
        let mut i = Interp::new(&p);
        let out = i.run(10_000).unwrap();
        assert_eq!(out.stop, StopReason::Halt);
        assert_eq!(i.state().read(Reg::x(6)), 5050);
    }

    #[test]
    fn li_expansion_handles_big_constants() {
        for &v in &[
            0x7fff_ffff_ffff_ffffi64,
            i64::MIN,
            -1,
            0x1234_5678,
            -0x1234_5678_9abc,
            4096,
            -4097,
            0xdead_beef_cafe_i64,
        ] {
            let mut a = Asm::new();
            a.li(Reg::x(1), v);
            a.halt();
            let p = a.finish().unwrap();
            let mut i = Interp::new(&p);
            i.run(100).unwrap();
            assert_eq!(i.state().read(Reg::x(1)) as i64, v, "li {v:#x}");
        }
    }

    #[test]
    fn loads_extend_correctly() {
        let mut a = Asm::new();
        let addr = a.data_bytes(&[0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0]);
        a.la(Reg::x(1), addr);
        a.lbu(Reg::x(2), Reg::x(1), 0);
        a.load(crate::MemWidth::B1, true, Reg::x(3), Reg::x(1), 0);
        a.lw(Reg::x(4), Reg::x(1), 0);
        a.lwu(Reg::x(5), Reg::x(1), 0);
        a.halt();
        let p = a.finish().unwrap();
        let mut i = Interp::new(&p);
        i.run(100).unwrap();
        assert_eq!(i.state().read(Reg::x(2)), 0xff);
        assert_eq!(i.state().read(Reg::x(3)), u64::MAX);
        assert_eq!(i.state().read(Reg::x(4)), u64::MAX);
        assert_eq!(i.state().read(Reg::x(5)), 0xffff_ffff);
    }

    #[test]
    fn store_load_roundtrip_and_event() {
        let mut a = Asm::new();
        let buf = a.reserve(64);
        a.la(Reg::x(1), buf);
        a.li(Reg::x(2), 0x55);
        a.sd(Reg::x(2), Reg::x(1), 8);
        a.ld(Reg::x(3), Reg::x(1), 8);
        a.halt();
        let p = a.finish().unwrap();
        let mut i = Interp::new(&p);
        // step through to observe the store event
        let mut store_seen = false;
        loop {
            let ev = i.step().unwrap();
            if let MemEffect::Store { addr, bytes, value } = ev.mem {
                assert_eq!(addr, buf + 8);
                assert_eq!(bytes, 8);
                assert_eq!(value, 0x55);
                store_seen = true;
            }
            if ev.halted {
                break;
            }
        }
        assert!(store_seen);
        assert_eq!(i.state().read(Reg::x(3)), 0x55);
    }

    #[test]
    fn branch_taken_and_not_taken() {
        let mut a = Asm::new();
        a.li(Reg::x(1), 1);
        let skip = a.label();
        a.branch(BranchCond::Eq, Reg::x(1), Reg::ZERO, skip); // not taken
        a.li(Reg::x(2), 11);
        a.bind(skip);
        let skip2 = a.label();
        a.branch(BranchCond::Ne, Reg::x(1), Reg::ZERO, skip2); // taken
        a.li(Reg::x(2), 99); // skipped
        a.bind(skip2);
        a.halt();
        let p = a.finish().unwrap();
        let mut i = Interp::new(&p);
        i.run(100).unwrap();
        assert_eq!(i.state().read(Reg::x(2)), 11);
    }

    #[test]
    fn jal_jalr_call_ret() {
        let mut a = Asm::new();
        let func = a.label();
        a.call(func); // x1 = ret addr
        a.halt();
        a.bind(func);
        a.li(Reg::x(10), 77);
        a.ret();
        let p = a.finish().unwrap();
        let mut i = Interp::new(&p);
        let out = i.run(100).unwrap();
        assert_eq!(out.stop, StopReason::Halt);
        assert_eq!(i.state().read(Reg::x(10)), 77);
    }

    #[test]
    fn fp_kernel() {
        let mut a = Asm::new();
        let vals = a.data_f64(&[1.5, 2.5]);
        a.la(Reg::x(1), vals);
        a.ld(Reg::f(0), Reg::x(1), 0);
        a.ld(Reg::f(1), Reg::x(1), 8);
        a.fadd(Reg::f(2), Reg::f(0), Reg::f(1));
        a.fmul(Reg::f(3), Reg::f(2), Reg::f(2));
        a.halt();
        let p = a.finish().unwrap();
        let mut i = Interp::new(&p);
        i.run(100).unwrap();
        assert_eq!(f64::from_bits(i.state().read(Reg::f(2))), 4.0);
        assert_eq!(f64::from_bits(i.state().read(Reg::f(3))), 16.0);
    }

    #[test]
    fn bad_pc_traps() {
        let mut a = Asm::new();
        a.li(Reg::x(1), 0);
        a.jalr(Reg::ZERO, Reg::x(1), 0); // jump to 0: outside text
        let p = a.finish().unwrap();
        let mut i = Interp::new(&p);
        i.step().unwrap();
        i.step().unwrap();
        assert_eq!(i.step(), Err(Trap::BadPc(0)));
    }

    #[test]
    fn halt_latches() {
        let mut a = Asm::new();
        a.halt();
        let p = a.finish().unwrap();
        let mut i = Interp::new(&p);
        let e1 = i.step().unwrap();
        assert!(e1.halted);
        let e2 = i.step().unwrap();
        assert!(e2.halted);
        assert!(i.is_halted());
        assert_eq!(i.retired(), 1, "latched halt replays do not retire");
    }

    #[test]
    fn x0_writes_dropped_in_events() {
        let mut a = Asm::new();
        a.addi(Reg::ZERO, Reg::ZERO, 5);
        a.halt();
        let p = a.finish().unwrap();
        let mut i = Interp::new(&p);
        let ev = i.step().unwrap();
        assert_eq!(ev.reg_write, None);
        assert_eq!(i.state().read(Reg::ZERO), 0);
    }

    #[test]
    fn running_to_step_limit() {
        let mut a = Asm::new();
        let top = a.here();
        a.j(top);
        let p = a.finish().unwrap();
        let mut i = Interp::new(&p);
        let out = i.run(50).unwrap();
        assert_eq!(out.stop, StopReason::StepLimit);
        assert_eq!(out.steps, 50);
    }
}
