//! Branch target buffer.

/// A direct-mapped branch target buffer.
///
/// Maps a branch PC to its most recent target; used for indirect jumps
/// (`jalr`) and to supply targets in the same cycle as the direction
/// prediction.
#[derive(Clone, Debug)]
pub struct Btb {
    entries: Vec<Option<(u64, u64)>>, // (tag, target)
    mask: u64,
}

impl Btb {
    /// Creates a BTB with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> Btb {
        assert!(entries.is_power_of_two(), "BTB size must be 2^n");
        Btb {
            entries: vec![None; entries],
            mask: entries as u64 - 1,
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) & self.mask) as usize
    }

    fn tag(&self, pc: u64) -> u64 {
        pc >> 2 >> self.entries.len().trailing_zeros()
    }

    /// Looks up the predicted target for the branch at `pc`.
    pub fn lookup(&self, pc: u64) -> Option<u64> {
        let i = self.index(pc);
        match self.entries[i] {
            Some((tag, target)) if tag == self.tag(pc) => Some(target),
            _ => None,
        }
    }

    /// Records the resolved target for the branch at `pc`.
    pub fn update(&mut self, pc: u64, target: u64) {
        let i = self.index(pc);
        self.entries[i] = Some((self.tag(pc), target));
    }

    /// Raw `(tag, target)` slots, for snapshotting.
    pub fn entries(&self) -> &[Option<(u64, u64)>] {
        &self.entries
    }

    /// Replaces all slots with snapshot contents. Returns `false`
    /// (leaving the BTB unchanged) when the entry count differs.
    pub fn set_entries(&mut self, entries: &[Option<(u64, u64)>]) -> bool {
        if entries.len() != self.entries.len() {
            return false;
        }
        self.entries.copy_from_slice(entries);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_after_update() {
        let mut b = Btb::new(16);
        assert_eq!(b.lookup(0x100), None);
        b.update(0x100, 0x2000);
        assert_eq!(b.lookup(0x100), Some(0x2000));
    }

    #[test]
    fn tag_mismatch_misses() {
        let mut b = Btb::new(16);
        b.update(0x100, 0x2000);
        // Same index (16 entries * 4B = aliasing stride 64 words), other tag.
        let alias = 0x100 + 16 * 4;
        assert_eq!(b.lookup(alias), None);
        b.update(alias, 0x3000);
        assert_eq!(b.lookup(alias), Some(0x3000));
        assert_eq!(b.lookup(0x100), None, "aliased entry was displaced");
    }

    #[test]
    fn retarget_overwrites() {
        let mut b = Btb::new(16);
        b.update(0x100, 0x2000);
        b.update(0x100, 0x4000);
        assert_eq!(b.lookup(0x100), Some(0x4000));
    }

    #[test]
    #[should_panic]
    fn non_pow2_rejected() {
        let _ = Btb::new(12);
    }
}
