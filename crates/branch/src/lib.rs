//! # sst-branch
//!
//! Branch prediction for the `rock-sst` workspace: direction predictors
//! (static, bimodal, gshare, tournament), a branch target buffer, and a
//! return-address stack, combined behind the [`BranchUnit`] facade that
//! every core frontend uses.
//!
//! All core models in the SST study (in-order, scout/EA/SST, out-of-order)
//! share the *same* predictor configuration, so direction accuracy is never
//! a confound in the comparisons — exactly as in the paper's methodology.
//!
//! ```
//! use sst_branch::{BranchUnit, PredictorKind, BranchKind};
//!
//! let mut bu = BranchUnit::new(PredictorKind::Gshare { bits: 12 }, 512, 8);
//! let pc = 0x1000;
//! // Train a loop branch: strongly taken.
//! for _ in 0..8 {
//!     bu.update(pc, BranchKind::Conditional, true, 0x900);
//! }
//! let p = bu.predict(pc, BranchKind::Conditional);
//! assert!(p.taken);
//! assert_eq!(p.target, Some(0x900));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod btb;
mod direction;
mod ras;
mod unit;

pub use btb::Btb;
pub use direction::{Bimodal, DirectionPredictor, Gshare, PredictorKind, StaticTaken, Tournament};
pub use ras::ReturnAddressStack;
pub use unit::{BranchKind, BranchUnit, Prediction};
