//! The combined branch unit used by core frontends.

use crate::btb::Btb;
use crate::direction::{make_predictor, DirectionPredictor, PredictorKind};
use crate::ras::ReturnAddressStack;

/// Control-flow class as seen by the predictor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BranchKind {
    /// Conditional direct branch.
    Conditional,
    /// Unconditional direct jump (`jal`, including calls).
    Direct,
    /// Indirect jump that is a call (`jalr` writing the link register).
    IndirectCall,
    /// Indirect jump that is a return (`jalr` through the link register).
    Return,
    /// Other indirect jump.
    Indirect,
}

/// A combined direction + target prediction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted taken? (always `true` for unconditional kinds).
    pub taken: bool,
    /// Predicted target, if the unit has one (BTB/RAS hit). Direct targets
    /// are also served from the BTB, mirroring a real front end that has not
    /// yet decoded the instruction.
    pub target: Option<u64>,
    /// Direction-predictor confidence (saturated counter). Unconditional
    /// kinds are always confident.
    pub confident: bool,
}

/// Direction predictor + BTB + RAS behind one interface.
pub struct BranchUnit {
    direction: Box<dyn DirectionPredictor>,
    btb: Btb,
    ras: ReturnAddressStack,
    /// Conditional predictions made.
    pub cond_predictions: u64,
    /// Conditional predictions that resolved wrong.
    pub cond_mispredictions: u64,
    /// Indirect target predictions that resolved wrong (including RAS).
    pub target_mispredictions: u64,
}

impl BranchUnit {
    /// Builds a unit with the given direction predictor, BTB entry count
    /// (power of two) and RAS depth.
    pub fn new(kind: PredictorKind, btb_entries: usize, ras_depth: usize) -> BranchUnit {
        BranchUnit {
            direction: make_predictor(kind),
            btb: Btb::new(btb_entries),
            ras: ReturnAddressStack::new(ras_depth),
            cond_predictions: 0,
            cond_mispredictions: 0,
            target_mispredictions: 0,
        }
    }

    /// Predicts the branch at `pc`. For [`BranchKind::Return`] the RAS is
    /// popped; for [`BranchKind::IndirectCall`] the return address is
    /// pushed — callers therefore invoke `predict` exactly once per fetched
    /// control instruction, in fetch order.
    pub fn predict(&mut self, pc: u64, kind: BranchKind) -> Prediction {
        match kind {
            BranchKind::Conditional => {
                self.cond_predictions += 1;
                Prediction {
                    taken: self.direction.predict(pc),
                    target: self.btb.lookup(pc),
                    confident: self.direction.confident(pc),
                }
            }
            BranchKind::Direct => Prediction {
                taken: true,
                target: self.btb.lookup(pc),
                confident: true,
            },
            BranchKind::IndirectCall => {
                self.ras.push(pc + 4);
                Prediction {
                    taken: true,
                    target: self.btb.lookup(pc),
                    confident: true,
                }
            }
            BranchKind::Return => Prediction {
                taken: true,
                target: self.ras.pop().or_else(|| self.btb.lookup(pc)),
                confident: true,
            },
            BranchKind::Indirect => Prediction {
                taken: true,
                target: self.btb.lookup(pc),
                confident: true,
            },
        }
    }

    /// Trains with the resolved outcome and records misprediction stats
    /// against the prediction this unit would have made.
    ///
    /// `taken` and `target` are the architectural outcome. For calls
    /// resolved here the RAS is *not* re-pushed (that happened at predict
    /// time); cores that squash wrong paths may call
    /// [`BranchUnit::repair_ras`].
    pub fn update(&mut self, pc: u64, kind: BranchKind, taken: bool, target: u64) {
        match kind {
            BranchKind::Conditional => {
                let predicted = self.direction.predict(pc);
                if predicted != taken {
                    self.cond_mispredictions += 1;
                }
                self.direction.update(pc, taken);
                if taken {
                    self.btb.update(pc, target);
                }
            }
            BranchKind::Direct | BranchKind::IndirectCall | BranchKind::Indirect => {
                if self.btb.lookup(pc) != Some(target) {
                    if kind != BranchKind::Direct {
                        self.target_mispredictions += 1;
                    }
                    self.btb.update(pc, target);
                }
            }
            BranchKind::Return => {
                // Target correctness was determined at predict time; keep
                // the BTB warm as a fallback.
                self.btb.update(pc, target);
            }
        }
    }

    /// Notes that a return target prediction was wrong (callers detect this
    /// when the popped target mismatches the resolved one).
    pub fn note_return_mispredict(&mut self) {
        self.target_mispredictions += 1;
    }

    /// Clears the RAS after a pipeline flush whose squashed path may have
    /// pushed/popped entries. (A conservative repair, as in many real
    /// designs.)
    pub fn repair_ras(&mut self) {
        while self.ras.pop().is_some() {}
    }

    /// Appends the direction predictor's mutable state to `out`
    /// (snapshotting; see [`DirectionPredictor::state_dump`]).
    pub fn direction_dump(&self, out: &mut Vec<u8>) {
        self.direction.state_dump(out);
    }

    /// Restores direction-predictor state; `false` when the blob does
    /// not match this unit's predictor configuration.
    pub fn direction_load(&mut self, data: &[u8]) -> bool {
        self.direction.state_load(data)
    }

    /// The branch target buffer (snapshotting).
    pub fn btb(&self) -> &Btb {
        &self.btb
    }

    /// Mutable branch target buffer (snapshot restore).
    pub fn btb_mut(&mut self) -> &mut Btb {
        &mut self.btb
    }

    /// The return-address stack (snapshotting).
    pub fn ras(&self) -> &ReturnAddressStack {
        &self.ras
    }

    /// Mutable return-address stack (snapshot restore).
    pub fn ras_mut(&mut self) -> &mut ReturnAddressStack {
        &mut self.ras
    }

    /// Fraction of conditional predictions that were wrong.
    pub fn cond_mispredict_rate(&self) -> f64 {
        if self.cond_predictions == 0 {
            0.0
        } else {
            self.cond_mispredictions as f64 / self.cond_predictions as f64
        }
    }
}

impl std::fmt::Debug for BranchUnit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BranchUnit")
            .field("cond_predictions", &self.cond_predictions)
            .field("cond_mispredictions", &self.cond_mispredictions)
            .field("target_mispredictions", &self.target_mispredictions)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> BranchUnit {
        BranchUnit::new(PredictorKind::Gshare { bits: 10 }, 64, 8)
    }

    #[test]
    fn conditional_training_flow() {
        let mut bu = unit();
        for _ in 0..8 {
            bu.update(0x100, BranchKind::Conditional, true, 0x80);
        }
        let p = bu.predict(0x100, BranchKind::Conditional);
        assert!(p.taken);
        assert_eq!(p.target, Some(0x80));
        assert_eq!(bu.cond_predictions, 1);
    }

    #[test]
    fn mispredictions_counted() {
        let mut bu = unit();
        for _ in 0..4 {
            bu.update(0x100, BranchKind::Conditional, true, 0x80);
        }
        let p = bu.predict(0x100, BranchKind::Conditional);
        assert!(p.taken);
        bu.update(0x100, BranchKind::Conditional, false, 0); // surprise
        assert_eq!(bu.cond_mispredictions, 1);
        assert!(bu.cond_mispredict_rate() > 0.0);
    }

    #[test]
    fn call_return_pair_predicts_return_target() {
        let mut bu = unit();
        let call_pc = 0x1000;
        let ret_pc = 0x2000;
        let p = bu.predict(call_pc, BranchKind::IndirectCall);
        assert!(p.taken);
        let r = bu.predict(ret_pc, BranchKind::Return);
        assert_eq!(r.target, Some(call_pc + 4));
    }

    #[test]
    fn nested_calls_unwind_in_order() {
        let mut bu = unit();
        bu.predict(0x1000, BranchKind::IndirectCall);
        bu.predict(0x2000, BranchKind::IndirectCall);
        assert_eq!(
            bu.predict(0x3000, BranchKind::Return).target,
            Some(0x2004)
        );
        assert_eq!(
            bu.predict(0x3100, BranchKind::Return).target,
            Some(0x1004)
        );
    }

    #[test]
    fn empty_ras_falls_back_to_btb() {
        let mut bu = unit();
        bu.update(0x3000, BranchKind::Return, true, 0x1234);
        let r = bu.predict(0x3000, BranchKind::Return);
        assert_eq!(r.target, Some(0x1234));
    }

    #[test]
    fn indirect_target_learning() {
        let mut bu = unit();
        assert_eq!(bu.predict(0x500, BranchKind::Indirect).target, None);
        bu.update(0x500, BranchKind::Indirect, true, 0x9000);
        assert_eq!(bu.target_mispredictions, 1);
        assert_eq!(bu.predict(0x500, BranchKind::Indirect).target, Some(0x9000));
        bu.update(0x500, BranchKind::Indirect, true, 0x9000);
        assert_eq!(bu.target_mispredictions, 1, "correct target not counted");
    }

    #[test]
    fn repair_ras_empties_stack() {
        let mut bu = unit();
        bu.predict(0x1000, BranchKind::IndirectCall);
        bu.repair_ras();
        let r = bu.predict(0x3000, BranchKind::Return);
        assert_eq!(r.target, None);
    }
}
