//! Return-address stack.

/// A fixed-depth return-address stack.
///
/// Calls push their return address; returns pop the predicted target.
/// Overflow wraps (oldest entry is overwritten), underflow predicts
/// nothing — both behaviours match real hardware RASes.
#[derive(Clone, Debug)]
pub struct ReturnAddressStack {
    stack: Vec<u64>,
    top: usize,
    len: usize,
}

impl ReturnAddressStack {
    /// Creates a RAS with `depth` entries.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn new(depth: usize) -> ReturnAddressStack {
        assert!(depth > 0, "RAS needs at least one entry");
        ReturnAddressStack {
            stack: vec![0; depth],
            top: 0,
            len: 0,
        }
    }

    /// Current number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the stack holds no predictions.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pushes a return address (on a call).
    pub fn push(&mut self, ret_addr: u64) {
        self.top = (self.top + 1) % self.stack.len();
        self.stack[self.top] = ret_addr;
        self.len = (self.len + 1).min(self.stack.len());
    }

    /// Pops the predicted return target (on a return); `None` if empty.
    pub fn pop(&mut self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        let v = self.stack[self.top];
        self.top = (self.top + self.stack.len() - 1) % self.stack.len();
        self.len -= 1;
        Some(v)
    }

    /// Raw `(ring, top, len)` state, for snapshotting.
    pub fn raw_state(&self) -> (&[u64], usize, usize) {
        (&self.stack, self.top, self.len)
    }

    /// Restores raw state written by [`ReturnAddressStack::raw_state`].
    /// Returns `false` (leaving the stack unchanged) when the shape is
    /// inconsistent with this stack's depth.
    pub fn set_raw_state(&mut self, stack: &[u64], top: usize, len: usize) -> bool {
        if stack.len() != self.stack.len() || top >= stack.len() || len > stack.len() {
            return false;
        }
        self.stack.copy_from_slice(stack);
        self.top = top;
        self.len = len;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut r = ReturnAddressStack::new(8);
        r.push(0x100);
        r.push(0x200);
        assert_eq!(r.pop(), Some(0x200));
        assert_eq!(r.pop(), Some(0x100));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn overflow_drops_oldest() {
        let mut r = ReturnAddressStack::new(2);
        r.push(1);
        r.push(2);
        r.push(3); // overwrites 1
        assert_eq!(r.len(), 2);
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn empty_reports() {
        let mut r = ReturnAddressStack::new(4);
        assert!(r.is_empty());
        r.push(9);
        assert!(!r.is_empty());
        r.pop();
        assert!(r.is_empty());
    }
}
