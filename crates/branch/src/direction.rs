//! Conditional-branch direction predictors.

/// A conditional-branch direction predictor.
///
/// Implementations keep their own global history; history is updated at
/// [`DirectionPredictor::update`] (resolve time), the standard arrangement
/// for simple simulators. Predictors are `Send` (they are plain tables)
/// so cores embedding them can be ticked from CMP worker threads.
pub trait DirectionPredictor: Send {
    /// Predicts the direction of the branch at `pc`.
    fn predict(&self, pc: u64) -> bool;
    /// Trains with the resolved direction.
    fn update(&mut self, pc: u64, taken: bool);
    /// `true` when the predictor is confident (e.g. a saturated 2-bit
    /// counter). Default: always confident.
    fn confident(&self, _pc: u64) -> bool {
        true
    }
    /// Appends the predictor's mutable state (tables, history) to `out`
    /// for snapshotting. Stateless predictors append nothing.
    fn state_dump(&self, _out: &mut Vec<u8>) {}
    /// Restores state written by [`DirectionPredictor::state_dump`] on a
    /// predictor of the same configuration. Returns `false` (leaving the
    /// predictor unchanged or partially reset, never panicking) when
    /// `data` has the wrong shape.
    fn state_load(&mut self, data: &[u8]) -> bool {
        data.is_empty()
    }
}

/// `true` when every byte is a legal 2-bit saturating-counter value.
/// Loads validate with this so a corrupt snapshot cannot inject counter
/// states the training arithmetic never produces.
fn counters_valid(bytes: &[u8]) -> bool {
    bytes.iter().all(|&b| b <= 3)
}

/// Selects and configures a concrete predictor (see [`make_predictor`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PredictorKind {
    /// Always predict taken (the weakest baseline).
    StaticTaken,
    /// PC-indexed table of 2-bit counters with `bits` index bits.
    Bimodal {
        /// log2 of the table size.
        bits: u32,
    },
    /// Global-history XOR PC indexed 2-bit counters.
    Gshare {
        /// log2 of the table size (also the history length).
        bits: u32,
    },
    /// Bimodal + gshare with a per-PC choice table.
    Tournament {
        /// log2 of each component table's size.
        bits: u32,
    },
}

/// Builds the predictor described by `kind`.
pub fn make_predictor(kind: PredictorKind) -> Box<dyn DirectionPredictor> {
    match kind {
        PredictorKind::StaticTaken => Box::new(StaticTaken),
        PredictorKind::Bimodal { bits } => Box::new(Bimodal::new(bits)),
        PredictorKind::Gshare { bits } => Box::new(Gshare::new(bits)),
        PredictorKind::Tournament { bits } => Box::new(Tournament::new(bits)),
    }
}

#[inline]
fn bump(counter: &mut u8, taken: bool) {
    if taken {
        *counter = (*counter + 1).min(3);
    } else {
        *counter = counter.saturating_sub(1);
    }
}

/// Always-taken static predictor.
#[derive(Clone, Copy, Debug, Default)]
pub struct StaticTaken;

impl DirectionPredictor for StaticTaken {
    fn predict(&self, _pc: u64) -> bool {
        true
    }
    fn update(&mut self, _pc: u64, _taken: bool) {}
}

/// PC-indexed table of 2-bit saturating counters.
#[derive(Clone, Debug)]
pub struct Bimodal {
    table: Vec<u8>,
    mask: u64,
}

impl Bimodal {
    /// Creates a table of `2^bits` counters, initialized weakly taken.
    pub fn new(bits: u32) -> Bimodal {
        Bimodal {
            table: vec![2; 1 << bits],
            mask: (1 << bits) - 1,
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) & self.mask) as usize
    }
}

impl DirectionPredictor for Bimodal {
    fn predict(&self, pc: u64) -> bool {
        self.table[self.index(pc)] >= 2
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let i = self.index(pc);
        bump(&mut self.table[i], taken);
    }

    fn confident(&self, pc: u64) -> bool {
        matches!(self.table[self.index(pc)], 0 | 3)
    }

    fn state_dump(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.table);
    }

    fn state_load(&mut self, data: &[u8]) -> bool {
        if data.len() != self.table.len() || !counters_valid(data) {
            return false;
        }
        self.table.copy_from_slice(data);
        true
    }
}

/// Gshare: global history XORed with the PC indexes a counter table.
#[derive(Clone, Debug)]
pub struct Gshare {
    table: Vec<u8>,
    history: u64,
    mask: u64,
}

impl Gshare {
    /// Creates a `2^bits` table; history length equals `bits`.
    pub fn new(bits: u32) -> Gshare {
        Gshare {
            table: vec![2; 1 << bits],
            history: 0,
            mask: (1 << bits) - 1,
        }
    }

    fn index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ self.history) & self.mask) as usize
    }
}

impl DirectionPredictor for Gshare {
    fn predict(&self, pc: u64) -> bool {
        self.table[self.index(pc)] >= 2
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let i = self.index(pc);
        bump(&mut self.table[i], taken);
        self.history = ((self.history << 1) | taken as u64) & self.mask;
    }

    fn confident(&self, pc: u64) -> bool {
        matches!(self.table[self.index(pc)], 0 | 3)
    }

    fn state_dump(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.history.to_le_bytes());
        out.extend_from_slice(&self.table);
    }

    fn state_load(&mut self, data: &[u8]) -> bool {
        if data.len() != 8 + self.table.len() || !counters_valid(&data[8..]) {
            return false;
        }
        let history = u64::from_le_bytes(data[..8].try_into().expect("eight bytes"));
        if history & !self.mask != 0 {
            return false;
        }
        self.history = history;
        self.table.copy_from_slice(&data[8..]);
        true
    }
}

/// Tournament predictor: bimodal and gshare components with a 2-bit chooser.
#[derive(Clone, Debug)]
pub struct Tournament {
    bimodal: Bimodal,
    gshare: Gshare,
    choice: Vec<u8>, // >= 2 selects gshare
    mask: u64,
}

impl Tournament {
    /// Creates components with `2^bits` entries each.
    pub fn new(bits: u32) -> Tournament {
        Tournament {
            bimodal: Bimodal::new(bits),
            gshare: Gshare::new(bits),
            choice: vec![2; 1 << bits],
            mask: (1 << bits) - 1,
        }
    }

    fn choice_index(&self, pc: u64) -> usize {
        ((pc >> 2) & self.mask) as usize
    }
}

impl DirectionPredictor for Tournament {
    fn predict(&self, pc: u64) -> bool {
        if self.choice[self.choice_index(pc)] >= 2 {
            self.gshare.predict(pc)
        } else {
            self.bimodal.predict(pc)
        }
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let bp = self.bimodal.predict(pc);
        let gp = self.gshare.predict(pc);
        // Train the chooser toward the component that was right.
        if bp != gp {
            let i = self.choice_index(pc);
            bump(&mut self.choice[i], gp == taken);
        }
        self.bimodal.update(pc, taken);
        self.gshare.update(pc, taken);
    }

    fn confident(&self, pc: u64) -> bool {
        if self.choice[self.choice_index(pc)] >= 2 {
            self.gshare.confident(pc)
        } else {
            self.bimodal.confident(pc)
        }
    }

    fn state_dump(&self, out: &mut Vec<u8>) {
        self.bimodal.state_dump(out);
        self.gshare.state_dump(out);
        out.extend_from_slice(&self.choice);
    }

    fn state_load(&mut self, data: &[u8]) -> bool {
        let b = self.bimodal.table.len();
        let g = 8 + self.gshare.table.len();
        if data.len() != b + g + self.choice.len() || !counters_valid(&data[b + g..]) {
            return false;
        }
        if !self.bimodal.state_load(&data[..b]) || !self.gshare.state_load(&data[b..b + g]) {
            return false;
        }
        self.choice.copy_from_slice(&data[b + g..]);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bimodal_learns_bias() {
        let mut p = Bimodal::new(8);
        for _ in 0..4 {
            p.update(0x100, false);
        }
        assert!(!p.predict(0x100));
        for _ in 0..4 {
            p.update(0x100, true);
        }
        assert!(p.predict(0x100));
    }

    #[test]
    fn bimodal_hysteresis() {
        let mut p = Bimodal::new(8);
        for _ in 0..4 {
            p.update(0x100, true);
        }
        p.update(0x100, false); // one not-taken does not flip a strong state
        assert!(p.predict(0x100));
        p.update(0x100, false);
        assert!(!p.predict(0x100));
    }

    #[test]
    fn gshare_learns_alternating_pattern() {
        let mut p = Gshare::new(10);
        // T,N,T,N... is history-predictable; train then measure.
        let mut taken = true;
        for _ in 0..64 {
            p.update(0x200, taken);
            taken = !taken;
        }
        let mut correct = 0;
        for _ in 0..32 {
            if p.predict(0x200) == taken {
                correct += 1;
            }
            p.update(0x200, taken);
            taken = !taken;
        }
        assert!(correct >= 30, "gshare should nail alternation, {correct}/32");
    }

    #[test]
    fn bimodal_cannot_learn_alternation() {
        let mut p = Bimodal::new(10);
        let mut taken = true;
        for _ in 0..64 {
            p.update(0x200, taken);
            taken = !taken;
        }
        let mut correct = 0;
        for _ in 0..32 {
            if p.predict(0x200) == taken {
                correct += 1;
            }
            p.update(0x200, taken);
            taken = !taken;
        }
        assert!(correct <= 20, "bimodal at chance on alternation, {correct}");
    }

    #[test]
    fn tournament_beats_both_components_on_mixed_load() {
        // One strongly-biased branch (bimodal-friendly) interleaved with an
        // alternating branch (gshare-friendly): the tournament should track
        // both.
        let mut t = Tournament::new(10);
        let mut alt = true;
        for _ in 0..256 {
            t.update(0x100, true); // biased
            t.update(0x200, alt); // alternating
            alt = !alt;
        }
        let mut correct = 0;
        let mut total = 0;
        for _ in 0..64 {
            if t.predict(0x100) {
                correct += 1;
            }
            t.update(0x100, true);
            if t.predict(0x200) == alt {
                correct += 1;
            }
            t.update(0x200, alt);
            alt = !alt;
            total += 2;
        }
        assert!(
            correct as f64 / total as f64 > 0.9,
            "tournament accuracy {correct}/{total}"
        );
    }

    #[test]
    fn static_taken_is_constant() {
        let mut p = StaticTaken;
        assert!(p.predict(0));
        p.update(0, false);
        assert!(p.predict(0));
    }

    #[test]
    fn make_predictor_builds_each_kind() {
        for kind in [
            PredictorKind::StaticTaken,
            PredictorKind::Bimodal { bits: 4 },
            PredictorKind::Gshare { bits: 4 },
            PredictorKind::Tournament { bits: 4 },
        ] {
            let mut p = make_predictor(kind);
            p.update(0x40, true);
            let _ = p.predict(0x40);
        }
    }
}
