//! Randomized property tests for the branch-prediction structures, driven
//! by the workspace's deterministic PRNG (fixed seeds, reproducible
//! failures); build with `--features ext` for more cases.

use sst_branch::{Bimodal, Btb, DirectionPredictor, Gshare, ReturnAddressStack, Tournament};
use sst_prng::Prng;

fn cases(base: usize) -> usize {
    if cfg!(feature = "ext") {
        base * 8
    } else {
        base
    }
}

/// A 2-bit counter predictor always converges to a constant direction
/// within 4 consecutive identical outcomes.
#[test]
fn bimodal_converges() {
    let mut r = Prng::seed_from_u64(0xb7a_0001);
    for _ in 0..cases(128) {
        let pc: u64 = r.gen();
        let dir: bool = r.gen();
        let mut p = Bimodal::new(10);
        for _ in 0..4 {
            p.update(pc, dir);
        }
        assert_eq!(p.predict(pc), dir);
    }
}

/// Gshare converges on any fixed short repeating pattern.
#[test]
fn gshare_learns_periodic_patterns() {
    let mut r = Prng::seed_from_u64(0xb7a_0002);
    for _ in 0..cases(32) {
        let pattern: Vec<bool> = (0..r.gen_range(1..6usize)).map(|_| r.gen()).collect();
        let mut p = Gshare::new(12);
        // Train several periods.
        for _ in 0..200 {
            for &d in &pattern {
                p.update(0x4000, d);
            }
        }
        // Measure one period.
        let mut correct = 0;
        let mut total = 0;
        for _ in 0..8 {
            for &d in &pattern {
                if p.predict(0x4000) == d {
                    correct += 1;
                }
                p.update(0x4000, d);
                total += 1;
            }
        }
        assert!(
            correct * 10 >= total * 9,
            "gshare should nail period-{} patterns: {}/{}",
            pattern.len(),
            correct,
            total
        );
    }
}

/// The tournament never does much worse than its better component on a
/// biased stream.
#[test]
fn tournament_tracks_bias() {
    let mut r = Prng::seed_from_u64(0xb7a_0003);
    for _ in 0..cases(128) {
        let bias_taken: bool = r.gen();
        let pc: u64 = r.gen();
        let mut t = Tournament::new(10);
        for _ in 0..32 {
            t.update(pc, bias_taken);
        }
        assert_eq!(t.predict(pc), bias_taken);
    }
}

/// BTB: the most recent update for a PC always wins; lookups never return
/// a target stored for a different (non-aliasing) PC.
#[test]
fn btb_last_write_wins() {
    let mut r = Prng::seed_from_u64(0xb7a_0004);
    for _ in 0..cases(64) {
        let n = r.gen_range(1..50usize);
        let mut btb = Btb::new(4096); // big enough that pcs < 1024*4 never alias
        let mut last = std::collections::HashMap::new();
        for _ in 0..n {
            let pc = r.gen_range(0..1024u64) * 4;
            let target: u64 = r.gen();
            btb.update(pc, target);
            last.insert(pc, target);
        }
        for (&pc, &target) in &last {
            assert_eq!(btb.lookup(pc), Some(target));
        }
    }
}

/// RAS: with depth >= number of live frames, call/return nesting is
/// predicted perfectly.
#[test]
fn ras_nesting() {
    let mut r = Prng::seed_from_u64(0xb7a_0005);
    for _ in 0..cases(128) {
        let depth_order: Vec<u64> = (0..r.gen_range(1..8usize))
            .map(|_| r.gen_range(0..1000u64))
            .collect();
        let mut ras = ReturnAddressStack::new(8);
        for &a in &depth_order {
            ras.push(a);
        }
        for &a in depth_order.iter().rev() {
            assert_eq!(ras.pop(), Some(a));
        }
        assert!(ras.is_empty());
    }
}

/// RAS overflow drops the *oldest* frames only.
#[test]
fn ras_overflow_keeps_youngest() {
    for n in 9usize..20 {
        let mut ras = ReturnAddressStack::new(8);
        for i in 0..n as u64 {
            ras.push(i);
        }
        for i in (n as u64 - 8..n as u64).rev() {
            assert_eq!(ras.pop(), Some(i));
        }
        assert_eq!(ras.pop(), None);
    }
}
