//! Property tests for the branch-prediction structures.

use proptest::prelude::*;
use sst_branch::{Bimodal, Btb, DirectionPredictor, Gshare, ReturnAddressStack, Tournament};

proptest! {
    /// A 2-bit counter predictor always converges to a constant direction
    /// within 4 consecutive identical outcomes.
    #[test]
    fn bimodal_converges(pc in any::<u64>(), dir in any::<bool>()) {
        let mut p = Bimodal::new(10);
        for _ in 0..4 {
            p.update(pc, dir);
        }
        prop_assert_eq!(p.predict(pc), dir);
    }

    /// Gshare converges on any fixed short repeating pattern.
    #[test]
    fn gshare_learns_periodic_patterns(pattern in prop::collection::vec(any::<bool>(), 1..6)) {
        let mut p = Gshare::new(12);
        // Train several periods.
        for _ in 0..200 {
            for &d in &pattern {
                p.update(0x4000, d);
            }
        }
        // Measure one period.
        let mut correct = 0;
        let mut total = 0;
        for _ in 0..8 {
            for &d in &pattern {
                if p.predict(0x4000) == d {
                    correct += 1;
                }
                p.update(0x4000, d);
                total += 1;
            }
        }
        prop_assert!(
            correct * 10 >= total * 9,
            "gshare should nail period-{} patterns: {}/{}",
            pattern.len(), correct, total
        );
    }

    /// The tournament never does much worse than its better component on a
    /// biased stream.
    #[test]
    fn tournament_tracks_bias(bias_taken in any::<bool>(), pc in any::<u64>()) {
        let mut t = Tournament::new(10);
        for _ in 0..32 {
            t.update(pc, bias_taken);
        }
        prop_assert_eq!(t.predict(pc), bias_taken);
    }

    /// BTB: the most recent update for a PC always wins; lookups never
    /// return a target stored for a different (non-aliasing) PC.
    #[test]
    fn btb_last_write_wins(updates in prop::collection::vec((0u64..1024, any::<u64>()), 1..50)) {
        let mut btb = Btb::new(4096); // big enough that pcs < 1024*4 never alias
        let mut last = std::collections::HashMap::new();
        for &(slot, target) in &updates {
            let pc = slot * 4;
            btb.update(pc, target);
            last.insert(pc, target);
        }
        for (&pc, &target) in &last {
            prop_assert_eq!(btb.lookup(pc), Some(target));
        }
    }

    /// RAS: with depth >= number of live frames, call/return nesting is
    /// predicted perfectly.
    #[test]
    fn ras_nesting(depth_order in prop::collection::vec(0u64..1000, 1..8)) {
        let mut ras = ReturnAddressStack::new(8);
        for &a in &depth_order {
            ras.push(a);
        }
        for &a in depth_order.iter().rev() {
            prop_assert_eq!(ras.pop(), Some(a));
        }
        prop_assert!(ras.is_empty());
    }

    /// RAS overflow drops the *oldest* frames only.
    #[test]
    fn ras_overflow_keeps_youngest(n in 9usize..20) {
        let mut ras = ReturnAddressStack::new(8);
        for i in 0..n as u64 {
            ras.push(i);
        }
        for i in (n as u64 - 8..n as u64).rev() {
            prop_assert_eq!(ras.pop(), Some(i));
        }
        prop_assert_eq!(ras.pop(), None);
    }
}
