//! Property tests for the speculation substrate: store-buffer overlay
//! semantics vs a byte-level oracle, NT merge-rule invariants, and
//! deferred-queue order preservation.

use proptest::prelude::*;
use sst_isa::{Reg, SparseMem};
use sst_uarch::{DeferredQueue, DqEntry, ForwardResult, RegImage, StoreBuffer, StoreEntry};

/// A reference "memory + ordered stores" oracle for overlay reads.
fn oracle_read(
    mem: &SparseMem,
    stores: &[(u64, u64, u64, u64)], // (seq, addr, bytes, value), ordered
    load_seq: u64,
    addr: u64,
    bytes: u64,
) -> u64 {
    let mut buf = [0u8; 8];
    for i in 0..bytes {
        buf[i as usize] = mem.read_u8(addr + i);
    }
    for &(seq, saddr, sbytes, value) in stores {
        if seq >= load_seq {
            continue;
        }
        for i in 0..sbytes {
            let b = saddr + i;
            if b >= addr && b < addr + bytes {
                buf[(b - addr) as usize] = (value >> (8 * i)) as u8;
            }
        }
    }
    u64::from_le_bytes(buf) & if bytes == 8 { u64::MAX } else { (1 << (bytes * 8)) - 1 }
}

fn arb_width() -> impl Strategy<Value = u64> {
    prop_oneof![Just(1u64), Just(2), Just(4), Just(8)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// read_overlay must agree with a byte-level oracle for any set of
    /// resolved stores.
    #[test]
    fn overlay_matches_oracle(
        stores in prop::collection::vec((0u64..64, arb_width(), any::<u64>()), 0..12),
        laddr in 0u64..64,
        lbytes in arb_width(),
        lseq_off in 0u64..14,
        mem_val in any::<u64>(),
    ) {
        let mut mem = SparseMem::new();
        for i in 0..10 {
            mem.write_u64(i * 8, mem_val.wrapping_add(i));
        }
        let mut sb = StoreBuffer::new(32);
        let mut ordered = Vec::new();
        for (i, &(addr, bytes, value)) in stores.iter().enumerate() {
            let seq = i as u64 + 1;
            sb.push(StoreEntry { seq, addr: Some(addr), bytes, value: Some(value) });
            ordered.push((seq, addr, bytes, value));
        }
        let load_seq = lseq_off + 1;
        let got = sb.read_overlay(load_seq, laddr, lbytes, &mem);
        let want = oracle_read(&mem, &ordered, load_seq, laddr, lbytes);
        prop_assert_eq!(got, Some(want));
    }

    /// forward() never returns a wrong value: when it forwards, the value
    /// matches the oracle; when it says NoMatch, memory-only matches.
    #[test]
    fn forward_is_sound(
        stores in prop::collection::vec((0u64..32, arb_width(), any::<u64>()), 0..8),
        laddr in 0u64..32,
        lbytes in arb_width(),
    ) {
        let mem = SparseMem::new();
        let mut sb = StoreBuffer::new(16);
        let mut ordered = Vec::new();
        for (i, &(addr, bytes, value)) in stores.iter().enumerate() {
            let seq = i as u64 + 1;
            sb.push(StoreEntry { seq, addr: Some(addr), bytes, value: Some(value) });
            ordered.push((seq, addr, bytes, value));
        }
        let load_seq = stores.len() as u64 + 1;
        let want = oracle_read(&mem, &ordered, load_seq, laddr, lbytes);
        match sb.forward(load_seq, laddr, lbytes) {
            ForwardResult::Forward(v) => prop_assert_eq!(v, want, "forwarded value wrong"),
            ForwardResult::NoMatch => {
                // No older store overlaps; memory value (zero here) is it.
                prop_assert_eq!(want, 0, "NoMatch but an older store overlapped");
            }
            ForwardResult::MustWait => {} // conservative is always sound
            ForwardResult::NotThere { .. } => prop_assert!(false, "all stores resolved"),
        }
    }

    /// The NT merge rule: a merge lands iff the register is NT with the
    /// matching writer, and at most one merge per (reg, writer) lands.
    #[test]
    fn merge_rule_invariants(
        writes in prop::collection::vec((1u8..64, any::<u64>(), 1u64..100), 1..20),
        merge_reg in 1u8..64,
        merge_writer in 1u64..100,
        merge_val in any::<u64>(),
    ) {
        let mut im = RegImage::new();
        for &(r, v, seq) in &writes {
            let reg = Reg::from_index(r).unwrap();
            if v % 3 == 0 {
                im.mark_nt(reg, seq);
            } else {
                im.write(reg, v, seq, 0);
            }
        }
        let reg = Reg::from_index(merge_reg).unwrap();
        let was_nt = im.is_nt(reg);
        let was_writer = im.slot(reg).writer;
        let landed = im.merge(reg, merge_val, merge_writer, 0);
        prop_assert_eq!(landed, was_nt && was_writer == merge_writer);
        if landed {
            prop_assert_eq!(im.value(reg), merge_val);
            prop_assert!(!im.is_nt(reg));
            // A second identical merge must not land (no longer NT).
            prop_assert!(!im.merge(reg, merge_val ^ 1, merge_writer, 0));
            prop_assert_eq!(im.value(reg), merge_val);
        }
    }

    /// DQ: any interleaving of pushes and ordered-retains keeps entries in
    /// strictly increasing seq order and never exceeds capacity.
    #[test]
    fn dq_order_invariant(ops in prop::collection::vec(any::<bool>(), 1..100)) {
        let mut q = DeferredQueue::new(16);
        let mut next_seq = 1u64;
        for op in ops {
            if op && !q.is_full() {
                q.push(DqEntry {
                    seq: next_seq,
                    pc: 0x1000,
                    inst: sst_isa::Inst::NOP,
                    captured: [Some(0), Some(0)],
                    producers: [None, None],
                    predicted_taken: None,
                    pred_next_pc: None,
                    data_ready_at: None,
                });
                next_seq += 1;
            } else if !q.is_empty() {
                // Remove every third entry.
                let _ = q.retain_ordered(|e| e.seq % 3 == 0);
            }
            let seqs: Vec<u64> = q.iter().map(|e| e.seq).collect();
            prop_assert!(seqs.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(q.len() <= q.capacity());
        }
    }

    /// Store buffer drain/squash partition: entries either drain (seq <=
    /// boundary) or survive, never both, and drains come out in order.
    #[test]
    fn stb_drain_squash_partition(
        n in 1usize..16,
        boundary in 1u64..20,
    ) {
        let mut sb = StoreBuffer::new(32);
        for i in 0..n {
            sb.push(StoreEntry {
                seq: i as u64 + 1,
                addr: Some(i as u64 * 8),
                bytes: 8,
                value: Some(i as u64),
            });
        }
        let drained = sb.drain_through(boundary);
        prop_assert!(drained.windows(2).all(|w| w[0].seq < w[1].seq));
        for d in &drained {
            prop_assert!(d.seq <= boundary);
        }
        for e in sb.iter() {
            prop_assert!(e.seq > boundary);
        }
        prop_assert_eq!(drained.len() + sb.len(), n);
    }
}
