//! Randomized property tests for the speculation substrate: store-buffer
//! overlay semantics vs a byte-level oracle, NT merge-rule invariants, and
//! deferred-queue order preservation. Driven by the workspace's
//! deterministic PRNG (fixed seeds, reproducible failures); build with
//! `--features ext` for more cases.

use sst_isa::{Reg, SparseMem};
use sst_prng::Prng;
use sst_uarch::{DeferredQueue, DqEntry, ForwardResult, RegImage, StoreBuffer, StoreEntry};

fn cases(base: usize) -> usize {
    if cfg!(feature = "ext") {
        base * 8
    } else {
        base
    }
}

/// A reference "memory + ordered stores" oracle for overlay reads.
fn oracle_read(
    mem: &SparseMem,
    stores: &[(u64, u64, u64, u64)], // (seq, addr, bytes, value), ordered
    load_seq: u64,
    addr: u64,
    bytes: u64,
) -> u64 {
    let mut buf = [0u8; 8];
    for i in 0..bytes {
        buf[i as usize] = mem.read_u8(addr + i);
    }
    for &(seq, saddr, sbytes, value) in stores {
        if seq >= load_seq {
            continue;
        }
        for i in 0..sbytes {
            let b = saddr + i;
            if b >= addr && b < addr + bytes {
                buf[(b - addr) as usize] = (value >> (8 * i)) as u8;
            }
        }
    }
    u64::from_le_bytes(buf) & if bytes == 8 { u64::MAX } else { (1 << (bytes * 8)) - 1 }
}

fn arb_width(r: &mut Prng) -> u64 {
    [1u64, 2, 4, 8][r.gen_range(0..4usize)]
}

/// read_overlay must agree with a byte-level oracle for any set of
/// resolved stores.
#[test]
fn overlay_matches_oracle() {
    let mut r = Prng::seed_from_u64(0x0a7c_0001);
    for _ in 0..cases(128) {
        let stores: Vec<(u64, u64, u64)> = (0..r.gen_range(0..12usize))
            .map(|_| (r.gen_range(0..64u64), arb_width(&mut r), r.gen()))
            .collect();
        let laddr = r.gen_range(0..64u64);
        let lbytes = arb_width(&mut r);
        let lseq_off = r.gen_range(0..14u64);
        let mem_val: u64 = r.gen();

        let mut mem = SparseMem::new();
        for i in 0..10 {
            mem.write_u64(i * 8, mem_val.wrapping_add(i));
        }
        let mut sb = StoreBuffer::new(32);
        let mut ordered = Vec::new();
        for (i, &(addr, bytes, value)) in stores.iter().enumerate() {
            let seq = i as u64 + 1;
            sb.push(StoreEntry {
                seq,
                addr: Some(addr),
                bytes,
                value: Some(value),
            });
            ordered.push((seq, addr, bytes, value));
        }
        let load_seq = lseq_off + 1;
        let got = sb.read_overlay(load_seq, laddr, lbytes, &mem);
        let want = oracle_read(&mem, &ordered, load_seq, laddr, lbytes);
        assert_eq!(got, Some(want));
    }
}

/// forward() never returns a wrong value: when it forwards, the value
/// matches the oracle; when it says NoMatch, memory-only matches.
#[test]
fn forward_is_sound() {
    let mut r = Prng::seed_from_u64(0x0a7c_0002);
    for _ in 0..cases(128) {
        let stores: Vec<(u64, u64, u64)> = (0..r.gen_range(0..8usize))
            .map(|_| (r.gen_range(0..32u64), arb_width(&mut r), r.gen()))
            .collect();
        let laddr = r.gen_range(0..32u64);
        let lbytes = arb_width(&mut r);

        let mem = SparseMem::new();
        let mut sb = StoreBuffer::new(16);
        let mut ordered = Vec::new();
        for (i, &(addr, bytes, value)) in stores.iter().enumerate() {
            let seq = i as u64 + 1;
            sb.push(StoreEntry {
                seq,
                addr: Some(addr),
                bytes,
                value: Some(value),
            });
            ordered.push((seq, addr, bytes, value));
        }
        let load_seq = stores.len() as u64 + 1;
        let want = oracle_read(&mem, &ordered, load_seq, laddr, lbytes);
        match sb.forward(load_seq, laddr, lbytes) {
            ForwardResult::Forward(v) => assert_eq!(v, want, "forwarded value wrong"),
            ForwardResult::NoMatch => {
                // No older store overlaps; memory value (zero here) is it.
                assert_eq!(want, 0, "NoMatch but an older store overlapped");
            }
            ForwardResult::MustWait => {} // conservative is always sound
            ForwardResult::NotThere { .. } => panic!("all stores resolved"),
        }
    }
}

/// The NT merge rule: a merge lands iff the register is NT with the
/// matching writer, and at most one merge per (reg, writer) lands.
#[test]
fn merge_rule_invariants() {
    let mut r = Prng::seed_from_u64(0x0a7c_0003);
    for _ in 0..cases(128) {
        let writes: Vec<(u8, u64, u64)> = (0..r.gen_range(1..20usize))
            .map(|_| {
                (
                    r.gen_range(1..64u8),
                    r.gen(),
                    r.gen_range(1..100u64),
                )
            })
            .collect();
        let merge_reg = r.gen_range(1..64u8);
        let merge_writer = r.gen_range(1..100u64);
        let merge_val: u64 = r.gen();

        let mut im = RegImage::new();
        for &(reg_idx, v, seq) in &writes {
            let reg = Reg::from_index(reg_idx).unwrap();
            if v % 3 == 0 {
                im.mark_nt(reg, seq);
            } else {
                im.write(reg, v, seq, 0);
            }
        }
        let reg = Reg::from_index(merge_reg).unwrap();
        let was_nt = im.is_nt(reg);
        let was_writer = im.slot(reg).writer;
        let landed = im.merge(reg, merge_val, merge_writer, 0);
        assert_eq!(landed, was_nt && was_writer == merge_writer);
        if landed {
            assert_eq!(im.value(reg), merge_val);
            assert!(!im.is_nt(reg));
            // A second identical merge must not land (no longer NT).
            assert!(!im.merge(reg, merge_val ^ 1, merge_writer, 0));
            assert_eq!(im.value(reg), merge_val);
        }
    }
}

/// DQ: any interleaving of pushes and ordered-retains keeps entries in
/// strictly increasing seq order and never exceeds capacity.
#[test]
fn dq_order_invariant() {
    let mut r = Prng::seed_from_u64(0x0a7c_0004);
    for _ in 0..cases(64) {
        let mut q = DeferredQueue::new(16);
        let mut next_seq = 1u64;
        for _ in 0..r.gen_range(1..100usize) {
            if r.gen::<bool>() && !q.is_full() {
                q.push(DqEntry {
                    seq: next_seq,
                    pc: 0x1000,
                    inst: sst_isa::Inst::NOP,
                    captured: [Some(0), Some(0)],
                    producers: [None, None],
                    predicted_taken: None,
                    pred_next_pc: None,
                    data_ready_at: None,
                });
                next_seq += 1;
            } else if !q.is_empty() {
                // Remove every third entry.
                let _ = q.retain_ordered(|e| e.seq % 3 == 0);
            }
            let seqs: Vec<u64> = q.iter().map(|e| e.seq).collect();
            assert!(seqs.windows(2).all(|w| w[0] < w[1]));
            assert!(q.len() <= q.capacity());
        }
    }
}

/// Store buffer drain/squash partition: entries either drain (seq <=
/// boundary) or survive, never both, and drains come out in order.
#[test]
fn stb_drain_squash_partition() {
    let mut r = Prng::seed_from_u64(0x0a7c_0005);
    for _ in 0..cases(128) {
        let n = r.gen_range(1..16usize);
        let boundary = r.gen_range(1..20u64);
        let mut sb = StoreBuffer::new(32);
        for i in 0..n {
            sb.push(StoreEntry {
                seq: i as u64 + 1,
                addr: Some(i as u64 * 8),
                bytes: 8,
                value: Some(i as u64),
            });
        }
        let drained = sb.drain_through(boundary);
        assert!(drained.windows(2).all(|w| w[0].seq < w[1].seq));
        for d in &drained {
            assert!(d.seq <= boundary);
        }
        for e in sb.iter() {
            assert!(e.seq > boundary);
        }
        assert_eq!(drained.len() + sb.len(), n);
    }
}
