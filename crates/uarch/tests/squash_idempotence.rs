//! Rollback idempotence: squashing from the same sequence number twice
//! must leave the DQ and STB in the same state as squashing once.
//!
//! The rollback path may retry (a checkpoint restore that races a replay
//! pass re-issues its squash), so `squash_from` has to be a projection:
//! applying it again with the same boundary is a no-op on every
//! observable. "Observable" here means the slab contents and the free
//! list — NOT the DQ `generation` counter, which deliberately bumps on
//! every call so that replay cursors snapshotted before *any* squash are
//! invalidated, retried or not. The tests therefore compare entry-level
//! projections plus a refill-to-capacity probe (which would diverge if a
//! double squash leaked or double-freed slab slots), and assert the
//! generation is strictly monotonic rather than equal.
//!
//! Driven by the workspace's deterministic PRNG (fixed seeds,
//! reproducible failures); build with `--features ext` for more cases.

use sst_prng::Prng;
use sst_uarch::{DeferredQueue, DqEntry, StoreBuffer, StoreEntry};

fn cases(base: usize) -> usize {
    if cfg!(feature = "ext") {
        base * 8
    } else {
        base
    }
}

/// Every externally visible projection of a DQ except the generation.
fn dq_observables(q: &DeferredQueue) -> (usize, Vec<(u64, u64, bool)>, Option<u64>, bool) {
    let entries: Vec<(u64, u64, bool)> = q
        .iter_blocked()
        .map(|(e, blocked)| (e.seq, e.pc, blocked))
        .collect();
    (q.len(), entries, q.first_seq(), q.any_blocked())
}

/// Every externally visible projection of an STB.
fn stb_observables(sb: &StoreBuffer) -> (usize, Vec<(u64, Option<u64>, u64, Option<u64>)>) {
    let entries: Vec<_> = sb
        .iter()
        .map(|e| (e.seq, e.addr, e.bytes, e.value))
        .collect();
    (sb.len(), entries)
}

fn arb_dq_entry(r: &mut Prng, seq: u64) -> DqEntry {
    DqEntry {
        seq,
        pc: 0x1000 + 4 * seq,
        inst: sst_isa::Inst::NOP,
        captured: [Some(r.gen()), if r.gen::<bool>() { Some(r.gen()) } else { None }],
        producers: [None, None],
        predicted_taken: if r.gen::<bool>() { Some(r.gen()) } else { None },
        pred_next_pc: None,
        data_ready_at: if r.gen::<bool>() {
            Some(r.gen_range(1..1000u64))
        } else {
            None
        },
    }
}

/// Builds two identical DQs from the same PRNG stream: random fill with
/// gaps in the seq space, a sprinkling of blocked marks, and some
/// mid-stream removals so the free list is non-trivial.
fn paired_dqs(r: &mut Prng, capacity: usize) -> (DeferredQueue, DeferredQueue, u64) {
    let mut a = DeferredQueue::new(capacity);
    let mut b = DeferredQueue::new(capacity);
    let mut seq = 0u64;
    let mut live = Vec::new();
    for _ in 0..r.gen_range(1..40usize) {
        seq += r.gen_range(1..4u64);
        if a.is_full() {
            break;
        }
        let e = arb_dq_entry(r, seq);
        a.push(e);
        b.push(e);
        live.push(seq);
    }
    // Churn the free list: drop a random residue class, then refill a bit.
    let m = r.gen_range(2..5u64);
    a.retain_ordered(|e| e.seq % m == 0);
    b.retain_ordered(|e| e.seq % m == 0);
    live.retain(|s| s % m != 0);
    for _ in 0..r.gen_range(0..8usize) {
        seq += r.gen_range(1..4u64);
        if a.is_full() {
            break;
        }
        let e = arb_dq_entry(r, seq);
        a.push(e);
        b.push(e);
        live.push(seq);
    }
    for &s in &live {
        if s % 3 == 0 {
            a.mark_blocked(s);
            b.mark_blocked(s);
        }
    }
    (a, b, seq)
}

#[test]
fn dq_squash_twice_is_squash_once() {
    let mut r = Prng::seed_from_u64(0x0a7c_1301);
    for _ in 0..cases(96) {
        let (mut once, mut twice, max_seq) = paired_dqs(&mut r, 16);
        // Boundary anywhere in or beyond the live range, including 0
        // (squash everything) and max_seq + 1 (squash nothing).
        let from = r.gen_range(0..max_seq + 2);
        once.squash_from(from);
        let g1 = {
            twice.squash_from(from);
            let g = twice.generation();
            twice.squash_from(from);
            g
        };
        assert_eq!(
            dq_observables(&once),
            dq_observables(&twice),
            "from={from}"
        );
        assert!(
            twice.generation() > g1,
            "generation must bump on every squash call (cursor staleness)"
        );
        // Survivors are exactly the live entries older than the boundary,
        // still strictly ordered.
        let seqs: Vec<u64> = twice.iter().map(|e| e.seq).collect();
        assert!(seqs.iter().all(|&s| s < from));
        assert!(seqs.windows(2).all(|w| w[0] < w[1]));
    }
}

/// A double squash must not corrupt the slab free list: both queues
/// refill to exactly `capacity` entries and then report full.
#[test]
fn dq_free_list_survives_double_squash() {
    let mut r = Prng::seed_from_u64(0x0a7c_1302);
    for _ in 0..cases(64) {
        let (mut once, mut twice, max_seq) = paired_dqs(&mut r, 12);
        let from = r.gen_range(0..max_seq + 2);
        once.squash_from(from);
        twice.squash_from(from);
        twice.squash_from(from);

        let room = once.capacity() - once.len();
        assert_eq!(room, twice.capacity() - twice.len());
        let mut seq = max_seq;
        for _ in 0..room {
            seq += 1;
            once.push(arb_dq_entry(&mut Prng::seed_from_u64(seq), seq));
            twice.push(arb_dq_entry(&mut Prng::seed_from_u64(seq), seq));
        }
        assert!(once.is_full() && twice.is_full());
        assert_eq!(dq_observables(&once), dq_observables(&twice));
    }
}

#[test]
fn stb_squash_twice_is_squash_once() {
    let mut r = Prng::seed_from_u64(0x0a7c_1303);
    for _ in 0..cases(96) {
        let mut once = StoreBuffer::new(16);
        let mut twice = StoreBuffer::new(16);
        let mut seq = 0u64;
        for _ in 0..r.gen_range(1..16usize) {
            seq += r.gen_range(1..4u64);
            let e = StoreEntry {
                seq,
                addr: if r.gen::<bool>() {
                    Some(r.gen_range(0..256u64) & !7)
                } else {
                    None
                },
                bytes: 8,
                value: if r.gen::<bool>() { Some(r.gen()) } else { None },
            };
            once.push(e);
            twice.push(e);
        }
        let from = r.gen_range(0..seq + 2);
        once.squash_from(from);
        twice.squash_from(from);
        twice.squash_from(from);
        assert_eq!(stb_observables(&once), stb_observables(&twice), "from={from}");

        // The unresolved-addr side index must have been truncated in
        // lockstep: a load probing past the squash point sees the same
        // unknown-address answer from both buffers.
        let probe = seq + 10;
        assert_eq!(
            once.unknown_addr_before(probe),
            twice.unknown_addr_before(probe),
            "from={from}"
        );

        // And both accept refills up to the same occupancy.
        let room = once.capacity() - once.len();
        assert_eq!(room, twice.capacity() - twice.len());
        let mut s2 = seq + 100;
        for _ in 0..room {
            s2 += 1;
            let e = StoreEntry {
                seq: s2,
                addr: Some(64),
                bytes: 8,
                value: Some(1),
            };
            once.push(e);
            twice.push(e);
        }
        assert!(once.is_full() && twice.is_full());
        assert_eq!(stb_observables(&once), stb_observables(&twice));
    }
}
