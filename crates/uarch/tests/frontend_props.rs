//! Frontend behavioural tests: fetch-bandwidth limits, queue capacity,
//! line-crossing, and redirect semantics under randomized programs.
//! Driven by the workspace's deterministic PRNG; build with
//! `--features ext` for more cases.

use sst_isa::{Asm, Reg};
use sst_mem::{MemConfig, MemSystem};
use sst_prng::Prng;
use sst_uarch::{Frontend, FrontendConfig};

fn cases(base: usize) -> usize {
    if cfg!(feature = "ext") {
        base * 8
    } else {
        base
    }
}

fn warm_setup(n_nops: usize, width: usize, depth: usize) -> (Frontend, MemSystem) {
    let mut a = Asm::new();
    for _ in 0..n_nops {
        a.nop();
    }
    a.halt();
    let p = a.finish().unwrap();
    let mut ms = MemSystem::new(&MemConfig::default(), 1);
    p.load_into(ms.mem_mut());
    let cfg = FrontendConfig {
        width,
        queue_depth: depth,
        ..FrontendConfig::default()
    };
    let mut fe = Frontend::new(cfg, &p);
    // Warm the I-cache by running fetch until something arrives, then
    // flushing back to the entry.
    let mut now = 0;
    while fe.queued() == 0 && now < 100_000 {
        fe.tick(now, &mut ms.bus(0));
        now += 1;
    }
    fe.redirect(now, p.entry);
    // Skip the redirect penalty.
    for t in now..now + 64 {
        if fe.queued() > 0 {
            break;
        }
        fe.tick(t, &mut ms.bus(0));
    }
    (fe, ms)
}

/// Per-cycle fetch never exceeds the configured width.
#[test]
fn fetch_respects_width() {
    let mut r = Prng::seed_from_u64(0xfe_0001);
    for _ in 0..cases(24) {
        let width = r.gen_range(1..6usize);
        let nops = r.gen_range(32..200usize);
        let (mut fe, mut ms) = warm_setup(nops, width, 64);
        // Drain whatever warm-up queued, then measure one warm cycle.
        while fe.pop().is_some() {}
        let t = 1_000_000; // far past any stall
        let before = fe.queued();
        fe.tick(t, &mut ms.bus(0));
        let after = fe.queued();
        assert!(after - before <= width, "fetched {} > width {width}", after - before);
    }
}

/// The decode queue never exceeds its configured depth.
#[test]
fn queue_depth_is_respected() {
    let mut r = Prng::seed_from_u64(0xfe_0002);
    for _ in 0..cases(12) {
        let depth = r.gen_range(1..12usize);
        let nops = r.gen_range(64..200usize);
        let (mut fe, mut ms) = warm_setup(nops, 4, depth);
        for t in 0..5_000u64 {
            fe.tick(1_000_000 + t, &mut ms.bus(0));
            assert!(fe.queued() <= depth);
        }
    }
}

/// Instructions come out in consecutive PC order for straight-line code.
#[test]
fn straight_line_pcs_are_consecutive() {
    let mut r = Prng::seed_from_u64(0xfe_0003);
    for _ in 0..cases(24) {
        let nops = r.gen_range(10..100usize);
        let (mut fe, mut ms) = warm_setup(nops, 2, 16);
        while fe.pop().is_some() {}
        let mut fetched = Vec::new();
        let mut t = 1_000_000u64;
        while fetched.len() < nops.min(20) && t < 1_100_000 {
            fe.tick(t, &mut ms.bus(0));
            while let Some(f) = fe.pop() {
                fetched.push(f.pc);
            }
            t += 1;
        }
        assert!(fetched.len() >= 2);
        for w in fetched.windows(2) {
            assert_eq!(w[1], w[0] + 4);
        }
    }
}

/// After a redirect, the first delivered instruction is at the target.
#[test]
fn redirect_lands_on_target() {
    let mut r = Prng::seed_from_u64(0xfe_0004);
    for _ in 0..cases(24) {
        let nops = r.gen_range(20..100usize);
        let skip = r.gen_range(1..15usize);
        let (mut fe, mut ms) = warm_setup(nops, 2, 16);
        let target = {
            // Entry + skip instructions (still inside the nop range).
            let base = sst_isa::DEFAULT_TEXT_BASE;
            base + (skip.min(nops - 1) as u64) * 4
        };
        fe.redirect(2_000_000, target);
        let mut t = 2_000_000u64;
        while fe.queued() == 0 && t < 2_100_000 {
            fe.tick(t, &mut ms.bus(0));
            t += 1;
        }
        let first = fe.pop().expect("fetch resumed");
        assert_eq!(first.pc, target);
    }
}
