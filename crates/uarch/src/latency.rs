//! Functional-unit execution latencies, shared by every core model so that
//! arithmetic timing never confounds the core comparisons.

use sst_isa::{AluOp, FpuOp, Inst};
use sst_mem::Cycle;

/// Execution latency table.
///
/// Loads and stores are *not* covered here — their latency comes from the
/// memory hierarchy. All units are fully pipelined except divide/sqrt,
/// which cores may model as blocking (the table only supplies latencies).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecLatency {
    /// Simple integer ALU (add/logic/shift/compare).
    pub int_alu: Cycle,
    /// Integer multiply.
    pub int_mul: Cycle,
    /// Integer divide/remainder.
    pub int_div: Cycle,
    /// FP add/sub/min/max/compare/convert.
    pub fp_simple: Cycle,
    /// FP multiply.
    pub fp_mul: Cycle,
    /// FP divide / square root.
    pub fp_div: Cycle,
    /// Branch/jump resolution.
    pub branch: Cycle,
}

impl Default for ExecLatency {
    fn default() -> ExecLatency {
        ExecLatency {
            int_alu: 1,
            int_mul: 6,
            int_div: 24,
            fp_simple: 3,
            fp_mul: 4,
            fp_div: 20,
            branch: 1,
        }
    }
}

impl ExecLatency {
    /// Latency of a (non-memory) instruction.
    pub fn of(&self, inst: Inst) -> Cycle {
        match inst {
            Inst::Alu { op, .. } | Inst::AluImm { op, .. } => match op {
                AluOp::Mul | AluOp::Mulh => self.int_mul,
                AluOp::Div | AluOp::Divu | AluOp::Rem | AluOp::Remu => self.int_div,
                _ => self.int_alu,
            },
            Inst::Lui { .. } => self.int_alu,
            Inst::Fpu { op, .. } => match op {
                FpuOp::Fmul => self.fp_mul,
                FpuOp::Fdiv | FpuOp::Fsqrt => self.fp_div,
                _ => self.fp_simple,
            },
            Inst::Branch { .. } | Inst::Jal { .. } | Inst::Jalr { .. } => self.branch,
            // Address generation for memory ops; the access itself is timed
            // by the hierarchy.
            Inst::Load { .. } | Inst::Store { .. } | Inst::Prefetch { .. } => self.int_alu,
            Inst::Halt => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sst_isa::Reg;

    #[test]
    fn class_latencies() {
        let l = ExecLatency::default();
        assert_eq!(l.of(Inst::NOP), 1);
        assert_eq!(
            l.of(Inst::Alu {
                op: AluOp::Div,
                rd: Reg::x(1),
                rs1: Reg::x(2),
                rs2: Reg::x(3)
            }),
            24
        );
        assert_eq!(
            l.of(Inst::Fpu {
                op: FpuOp::Fsqrt,
                rd: Reg::f(1),
                rs1: Reg::f(2),
                rs2: Reg::ZERO
            }),
            20
        );
        assert_eq!(
            l.of(Inst::Fpu {
                op: FpuOp::Fadd,
                rd: Reg::f(1),
                rs1: Reg::f(2),
                rs2: Reg::f(3)
            }),
            3
        );
        assert_eq!(l.of(Inst::Halt), 1);
    }
}
