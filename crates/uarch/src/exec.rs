//! Shared execute-stage semantics.
//!
//! Every timing core computes architectural results with these helpers so
//! that cores can never disagree with the functional interpreter about
//! arithmetic, extension, or control-flow semantics (the underlying `eval`
//! functions live in `sst-isa` and are shared with the interpreter).

use sst_isa::{Inst, MemWidth, INST_BYTES};

/// Sign/zero-extends a raw little-endian loaded value.
pub fn extend_load(width: MemWidth, signed: bool, raw: u64) -> u64 {
    let bytes = width.bytes();
    if signed && bytes < 8 {
        let shift = 64 - bytes * 8;
        (((raw << shift) as i64) >> shift) as u64
    } else if bytes < 8 {
        raw & ((1u64 << (bytes * 8)) - 1)
    } else {
        raw
    }
}

/// Result of executing a (non-memory-data) instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecOut {
    /// Register result (link value for jumps, ALU/FPU result). `None` for
    /// stores, branches, prefetch, halt.
    pub value: Option<u64>,
    /// Resolved next PC.
    pub next_pc: u64,
    /// For conditional branches: taken?
    pub taken: bool,
}

/// Executes a non-load instruction given its source values.
///
/// * ALU/FPU: `value` is the result.
/// * Branches: `taken`/`next_pc` resolve control flow.
/// * `jal`/`jalr`: `value` is the link, `next_pc` the target.
/// * Stores/prefetch: address computation is the caller's job
///   ([`mem_addr`]); `value` is `None`.
/// * Loads are *not* handled here — callers read memory and use
///   [`extend_load`].
///
/// # Panics
///
/// Panics if called with a load.
pub fn execute(inst: Inst, s1: u64, s2: u64, pc: u64) -> ExecOut {
    let fall = pc.wrapping_add(INST_BYTES);
    match inst {
        Inst::Alu { op, .. } => ExecOut {
            value: Some(op.eval(s1, s2)),
            next_pc: fall,
            taken: false,
        },
        Inst::AluImm { op, imm, .. } => ExecOut {
            value: Some(op.eval(s1, imm as u64)),
            next_pc: fall,
            taken: false,
        },
        Inst::Lui { imm, .. } => ExecOut {
            value: Some((imm << 12) as u64),
            next_pc: fall,
            taken: false,
        },
        Inst::Branch { cond, offset, .. } => {
            let taken = cond.eval(s1, s2);
            ExecOut {
                value: None,
                next_pc: if taken {
                    pc.wrapping_add_signed(offset * 4)
                } else {
                    fall
                },
                taken,
            }
        }
        Inst::Jal { offset, .. } => ExecOut {
            value: Some(fall),
            next_pc: pc.wrapping_add_signed(offset * 4),
            taken: true,
        },
        Inst::Jalr { offset, .. } => ExecOut {
            value: Some(fall),
            next_pc: s1.wrapping_add_signed(offset) & !3u64,
            taken: true,
        },
        Inst::Fpu { op, .. } => ExecOut {
            value: Some(op.eval(s1, s2)),
            next_pc: fall,
            taken: false,
        },
        Inst::Store { .. } | Inst::Prefetch { .. } => ExecOut {
            value: None,
            next_pc: fall,
            taken: false,
        },
        Inst::Halt => ExecOut {
            value: None,
            next_pc: pc,
            taken: false,
        },
        Inst::Load { .. } => panic!("loads are executed by the memory path"),
    }
}

/// Effective address of a memory instruction, given its base value.
///
/// # Panics
///
/// Panics for non-memory instructions.
pub fn mem_addr(inst: Inst, base_val: u64) -> u64 {
    match inst {
        Inst::Load { offset, .. } | Inst::Store { offset, .. } | Inst::Prefetch { offset, .. } => {
            base_val.wrapping_add_signed(offset)
        }
        other => panic!("{other:?} is not a memory instruction"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sst_isa::{AluOp, BranchCond, Reg};

    #[test]
    fn extension_matches_interp_semantics() {
        assert_eq!(extend_load(MemWidth::B1, true, 0xff), u64::MAX);
        assert_eq!(extend_load(MemWidth::B1, false, 0xff), 0xff);
        assert_eq!(extend_load(MemWidth::B4, true, 0x8000_0000), 0xffff_ffff_8000_0000);
        assert_eq!(extend_load(MemWidth::B4, false, 0x8000_0000), 0x8000_0000);
        assert_eq!(extend_load(MemWidth::B8, true, u64::MAX), u64::MAX);
    }

    #[test]
    fn branch_resolution() {
        let b = Inst::Branch {
            cond: BranchCond::Lt,
            rs1: Reg::x(1),
            rs2: Reg::x(2),
            offset: -2,
        };
        let taken = execute(b, 1, 5, 0x100);
        assert!(taken.taken);
        assert_eq!(taken.next_pc, 0x100 - 8);
        let not = execute(b, 5, 1, 0x100);
        assert!(!not.taken);
        assert_eq!(not.next_pc, 0x104);
    }

    #[test]
    fn jalr_links_and_masks() {
        let j = Inst::Jalr {
            rd: Reg::LINK,
            base: Reg::x(5),
            offset: 3,
        };
        let out = execute(j, 0x2001, 0, 0x100);
        assert_eq!(out.value, Some(0x104));
        assert_eq!(out.next_pc, 0x2004 & !3);
    }

    #[test]
    fn alu_value() {
        let i = Inst::Alu {
            op: AluOp::Xor,
            rd: Reg::x(1),
            rs1: Reg::x(2),
            rs2: Reg::x(3),
        };
        assert_eq!(execute(i, 0b1100, 0b1010, 0).value, Some(0b0110));
    }

    #[test]
    fn mem_addr_offsets() {
        let l = Inst::Load {
            width: MemWidth::B8,
            signed: true,
            rd: Reg::x(1),
            base: Reg::x(2),
            offset: -8,
        };
        assert_eq!(mem_addr(l, 0x108), 0x100);
    }

    #[test]
    #[should_panic]
    fn execute_rejects_loads() {
        let l = Inst::Load {
            width: MemWidth::B8,
            signed: true,
            rd: Reg::x(1),
            base: Reg::x(2),
            offset: 0,
        };
        let _ = execute(l, 0, 0, 0);
    }
}
