//! The deferred queue (DQ).
//!
//! When an SST core encounters an instruction whose source is "not there"
//! (NT), it parks the instruction here together with the source operands
//! that *were* available — eliminating WAR hazards without register
//! renaming, which is the paper's key structural saving. Replay walks the
//! queue in program order, possibly over multiple passes (entries whose
//! inputs are still missing are retained for the next pass).
//!
//! # Storage
//!
//! Entries live in a slab (`slots` + free list) and program order is a
//! separate vector of slot ids kept sorted by sequence number. Because
//! sequence numbers are strictly increasing, every by-seq lookup
//! ([`DeferredQueue::position`], [`DeferredQueue::remove_seq`],
//! [`DeferredQueue::set_data_ready`]) is a binary search over that small
//! id vector, and removal shifts 4-byte ids instead of whole entries. A
//! lazily-validated min-heap caches [`DeferredQueue::next_data_ready`], so
//! the per-pass wake computation stops being an O(n) scan per call. This
//! replaced linear scans that dominated replay-heavy runs (`ea`/`sst` on
//! the commercial workloads).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use sst_isa::{decode, encode, Inst, SnapError, SnapReader, SnapWriter};
use sst_mem::Cycle;

use crate::Seq;

/// One deferred instruction.
#[derive(Clone, Copy, Debug)]
pub struct DqEntry {
    /// Program-order sequence number.
    pub seq: Seq,
    /// PC of the instruction.
    pub pc: u64,
    /// The instruction itself.
    pub inst: Inst,
    /// Operand values captured at defer time; `None` for sources that were
    /// NT (they will come from replay-produced values).
    pub captured: [Option<u64>; 2],
    /// For each non-captured source: the sequence number of the deferred
    /// instruction that will produce it. Replay looks the value up in its
    /// produced-value table once that producer has replayed.
    pub producers: [Option<Seq>; 2],
    /// For deferred conditional branches: the direction that fetch
    /// speculated. Replay compares the real outcome against this.
    pub predicted_taken: Option<bool>,
    /// For deferred control transfers: the next PC fetch continued at.
    /// Replay compares the resolved target against this.
    pub pred_next_pc: Option<u64>,
    /// For deferred loads: cycle their miss data arrives (known at defer
    /// time in this simulator's resolve-at-issue timing model). Replay
    /// before this cycle is pointless.
    pub data_ready_at: Option<Cycle>,
}

/// One slab slot: the entry plus replay-side bookkeeping that is not part
/// of the architectural defer record.
#[derive(Clone, Debug)]
struct Slot {
    entry: DqEntry,
    /// Input-ready but stuck behind an older unresolved store
    /// (`read_overlay` said wait). Only a store resolution can unstick it,
    /// so the pass-done wake computation skips blocked entries — they have
    /// no knowable wake time of their own. Cleared whenever a store
    /// resolves ([`DeferredQueue::clear_blocked`]).
    blocked: bool,
}

/// A bounded, program-ordered queue of deferred instructions.
///
/// The queue preserves program order. [`DeferredQueue::retain_ordered`]
/// supports multi-pass replay: completed entries are removed, stuck ones
/// stay in place.
#[derive(Clone, Debug)]
pub struct DeferredQueue {
    slots: Vec<Slot>,
    /// Free slot indices.
    free: Vec<u32>,
    /// Live slot indices in program order (ascending seq).
    order: Vec<u32>,
    /// Cached `(data_ready_at, seq)` pairs, lazily validated: stale pairs
    /// (removed/squashed entries, superseded ready times) are discarded
    /// when they surface at the top.
    ready_heap: BinaryHeap<Reverse<(Cycle, Seq)>>,
    /// Bumped on every squash/clear. Replay cursors snapshot it so a
    /// cursor that survived a mid-pass squash is detected as stale instead
    /// of silently resuming against reshuffled contents.
    generation: u64,
    /// Live entries currently marked blocked (kept exact so
    /// [`DeferredQueue::any_blocked`] is O(1)).
    blocked_count: usize,
    capacity: usize,
    /// Maximum occupancy ever observed (reports).
    pub high_water: usize,
    /// Total entries ever enqueued.
    pub total_deferred: u64,
}

impl DeferredQueue {
    /// Creates an empty queue holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> DeferredQueue {
        assert!(capacity > 0, "DQ needs at least one entry");
        DeferredQueue {
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            order: Vec::with_capacity(capacity),
            ready_heap: BinaryHeap::new(),
            generation: 0,
            blocked_count: 0,
            capacity,
            high_water: 0,
            total_deferred: 0,
        }
    }

    /// Maximum entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// `true` when no more instructions can be deferred.
    pub fn is_full(&self) -> bool {
        self.order.len() >= self.capacity
    }

    /// The squash/clear epoch counter (see [`DeferredQueue::position`]
    /// callers: a replay cursor taken under one generation must not be
    /// resumed under another).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Appends an entry in program order.
    ///
    /// # Panics
    ///
    /// Panics if the queue is full (callers stall the ahead thread instead
    /// of overflowing) or if `entry.seq` breaks program order.
    pub fn push(&mut self, entry: DqEntry) {
        assert!(!self.is_full(), "DQ overflow: caller must stall when full");
        if let Some(last) = self.order.last() {
            assert!(
                self.slots[*last as usize].entry.seq < entry.seq,
                "DQ entries must be program-ordered"
            );
        }
        if let Some(ready) = entry.data_ready_at {
            self.ready_heap.push(Reverse((ready, entry.seq)));
        }
        let slot = Slot {
            entry,
            blocked: false,
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = slot;
                i
            }
            None => {
                self.slots.push(slot);
                (self.slots.len() - 1) as u32
            }
        };
        self.order.push(idx);
        self.total_deferred += 1;
        self.high_water = self.high_water.max(self.order.len());
    }

    /// Iterates entries oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &DqEntry> {
        self.order.iter().map(|&i| &self.slots[i as usize].entry)
    }

    /// Iterates `(entry, blocked)` pairs oldest-first (the pass-done wake
    /// scan skips blocked entries).
    pub fn iter_blocked(&self) -> impl Iterator<Item = (&DqEntry, bool)> {
        self.order.iter().map(|&i| {
            let s = &self.slots[i as usize];
            (&s.entry, s.blocked)
        })
    }

    /// Number of live entries older than `seq` — equivalently, the
    /// position a cursor at `seq` starts from. O(log n).
    pub fn position(&self, seq: Seq) -> usize {
        self.order
            .partition_point(|&i| self.slots[i as usize].entry.seq < seq)
    }

    /// The entry at program-order position `pos` (0 = oldest).
    pub fn get(&self, pos: usize) -> Option<&DqEntry> {
        self.order
            .get(pos)
            .map(|&i| &self.slots[i as usize].entry)
    }

    /// Sequence number of the oldest entry.
    pub fn first_seq(&self) -> Option<Seq> {
        self.get(0).map(|e| e.seq)
    }

    /// One replay pass: calls `f` on each entry oldest-first; entries for
    /// which `f` returns `true` are removed (completed), the rest stay in
    /// order. Returns the number removed.
    pub fn retain_ordered(&mut self, mut f: impl FnMut(&DqEntry) -> bool) -> usize {
        let order = std::mem::take(&mut self.order);
        let before = order.len();
        for &i in &order {
            if f(&self.slots[i as usize].entry) {
                self.unblock_slot(i);
                self.free.push(i);
            } else {
                self.order.push(i);
            }
        }
        before - self.order.len()
    }

    /// Drops every entry with `seq >= from` (epoch squash) and bumps the
    /// generation.
    pub fn squash_from(&mut self, from: Seq) {
        let keep = self.position(from);
        for i in self.order.split_off(keep) {
            self.unblock_slot(i);
            self.free.push(i);
        }
        self.generation += 1;
    }

    /// Clears the queue and bumps the generation.
    pub fn clear(&mut self) {
        for i in std::mem::take(&mut self.order) {
            self.slots[i as usize].blocked = false;
            self.free.push(i);
        }
        self.blocked_count = 0;
        self.ready_heap.clear();
        self.generation += 1;
    }

    /// Drops a slot's blocked mark (entry leaving the queue), keeping the
    /// blocked count exact.
    fn unblock_slot(&mut self, idx: u32) {
        let slot = &mut self.slots[idx as usize];
        if slot.blocked {
            slot.blocked = false;
            self.blocked_count -= 1;
        }
    }

    /// Marks entry `seq` as blocked behind an older unresolved store.
    ///
    /// # Panics
    ///
    /// Panics if no such entry exists.
    pub fn mark_blocked(&mut self, seq: Seq) {
        let pos = self.position(seq);
        let idx = self.order[pos] as usize;
        assert_eq!(self.slots[idx].entry.seq, seq, "blocking a missing entry");
        if !self.slots[idx].blocked {
            self.slots[idx].blocked = true;
            self.blocked_count += 1;
        }
    }

    /// Clears every blocked mark (a store resolved; any blocked entry may
    /// now be able to proceed).
    pub fn clear_blocked(&mut self) {
        if self.blocked_count == 0 {
            return;
        }
        for &i in &self.order {
            self.slots[i as usize].blocked = false;
        }
        self.blocked_count = 0;
    }

    /// `true` while any live entry is marked blocked (input-ready but
    /// stuck behind an unresolved store). O(1).
    pub fn any_blocked(&self) -> bool {
        self.blocked_count > 0
    }

    /// Earliest `data_ready_at` among entries still waiting on data, if
    /// any. Served from the cached heap; stale top entries are discarded
    /// on the way.
    pub fn next_data_ready(&mut self) -> Option<Cycle> {
        while let Some(&Reverse((ready, seq))) = self.ready_heap.peek() {
            let pos = self.position(seq);
            let live = self
                .order
                .get(pos)
                .map(|&i| &self.slots[i as usize].entry)
                .is_some_and(|e| e.seq == seq && e.data_ready_at == Some(ready));
            if live {
                return Some(ready);
            }
            self.ready_heap.pop();
        }
        None
    }

    /// Removes the entry with sequence `seq` (after successful replay).
    ///
    /// # Panics
    ///
    /// Panics if no such entry exists.
    pub fn remove_seq(&mut self, seq: Seq) -> DqEntry {
        let pos = self.position(seq);
        let idx = self
            .order
            .get(pos)
            .copied()
            .filter(|&i| self.slots[i as usize].entry.seq == seq)
            .expect("removing a DQ entry that is not present");
        self.order.remove(pos);
        self.unblock_slot(idx);
        self.free.push(idx);
        self.slots[idx as usize].entry
    }

    /// Serializes live entries (program order, with blocked marks), the
    /// generation counter, and the occupancy statistics.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.tag("DQUE");
        w.put_u64(self.generation);
        w.put_u64(self.total_deferred);
        w.put_usize(self.high_water);
        w.put_usize(self.order.len());
        for &i in &self.order {
            let s = &self.slots[i as usize];
            let e = &s.entry;
            w.put_u64(e.seq);
            w.put_u64(e.pc);
            w.put_u32(encode(e.inst).expect("deferred instruction re-encodes"));
            for c in e.captured {
                w.put_opt_u64(c);
            }
            for p in e.producers {
                w.put_opt_u64(p);
            }
            w.put_u8(match e.predicted_taken {
                None => 0,
                Some(false) => 1,
                Some(true) => 2,
            });
            w.put_opt_u64(e.pred_next_pc);
            w.put_opt_u64(e.data_ready_at);
            w.put_bool(s.blocked);
        }
    }

    /// Restores state written by [`DeferredQueue::save_state`] on a queue
    /// of the same capacity. The slab is repacked canonically (slot ids
    /// 0..n in program order), which is invisible to every caller: slot
    /// ids never escape this module.
    ///
    /// # Errors
    ///
    /// [`SnapError`] on truncated, corrupt, or capacity-mismatched input.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.tag("DQUE")?;
        let generation = r.take_u64()?;
        let total_deferred = r.take_u64()?;
        let high_water = r.take_usize()?;
        let n = r.take_usize()?;
        if n > self.capacity || high_water > self.capacity {
            return Err(SnapError::Corrupt(format!(
                "DQ occupancy {n} / high-water {high_water} exceeds capacity {}",
                self.capacity
            )));
        }
        self.clear();
        self.slots.clear();
        self.free.clear();
        self.ready_heap.clear();
        let mut last_seq: Option<Seq> = None;
        for _ in 0..n {
            let seq = r.take_u64()?;
            if last_seq.is_some_and(|l| l >= seq) {
                return Err(SnapError::Corrupt(format!(
                    "DQ entries out of program order at seq {seq}"
                )));
            }
            last_seq = Some(seq);
            let pc = r.take_u64()?;
            let word = r.take_u32()?;
            let inst = decode(word).map_err(|_| {
                SnapError::Corrupt(format!("undecodable deferred instruction {word:#010x}"))
            })?;
            let captured = [r.take_opt_u64()?, r.take_opt_u64()?];
            let producers = [r.take_opt_u64()?, r.take_opt_u64()?];
            let predicted_taken = match r.take_u8()? {
                0 => None,
                1 => Some(false),
                2 => Some(true),
                b => {
                    return Err(SnapError::Corrupt(format!(
                        "bad predicted-taken byte {b}"
                    )))
                }
            };
            let pred_next_pc = r.take_opt_u64()?;
            let data_ready_at = r.take_opt_u64()?;
            let blocked = r.take_bool()?;
            self.push(DqEntry {
                seq,
                pc,
                inst,
                captured,
                producers,
                predicted_taken,
                pred_next_pc,
                data_ready_at,
            });
            if blocked {
                self.mark_blocked(seq);
            }
        }
        self.generation = generation;
        self.total_deferred = total_deferred;
        self.high_water = high_water;
        Ok(())
    }

    /// Updates the data-ready cycle of entry `seq` (re-deferral of a
    /// replayed load that missed again).
    ///
    /// # Panics
    ///
    /// Panics if no such entry exists.
    pub fn set_data_ready(&mut self, seq: Seq, ready: Cycle) {
        let pos = self.position(seq);
        let idx = self
            .order
            .get(pos)
            .copied()
            .filter(|&i| self.slots[i as usize].entry.seq == seq)
            .expect("updating a DQ entry that is not present");
        self.slots[idx as usize].entry.data_ready_at = Some(ready);
        self.ready_heap.push(Reverse((ready, seq)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sst_isa::Inst;

    fn entry(seq: Seq) -> DqEntry {
        DqEntry {
            seq,
            pc: 0x1000 + seq * 4,
            inst: Inst::NOP,
            captured: [None, None],
            producers: [None, None],
            predicted_taken: None,
            pred_next_pc: None,
            data_ready_at: None,
        }
    }

    #[test]
    fn fifo_order_preserved() {
        let mut q = DeferredQueue::new(8);
        q.push(entry(1));
        q.push(entry(2));
        q.push(entry(5));
        let seqs: Vec<Seq> = q.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2, 5]);
        assert_eq!(q.len(), 3);
        assert_eq!(q.total_deferred, 3);
    }

    #[test]
    #[should_panic]
    fn out_of_order_push_asserts() {
        let mut q = DeferredQueue::new(8);
        q.push(entry(5));
        q.push(entry(3));
    }

    #[test]
    #[should_panic]
    fn overflow_asserts() {
        let mut q = DeferredQueue::new(1);
        q.push(entry(1));
        q.push(entry(2));
    }

    #[test]
    fn retain_ordered_removes_completed() {
        let mut q = DeferredQueue::new(8);
        for s in 1..=5 {
            q.push(entry(s));
        }
        // Complete the even seqs.
        let removed = q.retain_ordered(|e| e.seq % 2 == 0);
        assert_eq!(removed, 2);
        let seqs: Vec<Seq> = q.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 3, 5], "survivors stay ordered");
    }

    #[test]
    fn squash_from_drops_young_suffix() {
        let mut q = DeferredQueue::new(8);
        for s in 1..=5 {
            q.push(entry(s));
        }
        q.squash_from(3);
        let seqs: Vec<Seq> = q.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2]);
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut q = DeferredQueue::new(8);
        for s in 1..=4 {
            q.push(entry(s));
        }
        q.retain_ordered(|_| true);
        assert!(q.is_empty());
        assert_eq!(q.high_water, 4);
    }

    #[test]
    fn next_data_ready_minimum() {
        let mut q = DeferredQueue::new(8);
        let mut e1 = entry(1);
        e1.data_ready_at = Some(500);
        let mut e2 = entry(2);
        e2.data_ready_at = Some(300);
        q.push(e1);
        q.push(e2);
        q.push(entry(3)); // no data dependence
        assert_eq!(q.next_data_ready(), Some(300));
    }

    #[test]
    fn next_data_ready_survives_removal_and_update() {
        let mut q = DeferredQueue::new(8);
        let mut e1 = entry(1);
        e1.data_ready_at = Some(500);
        let mut e2 = entry(2);
        e2.data_ready_at = Some(300);
        q.push(e1);
        q.push(e2);
        // Removing the minimum exposes the next one (stale heap top is
        // discarded, not returned).
        q.remove_seq(2);
        assert_eq!(q.next_data_ready(), Some(500));
        // A re-deferral supersedes the old time.
        q.set_data_ready(1, 900);
        assert_eq!(q.next_data_ready(), Some(900));
        q.remove_seq(1);
        assert_eq!(q.next_data_ready(), None);
    }

    #[test]
    fn slab_reuses_slots() {
        let mut q = DeferredQueue::new(4);
        for s in 1..=4 {
            q.push(entry(s));
        }
        for s in 1..=4 {
            q.remove_seq(s);
        }
        for s in 10..=13 {
            q.push(entry(s));
        }
        assert_eq!(q.len(), 4);
        let seqs: Vec<Seq> = q.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![10, 11, 12, 13]);
        assert!(q.is_full());
    }

    #[test]
    fn position_and_get_walk_program_order() {
        let mut q = DeferredQueue::new(8);
        for s in [2, 4, 9] {
            q.push(entry(s));
        }
        assert_eq!(q.position(0), 0);
        assert_eq!(q.position(4), 1);
        assert_eq!(q.position(5), 2);
        assert_eq!(q.position(100), 3);
        assert_eq!(q.get(1).unwrap().seq, 4);
        assert!(q.get(3).is_none());
        assert_eq!(q.first_seq(), Some(2));
    }

    #[test]
    fn squash_bumps_generation_mid_pass() {
        // A replay pass holds `(cursor, generation)`; squashing during the
        // pass must invalidate the cursor even when the position numbers
        // still look plausible afterwards.
        let mut q = DeferredQueue::new(8);
        for s in 1..=6 {
            q.push(entry(s));
        }
        let gen = q.generation();
        let cursor = 4; // mid-pass: entries 1..=3 examined
        q.squash_from(3); // rollback while the pass is parked
        assert_ne!(q.generation(), gen, "squash must bump the generation");
        // Stale-cursor resume would skip the surviving entries entirely:
        assert_eq!(q.position(cursor), q.len());
        // a generation-checked resume restarts from 0 instead.
        q.push(entry(10));
        assert_ne!(q.generation(), gen);
        assert_eq!(q.position(0), 0);
    }

    #[test]
    fn blocked_marks_set_and_clear() {
        let mut q = DeferredQueue::new(8);
        for s in 1..=3 {
            q.push(entry(s));
        }
        q.mark_blocked(2);
        let flags: Vec<bool> = q.iter_blocked().map(|(_, b)| b).collect();
        assert_eq!(flags, vec![false, true, false]);
        q.clear_blocked();
        assert!(q.iter_blocked().all(|(_, b)| !b));
        // Slot reuse must not leak a stale blocked mark.
        q.mark_blocked(3);
        q.remove_seq(3);
        q.push(entry(9));
        assert!(
            q.iter_blocked().all(|(_, b)| !b),
            "fresh entry in a reused slot starts unblocked"
        );
    }

    /// Every path that drops entries must keep the blocked count exact —
    /// a leaked count wedges `any_blocked()` high, which permanently
    /// suspends an EA core's ahead strand.
    #[test]
    fn blocked_count_survives_every_removal_path() {
        let mut q = DeferredQueue::new(8);
        for s in 1..=4 {
            q.push(entry(s));
        }
        q.mark_blocked(2);
        q.mark_blocked(4);
        assert!(q.any_blocked());

        q.remove_seq(2);
        assert!(q.any_blocked(), "seq 4 still blocked");
        q.squash_from(4);
        assert!(!q.any_blocked(), "squash dropped the last blocked entry");

        q.push(entry(10));
        q.mark_blocked(10);
        q.retain_ordered(|e| e.seq == 10);
        assert!(!q.any_blocked(), "retain dropped the blocked entry");

        q.push(entry(11));
        q.mark_blocked(11);
        q.clear();
        assert!(!q.any_blocked(), "clear resets the count");
        q.push(entry(12));
        assert!(
            q.iter_blocked().all(|(_, b)| !b),
            "reused slot after clear starts unblocked"
        );
    }
}
