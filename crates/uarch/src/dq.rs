//! The deferred queue (DQ).
//!
//! When an SST core encounters an instruction whose source is "not there"
//! (NT), it parks the instruction here together with the source operands
//! that *were* available — eliminating WAR hazards without register
//! renaming, which is the paper's key structural saving. Replay walks the
//! queue in program order, possibly over multiple passes (entries whose
//! inputs are still missing are retained for the next pass).

use sst_isa::Inst;
use sst_mem::Cycle;

use crate::Seq;

/// One deferred instruction.
#[derive(Clone, Copy, Debug)]
pub struct DqEntry {
    /// Program-order sequence number.
    pub seq: Seq,
    /// PC of the instruction.
    pub pc: u64,
    /// The instruction itself.
    pub inst: Inst,
    /// Operand values captured at defer time; `None` for sources that were
    /// NT (they will come from replay-produced values).
    pub captured: [Option<u64>; 2],
    /// For each non-captured source: the sequence number of the deferred
    /// instruction that will produce it. Replay looks the value up in its
    /// produced-value table once that producer has replayed.
    pub producers: [Option<Seq>; 2],
    /// For deferred conditional branches: the direction that fetch
    /// speculated. Replay compares the real outcome against this.
    pub predicted_taken: Option<bool>,
    /// For deferred control transfers: the next PC fetch continued at.
    /// Replay compares the resolved target against this.
    pub pred_next_pc: Option<u64>,
    /// For deferred loads: cycle their miss data arrives (known at defer
    /// time in this simulator's resolve-at-issue timing model). Replay
    /// before this cycle is pointless.
    pub data_ready_at: Option<Cycle>,
}

/// A bounded FIFO of deferred instructions.
///
/// The queue preserves program order. [`DeferredQueue::retain_ordered`]
/// supports multi-pass replay: completed entries are removed, stuck ones
/// stay in place.
#[derive(Clone, Debug)]
pub struct DeferredQueue {
    entries: Vec<DqEntry>,
    capacity: usize,
    /// Maximum occupancy ever observed (reports).
    pub high_water: usize,
    /// Total entries ever enqueued.
    pub total_deferred: u64,
}

impl DeferredQueue {
    /// Creates an empty queue holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> DeferredQueue {
        assert!(capacity > 0, "DQ needs at least one entry");
        DeferredQueue {
            entries: Vec::new(),
            capacity,
            high_water: 0,
            total_deferred: 0,
        }
    }

    /// Maximum entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `true` when no more instructions can be deferred.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Appends an entry in program order.
    ///
    /// # Panics
    ///
    /// Panics if the queue is full (callers stall the ahead thread instead
    /// of overflowing) or if `entry.seq` breaks program order.
    pub fn push(&mut self, entry: DqEntry) {
        assert!(!self.is_full(), "DQ overflow: caller must stall when full");
        if let Some(last) = self.entries.last() {
            assert!(last.seq < entry.seq, "DQ entries must be program-ordered");
        }
        self.entries.push(entry);
        self.total_deferred += 1;
        self.high_water = self.high_water.max(self.entries.len());
    }

    /// Iterates entries oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &DqEntry> {
        self.entries.iter()
    }

    /// One replay pass: calls `f` on each entry oldest-first; entries for
    /// which `f` returns `true` are removed (completed), the rest stay in
    /// order. Returns the number removed.
    pub fn retain_ordered(&mut self, mut f: impl FnMut(&DqEntry) -> bool) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| !f(e));
        before - self.entries.len()
    }

    /// Drops every entry with `seq >= from` (epoch squash).
    pub fn squash_from(&mut self, from: Seq) {
        self.entries.retain(|e| e.seq < from);
    }

    /// Clears the queue.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Earliest `data_ready_at` among entries still waiting on data, if any.
    pub fn next_data_ready(&self) -> Option<Cycle> {
        self.entries.iter().filter_map(|e| e.data_ready_at).min()
    }

    /// Direct slice view (replay scans this).
    pub fn as_slice(&self) -> &[DqEntry] {
        &self.entries
    }

    /// Removes the entry with sequence `seq` (after successful replay).
    ///
    /// # Panics
    ///
    /// Panics if no such entry exists.
    pub fn remove_seq(&mut self, seq: Seq) -> DqEntry {
        let idx = self
            .entries
            .iter()
            .position(|e| e.seq == seq)
            .expect("removing a DQ entry that is not present");
        self.entries.remove(idx)
    }

    /// Updates the data-ready cycle of entry `seq` (re-deferral of a
    /// replayed load that missed again).
    ///
    /// # Panics
    ///
    /// Panics if no such entry exists.
    pub fn set_data_ready(&mut self, seq: Seq, ready: Cycle) {
        let e = self
            .entries
            .iter_mut()
            .find(|e| e.seq == seq)
            .expect("updating a DQ entry that is not present");
        e.data_ready_at = Some(ready);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sst_isa::Inst;

    fn entry(seq: Seq) -> DqEntry {
        DqEntry {
            seq,
            pc: 0x1000 + seq * 4,
            inst: Inst::NOP,
            captured: [None, None],
            producers: [None, None],
            predicted_taken: None,
            pred_next_pc: None,
            data_ready_at: None,
        }
    }

    #[test]
    fn fifo_order_preserved() {
        let mut q = DeferredQueue::new(8);
        q.push(entry(1));
        q.push(entry(2));
        q.push(entry(5));
        let seqs: Vec<Seq> = q.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2, 5]);
        assert_eq!(q.len(), 3);
        assert_eq!(q.total_deferred, 3);
    }

    #[test]
    #[should_panic]
    fn out_of_order_push_asserts() {
        let mut q = DeferredQueue::new(8);
        q.push(entry(5));
        q.push(entry(3));
    }

    #[test]
    #[should_panic]
    fn overflow_asserts() {
        let mut q = DeferredQueue::new(1);
        q.push(entry(1));
        q.push(entry(2));
    }

    #[test]
    fn retain_ordered_removes_completed() {
        let mut q = DeferredQueue::new(8);
        for s in 1..=5 {
            q.push(entry(s));
        }
        // Complete the even seqs.
        let removed = q.retain_ordered(|e| e.seq % 2 == 0);
        assert_eq!(removed, 2);
        let seqs: Vec<Seq> = q.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 3, 5], "survivors stay ordered");
    }

    #[test]
    fn squash_from_drops_young_suffix() {
        let mut q = DeferredQueue::new(8);
        for s in 1..=5 {
            q.push(entry(s));
        }
        q.squash_from(3);
        let seqs: Vec<Seq> = q.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2]);
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut q = DeferredQueue::new(8);
        for s in 1..=4 {
            q.push(entry(s));
        }
        q.retain_ordered(|_| true);
        assert!(q.is_empty());
        assert_eq!(q.high_water, 4);
    }

    #[test]
    fn next_data_ready_minimum() {
        let mut q = DeferredQueue::new(8);
        let mut e1 = entry(1);
        e1.data_ready_at = Some(500);
        let mut e2 = entry(2);
        e2.data_ready_at = Some(300);
        q.push(e1);
        q.push(e2);
        q.push(entry(3)); // no data dependence
        assert_eq!(q.next_data_ready(), Some(300));
    }
}
