//! The interface every core model implements, and the commit-event record
//! used for co-simulation against the functional golden model.

use sst_isa::{Inst, Reg};
use sst_mem::{Cycle, MemSystem};

use crate::Seq;

/// One architecturally committed instruction, as reported by a core.
///
/// Cores emit these **in program order** (sequence numbers strictly
/// increase) and only for instructions that are architecturally final —
/// squashed speculation must never surface here. `sst-sim`'s
/// `RetireChecker` locksteps this stream against the reference interpreter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Commit {
    /// Program-order sequence number (starts at 1, no gaps).
    pub seq: Seq,
    /// PC of the instruction.
    pub pc: u64,
    /// The instruction.
    pub inst: Inst,
    /// Architectural register write, if any (`x0` writes are reported as
    /// `None`).
    pub reg_write: Option<(Reg, u64)>,
    /// Store performed, if any: (address, bytes, value).
    pub store: Option<(u64, u64, u64)>,
    /// Cycle at which the instruction committed.
    pub at: Cycle,
}

/// A cycle-level core model.
///
/// The simulation driver owns the [`MemSystem`] and advances each core one
/// cycle at a time; cores keep their own cycle counters (all cores in a
/// system share the same clock, so drivers tick them in lockstep).
pub trait Core {
    /// Advances the core by one clock cycle.
    fn tick(&mut self, mem: &mut MemSystem);

    /// Cycles elapsed so far.
    fn cycle(&self) -> Cycle;

    /// Instructions architecturally committed so far.
    fn retired(&self) -> u64;

    /// `true` once the program's `halt` has committed.
    fn halted(&self) -> bool;

    /// Removes and returns the commits recorded since the last call, in
    /// program order.
    fn drain_commits(&mut self) -> Vec<Commit>;

    /// The core's index in the shared memory system.
    fn core_id(&self) -> usize;

    /// A short human-readable model name ("in-order", "sst", ...).
    fn model_name(&self) -> &'static str;

    /// Model-specific counters as `(name, value)` pairs, in a stable
    /// display order. Names are shared across models where the concept is
    /// the same (`stall_frontend`, `mispredicts`, ...) so downstream
    /// tables can line models up side by side. The default is empty for
    /// cores that expose nothing beyond [`Core::retired`]/[`Core::cycle`].
    fn counters(&self) -> Vec<(&'static str, u64)> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_is_plain_data() {
        let c = Commit {
            seq: 1,
            pc: 0x1000,
            inst: Inst::Halt,
            reg_write: None,
            store: None,
            at: 5,
        };
        let d = c;
        assert_eq!(c, d);
    }
}
