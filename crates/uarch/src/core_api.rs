//! The interface every core model implements, and the commit-event record
//! used for co-simulation against the functional golden model.

use sst_isa::{decode, encode, Inst, Reg, SnapError, SnapReader, SnapWriter, NUM_REGS};
use sst_mem::{Cycle, MemBus};

use crate::Seq;

/// One architecturally committed instruction, as reported by a core.
///
/// Cores emit these **in program order** (sequence numbers strictly
/// increase) and only for instructions that are architecturally final —
/// squashed speculation must never surface here. `sst-sim`'s
/// `RetireChecker` locksteps this stream against the reference interpreter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Commit {
    /// Program-order sequence number (starts at 1, no gaps).
    pub seq: Seq,
    /// PC of the instruction.
    pub pc: u64,
    /// The instruction.
    pub inst: Inst,
    /// Architectural register write, if any (`x0` writes are reported as
    /// `None`).
    pub reg_write: Option<(Reg, u64)>,
    /// Store performed, if any: (address, bytes, value).
    pub store: Option<(u64, u64, u64)>,
    /// Cycle at which the instruction committed.
    pub at: Cycle,
}

impl Commit {
    /// Serializes the commit record (snapshotting of undrained commit
    /// buffers and epoch logs).
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.put_u64(self.seq);
        w.put_u64(self.pc);
        w.put_u32(encode(self.inst).expect("committed instruction re-encodes"));
        match self.reg_write {
            Some((r, v)) => {
                w.put_bool(true);
                w.put_u8(r.index() as u8);
                w.put_u64(v);
            }
            None => w.put_bool(false),
        }
        match self.store {
            Some((addr, bytes, value)) => {
                w.put_bool(true);
                w.put_u64(addr);
                w.put_u64(bytes);
                w.put_u64(value);
            }
            None => w.put_bool(false),
        }
        w.put_u64(self.at);
    }

    /// Reads a commit record written by [`Commit::save_state`].
    ///
    /// # Errors
    ///
    /// [`SnapError`] on truncated or corrupt input.
    pub fn load(r: &mut SnapReader<'_>) -> Result<Commit, SnapError> {
        let seq = r.take_u64()?;
        let pc = r.take_u64()?;
        let word = r.take_u32()?;
        let inst = decode(word).map_err(|_| {
            SnapError::Corrupt(format!("undecodable committed instruction {word:#010x}"))
        })?;
        let reg_write = if r.take_bool()? {
            let idx = r.take_u8()?;
            let reg = Reg::from_index(idx).ok_or_else(|| {
                SnapError::Corrupt(format!("register index {idx} out of range"))
            })?;
            Some((reg, r.take_u64()?))
        } else {
            None
        };
        let store = if r.take_bool()? {
            Some((r.take_u64()?, r.take_u64()?, r.take_u64()?))
        } else {
            None
        };
        Ok(Commit {
            seq,
            pc,
            inst,
            reg_write,
            store,
            at: r.take_u64()?,
        })
    }
}

/// A cycle-level core model.
///
/// The simulation driver owns the memory system and advances each core
/// one cycle at a time, handing it a per-core [`MemBus`] (its private
/// port plus shared-residue access); cores keep their own cycle counters
/// (all cores in a system share the same clock, so drivers tick them in
/// lockstep). Cores are `Send` so CMP drivers can tick them from worker
/// threads; the bus's gating keeps parallel results byte-identical to
/// serial ones.
pub trait Core: Send {
    /// Advances the core by one clock cycle, issuing its memory traffic
    /// through `mem`.
    fn tick(&mut self, mem: &mut MemBus);

    /// Cycles elapsed so far.
    fn cycle(&self) -> Cycle;

    /// Instructions architecturally committed so far.
    fn retired(&self) -> u64;

    /// `true` once the program's `halt` has committed.
    fn halted(&self) -> bool;

    /// Moves the commits recorded since the last drain into `out`
    /// (appending, in program order). The hot-loop drivers own one
    /// reusable buffer and call this every cycle, so implementations must
    /// not allocate when there is nothing to drain.
    fn drain_commits_into(&mut self, out: &mut Vec<Commit>);

    /// Removes and returns the commits recorded since the last drain, in
    /// program order. Convenience wrapper over
    /// [`Core::drain_commits_into`] for tests and one-shot callers; the
    /// simulation drivers use the buffer-reusing form instead.
    fn drain_commits(&mut self) -> Vec<Commit> {
        let mut out = Vec::new();
        self.drain_commits_into(&mut out);
        out
    }

    /// The earliest future cycle at which ticking this core could do
    /// anything other than pure stall bookkeeping.
    ///
    /// Must be called only between ticks (after [`Core::tick`] and
    /// [`Core::drain_commits_into`]). A return value `t > self.cycle()`
    /// is a guarantee: for every cycle `c` in `[cycle(), t)`, `tick`
    /// would neither touch the memory system, nor fetch, issue, commit,
    /// replay, or roll back — it would only increment per-cycle stall
    /// counters. The driver may then call [`Core::skip_to`] with any
    /// target in `(cycle(), t]` and obtain a run that is cycle-for-cycle
    /// identical (committed instructions, cycles, and all counters) to
    /// the unskipped one.
    ///
    /// Returning `self.cycle()` means "no skip is provably safe"; that is
    /// the default, so custom cores stay correct without opting in.
    fn next_event_cycle(&self) -> Cycle {
        self.cycle()
    }

    /// Advances the clock to `target` without ticking, bulk-crediting
    /// exactly the stall counters the skipped ticks would have
    /// incremented. Callers must only pass targets that
    /// [`Core::next_event_cycle`] vouched for; the default implementation
    /// pairs with the default `next_event_cycle` (which never vouches for
    /// anything) and therefore panics if reached.
    fn skip_to(&mut self, target: Cycle) {
        panic!(
            "{}: skip_to({target}) called but next_event_cycle() was not overridden",
            self.model_name()
        );
    }

    /// Clock-gates the core: advances its clock to `target` without
    /// fetching, issuing, committing, or touching the memory system — the
    /// WFI/power-gate analogue for service-style drivers whose cores have
    /// no work queued (see `sst-sim`'s `WorkSource` driver).
    ///
    /// Unlike [`Core::skip_to`], this is *not* transparent: the gated
    /// window is dead time by construction, not provably-inert stall
    /// cycles, so no stall counters are credited and `target` needs no
    /// `next_event_cycle` vouching. In-flight absolute-cycle state (an
    /// outstanding I-miss, a timed register) keeps aging across the gate,
    /// exactly as on hardware whose caches keep running while the pipeline
    /// clock is held. Callers must only gate a core they then resume at
    /// `target` (all cores of a chip share one clock). A `target` at or
    /// before the current cycle is a no-op.
    ///
    /// The default panics: drivers may only gate cores that opted in.
    fn gate_to(&mut self, target: Cycle) {
        panic!(
            "{}: gate_to({target}) called but the model does not support clock gating",
            self.model_name()
        );
    }

    /// The core's index in the shared memory system.
    fn core_id(&self) -> usize;

    /// A short human-readable model name ("in-order", "sst", ...).
    fn model_name(&self) -> &'static str;

    /// Model-specific counters as `(name, value)` pairs, in a stable
    /// display order. Names are shared across models where the concept is
    /// the same (`stall_frontend`, `mispredicts`, ...) so downstream
    /// tables can line models up side by side. The default is empty for
    /// cores that expose nothing beyond [`Core::retired`]/[`Core::cycle`].
    fn counters(&self) -> Vec<(&'static str, u64)> {
        Vec::new()
    }

    /// The speculative-leakage summary collected by the model's taint
    /// layer, when one is enabled (see [`crate::TaintState`]). Reported
    /// out of band of [`Core::counters`] deliberately: enabling the
    /// taint layer must never perturb a run's `RunResult`, and the
    /// equivalence suite compares those byte-for-byte. The default
    /// (`None`) covers models with no speculation — an in-order core has
    /// nothing to leak — and models running with the layer disabled.
    fn leakage(&self) -> Option<&crate::LeakageSummary> {
        None
    }

    /// The per-phase cycle table: how many cycles the core has spent in
    /// each pipeline phase (see [`sst_obs::Phase`]). The invariant —
    /// enforced by the trace-equivalence suite — is that the rows sum
    /// exactly to [`Core::cycle`], however the clock advanced (ticks,
    /// [`Core::skip_to`], or [`Core::gate_to`]). The default covers
    /// non-speculating cores: every cycle is `normal`.
    fn phases(&self) -> sst_obs::PhaseTable {
        let mut t = sst_obs::PhaseTable::new();
        t.add(sst_obs::Phase::Normal, self.cycle());
        t
    }

    /// Enables (or disables) typed event tracing into an internal
    /// [`sst_obs::TraceBuf`]. The event-sink contract is the taint
    /// layer's, verbatim: tracing is record-only, so an enabled run's
    /// `RunResult` is byte-identical to a disabled one (enforced by
    /// `crates/sim/tests/trace_equiv.rs`). The default is a no-op for
    /// cores that emit nothing; they still trace their phase track via
    /// the driver-side [`Core::phases`] table.
    fn set_trace(&mut self, on: bool) {
        let _ = on;
    }

    /// Takes the recorded trace, leaving tracing disabled. `None` when
    /// tracing was never enabled or the core emits nothing.
    fn take_trace(&mut self) -> Option<sst_obs::TraceBuf> {
        None
    }

    /// Enables (or disables) host-side self-profiling: scoped wall-time
    /// timers around the core's fetch/decode/issue/replay stages (see
    /// [`sst_obs::HostTimes`]). Record-only, like tracing: a profiled
    /// run's `RunResult` is byte-identical to an unprofiled one. The
    /// default is a no-op.
    fn set_host_prof(&mut self, on: bool) {
        let _ = on;
    }

    /// The accumulated host stage times, when profiling is enabled.
    fn host_times(&self) -> Option<&sst_obs::HostTimes> {
        None
    }

    /// Serializes the core's complete mutable state — frontend, register
    /// images, checkpoints, queues, counters — so the run can later be
    /// [`Core::restore_state`]d into a freshly built core of the same
    /// model/configuration and continue byte-identically. Observability
    /// attachments (trace, host profile, taint) are excluded: they are
    /// record-only and restored runs start with them off.
    ///
    /// # Errors
    ///
    /// The default reports [`SnapError::Unsupported`]; models opt in.
    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        let _ = w;
        Err(SnapError::Unsupported(self.model_name()))
    }

    /// Restores state written by [`Core::save_state`] on a core built
    /// with the same configuration over the same program.
    ///
    /// # Errors
    ///
    /// [`SnapError`] on truncated, corrupt, or mismatched input; the
    /// core must not be ticked after a failed restore.
    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let _ = r;
        Err(SnapError::Unsupported(self.model_name()))
    }

    /// Warm-boots the core at an architectural point: squashes *all*
    /// speculative state (epochs, deferred queues, store buffers, ROB),
    /// loads `regs` as the committed register file, and redirects fetch
    /// to `pc` penalty-free — while **keeping** learned microarchitectural
    /// warmth (branch-predictor tables, decoded-text caches). The cycle
    /// counter keeps running monotonically; sampled simulation measures
    /// per-interval cycles as deltas around these teleports.
    ///
    /// The default panics: sampling drivers only warm-boot models that
    /// opted in.
    fn warm_boot(&mut self, regs: &[u64; NUM_REGS], pc: u64) {
        let _ = (regs, pc);
        panic!("{}: warm_boot is not supported by this model", self.model_name());
    }

    /// Trains the branch predictor with one architecturally executed
    /// control transfer during functional warming (no timing, no fetch).
    /// `taken` reflects the architectural outcome and `next_pc` its
    /// target. The default is a no-op for predictor-less models.
    fn warm_predictor(&mut self, pc: u64, inst: Inst, taken: bool, next_pc: u64) {
        let _ = (pc, inst, taken, next_pc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_is_plain_data() {
        let c = Commit {
            seq: 1,
            pc: 0x1000,
            inst: Inst::Halt,
            reg_write: None,
            store: None,
            at: 5,
        };
        let d = c;
        assert_eq!(c, d);
    }
}
