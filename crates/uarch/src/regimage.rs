//! Register images with NT bits — the SST checkpoint substrate.

use sst_isa::{Reg, SnapError, SnapReader, SnapWriter, NUM_REGS};
use sst_mem::Cycle;

use crate::Seq;

/// One architectural register as the SST hardware sees it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[derive(Default)]
pub struct RegSlot {
    /// Current (possibly speculative) value. Meaningless while `nt` is set.
    pub value: u64,
    /// "Not there": the value belongs to a deferred instruction that has
    /// not produced it yet.
    pub nt: bool,
    /// Sequence number of the last instruction that wrote (or deferred a
    /// write to) this register. Implements ROCK's merge rule: a replayed
    /// write lands only if its sequence still matches.
    pub writer: Seq,
    /// Cycle at which the value becomes readable (execution latency).
    pub ready_at: Cycle,
}


/// A full 64-register image with NT bits.
///
/// This is both the live speculative register file of a core and the
/// payload of a [`Checkpoint`]. `x0` reads as zero and ignores writes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegImage {
    slots: [RegSlot; NUM_REGS],
}

impl RegImage {
    /// A zeroed image (all values 0, nothing NT, everything ready).
    pub fn new() -> RegImage {
        RegImage {
            slots: [RegSlot::default(); NUM_REGS],
        }
    }

    /// Reads the slot for `r`.
    pub fn slot(&self, r: Reg) -> &RegSlot {
        &self.slots[r.index()]
    }

    /// Reads `r`'s value (only meaningful when not NT).
    pub fn value(&self, r: Reg) -> u64 {
        self.slots[r.index()].value
    }

    /// `true` if `r` is marked not-there.
    pub fn is_nt(&self, r: Reg) -> bool {
        self.slots[r.index()].nt
    }

    /// Cycle at which `r` becomes readable.
    pub fn ready_at(&self, r: Reg) -> Cycle {
        self.slots[r.index()].ready_at
    }

    /// Writes a produced value: clears NT, tags the writer, sets readiness.
    pub fn write(&mut self, r: Reg, value: u64, writer: Seq, ready_at: Cycle) {
        if r.is_zero() {
            return;
        }
        self.slots[r.index()] = RegSlot {
            value,
            nt: false,
            writer,
            ready_at,
        };
    }

    /// Marks `r` not-there, owned by deferred instruction `writer`.
    pub fn mark_nt(&mut self, r: Reg, writer: Seq) {
        if r.is_zero() {
            return;
        }
        let s = &mut self.slots[r.index()];
        s.nt = true;
        s.writer = writer;
    }

    /// ROCK's merge rule: deliver a deferred result produced by `writer`.
    /// The value lands only if the register is still NT **and** still owned
    /// by that writer (no younger instruction overwrote it). Returns whether
    /// the merge landed.
    pub fn merge(&mut self, r: Reg, value: u64, writer: Seq, ready_at: Cycle) -> bool {
        if r.is_zero() {
            return false;
        }
        let s = &mut self.slots[r.index()];
        if s.nt && s.writer == writer {
            *s = RegSlot {
                value,
                nt: false,
                writer,
                ready_at,
            };
            true
        } else {
            false
        }
    }

    /// Number of registers currently marked NT.
    pub fn nt_count(&self) -> usize {
        self.slots.iter().filter(|s| s.nt).count()
    }

    /// Number of NT registers owned by producers at or past `from` — the
    /// slots a rollback restoring to `from` is about to discard (the
    /// taint sweep counts them before the image is replaced).
    pub fn nt_owned_since(&self, from: Seq) -> usize {
        self.slots.iter().filter(|s| s.nt && s.writer >= from).count()
    }

    /// Latest `ready_at` among the given source registers (`x0` is always
    /// ready).
    pub fn ready_after(&self, sources: [Option<Reg>; 2]) -> Cycle {
        sources
            .iter()
            .flatten()
            .map(|r| self.ready_at(*r))
            .max()
            .unwrap_or(0)
    }

    /// `true` if any of the given sources is NT.
    pub fn any_nt(&self, sources: [Option<Reg>; 2]) -> bool {
        sources.iter().flatten().any(|r| self.is_nt(*r))
    }

    /// Copies only the architectural values into a plain array (for
    /// co-simulation comparison and debugging).
    pub fn values(&self) -> [u64; NUM_REGS] {
        let mut out = [0u64; NUM_REGS];
        for (i, s) in self.slots.iter().enumerate() {
            out[i] = s.value;
        }
        out
    }

    /// Serializes every slot (value, NT bit, writer tag, readiness).
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.tag("RIMG");
        for s in &self.slots {
            w.put_u64(s.value);
            w.put_bool(s.nt);
            w.put_u64(s.writer);
            w.put_u64(s.ready_at);
        }
    }

    /// Restores state written by [`RegImage::save_state`].
    ///
    /// # Errors
    ///
    /// [`SnapError`] on truncated or corrupt input.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.tag("RIMG")?;
        for s in self.slots.iter_mut() {
            s.value = r.take_u64()?;
            s.nt = r.take_bool()?;
            s.writer = r.take_u64()?;
            s.ready_at = r.take_u64()?;
        }
        Ok(())
    }
}

impl Default for RegImage {
    fn default() -> RegImage {
        RegImage::new()
    }
}

/// A hardware checkpoint: the register image and fetch point to restore on
/// speculation failure, plus the sequence number where the checkpointed
/// epoch begins.
///
/// This structure is the paper's pivotal cost claim: an SST core needs a
/// handful of these (ROCK: enough for two speculative epochs) *instead of*
/// rename tables, a reorder buffer, and a large issue window.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    /// Register image at checkpoint creation.
    pub image: RegImage,
    /// PC to refetch from after a rollback.
    pub pc: u64,
    /// First sequence number belonging to the checkpointed epoch.
    pub start_seq: Seq,
    /// Cycle the checkpoint was taken (diagnostics).
    pub taken_at: Cycle,
}

impl Checkpoint {
    /// Snapshots `image` at `pc`.
    pub fn take(image: &RegImage, pc: u64, start_seq: Seq, taken_at: Cycle) -> Checkpoint {
        Checkpoint {
            image: image.clone(),
            pc,
            start_seq,
            taken_at,
        }
    }

    /// Serializes the checkpoint (image + restore point).
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.tag("CKPT");
        self.image.save_state(w);
        w.put_u64(self.pc);
        w.put_u64(self.start_seq);
        w.put_u64(self.taken_at);
    }

    /// Reads a checkpoint written by [`Checkpoint::save_state`].
    ///
    /// # Errors
    ///
    /// [`SnapError`] on truncated or corrupt input.
    pub fn load(r: &mut SnapReader<'_>) -> Result<Checkpoint, SnapError> {
        r.tag("CKPT")?;
        let mut image = RegImage::new();
        image.restore_state(r)?;
        Ok(Checkpoint {
            image,
            pc: r.take_u64()?,
            start_seq: r.take_u64()?,
            taken_at: r.take_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x0_is_immutable() {
        let mut im = RegImage::new();
        im.write(Reg::ZERO, 99, 1, 5);
        im.mark_nt(Reg::ZERO, 2);
        assert_eq!(im.value(Reg::ZERO), 0);
        assert!(!im.is_nt(Reg::ZERO));
        assert!(!im.merge(Reg::ZERO, 1, 2, 0));
    }

    #[test]
    fn write_clears_nt() {
        let mut im = RegImage::new();
        im.mark_nt(Reg::x(5), 10);
        assert!(im.is_nt(Reg::x(5)));
        im.write(Reg::x(5), 42, 11, 7);
        assert!(!im.is_nt(Reg::x(5)));
        assert_eq!(im.value(Reg::x(5)), 42);
        assert_eq!(im.ready_at(Reg::x(5)), 7);
    }

    #[test]
    fn merge_lands_only_for_matching_writer() {
        let mut im = RegImage::new();
        im.mark_nt(Reg::x(3), 10);
        // Wrong writer: no effect.
        assert!(!im.merge(Reg::x(3), 1, 9, 0));
        assert!(im.is_nt(Reg::x(3)));
        // Matching writer: lands.
        assert!(im.merge(Reg::x(3), 77, 10, 100));
        assert!(!im.is_nt(Reg::x(3)));
        assert_eq!(im.value(Reg::x(3)), 77);
    }

    #[test]
    fn merge_respects_younger_overwrite() {
        let mut im = RegImage::new();
        im.mark_nt(Reg::x(3), 10);
        im.write(Reg::x(3), 5, 20, 0); // younger instruction overwrites
        assert!(!im.merge(Reg::x(3), 77, 10, 0), "stale deferred write");
        assert_eq!(im.value(Reg::x(3)), 5);
    }

    #[test]
    fn merge_respects_younger_nt_overwrite() {
        let mut im = RegImage::new();
        im.mark_nt(Reg::x(3), 10);
        im.mark_nt(Reg::x(3), 20); // a younger deferred write now owns it
        assert!(!im.merge(Reg::x(3), 77, 10, 0));
        assert!(im.is_nt(Reg::x(3)), "still waiting on seq 20");
        assert!(im.merge(Reg::x(3), 88, 20, 0));
        assert_eq!(im.value(Reg::x(3)), 88);
    }

    #[test]
    fn source_queries() {
        let mut im = RegImage::new();
        im.write(Reg::x(1), 1, 1, 50);
        im.mark_nt(Reg::x(2), 2);
        assert!(im.any_nt([Some(Reg::x(1)), Some(Reg::x(2))]));
        assert!(!im.any_nt([Some(Reg::x(1)), None]));
        assert_eq!(im.ready_after([Some(Reg::x(1)), None]), 50);
        assert_eq!(im.ready_after([None, None]), 0);
        assert_eq!(im.nt_count(), 1);
    }

    #[test]
    fn checkpoint_restores_prior_state() {
        let mut im = RegImage::new();
        im.write(Reg::x(1), 111, 1, 0);
        let ck = Checkpoint::take(&im, 0x4000, 2, 10);
        im.write(Reg::x(1), 222, 3, 0);
        im.mark_nt(Reg::x(2), 4);
        // Restore.
        let restored = ck.image.clone();
        assert_eq!(restored.value(Reg::x(1)), 111);
        assert!(!restored.is_nt(Reg::x(2)));
        assert_eq!(ck.pc, 0x4000);
        assert_eq!(ck.start_seq, 2);
    }
}
