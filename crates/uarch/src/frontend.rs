//! Fetch + decode frontend with branch prediction.
//!
//! Every core model uses this same frontend, so fetch bandwidth and
//! prediction quality are identical across the SST study's comparisons.
//! The frontend fetches up to `width` instructions per cycle from the L1I
//! (stalling on I-cache misses), decodes them, predicts control flow, and
//! queues [`FetchedInst`]s for the core to consume.

use std::collections::VecDeque;

use sst_branch::{BranchKind, BranchUnit, Prediction, PredictorKind};
use sst_isa::{
    decode, encode, Inst, Program, Reg, SnapError, SnapReader, SnapWriter, INST_BYTES,
};
use sst_mem::{AccessKind, Cycle, MemBus};

/// Frontend configuration.
#[derive(Clone, Copy, Debug)]
pub struct FrontendConfig {
    /// Instructions fetched per cycle.
    pub width: usize,
    /// Decode-queue depth.
    pub queue_depth: usize,
    /// Direction predictor.
    pub predictor: PredictorKind,
    /// BTB entries (power of two).
    pub btb_entries: usize,
    /// Return-address-stack depth.
    pub ras_depth: usize,
    /// Bubble cycles charged on every redirect (pipeline refill).
    pub redirect_penalty: Cycle,
    /// Decode each text-segment instruction once and replay the cached
    /// [`Inst`] on later fetches of the same PC. Purely an implementation
    /// speedup: the timing path (I-cache access per line) is unchanged, so
    /// runs with the cache on and off are byte-identical. Off exists for
    /// the equivalence suite.
    pub decode_cache: bool,
}

impl Default for FrontendConfig {
    fn default() -> FrontendConfig {
        FrontendConfig {
            width: 2,
            queue_depth: 16,
            predictor: PredictorKind::Gshare { bits: 13 },
            btb_entries: 1024,
            ras_depth: 8,
            redirect_penalty: 6,
            decode_cache: true,
        }
    }
}

/// A fetched, decoded, direction-predicted instruction.
#[derive(Clone, Copy, Debug)]
pub struct FetchedInst {
    /// PC of the instruction.
    pub pc: u64,
    /// The decoded instruction.
    pub inst: Inst,
    /// Predicted direction (always `true` for unconditional control,
    /// meaningless for non-control).
    pub pred_taken: bool,
    /// The PC fetch continued at after this instruction.
    pub pred_next_pc: u64,
    /// Direction-predictor confidence at fetch time (`true` for
    /// non-control and unconditional instructions).
    pub pred_confident: bool,
}

/// Classifies a control instruction for the branch unit.
pub(crate) fn branch_kind(inst: Inst) -> Option<BranchKind> {
    match inst {
        Inst::Branch { .. } => Some(BranchKind::Conditional),
        Inst::Jal { rd, .. } => {
            if rd == Reg::LINK {
                Some(BranchKind::IndirectCall) // call: pushes the RAS
            } else {
                Some(BranchKind::Direct)
            }
        }
        Inst::Jalr { rd, base, .. } => {
            if base == Reg::LINK && rd != Reg::LINK {
                Some(BranchKind::Return)
            } else if rd == Reg::LINK {
                Some(BranchKind::IndirectCall)
            } else {
                Some(BranchKind::Indirect)
            }
        }
        _ => None,
    }
}

/// The fetch/decode engine.
pub struct Frontend {
    cfg: FrontendConfig,
    unit: BranchUnit,
    fetch_pc: u64,
    queue: VecDeque<FetchedInst>,
    stalled_until: Cycle,
    /// Waiting for an indirect target the BTB/RAS could not supply; cleared
    /// by [`Frontend::redirect`].
    waiting_indirect: bool,
    /// Fetched undecodable bytes (deep wrong-path); cleared by redirect.
    bad_path: bool,
    /// Fetched a `halt`; stop until redirected.
    saw_halt: bool,
    /// PC of the fetched `halt` (set with `saw_halt`, cleared by redirect).
    halt_pc: Option<u64>,
    /// Base PC of the program's text segment (decode-cache index origin).
    text_base: u64,
    /// Decode-once cache: one slot per text-segment instruction, indexed by
    /// `(pc - text_base) / 4`, filled lazily on first decode. Empty when
    /// [`FrontendConfig::decode_cache`] is off. There is no self-modifying
    ///-code path in this machine (speculative stores drain only at epoch
    /// commit, and no workload writes its own text), so entries stay valid
    /// for the life of the run; [`Frontend::invalidate_decoded`] is the
    /// hook an SMC path would have to call.
    decoded: Vec<Option<Inst>>,
    /// The I-line held in the fetch buffer: fetch re-accesses the I-cache
    /// only when it leaves this line (one timing access per line, as a
    /// real fetch buffer behaves), not once per cycle. Invalidated by
    /// [`Frontend::redirect`] so a resteer always re-checks the cache.
    fetch_line: Option<u64>,
    /// Fetch-cycle statistics.
    pub fetched_insts: u64,
    /// Cycles fetch was blocked on the I-cache.
    pub icache_stall_cycles: u64,
}

impl Frontend {
    /// Creates a frontend fetching from `program.entry`, with the decode
    /// cache sized to the program's text segment.
    pub fn new(cfg: FrontendConfig, program: &Program) -> Frontend {
        let slots = if cfg.decode_cache {
            program.len_insts()
        } else {
            0
        };
        Frontend {
            unit: BranchUnit::new(cfg.predictor, cfg.btb_entries, cfg.ras_depth),
            cfg,
            fetch_pc: program.entry,
            queue: VecDeque::new(),
            stalled_until: 0,
            waiting_indirect: false,
            bad_path: false,
            saw_halt: false,
            halt_pc: None,
            text_base: program.text_base,
            decoded: vec![None; slots],
            fetch_line: None,
            fetched_insts: 0,
            icache_stall_cycles: 0,
        }
    }

    /// Decode-cache slot for `pc`, if `pc` is a cacheable text-segment
    /// instruction address.
    fn decoded_slot(&self, pc: u64) -> Option<usize> {
        let off = pc.wrapping_sub(self.text_base);
        if off % INST_BYTES != 0 {
            return None;
        }
        let idx = (off / INST_BYTES) as usize;
        (idx < self.decoded.len()).then_some(idx)
    }

    /// Drops the cached decode for `pc` (the self-modifying-code hook; no
    /// current core path stores into text, so nothing calls this today).
    pub fn invalidate_decoded(&mut self, pc: u64) {
        if let Some(idx) = self.decoded_slot(pc) {
            self.decoded[idx] = None;
        }
    }

    /// The shared branch unit, for resolution training.
    pub fn branch_unit(&mut self) -> &mut BranchUnit {
        &mut self.unit
    }

    /// Read-only view of the branch unit, for statistics reporting.
    pub fn branch_unit_ref(&self) -> &BranchUnit {
        &self.unit
    }

    /// Instructions currently queued for the core.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// `true` if fetch is blocked waiting for an unpredictable indirect
    /// target (the core must resolve the jump and redirect).
    pub fn waiting_indirect(&self) -> bool {
        self.waiting_indirect
    }

    /// Next instruction without consuming it.
    pub fn peek(&self) -> Option<&FetchedInst> {
        self.queue.front()
    }

    /// The PC at which in-order execution will continue: the next queued
    /// instruction, or the fetch PC if the queue is empty. `None` when the
    /// continuation is unknown (fetch parked on undecodable wrong-path
    /// bytes). SST cores checkpoint at this PC when closing an epoch.
    ///
    /// When fetch has stopped on a `halt`, the continuation is the halt
    /// itself — never a PC past it. With the halt still queued that falls
    /// out of the first arm; once the core has consumed it the recorded
    /// halt PC is returned explicitly, so an epoch closing at that moment
    /// checkpoints at the halt (a rollback then re-fetches and re-commits
    /// it) rather than at whatever `fetch_pc` happens to hold.
    pub fn resume_pc(&self) -> Option<u64> {
        if let Some(f) = self.queue.front() {
            Some(f.pc)
        } else if self.saw_halt {
            self.halt_pc
        } else if self.bad_path || self.waiting_indirect {
            None
        } else {
            Some(self.fetch_pc)
        }
    }

    /// Consumes the next instruction.
    pub fn pop(&mut self) -> Option<FetchedInst> {
        self.queue.pop_front()
    }

    /// Fetches up to `width` instructions this cycle, through the core's
    /// memory bus.
    pub fn tick(&mut self, now: Cycle, mem: &mut MemBus) {
        if now < self.stalled_until {
            self.icache_stall_cycles += 1;
            return;
        }
        if self.waiting_indirect || self.bad_path || self.saw_halt {
            return;
        }
        let line_bytes = mem.line_bytes();

        for _ in 0..self.cfg.width {
            if self.queue.len() >= self.cfg.queue_depth {
                break;
            }
            let pc = self.fetch_pc;
            let line = pc & !(line_bytes - 1);
            if self.fetch_line != Some(line) {
                let out = mem.access(now, AccessKind::IFetch, pc);
                if out.ready_at > now + mem.config().l1_latency {
                    // I-cache miss: resume when the line arrives. The
                    // detection cycle is itself a blocked fetch cycle, so
                    // it is charged here; `tick` charges the remaining
                    // `(now, stalled_until)` window one cycle at a time
                    // (and `note_skipped` bulk-credits the same window),
                    // for a total of `stalled_until - now` per miss.
                    self.stalled_until = out.ready_at;
                    self.icache_stall_cycles += 1;
                    return;
                }
                self.fetch_line = Some(line);
            }

            let slot = self.decoded_slot(pc);
            let inst = match slot.and_then(|i| self.decoded[i]) {
                Some(i) => i,
                None => {
                    let word = mem.read(pc, 4) as u32;
                    match decode(word) {
                        Ok(i) => {
                            if let Some(s) = slot {
                                self.decoded[s] = Some(i);
                            }
                            i
                        }
                        Err(_) => {
                            // Wrong-path fetch into non-text bytes; park
                            // until the core redirects.
                            self.bad_path = true;
                            return;
                        }
                    }
                }
            };

            let (pred_taken, pred_next_pc, pred_confident) = match branch_kind(inst) {
                None => (false, pc.wrapping_add(INST_BYTES), true),
                Some(kind) => {
                    let p: Prediction = self.unit.predict(pc, kind);
                    match inst {
                        Inst::Branch { .. } => {
                            let target = inst.direct_target(pc).expect("direct");
                            if p.taken {
                                (true, target, p.confident)
                            } else {
                                (false, pc.wrapping_add(INST_BYTES), p.confident)
                            }
                        }
                        Inst::Jal { .. } => {
                            (true, inst.direct_target(pc).expect("direct"), true)
                        }
                        Inst::Jalr { .. } => match p.target {
                            Some(t) => (true, t, true),
                            None => {
                                // No predicted target: enqueue the jump and
                                // block fetch until resolution.
                                self.queue.push_back(FetchedInst {
                                    pc,
                                    inst,
                                    pred_taken: true,
                                    pred_next_pc: 0,
                                    pred_confident: false,
                                });
                                self.fetched_insts += 1;
                                self.waiting_indirect = true;
                                return;
                            }
                        },
                        _ => unreachable!("branch_kind covers only control"),
                    }
                }
            };

            self.queue.push_back(FetchedInst {
                pc,
                inst,
                pred_taken,
                pred_next_pc,
                pred_confident,
            });
            self.fetched_insts += 1;

            if inst == Inst::Halt {
                self.saw_halt = true;
                self.halt_pc = Some(pc);
                return;
            }
            self.fetch_pc = pred_next_pc;
        }
    }

    /// The earliest cycle at which [`Frontend::tick`] could fetch again,
    /// assuming the core consumes nothing in the meantime. `Cycle::MAX`
    /// when fetch is parked on something only the core can clear (an
    /// unresolved indirect, wrong-path bytes, a fetched `halt`, or a full
    /// queue); the end of the current I-cache stall otherwise; `now` when
    /// fetch can proceed immediately.
    pub fn next_fetch_cycle(&self, now: Cycle) -> Cycle {
        if self.waiting_indirect
            || self.bad_path
            || self.saw_halt
            || self.queue.len() >= self.cfg.queue_depth
        {
            return Cycle::MAX;
        }
        self.stalled_until.max(now)
    }

    /// Bulk-credits the per-cycle bookkeeping [`Frontend::tick`] performs
    /// for skipped cycles `[from, to)`: one `icache_stall_cycles` for each
    /// cycle still inside the I-cache stall window. (The stall check runs
    /// before the parked-flag checks in `tick`, so the credit applies even
    /// while fetch is also parked.)
    pub fn note_skipped(&mut self, from: Cycle, to: Cycle) {
        if from < self.stalled_until {
            self.icache_stall_cycles += self.stalled_until.min(to) - from;
        }
    }

    /// Flushes the queue and restarts fetch at `pc` after the redirect
    /// penalty. Clears indirect/bad-path/halt blocks and conservatively
    /// repairs the RAS.
    pub fn redirect(&mut self, now: Cycle, pc: u64) {
        self.queue.clear();
        self.fetch_pc = pc;
        self.stalled_until = self.stalled_until.max(now + self.cfg.redirect_penalty);
        self.waiting_indirect = false;
        self.bad_path = false;
        self.saw_halt = false;
        self.halt_pc = None;
        self.fetch_line = None;
        self.unit.repair_ras();
    }

    /// Trains the branch unit with a resolved control instruction.
    pub fn resolve(&mut self, pc: u64, inst: Inst, taken: bool, target: u64) {
        if let Some(kind) = branch_kind(inst) {
            self.unit.update(pc, kind, taken, target);
        }
    }

    /// Squashes all in-flight fetch state and restarts fetch at `pc` with
    /// no redirect penalty, **keeping** learned warmth (predictor tables,
    /// decode cache). Sampled simulation uses this to teleport between
    /// measurement intervals; a normal misprediction recovery uses
    /// [`Frontend::redirect`] instead.
    pub fn warm_reset(&mut self, pc: u64) {
        self.queue.clear();
        self.fetch_pc = pc;
        self.stalled_until = 0;
        self.waiting_indirect = false;
        self.bad_path = false;
        self.saw_halt = false;
        self.halt_pc = None;
        self.fetch_line = None;
        self.unit.repair_ras();
    }

    /// Serializes all mutable fetch state — queue contents, park flags,
    /// stall window, and the branch unit's tables — for snapshotting. The
    /// decode cache is deliberately excluded: it is a pure implementation
    /// speedup refilled lazily on the restored side, with identical timing.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.tag("FRNT");
        w.put_u64(self.fetch_pc);
        w.put_u64(self.stalled_until);
        w.put_bool(self.waiting_indirect);
        w.put_bool(self.bad_path);
        w.put_bool(self.saw_halt);
        w.put_opt_u64(self.halt_pc);
        w.put_opt_u64(self.fetch_line);
        w.put_u64(self.fetched_insts);
        w.put_u64(self.icache_stall_cycles);
        w.put_usize(self.queue.len());
        for f in &self.queue {
            w.put_u64(f.pc);
            w.put_u32(encode(f.inst).expect("fetched instruction re-encodes"));
            w.put_bool(f.pred_taken);
            w.put_u64(f.pred_next_pc);
            w.put_bool(f.pred_confident);
        }
        let mut dir = Vec::new();
        self.unit.direction_dump(&mut dir);
        w.put_bytes(&dir);
        let btb = self.unit.btb().entries();
        w.put_usize(btb.len());
        for e in btb {
            match e {
                Some((tag, target)) => {
                    w.put_bool(true);
                    w.put_u64(*tag);
                    w.put_u64(*target);
                }
                None => w.put_bool(false),
            }
        }
        let (stack, top, len) = self.unit.ras().raw_state();
        w.put_usize(stack.len());
        for &v in stack {
            w.put_u64(v);
        }
        w.put_usize(top);
        w.put_usize(len);
        w.put_u64(self.unit.cond_predictions);
        w.put_u64(self.unit.cond_mispredictions);
        w.put_u64(self.unit.target_mispredictions);
    }

    /// Restores state written by [`Frontend::save_state`] on a frontend
    /// built with the same configuration over the same program.
    ///
    /// # Errors
    ///
    /// [`SnapError`] on truncated, corrupt, or shape-mismatched input.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.tag("FRNT")?;
        self.fetch_pc = r.take_u64()?;
        self.stalled_until = r.take_u64()?;
        self.waiting_indirect = r.take_bool()?;
        self.bad_path = r.take_bool()?;
        self.saw_halt = r.take_bool()?;
        self.halt_pc = r.take_opt_u64()?;
        self.fetch_line = r.take_opt_u64()?;
        self.fetched_insts = r.take_u64()?;
        self.icache_stall_cycles = r.take_u64()?;
        let n = r.take_usize()?;
        if n > self.cfg.queue_depth {
            return Err(SnapError::Corrupt(format!(
                "frontend queue length {n} exceeds depth {}",
                self.cfg.queue_depth
            )));
        }
        self.queue.clear();
        for _ in 0..n {
            let pc = r.take_u64()?;
            let word = r.take_u32()?;
            let inst = decode(word).map_err(|_| {
                SnapError::Corrupt(format!("undecodable queued instruction {word:#010x}"))
            })?;
            let pred_taken = r.take_bool()?;
            let pred_next_pc = r.take_u64()?;
            let pred_confident = r.take_bool()?;
            self.queue.push_back(FetchedInst {
                pc,
                inst,
                pred_taken,
                pred_next_pc,
                pred_confident,
            });
        }
        let dir = r.take_bytes()?;
        if !self.unit.direction_load(&dir) {
            return Err(SnapError::Mismatch(
                "direction-predictor state does not fit the configured predictor".into(),
            ));
        }
        let btb_n = r.take_usize()?;
        if btb_n != self.unit.btb().entries().len() {
            return Err(SnapError::Mismatch(format!(
                "BTB entry count {btb_n} != configured {}",
                self.unit.btb().entries().len()
            )));
        }
        let mut entries = Vec::with_capacity(btb_n);
        for _ in 0..btb_n {
            entries.push(if r.take_bool()? {
                Some((r.take_u64()?, r.take_u64()?))
            } else {
                None
            });
        }
        if !self.unit.btb_mut().set_entries(&entries) {
            return Err(SnapError::Mismatch("BTB shape mismatch".into()));
        }
        let depth = r.take_usize()?;
        if depth != self.unit.ras().raw_state().0.len() {
            return Err(SnapError::Mismatch(format!(
                "RAS depth {depth} != configured {}",
                self.unit.ras().raw_state().0.len()
            )));
        }
        let mut stack = vec![0u64; depth];
        for slot in stack.iter_mut() {
            *slot = r.take_u64()?;
        }
        let top = r.take_usize()?;
        let len = r.take_usize()?;
        if !self.unit.ras_mut().set_raw_state(&stack, top, len) {
            return Err(SnapError::Corrupt(format!(
                "RAS state (top {top}, len {len}) inconsistent with depth {depth}"
            )));
        }
        self.unit.cond_predictions = r.take_u64()?;
        self.unit.cond_mispredictions = r.take_u64()?;
        self.unit.target_mispredictions = r.take_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sst_isa::{Asm, Reg};
    use sst_mem::{MemConfig, MemSystem};

    fn setup(asm: impl FnOnce(&mut Asm)) -> (Frontend, MemSystem) {
        let mut a = Asm::new();
        asm(&mut a);
        let p = a.finish().unwrap();
        let mut ms = MemSystem::new(&MemConfig::default(), 1);
        p.load_into(ms.mem_mut());
        let fe = Frontend::new(FrontendConfig::default(), &p);
        (fe, ms)
    }

    /// Runs ticks until `n` instructions are queued or `max` cycles pass.
    fn run_until(fe: &mut Frontend, ms: &mut MemSystem, n: usize, max: u64) -> u64 {
        let mut now = 0;
        while fe.queued() < n && now < max {
            fe.tick(now, &mut ms.bus(0));
            now += 1;
        }
        now
    }

    #[test]
    fn fetches_straight_line_code() {
        let (mut fe, mut ms) = setup(|a| {
            a.addi(Reg::x(1), Reg::ZERO, 1);
            a.addi(Reg::x(2), Reg::ZERO, 2);
            a.addi(Reg::x(3), Reg::ZERO, 3);
            a.halt();
        });
        run_until(&mut fe, &mut ms, 4, 1000);
        let i1 = fe.pop().unwrap();
        let i2 = fe.pop().unwrap();
        assert_eq!(i2.pc, i1.pc + 4);
        assert_eq!(i1.pred_next_pc, i2.pc);
        assert!(!i1.pred_taken);
    }

    #[test]
    fn first_fetch_pays_icache_miss() {
        let (mut fe, mut ms) = setup(|a| {
            a.nop();
            a.halt();
        });
        fe.tick(0, &mut ms.bus(0));
        assert_eq!(fe.queued(), 0, "cold I$ miss produces nothing");
        let cycles = run_until(&mut fe, &mut ms, 1, 10_000);
        assert!(cycles > 100, "stalled for the memory round trip");
    }

    #[test]
    fn icache_stall_count_includes_detection_cycle() {
        let (mut fe, mut ms) = setup(|a| {
            a.nop();
            a.halt();
        });
        let mut now = 0;
        while fe.queued() == 0 {
            fe.tick(now, &mut ms.bus(0));
            now += 1;
            assert!(now < 10_000, "fetch never unblocked");
        }
        // The first instruction arrived on cycle `now - 1`; every earlier
        // cycle was blocked on the cold I-cache miss, *including* the
        // detection cycle itself.
        assert_eq!(fe.icache_stall_cycles, now - 1);
        assert!(fe.icache_stall_cycles > 100, "cold miss went off-chip");
    }

    #[test]
    fn resume_pc_is_the_halt_even_after_pop() {
        let (mut fe, mut ms) = setup(|a| {
            a.nop();
            a.halt();
        });
        run_until(&mut fe, &mut ms, 2, 10_000);
        let halt_pc = fe.queue.back().unwrap().pc;
        assert_eq!(fe.resume_pc(), Some(fe.queue.front().unwrap().pc));
        fe.pop(); // nop
        assert_eq!(fe.resume_pc(), Some(halt_pc), "halt at queue head");
        let h = fe.pop().unwrap();
        assert_eq!(h.inst, Inst::Halt);
        assert_eq!(fe.queued(), 0);
        assert_eq!(
            fe.resume_pc(),
            Some(halt_pc),
            "continuation after consuming the halt is the halt itself"
        );
    }

    #[test]
    fn decode_cache_refetch_matches_and_invalidates() {
        let (mut fe, mut ms) = setup(|a| {
            a.addi(Reg::x(1), Reg::ZERO, 7);
            a.addi(Reg::x(2), Reg::x(1), 1);
            a.halt();
        });
        run_until(&mut fe, &mut ms, 3, 10_000);
        let first: Vec<_> = std::iter::from_fn(|| fe.pop()).collect();
        // Refetch the same PCs: now served from the decode cache.
        fe.redirect(20_000, first[0].pc);
        let mut now = 20_000;
        while fe.queued() < 3 && now < 30_000 {
            fe.tick(now, &mut ms.bus(0));
            now += 1;
        }
        let second: Vec<_> = std::iter::from_fn(|| fe.pop()).collect();
        assert_eq!(first.len(), second.len());
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.pc, b.pc);
            assert_eq!(a.inst, b.inst, "cached decode matches fresh decode");
        }
        // The SMC hook drops a slot; the next fetch re-decodes and refills.
        fe.invalidate_decoded(first[0].pc);
        fe.redirect(40_000, first[0].pc);
        let mut now = 40_000;
        while fe.queued() < 1 && now < 50_000 {
            fe.tick(now, &mut ms.bus(0));
            now += 1;
        }
        assert_eq!(fe.pop().unwrap().inst, first[0].inst);
    }

    #[test]
    fn follows_predicted_taken_jal() {
        let (mut fe, mut ms) = setup(|a| {
            let target = a.label();
            a.j(target); // idx 0
            a.nop(); // idx 1 (skipped)
            a.bind(target);
            a.halt(); // idx 2
        });
        run_until(&mut fe, &mut ms, 2, 10_000);
        let j = fe.pop().unwrap();
        let next = fe.pop().unwrap();
        assert!(j.pred_taken);
        assert_eq!(next.pc, j.pc + 8, "fetch skipped the dead instruction");
    }

    #[test]
    fn halt_stops_fetch() {
        let (mut fe, mut ms) = setup(|a| {
            a.halt();
            a.nop();
            a.nop();
        });
        run_until(&mut fe, &mut ms, 1, 10_000);
        let before = fe.fetched_insts;
        for now in 10_000..10_100 {
            fe.tick(now, &mut ms.bus(0));
        }
        assert_eq!(fe.fetched_insts, before, "no fetch past halt");
    }

    #[test]
    fn unpredicted_indirect_blocks_until_redirect() {
        let (mut fe, mut ms) = setup(|a| {
            a.jalr(Reg::ZERO, Reg::x(5), 0);
            a.nop();
            a.halt();
        });
        run_until(&mut fe, &mut ms, 1, 10_000);
        assert!(fe.waiting_indirect());
        let jr = fe.pop().unwrap();
        assert!(jr.inst.is_indirect());
        // Core resolves the target and redirects.
        fe.redirect(20_000, jr.pc + 4);
        assert!(!fe.waiting_indirect());
        run_until(&mut fe, &mut ms, 1, 30_000);
        assert!(fe.queued() >= 1);
    }

    #[test]
    fn redirect_flushes_and_penalizes() {
        let (mut fe, mut ms) = setup(|a| {
            for _ in 0..8 {
                a.nop();
            }
            a.halt();
        });
        run_until(&mut fe, &mut ms, 4, 10_000);
        assert!(fe.queued() >= 4);
        let restart = fe.peek().unwrap().pc;
        fe.redirect(10_000, restart);
        assert_eq!(fe.queued(), 0);
        // Nothing fetched during the penalty window.
        fe.tick(10_001, &mut ms.bus(0));
        assert_eq!(fe.queued(), 0);
        let mut now = 10_000;
        while fe.queued() == 0 && now < 11_000 {
            fe.tick(now, &mut ms.bus(0));
            now += 1;
        }
        assert!(now - 10_000 >= FrontendConfig::default().redirect_penalty);
    }

    #[test]
    fn conditional_training_changes_fetch_path() {
        // A loop branch: after training, fetch should follow the backedge.
        let (mut fe, mut ms) = setup(|a| {
            let top = a.here();
            a.addi(Reg::x(1), Reg::x(1), 1);
            a.bne(Reg::x(1), Reg::x(2), top);
            a.halt();
        });
        run_until(&mut fe, &mut ms, 2, 10_000);
        let _i = fe.pop().unwrap();
        let b = fe.pop().unwrap();
        assert!(b.inst.is_branch());
        // Train taken a few times and redirect to refetch the branch.
        for _ in 0..4 {
            fe.resolve(b.pc, b.inst, true, b.pc - 4);
        }
        fe.redirect(20_000, b.pc);
        let mut now = 20_000;
        while fe.queued() < 2 && now < 30_000 {
            fe.tick(now, &mut ms.bus(0));
            now += 1;
        }
        let b2 = fe.pop().unwrap();
        assert!(b2.pred_taken, "trained branch predicted taken");
        assert_eq!(b2.pred_next_pc, b.pc - 4);
    }

    #[test]
    fn call_then_return_uses_ras() {
        let (mut fe, mut ms) = setup(|a| {
            let f = a.label();
            a.call(f); // pc X
            a.halt(); // X+4 (return lands here)
            a.bind(f);
            a.ret();
        });
        run_until(&mut fe, &mut ms, 3, 10_000);
        let call = fe.pop().unwrap();
        let ret = fe.pop().unwrap();
        let after = fe.pop().unwrap();
        assert!(matches!(call.inst, Inst::Jal { .. }));
        assert!(matches!(ret.inst, Inst::Jalr { .. }));
        assert_eq!(
            after.pc,
            call.pc + 4,
            "RAS predicted the return to the call site"
        );
    }
}
