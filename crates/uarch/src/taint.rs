//! Speculation-taint tracking: what does failed speculation leave behind?
//!
//! Everything a core writes between checkpoint creation and rollback is
//! *tainted*: NT register slots, DQ operand captures, speculative store
//! buffer entries — and, the interesting part, memory-side residue the
//! rollback cannot undo: cache lines filled on behalf of squashed
//! instructions, branch-predictor state they trained, stride-prefetcher
//! state their accesses fed, and fills still in flight in the MSHRs.
//!
//! A [`TaintState`] records the speculative writes as they happen (keyed
//! by sequence number, so a partial rollback sweeps only its own epoch's
//! taint) and, on each rollback, sweeps the squashed range into a
//! [`LeakageRecord`]: how much state was discarded architecturally, and
//! how much microarchitectural residue *survives* the rollback. The
//! running [`LeakageSummary`] also maintains the **leaked footprint**:
//! the set of distinct cache lines left resident (or in flight) by
//! squashed speculation that architectural execution never demanded —
//! the classic transient-execution side channel surface (Colvin &
//! Winter's "speculative state that persists past abortion").
//!
//! The layer is strictly observational. Recording never touches timing
//! state, and the rollback sweep probes residency through the
//! non-mutating probe API ([`sst_mem::MemBus::probe_residency`]), so a
//! run with taint tracking enabled is byte-identical — cycles, commits,
//! counters, memory statistics — to one without it. The equivalence test
//! in `sst-sim` pins this.

use std::collections::{HashMap, HashSet};

use sst_mem::{Cycle, MemBus};

use crate::Seq;

/// What one rollback swept, and what survived it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LeakageRecord {
    /// Cycle of the rollback.
    pub at: Cycle,
    /// `true` for a scout (miss-return) rollback, `false` for a
    /// mispredicted deferred branch.
    pub scout: bool,
    /// Distinct cache lines touched by the squashed instructions.
    pub lines_swept: u64,
    /// Of those, lines still resident in the L1D or the shared L2 after
    /// the rollback — state the rollback cannot undo.
    pub lines_resident: u64,
    /// Of those, lines whose fill is still outstanding in an L1D or L2
    /// MSHR (the prefetches/fills "still in flight").
    pub lines_in_flight: u64,
    /// Branch-predictor updates performed by squashed instructions.
    pub predictor_updates: u64,
    /// Stride-prefetcher trainings performed by squashed demand accesses.
    pub prefetch_trainings: u64,
    /// NT register slots still owned by squashed producers at rollback.
    pub nt_squashed: u64,
    /// Deferred-queue entries squashed.
    pub dq_squashed: u64,
    /// Speculative store-buffer entries squashed.
    pub stb_squashed: u64,
}

/// Running totals over every rollback of a run, plus the distinct-line
/// leaked footprint. Exposed through [`crate::Core::leakage`] — *not*
/// through [`crate::Core::counters`], so enabling the taint layer can
/// never perturb a `RunResult`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LeakageSummary {
    /// Rollbacks swept (scout restarts + deferred-branch failures).
    pub rollbacks: u64,
    /// Total distinct-per-rollback lines swept.
    pub lines_swept: u64,
    /// Total lines found resident after their rollback.
    pub lines_resident: u64,
    /// Total lines with fills still in flight at their rollback.
    pub lines_in_flight: u64,
    /// Total squashed branch-predictor updates.
    pub predictor_updates: u64,
    /// Total squashed stride-prefetcher trainings.
    pub prefetch_trainings: u64,
    /// Total squashed NT register slots.
    pub nt_squashed: u64,
    /// Total squashed DQ entries.
    pub dq_squashed: u64,
    /// Total squashed store-buffer entries.
    pub stb_squashed: u64,
    /// Distinct lines left behind by squashed speculation and never
    /// (since) demanded architecturally: the surviving leak surface.
    pub leaked_footprint: u64,
    /// Largest `lines_resident` of any single rollback.
    pub max_resident: u64,
}

impl LeakageSummary {
    /// The summary as `(name, value)` pairs for reports and CSV tables.
    /// Names carry a `leak_` prefix so they cannot collide with model
    /// counters when a harness appends them to a result row.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("leak_rollbacks", self.rollbacks),
            ("leak_lines_swept", self.lines_swept),
            ("leak_lines_resident", self.lines_resident),
            ("leak_lines_in_flight", self.lines_in_flight),
            ("leak_predictor_updates", self.predictor_updates),
            ("leak_prefetch_trainings", self.prefetch_trainings),
            ("leak_nt_squashed", self.nt_squashed),
            ("leak_dq_squashed", self.dq_squashed),
            ("leak_stb_squashed", self.stb_squashed),
            ("leak_footprint", self.leaked_footprint),
            ("leak_max_resident", self.max_resident),
        ]
    }

    /// `true` when no speculative residue of any kind was recorded — the
    /// expected answer from an in-order core.
    pub fn is_zero(&self) -> bool {
        *self == LeakageSummary::default()
    }
}

/// Structure-squash counts the core computes at rollback time (it owns
/// the DQ, STB, and register image; the taint state does not).
#[derive(Clone, Copy, Debug, Default)]
pub struct SquashCounts {
    /// NT register slots owned by squashed producers.
    pub nt: u64,
    /// DQ entries about to be squashed.
    pub dq: u64,
    /// Store-buffer entries about to be squashed.
    pub stb: u64,
}

/// Cap on retained per-rollback records (summaries keep accumulating
/// past it; the cap only bounds memory on pathological runs).
const MAX_RECORDS: usize = 4096;

/// The recording side of the taint layer. A core owns one (boxed,
/// behind an `Option` gated by its config flag) and calls the `note_*`
/// hooks as it executes speculatively, [`TaintState::commit_through`]
/// when an epoch commits, and [`TaintState::sweep`] when it rolls back.
#[derive(Debug, Default)]
pub struct TaintState {
    /// Speculatively-touched lines: block -> seq of the oldest toucher.
    /// The oldest seq decides whether a partial rollback sweeps the
    /// block or an older surviving epoch still owns it legitimately.
    lines: HashMap<u64, Seq>,
    /// Seqs of speculative branch-predictor updates.
    predictor: Vec<Seq>,
    /// Seqs of speculative demand accesses that trained the prefetcher.
    trainings: Vec<Seq>,
    /// Lines left behind by squashed speculation, minus every line
    /// architectural execution has since demanded itself.
    footprint: HashSet<u64>,
    /// Per-rollback records (capped at [`MAX_RECORDS`]).
    pub records: Vec<LeakageRecord>,
    /// Running totals.
    pub summary: LeakageSummary,
}

impl TaintState {
    /// A fresh, empty taint state.
    pub fn new() -> TaintState {
        TaintState::default()
    }

    /// Notes a speculative touch of `block` by instruction `seq`.
    pub fn note_line(&mut self, seq: Seq, block: u64) {
        let e = self.lines.entry(block).or_insert(seq);
        *e = (*e).min(seq);
    }

    /// Notes a speculative branch-predictor update by `seq`.
    pub fn note_predictor(&mut self, seq: Seq) {
        self.predictor.push(seq);
    }

    /// Notes a speculative demand access by `seq` that fed the stride
    /// prefetcher's training path.
    pub fn note_training(&mut self, seq: Seq) {
        self.trainings.push(seq);
    }

    /// Notes an architectural (non-speculative, or committed) demand of
    /// `block`: if squashed speculation had leaked the line, the demand
    /// legitimizes it — architectural execution wanted it anyway, so it
    /// is no longer a side-channel observation.
    pub fn note_architectural(&mut self, block: u64) {
        if !self.footprint.is_empty() && self.footprint.remove(&block) {
            self.summary.leaked_footprint = self.footprint.len() as u64;
        }
    }

    /// An epoch committed through sequence `bound`: its writes are
    /// architectural now. Their lines also legitimize any earlier leak
    /// of the same block.
    pub fn commit_through(&mut self, bound: Seq) {
        if !self.lines.is_empty() {
            let footprint = &mut self.footprint;
            self.lines.retain(|block, &mut seq| {
                if seq <= bound {
                    footprint.remove(block);
                    false
                } else {
                    true
                }
            });
            self.summary.leaked_footprint = self.footprint.len() as u64;
        }
        self.predictor.retain(|&s| s > bound);
        self.trainings.retain(|&s| s > bound);
    }

    /// Sweeps all taint at or past `from` (the restored checkpoint's
    /// `start_seq`) into a [`LeakageRecord`], probing the memory system
    /// non-destructively for what survives. Call at rollback, after the
    /// core's own structures are restored; `counts` carries the
    /// structure-squash counts only the core can compute.
    pub fn sweep(
        &mut self,
        from: Seq,
        now: Cycle,
        scout: bool,
        mem: &mut MemBus,
        counts: SquashCounts,
    ) -> LeakageRecord {
        let mut rec = LeakageRecord {
            at: now,
            scout,
            nt_squashed: counts.nt,
            dq_squashed: counts.dq,
            stb_squashed: counts.stb,
            ..LeakageRecord::default()
        };

        let swept: Vec<u64> = self
            .lines
            .iter()
            .filter(|&(_, &seq)| seq >= from)
            .map(|(&block, _)| block)
            .collect();
        for block in swept {
            self.lines.remove(&block);
            rec.lines_swept += 1;
            let probe = mem.probe_residency(now, block);
            if probe.l1d || probe.l2 {
                rec.lines_resident += 1;
            }
            if probe.in_flight {
                rec.lines_in_flight += 1;
            }
            if probe.l1d || probe.l2 || probe.in_flight {
                self.footprint.insert(block);
            }
        }

        let before = self.predictor.len();
        self.predictor.retain(|&s| s < from);
        rec.predictor_updates = (before - self.predictor.len()) as u64;
        let before = self.trainings.len();
        self.trainings.retain(|&s| s < from);
        rec.prefetch_trainings = (before - self.trainings.len()) as u64;

        let s = &mut self.summary;
        s.rollbacks += 1;
        s.lines_swept += rec.lines_swept;
        s.lines_resident += rec.lines_resident;
        s.lines_in_flight += rec.lines_in_flight;
        s.predictor_updates += rec.predictor_updates;
        s.prefetch_trainings += rec.prefetch_trainings;
        s.nt_squashed += rec.nt_squashed;
        s.dq_squashed += rec.dq_squashed;
        s.stb_squashed += rec.stb_squashed;
        s.leaked_footprint = self.footprint.len() as u64;
        s.max_resident = s.max_resident.max(rec.lines_resident);
        if self.records.len() < MAX_RECORDS {
            self.records.push(rec);
        }
        rec
    }

    /// Number of lines currently tracked as speculative (tests).
    pub fn pending_lines(&self) -> usize {
        self.lines.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sst_mem::{AccessKind, MemConfig, MemSystem};

    #[test]
    fn sweep_reports_resident_and_in_flight_lines() {
        let mut ms = MemSystem::new(&MemConfig::default(), 1);
        let mut t = TaintState::new();
        // Two speculative fills: one long complete, one still in flight.
        let a = ms.access(0, 0, AccessKind::Load, 0x4000);
        let block_a = 0x4000u64;
        t.note_line(10, block_a);
        let probe_at = a.ready_at + 10;
        let b = ms.access(probe_at, 0, AccessKind::Load, 0x9000);
        assert!(b.ready_at > probe_at);
        t.note_line(11, 0x9000);
        t.note_predictor(12);
        t.note_training(10);

        let rec = t.sweep(
            10,
            probe_at + 1,
            false,
            &mut ms.bus(0),
            SquashCounts { nt: 3, dq: 2, stb: 1 },
        );
        assert_eq!(rec.lines_swept, 2);
        assert_eq!(rec.lines_resident, 2, "both fills installed tags");
        assert_eq!(rec.lines_in_flight, 1, "second fill still outstanding");
        assert_eq!(rec.predictor_updates, 1);
        assert_eq!(rec.prefetch_trainings, 1);
        assert_eq!(rec.nt_squashed, 3);
        assert_eq!(t.summary.leaked_footprint, 2);
        assert_eq!(t.pending_lines(), 0);
    }

    #[test]
    fn partial_sweep_spares_older_epochs() {
        let mut ms = MemSystem::new(&MemConfig::default(), 1);
        let mut t = TaintState::new();
        t.note_line(5, 1);
        t.note_line(20, 2);
        t.note_predictor(5);
        t.note_predictor(20);
        let rec = t.sweep(10, 100, false, &mut ms.bus(0), SquashCounts::default());
        assert_eq!(rec.lines_swept, 1, "only seq>=10 swept");
        assert_eq!(rec.predictor_updates, 1);
        assert_eq!(t.pending_lines(), 1, "older epoch's line still tracked");
    }

    #[test]
    fn architectural_demand_cleans_the_footprint() {
        let mut ms = MemSystem::new(&MemConfig::default(), 1);
        let mut t = TaintState::new();
        ms.access(0, 0, AccessKind::Load, 0x4000);
        t.note_line(10, 0x4000);
        t.sweep(1, 2000, true, &mut ms.bus(0), SquashCounts::default());
        assert_eq!(t.summary.leaked_footprint, 1);
        // Architectural execution demands the line itself: not a leak.
        t.note_architectural(0x4000);
        assert_eq!(t.summary.leaked_footprint, 0);
    }

    #[test]
    fn commit_clears_taint_and_legitimizes_lines() {
        let mut ms = MemSystem::new(&MemConfig::default(), 1);
        let mut t = TaintState::new();
        ms.access(0, 0, AccessKind::Load, 0x4000);
        let block = 0x4000;
        t.note_line(4, block);
        t.sweep(1, 2000, true, &mut ms.bus(0), SquashCounts::default());
        assert_eq!(t.summary.leaked_footprint, 1);
        // Post-rollback, a new epoch touches the block again and commits.
        t.note_line(6, block);
        t.note_predictor(6);
        t.note_training(7);
        t.commit_through(8);
        assert_eq!(t.pending_lines(), 0);
        assert_eq!(t.summary.leaked_footprint, 0, "committed demand cleans it");
        // Summary totals are monotone — commit never rewrites history.
        assert_eq!(t.summary.rollbacks, 1);
        assert_eq!(t.summary.lines_swept, 1);
    }

    #[test]
    fn zero_summary_reads_as_zero() {
        assert!(LeakageSummary::default().is_zero());
        let mut s = LeakageSummary::default();
        s.rollbacks = 1;
        assert!(!s.is_zero());
        assert_eq!(s.counters()[0], ("leak_rollbacks", 1));
    }
}
