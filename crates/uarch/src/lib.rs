//! # sst-uarch
//!
//! Shared microarchitecture components for the `rock-sst` core models:
//!
//! * [`RegImage`] — a 64-entry register image with per-register **NT ("not
//!   there") bits**, writer sequence tags, and timing readiness. The NT bit
//!   is the heart of SST: it marks values that belong to deferred
//!   instructions, and the writer tag implements ROCK's merge rule when
//!   deferred results return.
//! * [`Checkpoint`] — a register-image + PC snapshot, the paper's
//!   alternative to register renaming and reorder buffers.
//! * [`DeferredQueue`] — the DQ: deferred instructions with their captured
//!   ready operands.
//! * [`StoreBuffer`] — the speculative store buffer with program-order
//!   forwarding, unknown-address tracking, and epoch-granular commit/squash.
//! * [`ExecLatency`] — functional-unit latencies shared by all cores.
//! * [`Frontend`] — fetch + decode with branch prediction, shared by all
//!   cores so frontend quality never confounds the core comparisons.
//!
//! These pieces are deliberately core-agnostic: `sst-core` (scout / EA /
//! SST), `sst-inorder`, and `sst-ooo` all build on them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod core_api;
mod dq;
mod exec;
mod frontend;
mod latency;
mod regimage;
mod stb;
mod taint;

pub use core_api::{Commit, Core};
pub use dq::{DeferredQueue, DqEntry};
pub use exec::{execute, extend_load, mem_addr, ExecOut};
pub use frontend::{FetchedInst, Frontend, FrontendConfig};
pub use latency::ExecLatency;
pub use regimage::{Checkpoint, RegImage, RegSlot};
pub use stb::{DrainedStore, ForwardResult, StoreBuffer, StoreEntry};
pub use taint::{LeakageRecord, LeakageSummary, SquashCounts, TaintState};

/// Monotone per-instruction sequence number (program order).
pub type Seq = u64;
