//! The speculative store buffer.
//!
//! Speculative stores are held here — never released to the cache — until
//! their epoch commits. Loads executing ahead search the buffer in program
//! order for forwarding, and the buffer's conservative answers implement
//! the paper's "no memory-disambiguation hardware" design point: a load
//! behind an unknown-address store simply defers.
//!
//! # Storage
//!
//! Entries sit in a seq-sorted `VecDeque` (commit drains pop the front in
//! O(1) per store), so [`StoreBuffer::resolve`] is a binary search rather
//! than a scan. A sorted side index of unresolved-address seqs makes
//! [`StoreBuffer::unknown_addr_before`] — probed for every speculative
//! load the ahead strand issues and every replayed load — a single
//! front-element compare.

use std::collections::VecDeque;

use sst_isa::{SnapError, SnapReader, SnapWriter};
use sst_mem::Cycle;

use crate::Seq;

/// One buffered store.
#[derive(Clone, Copy, Debug)]
pub struct StoreEntry {
    /// Program-order sequence number.
    pub seq: Seq,
    /// Store address; `None` while the address computation is deferred.
    pub addr: Option<u64>,
    /// Access size in bytes.
    pub bytes: u64,
    /// Store data; `None` while the data is not-there.
    pub value: Option<u64>,
}

impl StoreEntry {
    /// `true` once both address and data are known.
    pub fn is_resolved(&self) -> bool {
        self.addr.is_some() && self.value.is_some()
    }
}

/// Result of a forwarding lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ForwardResult {
    /// No older store overlaps: read memory.
    NoMatch,
    /// Fully covered by an older store with known data.
    Forward(u64),
    /// Fully covered by an older store whose data is not-there; the load
    /// must defer behind that store (its `seq` is given).
    NotThere {
        /// Sequence of the covering store.
        store_seq: Seq,
    },
    /// Ambiguous: an older store has an unknown address, or the overlap is
    /// partial. The load must defer and retry at replay.
    MustWait,
}

/// A committed store released by [`StoreBuffer::drain_through`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DrainedStore {
    /// Program-order sequence number.
    pub seq: Seq,
    /// Final address.
    pub addr: u64,
    /// Access size in bytes.
    pub bytes: u64,
    /// Final data.
    pub value: u64,
}

/// A bounded, program-ordered speculative store buffer.
#[derive(Clone, Debug)]
pub struct StoreBuffer {
    entries: VecDeque<StoreEntry>,
    /// Seqs of entries whose address is still unresolved, ascending (a
    /// subsequence of `entries`' seqs: pushes append, resolves and
    /// squashes delete in place).
    unresolved_addrs: VecDeque<Seq>,
    capacity: usize,
    /// Maximum occupancy observed.
    pub high_water: usize,
    /// Total stores buffered.
    pub total_stores: u64,
    /// Loads answered by forwarding.
    pub forwards: u64,
    /// Loads forced to wait (unknown address / partial overlap).
    pub must_waits: u64,
}

impl StoreBuffer {
    /// Creates a buffer of `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> StoreBuffer {
        assert!(capacity > 0, "store buffer needs at least one entry");
        StoreBuffer {
            entries: VecDeque::with_capacity(capacity),
            unresolved_addrs: VecDeque::new(),
            capacity,
            high_water: 0,
            total_stores: 0,
            forwards: 0,
            must_waits: 0,
        }
    }

    /// Maximum entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `true` when no more stores can be buffered.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Appends a store in program order.
    ///
    /// # Panics
    ///
    /// Panics on overflow (callers stall instead) or out-of-order push.
    pub fn push(&mut self, entry: StoreEntry) {
        assert!(
            !self.is_full(),
            "store buffer overflow: caller must stall when full"
        );
        if let Some(last) = self.entries.back() {
            assert!(
                last.seq < entry.seq,
                "store buffer entries must be program-ordered"
            );
        }
        if entry.addr.is_none() {
            self.unresolved_addrs.push_back(entry.seq);
        }
        self.entries.push_back(entry);
        self.total_stores += 1;
        self.high_water = self.high_water.max(self.entries.len());
    }

    /// Fills in a deferred store's address and/or value at replay.
    ///
    /// # Panics
    ///
    /// Panics if no entry with `seq` exists.
    pub fn resolve(&mut self, seq: Seq, addr: u64, value: u64) {
        let idx = self
            .entries
            .binary_search_by_key(&seq, |e| e.seq)
            .expect("resolving a store that is not buffered");
        let e = &mut self.entries[idx];
        if e.addr.is_none() {
            let u = self
                .unresolved_addrs
                .binary_search(&seq)
                .expect("unresolved-address index out of sync");
            self.unresolved_addrs.remove(u);
        }
        e.addr = Some(addr);
        e.value = Some(value);
    }

    /// Forwarding lookup for a load at `seq` reading `bytes` at `addr`.
    ///
    /// Searches older stores youngest-first; see [`ForwardResult`].
    pub fn forward(&mut self, seq: Seq, addr: u64, bytes: u64) -> ForwardResult {
        for e in self.entries.iter().rev() {
            if e.seq >= seq {
                continue;
            }
            let Some(saddr) = e.addr else {
                self.must_waits += 1;
                return ForwardResult::MustWait;
            };
            let s_end = saddr + e.bytes;
            let l_end = addr + bytes;
            let overlap = addr < s_end && saddr < l_end;
            if !overlap {
                continue;
            }
            let covers = saddr <= addr && l_end <= s_end;
            if !covers {
                self.must_waits += 1;
                return ForwardResult::MustWait;
            }
            return match e.value {
                Some(v) => {
                    self.forwards += 1;
                    let shift = (addr - saddr) * 8;
                    let shifted = v >> shift;
                    let out = if bytes == 8 {
                        shifted
                    } else {
                        shifted & ((1u64 << (bytes * 8)) - 1)
                    };
                    ForwardResult::Forward(out)
                }
                None => ForwardResult::NotThere { store_seq: e.seq },
            };
        }
        ForwardResult::NoMatch
    }

    /// `true` if any store older than `seq` has an unresolved address.
    /// O(1): the oldest unresolved address is the front of the side index.
    pub fn unknown_addr_before(&self, seq: Seq) -> bool {
        self.unresolved_addrs.front().is_some_and(|&s| s < seq)
    }

    /// Commits and removes every store with `seq <= through`, in program
    /// order, appending to `out` (callers reuse one buffer across
    /// commits).
    ///
    /// # Panics
    ///
    /// Panics if any drained store is still unresolved — commit of an epoch
    /// with unresolved stores is a core-model bug.
    pub fn drain_through_into(&mut self, through: Seq, out: &mut Vec<DrainedStore>) {
        while let Some(e) = self.entries.front() {
            if e.seq > through {
                break;
            }
            let e = self.entries.pop_front().expect("checked front");
            assert!(
                self.unresolved_addrs.front() != Some(&e.seq),
                "committing store with unknown address"
            );
            out.push(DrainedStore {
                seq: e.seq,
                addr: e.addr.expect("committing store with unknown address"),
                bytes: e.bytes,
                value: e.value.expect("committing store with unknown data"),
            });
        }
    }

    /// [`StoreBuffer::drain_through_into`] into a fresh vector (tests and
    /// one-shot callers).
    pub fn drain_through(&mut self, through: Seq) -> Vec<DrainedStore> {
        let mut out = Vec::new();
        self.drain_through_into(through, &mut out);
        out
    }

    /// Squashes every store with `seq >= from` (epoch rollback).
    pub fn squash_from(&mut self, from: Seq) {
        let keep = self.entries.partition_point(|e| e.seq < from);
        self.entries.truncate(keep);
        let keep_u = self.unresolved_addrs.partition_point(|&s| s < from);
        self.unresolved_addrs.truncate(keep_u);
    }

    /// Reads `bytes` at `addr` as seen by the load at `seq`: backing memory
    /// overlaid, in program order, with every older buffered store that
    /// overlaps. Returns `None` if any older overlapping (or
    /// unknown-address) store is unresolved — the load must keep waiting.
    ///
    /// This is the replay-path load semantics; the ahead path uses the
    /// cheaper [`StoreBuffer::forward`].
    pub fn read_overlay(
        &self,
        seq: Seq,
        addr: u64,
        bytes: u64,
        mem: &sst_isa::SparseMem,
    ) -> Option<u64> {
        // Any older store with an unknown address is a potential alias.
        if self.unknown_addr_before(seq) {
            return None;
        }
        let mut buf = mem.read_le(addr, bytes).to_le_bytes();
        for e in self.entries.iter() {
            if e.seq >= seq {
                break;
            }
            let saddr = e.addr.expect("unknown addrs were screened above");
            let s_end = saddr + e.bytes;
            let l_end = addr + bytes;
            if addr >= s_end || saddr >= l_end {
                continue;
            }
            let value = e.value?; // overlapping but data not-there: wait
            for i in 0..e.bytes {
                let byte_addr = saddr + i;
                if byte_addr >= addr && byte_addr < l_end {
                    buf[(byte_addr - addr) as usize] = (value >> (8 * i)) as u8;
                }
            }
        }
        Some(u64::from_le_bytes(buf) & if bytes == 8 { u64::MAX } else { (1 << (bytes * 8)) - 1 })
    }

    /// Iterates entries oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &StoreEntry> {
        self.entries.iter()
    }

    /// Serializes live entries (program order) and the counters. The
    /// unresolved-address side index is not written: it is derivable from
    /// the entries and rebuilt on restore.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.tag("STBF");
        w.put_u64(self.total_stores);
        w.put_u64(self.forwards);
        w.put_u64(self.must_waits);
        w.put_usize(self.high_water);
        w.put_usize(self.entries.len());
        for e in &self.entries {
            w.put_u64(e.seq);
            w.put_opt_u64(e.addr);
            w.put_u64(e.bytes);
            w.put_opt_u64(e.value);
        }
    }

    /// Restores state written by [`StoreBuffer::save_state`] on a buffer
    /// of the same capacity, rebuilding the unresolved-address index.
    ///
    /// # Errors
    ///
    /// [`SnapError`] on truncated, corrupt, or capacity-mismatched input.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.tag("STBF")?;
        let total_stores = r.take_u64()?;
        let forwards = r.take_u64()?;
        let must_waits = r.take_u64()?;
        let high_water = r.take_usize()?;
        let n = r.take_usize()?;
        if n > self.capacity || high_water > self.capacity {
            return Err(SnapError::Corrupt(format!(
                "STB occupancy {n} / high-water {high_water} exceeds capacity {}",
                self.capacity
            )));
        }
        self.entries.clear();
        self.unresolved_addrs.clear();
        let mut last_seq: Option<Seq> = None;
        for _ in 0..n {
            let seq = r.take_u64()?;
            if last_seq.is_some_and(|l| l >= seq) {
                return Err(SnapError::Corrupt(format!(
                    "STB entries out of program order at seq {seq}"
                )));
            }
            last_seq = Some(seq);
            let addr = r.take_opt_u64()?;
            let bytes = r.take_u64()?;
            let value = r.take_opt_u64()?;
            if addr.is_none() {
                self.unresolved_addrs.push_back(seq);
            }
            self.entries.push_back(StoreEntry {
                seq,
                addr,
                bytes,
                value,
            });
        }
        self.total_stores = total_stores;
        self.forwards = forwards;
        self.must_waits = must_waits;
        self.high_water = high_water;
        Ok(())
    }

    /// Suppress unused warnings for timing-typed code paths.
    #[doc(hidden)]
    pub fn _cycle_marker(_: Cycle) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(seq: Seq, addr: u64, bytes: u64, value: u64) -> StoreEntry {
        StoreEntry {
            seq,
            addr: Some(addr),
            bytes,
            value: Some(value),
        }
    }

    #[test]
    fn forward_exact_match() {
        let mut sb = StoreBuffer::new(8);
        sb.push(store(1, 0x100, 8, 0xdead_beef));
        assert_eq!(sb.forward(5, 0x100, 8), ForwardResult::Forward(0xdead_beef));
        assert_eq!(sb.forwards, 1);
    }

    #[test]
    fn forward_subrange_extracts_bytes() {
        let mut sb = StoreBuffer::new(8);
        sb.push(store(1, 0x100, 8, 0x8877_6655_4433_2211));
        assert_eq!(sb.forward(5, 0x102, 2), ForwardResult::Forward(0x4433));
        assert_eq!(sb.forward(5, 0x100, 1), ForwardResult::Forward(0x11));
        assert_eq!(sb.forward(5, 0x107, 1), ForwardResult::Forward(0x88));
    }

    #[test]
    fn youngest_older_store_wins() {
        let mut sb = StoreBuffer::new(8);
        sb.push(store(1, 0x100, 8, 111));
        sb.push(store(2, 0x100, 8, 222));
        assert_eq!(sb.forward(5, 0x100, 8), ForwardResult::Forward(222));
        // A load *between* them sees the first only.
        assert_eq!(sb.forward(2, 0x100, 8), ForwardResult::Forward(111));
    }

    #[test]
    fn younger_stores_invisible() {
        let mut sb = StoreBuffer::new(8);
        sb.push(store(10, 0x100, 8, 999));
        assert_eq!(sb.forward(5, 0x100, 8), ForwardResult::NoMatch);
    }

    #[test]
    fn partial_overlap_waits() {
        let mut sb = StoreBuffer::new(8);
        sb.push(store(1, 0x100, 4, 0xaabbccdd));
        assert_eq!(sb.forward(5, 0x102, 4), ForwardResult::MustWait);
        assert_eq!(sb.must_waits, 1);
    }

    #[test]
    fn unknown_address_blocks() {
        let mut sb = StoreBuffer::new(8);
        sb.push(StoreEntry {
            seq: 1,
            addr: None,
            bytes: 8,
            value: None,
        });
        assert_eq!(sb.forward(5, 0x500, 8), ForwardResult::MustWait);
        assert!(sb.unknown_addr_before(5));
        assert!(!sb.unknown_addr_before(1));
        sb.resolve(1, 0x500, 42);
        assert_eq!(sb.forward(5, 0x500, 8), ForwardResult::Forward(42));
        assert!(!sb.unknown_addr_before(5));
    }

    #[test]
    fn not_there_data_names_the_store() {
        let mut sb = StoreBuffer::new(8);
        sb.push(StoreEntry {
            seq: 3,
            addr: Some(0x100),
            bytes: 8,
            value: None,
        });
        assert_eq!(
            sb.forward(7, 0x100, 8),
            ForwardResult::NotThere { store_seq: 3 }
        );
    }

    #[test]
    fn drain_commits_in_order_and_removes() {
        let mut sb = StoreBuffer::new(8);
        sb.push(store(1, 0x100, 8, 1));
        sb.push(store(2, 0x200, 8, 2));
        sb.push(store(9, 0x300, 8, 3));
        let drained = sb.drain_through(5);
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].seq, 1);
        assert_eq!(drained[1].seq, 2);
        assert_eq!(sb.len(), 1);
    }

    #[test]
    #[should_panic]
    fn drain_unresolved_asserts() {
        let mut sb = StoreBuffer::new(8);
        sb.push(StoreEntry {
            seq: 1,
            addr: None,
            bytes: 8,
            value: None,
        });
        let _ = sb.drain_through(5);
    }

    #[test]
    fn squash_drops_young() {
        let mut sb = StoreBuffer::new(8);
        sb.push(store(1, 0x100, 8, 1));
        sb.push(store(5, 0x200, 8, 2));
        sb.squash_from(5);
        assert_eq!(sb.len(), 1);
        assert_eq!(sb.iter().next().unwrap().seq, 1);
    }

    #[test]
    fn unresolved_index_tracks_squash_and_resolve() {
        let mut sb = StoreBuffer::new(8);
        sb.push(StoreEntry {
            seq: 2,
            addr: None,
            bytes: 8,
            value: None,
        });
        sb.push(store(3, 0x100, 8, 7));
        sb.push(StoreEntry {
            seq: 5,
            addr: None,
            bytes: 8,
            value: None,
        });
        assert!(sb.unknown_addr_before(10));
        sb.squash_from(4);
        assert!(sb.unknown_addr_before(10), "seq 2 still unresolved");
        assert!(!sb.unknown_addr_before(2));
        sb.resolve(2, 0x200, 1);
        assert!(!sb.unknown_addr_before(10), "index emptied by resolve");
        assert_eq!(sb.len(), 2);
    }

    #[test]
    fn drain_into_reuses_buffer() {
        let mut sb = StoreBuffer::new(8);
        sb.push(store(1, 0x100, 8, 1));
        sb.push(store(4, 0x200, 8, 2));
        let mut buf = Vec::new();
        sb.drain_through_into(2, &mut buf);
        assert_eq!(buf.len(), 1);
        sb.drain_through_into(9, &mut buf);
        assert_eq!(buf.len(), 2, "appends, does not clear");
        assert_eq!(buf[1].seq, 4);
        assert!(sb.is_empty());
    }

    #[test]
    #[should_panic]
    fn overflow_asserts() {
        let mut sb = StoreBuffer::new(1);
        sb.push(store(1, 0, 8, 0));
        sb.push(store(2, 8, 8, 0));
    }
}
