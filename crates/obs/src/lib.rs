//! # sst-obs
//!
//! The typed observability layer: pipeline events, per-phase cycle
//! accounting, a Chrome-trace/Perfetto exporter, and host-side
//! self-profiling. It sits at the very bottom of the workspace (no
//! dependencies, like `sst-prng`) so every model crate and the memory
//! system can emit into it.
//!
//! # The event-sink contract
//!
//! Observability is **zero-cost when off and invisible when on**:
//!
//! * When tracing is disabled (the default), cores carry a `None`
//!   where the [`TraceBuf`] would live; every emission site is a single
//!   discriminant test.
//! * When tracing is enabled, events are *recorded*, never *consulted*:
//!   no model ever branches on trace state, so a traced run produces a
//!   byte-identical result to an untraced one. The same contract the
//!   taint layer established (`SstConfig::taint`) applies verbatim and
//!   is enforced by `crates/sim/tests/trace_equiv.rs`.
//! * Per-phase cycle accounting ([`PhaseTable`]) is *always on* — one
//!   array add per tick — so the phase table in every `RunResult` sums
//!   exactly to the run's total cycles whether or not a trace was
//!   captured.
//!
//! Events are self-contained (spans carry both endpoints; instants
//! carry their cycle), so the buffer can be a bounded ring: when it
//! fills, the *oldest* events are dropped and the export stays
//! well-formed. This also makes the ring useful as a wedge-dump: the
//! tail always holds the most recent pipeline activity.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;

mod chrome;
mod prof;

pub use chrome::ChromeTrace;
pub use prof::{HostTimes, Stage};

/// Absolute simulation cycle (mirrors `sst_mem::Cycle` without the
/// dependency).
pub type Cycle = u64;

/// The pipeline phase a core spends a cycle in.
///
/// The first four are the paper's phases: committed in-order progress
/// (`Normal`), speculating past a deferred miss with retirement held
/// back (`Ea`), draining the deferred queue (`Replay`), and pure
/// prefetching with results discarded (`Scout`). `Gated` covers cycles
/// a CMP driver advances a core through without giving it work
/// (`Core::gate_to`), so the table still sums to total cycles.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Committed, non-speculative execution.
    Normal,
    /// Execute-ahead: a checkpoint is live and results are retained.
    Ea,
    /// Replay: draining the deferred queue under a live checkpoint.
    Replay,
    /// Scout: hardware prefetching past a miss, results discarded.
    Scout,
    /// Cycles consumed by lockstep gating, not by the pipeline.
    Gated,
}

impl Phase {
    /// Every phase, in table order.
    pub const ALL: [Phase; 5] = [Phase::Normal, Phase::Ea, Phase::Replay, Phase::Scout, Phase::Gated];

    /// Dense index for table storage.
    pub fn index(self) -> usize {
        match self {
            Phase::Normal => 0,
            Phase::Ea => 1,
            Phase::Replay => 2,
            Phase::Scout => 3,
            Phase::Gated => 4,
        }
    }

    /// Stable label used in tables, JSON, and trace tracks.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Normal => "normal",
            Phase::Ea => "ea",
            Phase::Replay => "replay",
            Phase::Scout => "scout",
            Phase::Gated => "gated",
        }
    }
}

/// Why an instruction was sent to the deferred queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeferCause {
    /// A source register carried an NT (not-there) bit.
    NtSource,
    /// A load could not prove ordering against an older unknown-address
    /// store.
    StoreOrder,
    /// A load matched an older store byte range it could not fully
    /// forward from.
    ForwardMiss,
    /// A long-latency cache miss past the defer threshold.
    CacheMiss,
}

impl DeferCause {
    /// Every cause, in taxonomy order.
    pub const ALL: [DeferCause; 4] = [
        DeferCause::NtSource,
        DeferCause::StoreOrder,
        DeferCause::ForwardMiss,
        DeferCause::CacheMiss,
    ];

    /// Dense index for counter storage.
    pub fn index(self) -> usize {
        match self {
            DeferCause::NtSource => 0,
            DeferCause::StoreOrder => 1,
            DeferCause::ForwardMiss => 2,
            DeferCause::CacheMiss => 3,
        }
    }

    /// Stable label used in counters and trace args.
    pub fn label(self) -> &'static str {
        match self {
            DeferCause::NtSource => "nt_source",
            DeferCause::StoreOrder => "store_order",
            DeferCause::ForwardMiss => "forward_miss",
            DeferCause::CacheMiss => "cache_miss",
        }
    }
}

/// Per-phase cycle accounting. Rows sum exactly to the cycles fed in,
/// which `crates/sim/tests/trace_equiv.rs` enforces against every
/// model's total cycle count.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseTable {
    cycles: [u64; Phase::ALL.len()],
}

impl PhaseTable {
    /// An empty table.
    pub fn new() -> PhaseTable {
        PhaseTable::default()
    }

    /// Credits `n` cycles to `phase`.
    pub fn add(&mut self, phase: Phase, n: u64) {
        self.cycles[phase.index()] += n;
    }

    /// Cycles credited to `phase`.
    pub fn get(&self, phase: Phase) -> u64 {
        self.cycles[phase.index()]
    }

    /// Total cycles across all phases.
    pub fn total(&self) -> u64 {
        self.cycles.iter().sum()
    }

    /// All rows in stable order (zero rows included, so the schema is
    /// fixed across models).
    pub fn rows(&self) -> Vec<(&'static str, u64)> {
        Phase::ALL.iter().map(|p| (p.label(), self.get(*p))).collect()
    }
}

/// One typed pipeline event. Every variant is self-contained — spans
/// carry both endpoints — so a bounded ring of events always exports to
/// a well-formed trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// The core spent `[start, end)` in `phase`.
    PhaseSpan {
        /// Phase occupied for the span.
        phase: Phase,
        /// First cycle of the span.
        start: Cycle,
        /// First cycle *after* the span.
        end: Cycle,
    },
    /// A checkpoint was taken; `live` epochs exist afterwards.
    CkptTake {
        /// Cycle the checkpoint was taken.
        at: Cycle,
        /// Live epoch count after the take.
        live: u32,
    },
    /// The oldest epoch committed (speculative work became architectural).
    CkptCommit {
        /// Cycle of the commit.
        at: Cycle,
        /// Deferred results merged by the commit.
        merged: u32,
    },
    /// Speculative state was discarded back to a checkpoint.
    CkptRollback {
        /// Cycle of the rollback.
        at: Cycle,
        /// `true` for a scout-mode rollback (results were never
        /// retained), `false` for an EA/SST failure rollback.
        scout: bool,
        /// Speculative instructions squashed.
        squashed: u32,
    },
    /// An instruction entered the deferred queue.
    Defer {
        /// Cycle of the deferral.
        at: Cycle,
        /// Why it could not execute in place.
        cause: DeferCause,
    },
    /// A replayed instruction's operands were still not there; it went
    /// back into the deferred queue.
    Redefer {
        /// Cycle of the re-deferral.
        at: Cycle,
    },
    /// One replay pass ended.
    ReplayPass {
        /// Cycle the pass ended.
        at: Cycle,
        /// Instructions executed by the pass.
        executed: u32,
        /// Instructions the pass re-deferred.
        redeferred: u32,
    },
    /// A deferred control transfer resolved against the ahead strand's
    /// guess — the speculation fails and rolls back (previously the
    /// `SST_TRACE_FAILS` eprintln).
    ReplayFail {
        /// Cycle of the detection.
        at: Cycle,
        /// Sequence number of the offending instruction.
        seq: u64,
    },
    /// A DQ/STB occupancy sample.
    Occupancy {
        /// Sample cycle.
        at: Cycle,
        /// Deferred-queue entries in use.
        dq: u32,
        /// Store-buffer entries in use.
        stb: u32,
    },
    /// One cache-miss lifetime in the memory system: from MSHR
    /// allocation to fill.
    MissSpan {
        /// Cycle the miss claimed an MSHR.
        start: Cycle,
        /// Cycle the fill arrives.
        end: Cycle,
        /// Block-aligned address.
        block: u64,
        /// `true` if the miss went all the way to DRAM.
        deep: bool,
    },
}

/// A bounded ring of typed events plus the currently-open phase span.
///
/// When the ring fills, the *oldest* events are dropped (counted in
/// [`TraceBuf::dropped`]): the export stays well-formed and the tail —
/// what a wedge dump wants — is always the most recent activity.
#[derive(Clone, Debug)]
pub struct TraceBuf {
    events: VecDeque<Event>,
    cap: usize,
    dropped: u64,
    open: Option<(Phase, Cycle)>,
    last_occ: Option<(u32, u32)>,
}

impl TraceBuf {
    /// Default event capacity (~10 MB of events per buffer).
    pub const DEFAULT_CAP: usize = 1 << 18;

    /// A buffer with the default capacity.
    pub fn new() -> TraceBuf {
        TraceBuf::with_capacity(TraceBuf::DEFAULT_CAP)
    }

    /// A buffer holding at most `cap` events.
    pub fn with_capacity(cap: usize) -> TraceBuf {
        assert!(cap > 0, "trace buffer needs room for at least one event");
        TraceBuf {
            events: VecDeque::new(),
            cap,
            dropped: 0,
            open: None,
            last_occ: None,
        }
    }

    /// Records one event, dropping the oldest if the ring is full.
    pub fn push(&mut self, e: Event) {
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(e);
    }

    /// Notes that the core is in `phase` at cycle `now`. Consecutive
    /// cycles in the same phase extend the open span; a change closes
    /// it as a [`Event::PhaseSpan`] ending at `now`.
    pub fn set_phase(&mut self, phase: Phase, now: Cycle) {
        match self.open {
            Some((p, _)) if p == phase => {}
            Some((p, start)) => {
                self.push(Event::PhaseSpan { phase: p, start, end: now });
                self.open = Some((phase, now));
            }
            None => self.open = Some((phase, now)),
        }
    }

    /// Records a DQ/STB occupancy sample, but only when it differs from
    /// the previous one — per-tick callers get change-compressed counter
    /// tracks instead of one event per cycle.
    pub fn sample_occupancy(&mut self, at: Cycle, dq: u32, stb: u32) {
        if self.last_occ == Some((dq, stb)) {
            return;
        }
        self.last_occ = Some((dq, stb));
        self.push(Event::Occupancy { at, dq, stb });
    }

    /// Closes the open phase span (if any) at cycle `now`. Call once
    /// when the run ends, before exporting.
    pub fn close(&mut self, now: Cycle) {
        if let Some((p, start)) = self.open.take() {
            if now > start {
                self.push(Event::PhaseSpan { phase: p, start, end: now });
            }
        }
    }

    /// The recorded events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing has been recorded (or everything was dropped).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// How many events were dropped to stay within capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The most recent `n` events, oldest of those first — the wedge
    /// dump's view.
    pub fn tail(&self, n: usize) -> Vec<Event> {
        let skip = self.events.len().saturating_sub(n);
        self.events.iter().skip(skip).copied().collect()
    }
}

impl Default for TraceBuf {
    fn default() -> TraceBuf {
        TraceBuf::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_table_rows_sum_to_total() {
        let mut t = PhaseTable::new();
        t.add(Phase::Normal, 10);
        t.add(Phase::Ea, 5);
        t.add(Phase::Replay, 3);
        t.add(Phase::Scout, 0);
        t.add(Phase::Gated, 2);
        assert_eq!(t.total(), 20);
        assert_eq!(t.rows().iter().map(|(_, n)| n).sum::<u64>(), 20);
        assert_eq!(t.rows().len(), Phase::ALL.len(), "stable schema");
        assert_eq!(t.get(Phase::Ea), 5);
    }

    #[test]
    fn set_phase_coalesces_and_close_flushes() {
        let mut b = TraceBuf::new();
        b.set_phase(Phase::Normal, 0);
        b.set_phase(Phase::Normal, 1);
        b.set_phase(Phase::Normal, 2);
        assert_eq!(b.len(), 0, "same phase extends the open span");
        b.set_phase(Phase::Ea, 3);
        assert_eq!(b.len(), 1);
        b.close(10);
        assert_eq!(b.len(), 2);
        let evs: Vec<_> = b.events().copied().collect();
        assert_eq!(evs[0], Event::PhaseSpan { phase: Phase::Normal, start: 0, end: 3 });
        assert_eq!(evs[1], Event::PhaseSpan { phase: Phase::Ea, start: 3, end: 10 });
        // Spans tile the timeline: each starts where the last ended.
        assert_eq!(
            match evs[0] { Event::PhaseSpan { end, .. } => end, _ => unreachable!() },
            match evs[1] { Event::PhaseSpan { start, .. } => start, _ => unreachable!() },
        );
    }

    #[test]
    fn close_drops_empty_span() {
        let mut b = TraceBuf::new();
        b.set_phase(Phase::Scout, 7);
        b.close(7);
        assert!(b.is_empty(), "zero-length span is not recorded");
    }

    #[test]
    fn occupancy_samples_dedupe() {
        let mut b = TraceBuf::new();
        b.sample_occupancy(0, 0, 0);
        b.sample_occupancy(1, 0, 0);
        b.sample_occupancy(2, 0, 0);
        assert_eq!(b.len(), 1, "unchanged occupancy is not re-sampled");
        b.sample_occupancy(3, 4, 0);
        b.sample_occupancy(4, 4, 2);
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn ring_drops_oldest() {
        let mut b = TraceBuf::with_capacity(4);
        for i in 0..10u64 {
            b.push(Event::Redefer { at: i });
        }
        assert_eq!(b.len(), 4);
        assert_eq!(b.dropped(), 6);
        let first = *b.events().next().unwrap();
        assert_eq!(first, Event::Redefer { at: 6 }, "oldest events dropped first");
        let tail = b.tail(2);
        assert_eq!(tail, vec![Event::Redefer { at: 8 }, Event::Redefer { at: 9 }]);
    }
}
