//! Chrome-trace/Perfetto JSON export.
//!
//! Emits the [Trace Event Format] consumed by `chrome://tracing` and
//! [ui.perfetto.dev](https://ui.perfetto.dev): a `{"traceEvents": [...]}`
//! object whose entries are duration pairs (`"B"`/`"E"`) for phase
//! spans, complete events (`"X"`) for miss lifetimes, instants (`"i"`)
//! for checkpoint/defer/replay markers, and counters (`"C"`) for DQ/STB
//! occupancy. One simulated cycle maps to one microsecond of viewer
//! time.
//!
//! Tracks are addressed by `(pid, tid)`: the harness gives each job a
//! process and each core (plus its memory port) a thread, so a whole
//! CMP run opens as parallel swimlanes.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//!
//! The writer is hand-rolled string building — `sst-obs` sits below the
//! harness and carries no dependencies — with full JSON string escaping
//! for the caller-supplied process/track names.

use crate::{Event, TraceBuf};

/// Builds one Chrome-trace JSON document from any number of tracks.
pub struct ChromeTrace {
    body: String,
    first: bool,
}

impl ChromeTrace {
    /// An empty trace.
    pub fn new() -> ChromeTrace {
        ChromeTrace {
            body: String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"),
            first: true,
        }
    }

    fn raw(&mut self, obj: &str) {
        if self.first {
            self.first = false;
        } else {
            self.body.push_str(",\n");
        }
        self.body.push_str(obj);
    }

    /// Names process `pid` (one per job).
    pub fn name_process(&mut self, pid: u64, name: &str) {
        let obj = format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":\"{}\"}}}}",
            escape(name)
        );
        self.raw(&obj);
    }

    /// Names thread `(pid, tid)` (one per core track or mem track).
    pub fn name_thread(&mut self, pid: u64, tid: u64, name: &str) {
        let obj = format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":\"{}\"}}}}",
            escape(name)
        );
        self.raw(&obj);
    }

    /// Exports every event in `buf` onto track `(pid, tid)`. Counter
    /// samples are named `<counter_prefix>:dq` / `<counter_prefix>:stb`
    /// (counters are per-process in the viewer, so the prefix keeps
    /// multiple cores apart).
    pub fn add_track(&mut self, pid: u64, tid: u64, counter_prefix: &str, buf: &TraceBuf) {
        let prefix = escape(counter_prefix);
        for e in buf.events() {
            let obj = match *e {
                Event::PhaseSpan { phase, start, end } => {
                    // A balanced B/E pair; spans tile the timeline, so the
                    // per-track B/E stream is monotone and depth-1 nested.
                    self.raw(&format!(
                        "{{\"name\":\"{}\",\"cat\":\"phase\",\"ph\":\"B\",\"pid\":{pid},\"tid\":{tid},\"ts\":{start}}}",
                        phase.label()
                    ));
                    format!(
                        "{{\"ph\":\"E\",\"pid\":{pid},\"tid\":{tid},\"ts\":{end}}}"
                    )
                }
                Event::CkptTake { at, live } => instant(pid, tid, at, "ckpt-take", &format!("\"live\":{live}")),
                Event::CkptCommit { at, merged } => {
                    instant(pid, tid, at, "ckpt-commit", &format!("\"merged\":{merged}"))
                }
                Event::CkptRollback { at, scout, squashed } => instant(
                    pid,
                    tid,
                    at,
                    "rollback",
                    &format!("\"scout\":{scout},\"squashed\":{squashed}"),
                ),
                Event::Defer { at, cause } => {
                    instant(pid, tid, at, "defer", &format!("\"cause\":\"{}\"", cause.label()))
                }
                Event::Redefer { at } => instant(pid, tid, at, "redefer", ""),
                Event::ReplayPass { at, executed, redeferred } => instant(
                    pid,
                    tid,
                    at,
                    "replay-pass",
                    &format!("\"executed\":{executed},\"redeferred\":{redeferred}"),
                ),
                Event::ReplayFail { at, seq } => {
                    instant(pid, tid, at, "replay-fail", &format!("\"seq\":{seq}"))
                }
                Event::Occupancy { at, dq, stb } => {
                    self.raw(&format!(
                        "{{\"name\":\"{prefix}:dq\",\"ph\":\"C\",\"pid\":{pid},\"tid\":{tid},\"ts\":{at},\"args\":{{\"entries\":{dq}}}}}"
                    ));
                    format!(
                        "{{\"name\":\"{prefix}:stb\",\"ph\":\"C\",\"pid\":{pid},\"tid\":{tid},\"ts\":{at},\"args\":{{\"entries\":{stb}}}}}"
                    )
                }
                Event::MissSpan { start, end, block, deep } => {
                    let name = if deep { "miss:mem" } else { "miss:L2" };
                    let dur = end.saturating_sub(start);
                    format!(
                        "{{\"name\":\"{name}\",\"cat\":\"mem\",\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{start},\"dur\":{dur},\"args\":{{\"block\":\"{block:#x}\"}}}}"
                    )
                }
            };
            self.raw(&obj);
        }
        if buf.dropped() > 0 {
            // Surface ring overflow in the trace itself rather than
            // silently under-reporting.
            let obj = format!(
                "{{\"name\":\"trace-ring-dropped\",\"ph\":\"i\",\"s\":\"g\",\"pid\":{pid},\"tid\":{tid},\"ts\":0,\"args\":{{\"events\":{}}}}}",
                buf.dropped()
            );
            self.raw(&obj);
        }
    }

    /// The complete JSON document.
    pub fn finish(mut self) -> String {
        self.body.push_str("\n]}\n");
        self.body
    }
}

impl Default for ChromeTrace {
    fn default() -> ChromeTrace {
        ChromeTrace::new()
    }
}

fn instant(pid: u64, tid: u64, at: u64, name: &str, args: &str) -> String {
    format!(
        "{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{tid},\"ts\":{at},\"args\":{{{args}}}}}"
    )
}

/// JSON string escaping for caller-supplied names.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DeferCause, Phase};

    fn buf() -> TraceBuf {
        let mut b = TraceBuf::new();
        b.set_phase(Phase::Normal, 0);
        b.set_phase(Phase::Ea, 10);
        b.push(Event::CkptTake { at: 10, live: 1 });
        b.push(Event::Defer { at: 12, cause: DeferCause::CacheMiss });
        b.push(Event::Occupancy { at: 13, dq: 3, stb: 1 });
        b.set_phase(Phase::Replay, 20);
        b.push(Event::ReplayPass { at: 25, executed: 3, redeferred: 1 });
        b.push(Event::CkptCommit { at: 25, merged: 3 });
        b.push(Event::MissSpan { start: 12, end: 80, block: 0x4000, deep: true });
        b.close(30);
        b
    }

    #[test]
    fn export_is_balanced_and_monotone() {
        let mut t = ChromeTrace::new();
        t.name_process(1, "sst/oltp");
        t.name_thread(1, 0, "core0");
        t.add_track(1, 0, "core0", &buf());
        let json = t.finish();

        // Well-formed array envelope.
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"traceEvents\""));

        // Balanced, monotone B/E stream: scan the emitted objects in
        // order, tracking depth and last timestamp.
        let mut depth = 0i64;
        let mut last_ts = 0u64;
        for line in json.lines() {
            let line = line.trim_end_matches(',');
            if !line.contains("\"ph\":\"B\"") && !line.contains("\"ph\":\"E\"") {
                continue;
            }
            let ts: u64 = line
                .split("\"ts\":")
                .nth(1)
                .and_then(|s| s.split(['}', ',']).next())
                .and_then(|s| s.parse().ok())
                .expect("B/E event has ts");
            assert!(ts >= last_ts, "timestamps are monotone: {line}");
            last_ts = ts;
            if line.contains("\"ph\":\"B\"") {
                depth += 1;
            } else {
                depth -= 1;
            }
            assert!(depth >= 0, "E without matching B");
        }
        assert_eq!(depth, 0, "every B has an E");

        // The payloads made it through.
        assert!(json.contains("\"cause\":\"cache_miss\""));
        assert!(json.contains("miss:mem"));
        assert!(json.contains("\"block\":\"0x4000\""));
        assert!(json.contains("core0:dq"));
    }

    #[test]
    fn names_are_escaped() {
        let mut t = ChromeTrace::new();
        t.name_process(1, "evil\"name\\with\nnasties");
        let json = t.finish();
        assert!(json.contains("evil\\\"name\\\\with\\nnasties"));
    }

    #[test]
    fn dropped_events_are_flagged() {
        let mut b = TraceBuf::with_capacity(2);
        for i in 0..5 {
            b.push(Event::Redefer { at: i });
        }
        let mut t = ChromeTrace::new();
        t.add_track(0, 0, "c", &b);
        let json = t.finish();
        assert!(json.contains("trace-ring-dropped"));
        assert!(json.contains("\"events\":3"));
    }
}
