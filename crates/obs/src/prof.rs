//! Host-side self-profiling: scoped wall-time timers around the
//! simulator's own hot stages.
//!
//! Cores carry an `Option<Box<HostTimes>>`; when it is `None` (the
//! default) every probe site is a single discriminant test and no clock
//! is read. When enabled, stage boundaries bracket `Instant::now()`
//! reads and accumulate nanoseconds per [`Stage`]. Host profiling never
//! touches model state, so — like tracing — a profiled run's
//! `RunResult` is byte-identical to an unprofiled one.
//!
//! `MemTick` is accumulated inside the memory system's miss walk, which
//! cores invoke from within their own stages: it *overlaps* `Issue`/
//! `Replay` rather than adding to them, and the per-model tables say so.

use std::time::Instant;

/// A simulator hot-loop stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Frontend fetch (+ the fused decode in cores that decode once).
    Fetch,
    /// Standalone decode/rename work (the OoO core's rename stage).
    Decode,
    /// Issue/execute/commit of the ahead strand.
    Issue,
    /// Deferred-queue replay and speculation management.
    Replay,
    /// The memory system's miss walk (overlaps Issue/Replay).
    MemTick,
    /// Everything else attributable to a stage owner.
    Other,
}

impl Stage {
    /// Every stage, in table order.
    pub const ALL: [Stage; 6] = [
        Stage::Fetch,
        Stage::Decode,
        Stage::Issue,
        Stage::Replay,
        Stage::MemTick,
        Stage::Other,
    ];

    /// Dense index for table storage.
    pub fn index(self) -> usize {
        match self {
            Stage::Fetch => 0,
            Stage::Decode => 1,
            Stage::Issue => 2,
            Stage::Replay => 3,
            Stage::MemTick => 4,
            Stage::Other => 5,
        }
    }

    /// Stable label used in reports and `manifest.json`.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Fetch => "fetch",
            Stage::Decode => "decode",
            Stage::Issue => "issue",
            Stage::Replay => "replay",
            Stage::MemTick => "mem_tick",
            Stage::Other => "other",
        }
    }
}

/// Accumulated host nanoseconds per stage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HostTimes {
    ns: [u64; Stage::ALL.len()],
}

impl HostTimes {
    /// An empty accumulator.
    pub fn new() -> HostTimes {
        HostTimes::default()
    }

    /// Adds `ns` nanoseconds to `stage`.
    pub fn add(&mut self, stage: Stage, ns: u64) {
        self.ns[stage.index()] += ns;
    }

    /// Nanoseconds accumulated for `stage`.
    pub fn get(&self, stage: Stage) -> u64 {
        self.ns[stage.index()]
    }

    /// Total nanoseconds, *excluding* the overlapping `MemTick` stage
    /// (which is nested inside Issue/Replay time).
    pub fn total_ns(&self) -> u64 {
        Stage::ALL
            .iter()
            .filter(|s| **s != Stage::MemTick)
            .map(|s| self.get(*s))
            .sum()
    }

    /// All rows in stable order (zeros included).
    pub fn rows(&self) -> Vec<(&'static str, u64)> {
        Stage::ALL.iter().map(|s| (s.label(), self.get(*s))).collect()
    }

    /// Folds another accumulator into this one.
    pub fn merge(&mut self, other: &HostTimes) {
        for s in Stage::ALL {
            self.ns[s.index()] += other.get(s);
        }
    }

    /// Starts a scoped timer *iff* profiling is enabled. The returned
    /// token is `None` when disabled, making the probe one branch.
    pub fn start(prof: &Option<Box<HostTimes>>) -> Option<Instant> {
        if prof.is_some() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Stops a scoped timer started with [`HostTimes::start`], crediting
    /// the elapsed wall time to `stage`.
    pub fn stop(prof: &mut Option<Box<HostTimes>>, stage: Stage, t0: Option<Instant>) {
        if let (Some(p), Some(t)) = (prof.as_deref_mut(), t0) {
            p.add(stage, t.elapsed().as_nanos() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_and_totals() {
        let mut t = HostTimes::new();
        t.add(Stage::Fetch, 100);
        t.add(Stage::Issue, 300);
        t.add(Stage::MemTick, 250);
        assert_eq!(t.get(Stage::Fetch), 100);
        assert_eq!(t.rows().len(), Stage::ALL.len());
        assert_eq!(t.total_ns(), 400, "MemTick overlaps and is excluded");
        let mut u = HostTimes::new();
        u.add(Stage::Fetch, 1);
        u.merge(&t);
        assert_eq!(u.get(Stage::Fetch), 101);
    }

    #[test]
    fn disabled_probe_is_inert() {
        let mut prof: Option<Box<HostTimes>> = None;
        let t0 = HostTimes::start(&prof);
        assert!(t0.is_none());
        HostTimes::stop(&mut prof, Stage::Fetch, t0);
        assert!(prof.is_none());
    }

    #[test]
    fn enabled_probe_accumulates() {
        let mut prof: Option<Box<HostTimes>> = Some(Box::new(HostTimes::new()));
        let t0 = HostTimes::start(&prof);
        std::hint::black_box(0u64);
        HostTimes::stop(&mut prof, Stage::Replay, t0);
        // Elapsed time is clock-dependent; the structural fact is that
        // the credited stage is the one asked for.
        let times = prof.unwrap();
        assert_eq!(times.total_ns(), times.get(Stage::Replay));
    }
}
