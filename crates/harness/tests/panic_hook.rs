//! The scheduler silences the process-global panic hook while jobs run
//! (panicking jobs are expected and already reported as structured
//! failures). This file checks the guard composes: concurrent runs must
//! not clobber each other's restore, and a user-installed hook must be
//! back in place afterwards.
//!
//! Kept as its own integration-test binary (own process): the panic hook
//! is process-global state, and the scheduler tests in `harness.rs` also
//! swap it.

use std::fs;
use std::panic;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use sst_harness::sched::{self, RunConfig};
use sst_harness::{registry, Env};
use sst_workloads::Scale;

static CUSTOM_HOOK_HITS: AtomicU64 = AtomicU64::new(0);

fn tmp_out(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("sst-hook-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    fs::create_dir_all(&d).unwrap();
    d
}

fn cfg(out: &Path) -> RunConfig {
    RunConfig {
        jobs: 2,
        sim_threads: 1,
        use_cache: false,
        out_dir: out.to_path_buf(),
        env: Env {
            scale: Scale::Smoke,
            seed: 7,
            max_cycles: 100_000_000,
        },
        quiet: true,
        shard: None,
    }
}

#[test]
fn custom_hook_survives_two_concurrent_scheduler_runs() {
    // A user hook installed before any scheduler activity...
    panic::set_hook(Box::new(|_| {
        CUSTOM_HOOK_HITS.fetch_add(1, Ordering::SeqCst);
    }));

    // ...must survive two overlapping runs, each of which silences the
    // hook for its own panicking job and restores on the way out. With a
    // naive save/restore (instead of the refcounted guard) the second
    // run's restore would reinstall the *silencer* saved by the first.
    let out_a = tmp_out("a");
    let out_b = tmp_out("b");
    let (sa, sb) = std::thread::scope(|s| {
        let a = s.spawn(|| sched::run(&[registry::find("xfail").unwrap()], &cfg(&out_a)));
        let b = s.spawn(|| sched::run(&[registry::find("xfail").unwrap()], &cfg(&out_b)));
        (a.join().unwrap(), b.join().unwrap())
    });
    for s in [&sa, &sb] {
        assert!(!s.clean());
        assert_eq!(s.failures.len(), 1);
        assert_eq!(s.failures[0].kind, "panic");
    }

    // The custom hook is back: a caught panic now fires it.
    let before = CUSTOM_HOOK_HITS.load(Ordering::SeqCst);
    let _ = panic::catch_unwind(|| panic!("probe"));
    assert_eq!(
        CUSTOM_HOOK_HITS.load(Ordering::SeqCst),
        before + 1,
        "the user-installed panic hook was not restored after the runs"
    );

    let _ = panic::take_hook(); // leave the default hook for the harness
    fs::remove_dir_all(&out_a).ok();
    fs::remove_dir_all(&out_b).ok();
}
