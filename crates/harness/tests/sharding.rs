//! Scale-out invariants: `--shard i/n` partitioning merges to exactly
//! the unsharded outputs, and concurrent schedulers sharing one cache
//! never execute the same job twice (claim files).

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use sst_harness::sched::{self, RunConfig};
use sst_harness::{registry, Env};
use sst_workloads::Scale;

fn smoke_env() -> Env {
    Env {
        scale: Scale::Smoke,
        seed: 7,
        max_cycles: 100_000_000,
    }
}

fn tmp_out(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("sst-shard-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    fs::create_dir_all(&d).unwrap();
    d
}

fn cfg(out: &Path, shard: Option<(usize, usize)>) -> RunConfig {
    RunConfig {
        jobs: 4,
        sim_threads: 1,
        use_cache: true,
        out_dir: out.to_path_buf(),
        env: smoke_env(),
        quiet: true,
        shard,
    }
}

/// Every output file under `results/` (except the cache), name -> bytes.
fn output_files(out: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut files = BTreeMap::new();
    for entry in fs::read_dir(out.join("results")).unwrap() {
        let entry = entry.unwrap();
        if entry.file_type().unwrap().is_dir() {
            continue; // results/cache
        }
        let name = entry.file_name().into_string().unwrap();
        if name == "manifest.json" {
            continue; // carries durations; not expected to be stable
        }
        files.insert(name, fs::read(entry.path()).unwrap());
    }
    files
}

#[test]
fn sharded_runs_merge_to_the_unsharded_outputs() {
    let e2 = || vec![registry::find("e2").unwrap()];

    // Reference: one unsharded run.
    let reference = tmp_out("ref");
    let summary = sched::run(&e2(), &cfg(&reference, None));
    assert!(summary.clean(), "reference failed: {:?}", summary.failures);
    let want = output_files(&reference);
    assert!(!want.is_empty(), "reference produced no outputs");

    // Sharded: two sequential passes over one shared output directory,
    // then a final unsharded pass that folds entirely from the cache.
    let sharded = tmp_out("parts");
    let shard0 = sched::run(&e2(), &cfg(&sharded, Some((0, 2))));
    assert!(shard0.clean(), "shard 0/2 failed: {:?}", shard0.failures);
    assert_eq!(shard0.cache_hits, 0, "cold cache must not hit");

    let shard1 = sched::run(&e2(), &cfg(&sharded, Some((1, 2))));
    assert!(shard1.clean(), "shard 1/2 failed: {:?}", shard1.failures);
    assert_eq!(
        shard1.cache_hits,
        shard0.executed_jobs(),
        "shard 1 must see exactly shard 0's published results as hits"
    );

    // Deterministic partition: together the shards execute each job
    // exactly once.
    assert_eq!(
        shard0.executed_jobs() + shard1.executed_jobs(),
        shard0.total_jobs,
        "shards must partition the job set"
    );

    let merged = sched::run(&e2(), &cfg(&sharded, None));
    assert!(merged.clean(), "merge pass failed: {:?}", merged.failures);
    assert_eq!(
        merged.cache_hits, merged.total_jobs,
        "merge pass must fold purely from the shared cache"
    );

    let got = output_files(&sharded);
    assert_eq!(
        want.keys().collect::<Vec<_>>(),
        got.keys().collect::<Vec<_>>(),
        "different file sets"
    );
    for (name, bytes) in &want {
        assert_eq!(bytes, &got[name], "{name} differs: sharded vs unsharded");
    }

    fs::remove_dir_all(&reference).ok();
    fs::remove_dir_all(&sharded).ok();
}

#[test]
fn out_of_range_shards_execute_nothing() {
    // `hash % n == i` with i >= n can never be true; the CLI rejects such
    // specs, but the scheduler itself must also stay safe if handed one.
    let e2 = || vec![registry::find("e2").unwrap()];
    let out = tmp_out("oob");
    let summary = sched::run(&e2(), &cfg(&out, Some((5, 2))));
    assert_eq!(summary.executed_jobs(), 0);
    assert!(summary.failures.is_empty(), "{:?}", summary.failures);
    fs::remove_dir_all(&out).ok();
}

#[test]
fn concurrent_schedulers_never_duplicate_an_execution() {
    // Two schedulers race over the same output directory with the cache
    // on — the model for N `sst-run all` processes on one machine. Claim
    // files must make every job execute exactly once across the pair;
    // the loser of each claim serves the winner's published result.
    let out = tmp_out("race");
    let (a, b) = std::thread::scope(|scope| {
        let ja = scope.spawn(|| {
            sched::run(&[registry::find("e2").unwrap()], &cfg(&out, None))
        });
        let jb = scope.spawn(|| {
            sched::run(&[registry::find("e2").unwrap()], &cfg(&out, None))
        });
        (ja.join().unwrap(), jb.join().unwrap())
    });
    assert!(a.clean(), "scheduler A failed: {:?}", a.failures);
    assert!(b.clean(), "scheduler B failed: {:?}", b.failures);
    assert_eq!(a.total_jobs, b.total_jobs);
    assert_eq!(
        a.executed_jobs() + b.executed_jobs(),
        a.total_jobs,
        "every job must execute exactly once across both schedulers \
         (A ran {}, B ran {}, {} cached apiece)",
        a.executed_jobs(),
        b.executed_jobs(),
        a.cache_hits,
    );
    // No claim files may survive a clean run.
    let cache = out.join("results").join("cache");
    let leftover: Vec<_> = fs::read_dir(&cache)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().into_string().unwrap())
        .filter(|n| n.ends_with(".claim"))
        .collect();
    assert!(leftover.is_empty(), "stale claims: {leftover:?}");
    fs::remove_dir_all(&out).ok();
}
