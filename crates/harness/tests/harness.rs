//! Integration tests for the orchestration layer: scheduler determinism
//! across thread counts, cache behavior, and fault isolation (wedged and
//! panicking jobs).

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use sst_harness::sched::{self, RunConfig};
use sst_harness::{registry, Env};
use sst_workloads::Scale;

fn smoke_env() -> Env {
    Env {
        scale: Scale::Smoke,
        seed: 7,
        max_cycles: 100_000_000,
    }
}

fn tmp_out(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("sst-harness-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    fs::create_dir_all(&d).unwrap();
    d
}

fn cfg(out: &Path, jobs: usize, use_cache: bool) -> RunConfig {
    RunConfig {
        jobs,
        sim_threads: 1,
        use_cache,
        out_dir: out.to_path_buf(),
        env: smoke_env(),
        quiet: true,
        shard: None,
    }
}

/// Every output file under `results/` (except the cache), name -> bytes.
fn output_files(out: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut files = BTreeMap::new();
    for entry in fs::read_dir(out.join("results")).unwrap() {
        let entry = entry.unwrap();
        if entry.file_type().unwrap().is_dir() {
            continue; // results/cache
        }
        let name = entry.file_name().into_string().unwrap();
        if name == "manifest.json" {
            continue; // carries durations; not expected to be stable
        }
        files.insert(name, fs::read(entry.path()).unwrap());
    }
    files
}

#[test]
fn scheduler_output_is_identical_across_thread_counts() {
    let e2 = || vec![registry::find("e2").unwrap()];

    let serial = tmp_out("serial");
    let summary = sched::run(&e2(), &cfg(&serial, 1, false));
    assert!(summary.clean(), "serial run failed: {:?}", summary.failures);

    let parallel = tmp_out("parallel");
    let summary = sched::run(&e2(), &cfg(&parallel, 8, false));
    assert!(summary.clean(), "parallel run failed: {:?}", summary.failures);

    let a = output_files(&serial);
    let b = output_files(&parallel);
    assert!(!a.is_empty(), "no outputs written");
    assert!(a.contains_key("e2_workloads.csv"), "missing csv: {:?}", a.keys());
    assert!(a.contains_key("e2.json"), "missing json: {:?}", a.keys());
    assert_eq!(
        a.keys().collect::<Vec<_>>(),
        b.keys().collect::<Vec<_>>(),
        "different file sets"
    );
    for (name, bytes) in &a {
        assert_eq!(bytes, &b[name], "{name} differs between jobs=1 and jobs=8");
    }

    fs::remove_dir_all(&serial).ok();
    fs::remove_dir_all(&parallel).ok();
}

#[test]
fn e14_tables_are_identical_across_jobs_and_sim_threads() {
    // The traffic family's determinism contract, end to end: the emitted
    // CSV/JSON tables are byte-identical whether the sweep runs on 1 or 8
    // workers, and whether each CMP simulates on 1 or 4 threads.
    let e14 = || vec![registry::find("e14").unwrap()];

    let base = tmp_out("e14-base");
    let summary = sched::run(&e14(), &cfg(&base, 1, false));
    assert!(summary.clean(), "e14 failed: {:?}", summary.failures);
    let a = output_files(&base);
    assert!(a.contains_key("e14_load_sst.csv"), "{:?}", a.keys());
    assert!(a.contains_key("e14_knee.csv"), "{:?}", a.keys());
    assert!(a.contains_key("e14.json"), "{:?}", a.keys());

    let jobs8 = tmp_out("e14-jobs8");
    let summary = sched::run(&e14(), &cfg(&jobs8, 8, false));
    assert!(summary.clean(), "{:?}", summary.failures);
    assert_eq!(a, output_files(&jobs8), "jobs=8 must not change a byte");

    let threads4 = tmp_out("e14-threads4");
    let mut c = cfg(&threads4, 2, false);
    c.sim_threads = 4;
    let summary = sched::run(&e14(), &c);
    assert!(summary.clean(), "{:?}", summary.failures);
    assert_eq!(a, output_files(&threads4), "--threads 4 must not change a byte");

    fs::remove_dir_all(&base).ok();
    fs::remove_dir_all(&jobs8).ok();
    fs::remove_dir_all(&threads4).ok();
}

#[test]
fn second_run_is_served_entirely_from_cache() {
    let e2 = || vec![registry::find("e2").unwrap()];
    let out = tmp_out("cache");

    let first = sched::run(&e2(), &cfg(&out, 4, true));
    assert!(first.clean());
    assert_eq!(first.cache_hits, 0, "cold cache must not hit");
    let outputs_first = output_files(&out);

    let second = sched::run(&e2(), &cfg(&out, 4, true));
    assert!(second.clean());
    assert_eq!(
        second.cache_hits, second.total_jobs,
        "warm cache must serve every job"
    );
    assert_eq!(
        outputs_first,
        output_files(&out),
        "cached results must reproduce the outputs exactly"
    );

    // A different seed is a different key: no stale hits.
    let mut c = cfg(&out, 4, true);
    c.env.seed = 8;
    let third = sched::run(&e2(), &c);
    assert!(third.clean());
    assert_eq!(third.cache_hits, 0, "seed change must miss");

    fs::remove_dir_all(&out).ok();
}

#[test]
fn wedged_jobs_are_reported_and_do_not_abort_the_run() {
    // A cycle budget no workload can meet: every job overruns and is
    // reported as a structured "error" failure; the run itself completes
    // and writes the manifest.
    let out = tmp_out("wedged");
    let mut c = cfg(&out, 4, false);
    c.env.max_cycles = 50;

    let exps = vec![registry::find("e2").unwrap()];
    let n_jobs = (exps[0].jobs)(&c.env).len();
    let summary = sched::run(&exps, &c);

    assert_eq!(summary.failures.len(), n_jobs, "every job must overrun");
    for f in &summary.failures {
        assert_eq!(f.kind, "error");
        assert!(f.message.contains("did not halt"), "{}", f.message);
    }

    let manifest = fs::read_to_string(out.join("results/manifest.json")).unwrap();
    assert!(manifest.contains("\"failed_jobs\": 12"));
    assert!(manifest.contains("did not halt"));
    assert!(
        !out.join("results/e2_workloads.csv").exists(),
        "a failed experiment must not emit tables"
    );

    fs::remove_dir_all(&out).ok();
}

#[test]
fn injected_panic_is_isolated_and_recorded() {
    let out = tmp_out("xfail");
    let exps = vec![registry::find("xfail").unwrap()];
    let summary = sched::run(&exps, &cfg(&out, 2, false));

    assert!(!summary.clean());
    assert_eq!(summary.failures.len(), 1);
    let f = &summary.failures[0];
    assert_eq!((f.experiment.as_str(), f.job.as_str()), ("xfail", "boom"));
    assert_eq!(f.kind, "panic");
    assert!(f.message.contains("injected failure"));

    let manifest = fs::read_to_string(out.join("results/manifest.json")).unwrap();
    assert!(manifest.contains("\"kind\": \"panic\""));
    // The sibling job still ran to completion.
    assert!(manifest.contains("\"name\": \"ok/gzip\""));
    assert!(manifest.contains("\"status\": \"ok\""));

    fs::remove_dir_all(&out).ok();
}

#[test]
fn fold_panic_is_recorded_and_cannot_look_clean() {
    // All of xfold's jobs succeed; its fold panics. The run must complete,
    // record a structured "fold-panic" failure, and report unclean.
    let out = tmp_out("xfold");
    let exps = vec![registry::find("xfold").unwrap(), registry::find("e1").unwrap()];
    let summary = sched::run(&exps, &cfg(&out, 2, false));

    assert!(!summary.clean(), "a panicking fold must not look clean");
    assert_eq!(summary.failures.len(), 1);
    let f = &summary.failures[0];
    assert_eq!((f.experiment.as_str(), f.job.as_str()), ("xfold", "(fold)"));
    assert_eq!(f.kind, "fold-panic");
    assert!(f.message.contains("injected failure"), "{}", f.message);

    // The sibling experiment still folded and wrote its tables.
    assert!(out.join("results/e1_configs.csv").exists());
    let manifest = fs::read_to_string(out.join("results/manifest.json")).unwrap();
    assert!(manifest.contains("\"kind\": \"fold-panic\""));

    fs::remove_dir_all(&out).ok();
}

#[test]
fn disjoint_experiments_fold_independently_of_failures_elsewhere() {
    // xfail fails; e1 (config tables, no simulation) still folds.
    let out = tmp_out("mixed");
    let exps = vec![registry::find("xfail").unwrap(), registry::find("e1").unwrap()];
    let summary = sched::run(&exps, &cfg(&out, 2, false));

    assert_eq!(summary.failures.len(), 1);
    assert!(out.join("results/e1_configs.csv").exists());
    assert!(out.join("results/e1_shared.csv").exists());

    fs::remove_dir_all(&out).ok();
}
