//! The scheduler: a work-queue worker pool with per-job fault isolation,
//! cache integration, deterministic fold ordering, and the run manifest.
//!
//! Determinism: job *results* are pure functions of their spec (the
//! simulators are deterministic), fold steps run on the coordinating
//! thread in declared experiment order, and folds read results by job
//! name — so the emitted tables are byte-identical for any `--jobs N`
//! and any completion order.

use std::collections::BTreeMap;
use std::fs;
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::job::{JobOutput, JobSpec};
use crate::json::JVal;
use crate::registry::{Experiment, RunCtx};
use crate::{cache, Env};

/// Scheduler configuration: everything about *how* to run, none of which
/// may influence results.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Worker thread count (>= 1).
    pub jobs: usize,
    /// Simulation threads per CMP job (>= 1). Purely a wall-clock knob:
    /// the parallel CMP driver is byte-identical to the serial one, so
    /// this must never enter cache keys.
    pub sim_threads: usize,
    /// Serve and populate the content-addressed cache.
    pub use_cache: bool,
    /// Output root; `results/` is created beneath it.
    pub out_dir: PathBuf,
    /// The experiment environment.
    pub env: Env,
    /// Suppress per-job progress lines (tests).
    pub quiet: bool,
    /// Scale-out partition `(index, count)` from `--shard i/n`: this
    /// process *executes* only the jobs whose cache hash satisfies
    /// `hash % n == i`. Non-owned jobs still serve from the cache when
    /// another shard has already published them; otherwise they are
    /// recorded as `"skipped"` — never failed. `None` owns everything.
    pub shard: Option<(usize, usize)>,
}

/// How long a claim file may exist before any scheduler may break it.
/// Claims normally live for one job's execution and are removed by their
/// RAII guard even on panic; only a SIGKILLed process leaves one behind.
const STALE_CLAIM_GRACE: Duration = Duration::from_secs(600);

/// Poll interval while waiting for a claim holder to publish its result.
const CLAIM_POLL: Duration = Duration::from_millis(25);

impl RunConfig {
    /// Defaults: available parallelism, cache on, env + out dir from the
    /// process environment.
    pub fn from_os() -> RunConfig {
        RunConfig {
            jobs: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            sim_threads: 1,
            use_cache: true,
            out_dir: crate::out_dir_from_os(),
            env: Env::from_os(),
            quiet: false,
            shard: None,
        }
    }
}

/// Process-wide state for [`SilentPanicGuard`]: how many scheduler runs
/// currently want the hook silenced, and the hook that was installed when
/// the first of them arrived.
struct SilenceState {
    depth: usize,
    saved: Option<Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Send + Sync>>,
}

static SILENCE: Mutex<SilenceState> = Mutex::new(SilenceState {
    depth: 0,
    saved: None,
});

/// RAII silencer for the global panic hook.
///
/// The panic hook is process-global, but `run` may execute concurrently
/// (the test suite does exactly that). A bare `take_hook`/`set_hook` pair
/// races: two overlapping runs can save each other's no-op hook and the
/// original hook is lost forever, or the second restore resurrects
/// backtrace spew while jobs are still being caught. Instead, a
/// process-wide refcount installs the no-op hook when the first guard
/// appears and restores the original only when the last guard drops —
/// and drop-on-unwind means the hook is restored even if the scheduler
/// itself panics.
struct SilentPanicGuard;

impl SilentPanicGuard {
    fn install() -> SilentPanicGuard {
        let mut st = SILENCE.lock().unwrap();
        if st.depth == 0 {
            st.saved = Some(std::panic::take_hook());
            std::panic::set_hook(Box::new(|_| {}));
        }
        st.depth += 1;
        SilentPanicGuard
    }
}

impl Drop for SilentPanicGuard {
    fn drop(&mut self) {
        let mut st = SILENCE.lock().unwrap();
        st.depth -= 1;
        if st.depth == 0 {
            if let Some(hook) = st.saved.take() {
                std::panic::set_hook(hook);
            }
        }
    }
}

/// A structured record of one failed job.
#[derive(Clone, Debug)]
pub struct FailureRecord {
    /// Experiment id.
    pub experiment: String,
    /// Job name within the experiment.
    pub job: String,
    /// `"panic"` (caught unwind) or `"error"` (detected failure, e.g. a
    /// cycle-budget overrun).
    pub kind: String,
    /// The panic payload or error message.
    pub message: String,
}

/// Per-job outcome recorded in the manifest.
#[derive(Clone, Debug)]
struct JobRecord {
    name: String,
    /// `"ok"`, `"cached"`, `"skipped"` (owned by another shard), or
    /// `"failed"`.
    status: &'static str,
    duration_ms: u64,
    /// Host wall time spent *inside* `JobSpec::execute` (0 when the
    /// result came from the cache) — the simulation cost itself, free of
    /// cache I/O and scheduling overhead.
    execute_ns: u64,
    cache_hash: u64,
}

/// Per-experiment outcome.
struct ExpRecord {
    id: String,
    jobs: Vec<JobRecord>,
    folded: bool,
}

/// Whole-run summary, also written as `results/manifest.json`.
pub struct RunSummary {
    /// Total jobs attempted.
    pub total_jobs: usize,
    /// Jobs served from the cache.
    pub cache_hits: usize,
    /// Structured failures (empty on a clean run).
    pub failures: Vec<FailureRecord>,
    records: Vec<ExpRecord>,
}

impl RunSummary {
    /// `true` when every job succeeded and every fold ran to completion.
    ///
    /// Checking `folded` as well as `failures` means a fold that panicked
    /// — or was skipped because its inputs never materialised — can never
    /// masquerade as a clean run. The one exception: an experiment left
    /// unfolded *only* because jobs belong to other shards is still
    /// clean — sharded runs fold when the last shard finds every input
    /// in the shared cache.
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
            && self.records.iter().all(|r| {
                r.folded || r.jobs.iter().any(|j| j.status == "skipped")
            })
    }

    /// Jobs this process actually executed (neither cached nor skipped).
    /// The sharding tests use this to prove no job ran twice across
    /// concurrent schedulers on one output directory.
    pub fn executed_jobs(&self) -> usize {
        self.records
            .iter()
            .flat_map(|r| &r.jobs)
            .filter(|j| j.status == "ok")
            .count()
    }
}

enum Outcome {
    Ok { output: JobOutput, cached: bool },
    /// Owned by another shard and not (yet) in the shared cache.
    Skipped,
    Failed { kind: &'static str, message: String },
}

struct Done {
    exp_idx: usize,
    job_idx: usize,
    outcome: Outcome,
    duration_ms: u64,
    execute_ns: u64,
}

/// Runs `experiments`' jobs on the worker pool, folds each experiment
/// whose jobs all succeeded (in the given order), writes CSV/JSON
/// outputs and `results/manifest.json`, and returns the summary.
pub fn run(experiments: &[Experiment], cfg: &RunConfig) -> RunSummary {
    let env = cfg.env;
    if cfg.use_cache {
        let reaped = cache::reap_stale_claims(&cfg.out_dir, STALE_CLAIM_GRACE);
        if reaped > 0 && !cfg.quiet {
            println!("reaped {reaped} stale claim file(s) from a dead scheduler");
        }
    }
    let per_exp_jobs: Vec<Vec<JobSpec>> = experiments.iter().map(|e| (e.jobs)(&env)).collect();
    let total: usize = per_exp_jobs.iter().map(|v| v.len()).sum();

    // The work queue: (experiment index, job index), in declaration
    // order. Workers pop from the front; order only affects scheduling.
    let queue: Mutex<std::collections::VecDeque<(usize, usize)>> = Mutex::new(
        per_exp_jobs
            .iter()
            .enumerate()
            .flat_map(|(ei, jobs)| (0..jobs.len()).map(move |ji| (ei, ji)))
            .collect(),
    );

    let (tx, rx) = mpsc::channel::<Done>();
    let workers = cfg.jobs.max(1).min(total.max(1));

    let mut results: Vec<Vec<Option<JobOutput>>> =
        per_exp_jobs.iter().map(|v| vec![None; v.len()]).collect();
    let mut records: Vec<ExpRecord> = experiments
        .iter()
        .zip(&per_exp_jobs)
        .map(|(e, jobs)| ExpRecord {
            id: e.id.to_string(),
            jobs: jobs
                .iter()
                .map(|j| JobRecord {
                    name: j.name.clone(),
                    status: "failed",
                    duration_ms: 0,
                    execute_ns: 0,
                    cache_hash: j.cache_hash(e.id, &env),
                })
                .collect(),
            folded: false,
        })
        .collect();
    let mut failures: Vec<FailureRecord> = Vec::new();
    let mut cache_hits = 0usize;

    // Job and fold panics are caught and recorded; silence the default
    // hook's backtrace spew for the duration of the run (pool and fold
    // phase). The guard refcounts so concurrent runs compose.
    let _silence = SilentPanicGuard::install();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let queue = &queue;
            let per_exp_jobs = &per_exp_jobs;
            scope.spawn(move || loop {
                let Some((ei, ji)) = queue.lock().unwrap().pop_front() else {
                    return;
                };
                let spec = &per_exp_jobs[ei][ji];
                let exp_id = experiments[ei].id;
                let started = Instant::now();
                let hash = spec.cache_hash(exp_id, &env);
                let key = spec.cache_key(exp_id, &env);

                let owned = cfg
                    .shard
                    .map_or(true, |(i, n)| hash % n.max(1) as u64 == i as u64);

                let mut execute_ns = 0u64;
                let outcome = 'job: {
                    if cfg.use_cache {
                        if let Some(output) = cache::load(&cfg.out_dir, hash, &key) {
                            break 'job Outcome::Ok {
                                output,
                                cached: true,
                            };
                        }
                    }
                    if !owned {
                        // Another shard's job; it will execute and
                        // publish it. Don't wait — the fold either runs
                        // on a later (cached) pass or on whichever shard
                        // finishes last.
                        break 'job Outcome::Skipped;
                    }
                    // Claim the entry so N concurrent schedulers sharing
                    // this output directory (same shard spec, or no
                    // sharding at all) never duplicate an execution: one
                    // wins and runs the job, the rest poll for its
                    // published entry.
                    let _claim_guard = if cfg.use_cache {
                        loop {
                            match cache::claim(&cfg.out_dir, hash) {
                                Ok(cache::Claim::Won(guard)) => {
                                    // The previous holder may have
                                    // published between our miss and this
                                    // win; re-check before executing.
                                    if let Some(output) =
                                        cache::load(&cfg.out_dir, hash, &key)
                                    {
                                        break 'job Outcome::Ok {
                                            output,
                                            cached: true,
                                        };
                                    }
                                    break Some(guard);
                                }
                                Ok(cache::Claim::Lost) => {
                                    std::thread::sleep(CLAIM_POLL);
                                    if let Some(output) =
                                        cache::load(&cfg.out_dir, hash, &key)
                                    {
                                        break 'job Outcome::Ok {
                                            output,
                                            cached: true,
                                        };
                                    }
                                    // A holder that died without
                                    // unwinding (SIGKILL) never removes
                                    // its claim; break it after the grace
                                    // period and contend again.
                                    if cache::claim_age(&cfg.out_dir, hash)
                                        .is_some_and(|age| age >= STALE_CLAIM_GRACE)
                                    {
                                        cache::remove_claim(&cfg.out_dir, hash);
                                    }
                                }
                                // A filesystem error creating the claim
                                // (read-only cache dir, quota) must not
                                // lose the run: execute unclaimed.
                                Err(_) => break None,
                            }
                        }
                    } else {
                        None
                    };
                    let exec_started = Instant::now();
                    let caught = catch_unwind(AssertUnwindSafe(|| {
                        spec.execute(&env, cfg.sim_threads)
                    }));
                    execute_ns = exec_started.elapsed().as_nanos() as u64;
                    match caught {
                        Ok(Ok(output)) => {
                            if cfg.use_cache {
                                // A full cache disk is not a reason to
                                // lose the run; the store is best-effort.
                                let _ = cache::store(&cfg.out_dir, hash, &key, &output);
                            }
                            Outcome::Ok {
                                output,
                                cached: false,
                            }
                        }
                        Ok(Err(message)) => Outcome::Failed {
                            kind: "error",
                            message,
                        },
                        Err(payload) => Outcome::Failed {
                            kind: "panic",
                            message: panic_message(payload.as_ref()),
                        },
                    }
                    // `_claim_guard` drops here, releasing the claim
                    // after the result is published (or the failure is
                    // final) — waiters then load the entry or re-claim.
                };

                if tx
                    .send(Done {
                        exp_idx: ei,
                        job_idx: ji,
                        outcome,
                        duration_ms: started.elapsed().as_millis() as u64,
                        execute_ns,
                    })
                    .is_err()
                {
                    return;
                }
            });
        }
        drop(tx);

        let mut done = 0usize;
        for msg in rx {
            done += 1;
            let rec = &mut records[msg.exp_idx].jobs[msg.job_idx];
            rec.duration_ms = msg.duration_ms;
            rec.execute_ns = msg.execute_ns;
            let (status, detail) = match msg.outcome {
                Outcome::Ok { output, cached } => {
                    rec.status = if cached { "cached" } else { "ok" };
                    if cached {
                        cache_hits += 1;
                    }
                    results[msg.exp_idx][msg.job_idx] = Some(output);
                    (rec.status, String::new())
                }
                Outcome::Skipped => {
                    rec.status = "skipped";
                    ("skipped", " (other shard)".to_string())
                }
                Outcome::Failed { kind, message } => {
                    rec.status = "failed";
                    failures.push(FailureRecord {
                        experiment: records[msg.exp_idx].id.clone(),
                        job: records[msg.exp_idx].jobs[msg.job_idx].name.clone(),
                        kind: kind.to_string(),
                        message: message.clone(),
                    });
                    ("FAILED", format!(" ({kind}: {message})"))
                }
            };
            if !cfg.quiet {
                let rec = &records[msg.exp_idx].jobs[msg.job_idx];
                println!(
                    "[{done:>4}/{total}] {:<4} {:<28} {status:<6} {:>7.1}s{detail}",
                    records[msg.exp_idx].id,
                    rec.name,
                    rec.duration_ms as f64 / 1000.0,
                );
                let _ = std::io::stdout().flush();
            }
        }
    });

    // Fold phase: strictly in declaration order, on this thread.
    for (ei, exp) in experiments.iter().enumerate() {
        let complete = results[ei].iter().all(|r| r.is_some());
        if !complete {
            if !cfg.quiet {
                let missing = results[ei].iter().filter(|r| r.is_none()).count();
                let skipped = records[ei]
                    .jobs
                    .iter()
                    .filter(|j| j.status == "skipped")
                    .count();
                if skipped == missing {
                    println!(
                        "\n{}: skipping fold — {} job(s) owned by other shards \
                         (re-run unsharded once all shards finish to fold from cache)",
                        exp.id, skipped
                    );
                } else {
                    println!(
                        "\n{}: skipping fold — {} job(s) failed (see results/manifest.json)",
                        exp.id, missing
                    );
                }
            }
            continue;
        }
        let by_name: BTreeMap<String, JobOutput> = per_exp_jobs[ei]
            .iter()
            .zip(results[ei].iter_mut())
            .map(|(spec, slot)| (spec.name.clone(), slot.take().expect("complete")))
            .collect();
        let ctx = RunCtx::new(&by_name);
        // A fold that panics (a missing counter, a bad unwrap while
        // shaping a table) must not take down the remaining experiments
        // or masquerade as a clean run: catch it, record it, and leave
        // `folded` false so `RunSummary::clean()` reports the truth.
        let fold = match catch_unwind(AssertUnwindSafe(|| (exp.fold)(&env, &ctx))) {
            Ok(fold) => fold,
            Err(payload) => {
                let message = panic_message(payload.as_ref());
                if !cfg.quiet {
                    println!("\n{}: fold panicked ({message})", exp.id);
                }
                failures.push(FailureRecord {
                    experiment: exp.id.to_string(),
                    job: "(fold)".to_string(),
                    kind: "fold-panic".to_string(),
                    message,
                });
                continue;
            }
        };

        if !cfg.quiet {
            banner(exp, &env);
            for item in &fold.items {
                match item {
                    crate::registry::FoldItem::Note(n) => println!("{n}"),
                    crate::registry::FoldItem::Table(name, t) => {
                        println!("{}", t.to_markdown());
                        match t.write_csv(&cfg.out_dir, name) {
                            Ok(p) => println!("(csv written to {})\n", p.display()),
                            Err(e) => println!("(csv not written: {e})\n"),
                        }
                    }
                }
            }
            println!();
        } else {
            for (name, t) in fold.tables() {
                let _ = t.write_csv(&cfg.out_dir, name);
            }
        }
        write_experiment_json(cfg, exp, &per_exp_jobs[ei], &by_name);
        records[ei].folded = true;
    }

    let summary = RunSummary {
        total_jobs: total,
        cache_hits,
        failures,
        records,
    };
    write_manifest(cfg, &summary);
    summary
}

fn banner(exp: &Experiment, env: &Env) {
    println!("===============================================================");
    println!("{}: {}", exp.id.to_uppercase(), exp.title);
    println!("  paper target: {}", exp.paper_note);
    println!("  scale={} seed={}", env.scale_token(), env.seed);
    println!("===============================================================\n");
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn results_dir(cfg: &RunConfig) -> PathBuf {
    cfg.out_dir.join("results")
}

fn write_experiment_json(
    cfg: &RunConfig,
    exp: &Experiment,
    specs: &[JobSpec],
    by_name: &BTreeMap<String, JobOutput>,
) {
    let jobs: Vec<JVal> = specs
        .iter()
        .map(|spec| {
            let mut pairs: Vec<(String, JVal)> =
                vec![("name".to_string(), JVal::str(&spec.name))];
            match &by_name[&spec.name] {
                JobOutput::Run(r) => {
                    let defer_rate = {
                        let issued = r.counter("ahead_issued").unwrap_or(0)
                            + r.counter("replay_issued").unwrap_or(0);
                        if issued == 0 {
                            0.0
                        } else {
                            r.counter("deferred").unwrap_or(0) as f64 / issued as f64
                        }
                    };
                    pairs.extend([
                        ("kind".to_string(), JVal::str("run")),
                        ("model".to_string(), JVal::str(&r.model)),
                        ("workload".to_string(), JVal::str(&r.workload)),
                        ("cycles".to_string(), JVal::Int(r.cycles)),
                        ("insts".to_string(), JVal::Int(r.insts)),
                        ("ipc".to_string(), JVal::Num(r.ipc())),
                        ("measured_ipc".to_string(), JVal::Num(r.measured_ipc())),
                        ("defer_rate".to_string(), JVal::Num(defer_rate)),
                        (
                            "inst_mix".to_string(),
                            JVal::Obj(
                                sst_isa::InstClass::ALL
                                    .iter()
                                    .zip(r.inst_mix.iter())
                                    .map(|(c, &v)| (c.label().to_string(), JVal::Int(v)))
                                    .collect(),
                            ),
                        ),
                        (
                            "counters".to_string(),
                            JVal::Obj(
                                r.counters
                                    .iter()
                                    .map(|(n, v)| (n.clone(), JVal::Int(*v)))
                                    .collect(),
                            ),
                        ),
                        (
                            // Per-phase cycle table; rows sum exactly to
                            // `cycles` (the trace-equivalence suite pins
                            // this for every model).
                            "phases".to_string(),
                            JVal::Obj(
                                r.phases
                                    .iter()
                                    .map(|(n, v)| (n.clone(), JVal::Int(*v)))
                                    .collect(),
                            ),
                        ),
                        (
                            "mem".to_string(),
                            JVal::obj([
                                ("l1d_mpki", JVal::Num(r.mem.l1d[0].mpki(r.insts))),
                                ("l2_mpki", JVal::Num(r.mem.l2.mpki(r.insts))),
                                ("dram_reads", JVal::Int(r.mem.dram_reads)),
                                ("dram_row_hits", JVal::Int(r.mem.dram_row_hits)),
                                ("mshr_merges", JVal::Int(r.mem.mshr_merges)),
                                ("prefetches", JVal::Int(r.mem.prefetches)),
                                (
                                    "useful_prefetches",
                                    JVal::Int(r.mem.useful_prefetches),
                                ),
                            ]),
                        ),
                    ]);
                }
                JobOutput::Cmp(r) => {
                    pairs.extend([
                        ("kind".to_string(), JVal::str("cmp")),
                        ("model".to_string(), JVal::str(&r.model)),
                        ("cycles".to_string(), JVal::Int(r.cycles)),
                        ("throughput_ipc".to_string(), JVal::Num(r.throughput_ipc())),
                        ("mean_core_ipc".to_string(), JVal::Num(r.mean_core_ipc())),
                        (
                            "per_core".to_string(),
                            JVal::Arr(
                                r.per_core
                                    .iter()
                                    .map(|&(c, i)| {
                                        JVal::obj([
                                            ("cycles", JVal::Int(c)),
                                            ("insts", JVal::Int(i)),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                        ("dram_reads".to_string(), JVal::Int(r.mem.dram_reads)),
                    ]);
                }
                JobOutput::Traffic(r) => {
                    let p = |q: u64| {
                        r.hist
                            .percentile_permille(q)
                            .map_or(JVal::str("-"), JVal::Int)
                    };
                    pairs.extend([
                        ("kind".to_string(), JVal::str("traffic")),
                        ("model".to_string(), JVal::str(&r.model)),
                        ("workload".to_string(), JVal::str(&r.workload)),
                        ("cores".to_string(), JVal::Int(r.cores as u64)),
                        (
                            "load_permille".to_string(),
                            JVal::Int(r.load_permille as u64),
                        ),
                        (
                            "mean_interarrival".to_string(),
                            JVal::Int(r.mean_interarrival),
                        ),
                        ("cycles".to_string(), JVal::Int(r.cycles)),
                        ("offered".to_string(), JVal::Int(r.offered)),
                        ("completed".to_string(), JVal::Int(r.completed)),
                        ("shed".to_string(), JVal::Int(r.shed)),
                        ("p50".to_string(), p(500)),
                        ("p99".to_string(), p(990)),
                        ("p999".to_string(), p(999)),
                        ("dram_reads".to_string(), JVal::Int(r.mem.dram_reads)),
                    ]);
                }
            }
            JVal::Obj(pairs)
        })
        .collect();

    let doc = JVal::obj([
        ("experiment", JVal::str(exp.id)),
        ("title", JVal::str(exp.title)),
        ("scale", JVal::str(cfg.env.scale_token())),
        ("seed", JVal::Int(cfg.env.seed)),
        ("jobs", JVal::Arr(jobs)),
    ]);
    let dir = results_dir(cfg);
    let _ = fs::create_dir_all(&dir);
    let _ = fs::write(dir.join(format!("{}.json", exp.id)), doc.render_pretty());
}

fn write_manifest(cfg: &RunConfig, summary: &RunSummary) {
    let experiments: Vec<JVal> = summary
        .records
        .iter()
        .map(|e| {
            let failed = e.jobs.iter().filter(|j| j.status == "failed").count();
            JVal::obj([
                ("id", JVal::str(&e.id)),
                (
                    "status",
                    JVal::str(if failed == 0 && e.folded {
                        "ok"
                    } else if failed == e.jobs.len() && !e.jobs.is_empty() {
                        "failed"
                    } else {
                        "partial"
                    }),
                ),
                ("folded", JVal::Bool(e.folded)),
                (
                    "jobs",
                    JVal::Arr(
                        e.jobs
                            .iter()
                            .map(|j| {
                                JVal::obj([
                                    ("name", JVal::str(&j.name)),
                                    ("status", JVal::str(j.status)),
                                    ("cached", JVal::Bool(j.status == "cached")),
                                    ("duration_ms", JVal::Int(j.duration_ms)),
                                    ("execute_ns", JVal::Int(j.execute_ns)),
                                    (
                                        "cache_key",
                                        JVal::str(format!("{:016x}", j.cache_hash)),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();

    let failures: Vec<JVal> = summary
        .failures
        .iter()
        .map(|f| {
            JVal::obj([
                ("experiment", JVal::str(&f.experiment)),
                ("job", JVal::str(&f.job)),
                ("kind", JVal::str(&f.kind)),
                ("message", JVal::str(&f.message)),
            ])
        })
        .collect();

    // Host wall time actually simulated (cache hits excluded), grouped
    // by the job-name model token (the part before '/'): the at-a-glance
    // answer to "which model is eating the run time".
    let mut by_model: BTreeMap<String, u64> = BTreeMap::new();
    for e in &summary.records {
        for j in &e.jobs {
            if j.execute_ns > 0 {
                let tok = j.name.split('/').next().unwrap_or(&j.name);
                *by_model.entry(tok.to_string()).or_insert(0) += j.execute_ns;
            }
        }
    }
    let wall_by_model: Vec<(String, JVal)> = by_model
        .into_iter()
        .map(|(m, ns)| (m, JVal::Int(ns)))
        .collect();

    let doc = JVal::obj([
        ("version", JVal::str(env!("CARGO_PKG_VERSION"))),
        ("scale", JVal::str(cfg.env.scale_token())),
        ("seed", JVal::Int(cfg.env.seed)),
        ("max_cycles", JVal::Int(cfg.env.max_cycles)),
        ("workers", JVal::Int(cfg.jobs as u64)),
        ("sim_threads", JVal::Int(cfg.sim_threads as u64)),
        (
            "shard",
            JVal::str(
                cfg.shard
                    .map_or("-".to_string(), |(i, n)| format!("{i}/{n}")),
            ),
        ),
        ("cache_enabled", JVal::Bool(cfg.use_cache)),
        ("total_jobs", JVal::Int(summary.total_jobs as u64)),
        ("cache_hits", JVal::Int(summary.cache_hits as u64)),
        ("failed_jobs", JVal::Int(summary.failures.len() as u64)),
        ("execute_ns_by_model", JVal::Obj(wall_by_model)),
        ("experiments", JVal::Arr(experiments)),
        ("failures", JVal::Arr(failures)),
    ]);
    // `SST_MANIFEST` renames the manifest so concurrent schedulers on a
    // shared output directory (the two-process CI smoke, shard fleets)
    // don't clobber each other's run records.
    let name = std::env::var("SST_MANIFEST").unwrap_or_else(|_| "manifest.json".to_string());
    let dir = results_dir(cfg);
    let _ = fs::create_dir_all(&dir);
    let _ = fs::write(dir.join(name), doc.render_pretty());
}
