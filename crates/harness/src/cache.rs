//! Content-addressed result cache.
//!
//! Each completed job is persisted as `results/cache/<hash>.kv`, where
//! `<hash>` is the FNV-1a hash of the job's canonical cache key (see
//! [`crate::JobSpec::cache_key`]). The file is a flat `field=value` text
//! record carrying the full [`JobOutput`] plus the key itself, which is
//! verified on load so a hash collision degrades to a cache miss instead
//! of serving wrong numbers. Any unparseable or mismatched file is
//! likewise a miss — `rm -rf results/cache` is always safe.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Duration;

use sst_mem::{CacheStats, MemStats};
use sst_sim::{CmpResult, RunResult};
use sst_traffic::{LatencyHistogram, TrafficResult};

use crate::job::JobOutput;

/// The cache directory under an output root.
pub fn cache_dir(out_dir: &Path) -> PathBuf {
    out_dir.join("results").join("cache")
}

fn entry_path(out_dir: &Path, hash: u64) -> PathBuf {
    cache_dir(out_dir).join(format!("{hash:016x}.kv"))
}

/// Stores a job output. Writes via a temporary file + rename so
/// concurrent `sst-run` invocations never observe a torn entry.
pub fn store(out_dir: &Path, hash: u64, key: &str, out: &JobOutput) -> io::Result<()> {
    let dir = cache_dir(out_dir);
    fs::create_dir_all(&dir)?;
    let body = serialize(key, out);
    let tmp = dir.join(format!("{hash:016x}.tmp.{}", std::process::id()));
    fs::write(&tmp, body)?;
    fs::rename(&tmp, entry_path(out_dir, hash))
}

/// Loads a job output, verifying the stored key matches. Returns `None`
/// on a miss, a key mismatch (hash collision), or a corrupt entry.
pub fn load(out_dir: &Path, hash: u64, key: &str) -> Option<JobOutput> {
    let body = fs::read_to_string(entry_path(out_dir, hash)).ok()?;
    deserialize(&body, key)
}

fn claim_path(out_dir: &Path, hash: u64) -> PathBuf {
    cache_dir(out_dir).join(format!("{hash:016x}.claim"))
}

/// Outcome of a [`claim`] attempt on a cache entry.
pub enum Claim {
    /// This process won the claim and must execute the job (then drop the
    /// guard, which removes the claim file).
    Won(ClaimGuard),
    /// Another live process holds the claim; wait for its published
    /// entry instead of duplicating the work.
    Lost,
}

/// RAII holder for a won claim: dropping it deletes the claim file, so a
/// claim is released whether the job succeeds, fails, or panics (the
/// scheduler keeps the guard across its `catch_unwind`).
pub struct ClaimGuard {
    path: PathBuf,
}

impl Drop for ClaimGuard {
    fn drop(&mut self) {
        fs::remove_file(&self.path).ok();
    }
}

/// Attempts to claim the right to execute the job behind `hash`.
///
/// The claim file is created with `create_new` — an atomic
/// exists-check-and-create on every platform the workspace targets — so
/// exactly one of N concurrent `sst-run` processes wins. The file body
/// records the claimant's pid for post-mortem debugging; nothing reads
/// it programmatically.
///
/// # Errors
///
/// Propagates filesystem errors other than "already exists" (which is
/// [`Claim::Lost`]).
pub fn claim(out_dir: &Path, hash: u64) -> io::Result<Claim> {
    let dir = cache_dir(out_dir);
    fs::create_dir_all(&dir)?;
    let path = claim_path(out_dir, hash);
    match fs::OpenOptions::new()
        .write(true)
        .create_new(true)
        .open(&path)
    {
        Ok(mut f) => {
            use std::io::Write;
            write!(f, "pid={}\n", std::process::id()).ok();
            Ok(Claim::Won(ClaimGuard { path }))
        }
        Err(e) if e.kind() == io::ErrorKind::AlreadyExists => Ok(Claim::Lost),
        Err(e) => Err(e),
    }
}

/// Age of the claim file for `hash`, if one exists. A very old claim
/// means the claimant died without unwinding (SIGKILL, power loss) —
/// its guard never dropped — and the claim should be reaped.
pub fn claim_age(out_dir: &Path, hash: u64) -> Option<Duration> {
    let meta = fs::metadata(claim_path(out_dir, hash)).ok()?;
    meta.modified().ok()?.elapsed().ok()
}

/// Removes the claim file for `hash` (used to break a stale claim before
/// re-claiming).
pub fn remove_claim(out_dir: &Path, hash: u64) {
    fs::remove_file(claim_path(out_dir, hash)).ok();
}

/// Deletes every claim file under `out_dir` older than `grace`,
/// returning how many were reaped. Run at scheduler start-up: claims
/// normally live for one job's duration and are removed by their guard,
/// so anything past a generous grace period is wreckage from a killed
/// process that would otherwise wedge every future run on that entry.
pub fn reap_stale_claims(out_dir: &Path, grace: Duration) -> usize {
    let Ok(entries) = fs::read_dir(cache_dir(out_dir)) else {
        return 0;
    };
    let mut reaped = 0;
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("claim") {
            continue;
        }
        let stale = entry
            .metadata()
            .ok()
            .and_then(|m| m.modified().ok())
            .and_then(|t| t.elapsed().ok())
            .is_some_and(|age| age >= grace);
        if stale && fs::remove_file(&path).is_ok() {
            reaped += 1;
        }
    }
    reaped
}

/// Percent-escapes the characters that are structural in the `.kv`
/// format: `%` itself, the `,` pair separator, the `:` name/value
/// separator, and line breaks. Counter names are model-defined strings;
/// without this, a name containing any of those silently corrupts the
/// record (at best a cache miss, at worst a wrong value parsed under a
/// truncated name).
fn escape(name: &str) -> String {
    let mut s = String::with_capacity(name.len());
    for c in name.chars() {
        match c {
            '%' => s.push_str("%25"),
            ',' => s.push_str("%2C"),
            ':' => s.push_str("%3A"),
            '\n' => s.push_str("%0A"),
            '\r' => s.push_str("%0D"),
            _ => s.push(c),
        }
    }
    s
}

fn unescape(name: &str) -> String {
    let mut s = String::with_capacity(name.len());
    let mut rest = name;
    while let Some(pos) = rest.find('%') {
        s.push_str(&rest[..pos]);
        let code = rest.get(pos + 1..pos + 3);
        match code {
            Some("25") => s.push('%'),
            Some("2C") => s.push(','),
            Some("3A") => s.push(':'),
            Some("0A") => s.push('\n'),
            Some("0D") => s.push('\r'),
            _ => s.push('%'),
        }
        let consumed = if matches!(code, Some("25" | "2C" | "3A" | "0A" | "0D")) {
            3
        } else {
            1
        };
        rest = &rest[pos + consumed..];
    }
    s.push_str(rest);
    s
}

fn serialize(key: &str, out: &JobOutput) -> String {
    let mut s = String::new();
    s.push_str(&format!("key={key}\n"));
    match out {
        JobOutput::Run(r) => {
            s.push_str("kind=run\n");
            s.push_str(&format!("model={}\n", r.model));
            s.push_str(&format!("workload={}\n", r.workload));
            s.push_str(&format!("cycles={}\n", r.cycles));
            s.push_str(&format!("insts={}\n", r.insts));
            s.push_str(&format!("warmup_cycles={}\n", r.warmup_cycles));
            s.push_str(&format!("warmup_insts={}\n", r.warmup_insts));
            s.push_str(&format!(
                "inst_mix={}\n",
                r.inst_mix
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            ));
            s.push_str(&format!(
                "counters={}\n",
                r.counters
                    .iter()
                    .map(|(n, v)| format!("{}:{v}", escape(n)))
                    .collect::<Vec<_>>()
                    .join(",")
            ));
            s.push_str(&format!(
                "phases={}\n",
                r.phases
                    .iter()
                    .map(|(n, v)| format!("{}:{v}", escape(n)))
                    .collect::<Vec<_>>()
                    .join(",")
            ));
            write_mem(&mut s, &r.mem);
        }
        JobOutput::Cmp(r) => {
            s.push_str("kind=cmp\n");
            s.push_str(&format!("model={}\n", r.model));
            s.push_str(&format!("cycles={}\n", r.cycles));
            s.push_str(&format!(
                "per_core={}\n",
                r.per_core
                    .iter()
                    .map(|(c, i)| format!("{c}:{i}"))
                    .collect::<Vec<_>>()
                    .join(",")
            ));
            write_mem(&mut s, &r.mem);
        }
        JobOutput::Traffic(r) => {
            s.push_str("kind=traffic\n");
            s.push_str(&format!("model={}\n", r.model));
            s.push_str(&format!("workload={}\n", r.workload));
            s.push_str(&format!("cores={}\n", r.cores));
            s.push_str(&format!("load_permille={}\n", r.load_permille));
            s.push_str(&format!("mean_interarrival={}\n", r.mean_interarrival));
            s.push_str(&format!("cycles={}\n", r.cycles));
            s.push_str(&format!("offered={}\n", r.offered));
            s.push_str(&format!("completed={}\n", r.completed));
            s.push_str(&format!("shed={}\n", r.shed));
            s.push_str(&format!("hist.precision={}\n", r.hist.precision()));
            s.push_str(&format!("hist.max_value={}\n", r.hist.max_value()));
            s.push_str(&format!("hist.saturated={}\n", r.hist.saturated()));
            s.push_str(&format!(
                "hist.buckets={}\n",
                r.hist
                    .nonzero_buckets()
                    .map(|(i, c)| format!("{i}:{c}"))
                    .collect::<Vec<_>>()
                    .join(",")
            ));
            s.push_str(&format!(
                "per_core={}\n",
                r.per_core
                    .iter()
                    .map(|(c, i)| format!("{c}:{i}"))
                    .collect::<Vec<_>>()
                    .join(",")
            ));
            write_mem(&mut s, &r.mem);
        }
    }
    s
}

fn write_mem(s: &mut String, m: &MemStats) {
    let caches = |v: &[CacheStats]| {
        v.iter()
            .map(|c| format!("{}:{}:{}", c.accesses, c.hits, c.writebacks))
            .collect::<Vec<_>>()
            .join(",")
    };
    s.push_str(&format!("mem.l1i={}\n", caches(&m.l1i)));
    s.push_str(&format!("mem.l1d={}\n", caches(&m.l1d)));
    s.push_str(&format!("mem.l2={}\n", caches(std::slice::from_ref(&m.l2))));
    s.push_str(&format!("mem.dram_reads={}\n", m.dram_reads));
    s.push_str(&format!("mem.dram_row_hits={}\n", m.dram_row_hits));
    s.push_str(&format!("mem.dram_writebacks={}\n", m.dram_writebacks));
    s.push_str(&format!("mem.mshr_merges={}\n", m.mshr_merges));
    s.push_str(&format!("mem.mshr_full_delays={}\n", m.mshr_full_delays));
    s.push_str(&format!("mem.prefetches={}\n", m.prefetches));
    s.push_str(&format!("mem.useful_prefetches={}\n", m.useful_prefetches));
}

struct Fields<'a> {
    pairs: Vec<(&'a str, &'a str)>,
}

impl<'a> Fields<'a> {
    fn parse(body: &'a str) -> Fields<'a> {
        Fields {
            pairs: body
                .lines()
                .filter_map(|l| l.split_once('='))
                .collect(),
        }
    }

    fn get(&self, name: &str) -> Option<&'a str> {
        self.pairs
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    fn u64(&self, name: &str) -> Option<u64> {
        self.get(name)?.parse().ok()
    }

    fn u64_list(&self, name: &str) -> Option<Vec<u64>> {
        let raw = self.get(name)?;
        if raw.is_empty() {
            return Some(Vec::new());
        }
        raw.split(',').map(|t| t.parse().ok()).collect()
    }

    fn pair_list(&self, name: &str) -> Option<Vec<(String, u64)>> {
        let raw = self.get(name)?;
        if raw.is_empty() {
            return Some(Vec::new());
        }
        raw.split(',')
            .map(|t| {
                let (n, v) = t.split_once(':')?;
                Some((unescape(n), v.parse().ok()?))
            })
            .collect()
    }

    fn cache_list(&self, name: &str) -> Option<Vec<CacheStats>> {
        let raw = self.get(name)?;
        if raw.is_empty() {
            return Some(Vec::new());
        }
        raw.split(',')
            .map(|t| {
                let mut it = t.split(':');
                let c = CacheStats {
                    accesses: it.next()?.parse().ok()?,
                    hits: it.next()?.parse().ok()?,
                    writebacks: it.next()?.parse().ok()?,
                };
                if it.next().is_some() {
                    return None;
                }
                Some(c)
            })
            .collect()
    }

    fn mem(&self) -> Option<MemStats> {
        let mut m = MemStats::new(0);
        m.l1i = self.cache_list("mem.l1i")?;
        m.l1d = self.cache_list("mem.l1d")?;
        m.l2 = *self.cache_list("mem.l2")?.first()?;
        m.dram_reads = self.u64("mem.dram_reads")?;
        m.dram_row_hits = self.u64("mem.dram_row_hits")?;
        m.dram_writebacks = self.u64("mem.dram_writebacks")?;
        m.mshr_merges = self.u64("mem.mshr_merges")?;
        m.mshr_full_delays = self.u64("mem.mshr_full_delays")?;
        m.prefetches = self.u64("mem.prefetches")?;
        m.useful_prefetches = self.u64("mem.useful_prefetches")?;
        Some(m)
    }
}

fn deserialize(body: &str, expected_key: &str) -> Option<JobOutput> {
    let f = Fields::parse(body);
    if f.get("key")? != expected_key {
        return None;
    }
    match f.get("kind")? {
        "run" => {
            let mix = f.u64_list("inst_mix")?;
            if mix.len() != 10 {
                return None;
            }
            let mut inst_mix = [0u64; 10];
            inst_mix.copy_from_slice(&mix);
            Some(JobOutput::Run(RunResult {
                model: f.get("model")?.to_string(),
                workload: f.get("workload")?.to_string(),
                cycles: f.u64("cycles")?,
                insts: f.u64("insts")?,
                warmup_cycles: f.u64("warmup_cycles")?,
                warmup_insts: f.u64("warmup_insts")?,
                mem: f.mem()?,
                counters: f.pair_list("counters")?,
                inst_mix,
                // A missing `phases` field (entries written before the
                // observability layer) is a clean miss: `?` bails.
                phases: f.pair_list("phases")?,
            }))
        }
        "cmp" => {
            let per_core = f
                .pair_list("per_core")?
                .into_iter()
                .map(|(c, i)| Some((c.parse().ok()?, i)))
                .collect::<Option<Vec<(u64, u64)>>>()?;
            Some(JobOutput::Cmp(CmpResult {
                model: f.get("model")?.to_string(),
                per_core,
                cycles: f.u64("cycles")?,
                mem: f.mem()?,
            }))
        }
        "traffic" => {
            let per_core = f
                .pair_list("per_core")?
                .into_iter()
                .map(|(c, i)| Some((c.parse().ok()?, i)))
                .collect::<Option<Vec<(u64, u64)>>>()?;
            let buckets = f
                .pair_list("hist.buckets")?
                .into_iter()
                .map(|(i, c)| Some((i.parse().ok()?, c)))
                .collect::<Option<Vec<(usize, u64)>>>()?;
            let hist = LatencyHistogram::try_from_parts(
                f.u64("hist.precision")? as u32,
                f.u64("hist.max_value")?,
                buckets,
                f.u64("hist.saturated")?,
            )?;
            Some(JobOutput::Traffic(TrafficResult {
                model: f.get("model")?.to_string(),
                workload: f.get("workload")?.to_string(),
                cores: f.u64("cores")? as usize,
                load_permille: f.u64("load_permille")? as u32,
                mean_interarrival: f.u64("mean_interarrival")?,
                cycles: f.u64("cycles")?,
                offered: f.u64("offered")?,
                completed: f.u64("completed")?,
                shed: f.u64("shed")?,
                hist,
                per_core,
                mem: f.mem()?,
            }))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sst_sim::{CoreModel, System};
    use sst_workloads::{Scale, Workload};

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("sst-harness-cache-{tag}-{}", std::process::id()));
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn some_run() -> RunResult {
        let w = Workload::by_name("gzip", Scale::Smoke, 3).unwrap();
        System::new(CoreModel::InOrder, &w)
            .without_cosim()
            .run_checked(100_000_000)
            .unwrap()
    }

    #[test]
    fn run_round_trips_exactly() {
        let r = some_run();
        let out = JobOutput::Run(r.clone());
        let dir = tmp_dir("rt");
        store(&dir, 42, "some-key", &out).unwrap();
        let back = load(&dir, 42, "some-key").expect("hit");
        let b = back.run();
        assert_eq!(b.model, r.model);
        assert_eq!(b.workload, r.workload);
        assert_eq!(b.cycles, r.cycles);
        assert_eq!(b.insts, r.insts);
        assert_eq!(b.warmup_cycles, r.warmup_cycles);
        assert_eq!(b.warmup_insts, r.warmup_insts);
        assert_eq!(b.counters, r.counters);
        assert_eq!(b.inst_mix, r.inst_mix);
        assert_eq!(b.phases, r.phases);
        assert_eq!(
            b.phases.iter().map(|(_, v)| v).sum::<u64>(),
            b.cycles,
            "phase rows survive the round-trip summing to total cycles"
        );
        assert_eq!(b.mem.l1d, r.mem.l1d);
        assert_eq!(b.mem.l2, r.mem.l2);
        assert_eq!(b.mem.dram_reads, r.mem.dram_reads);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hostile_counter_names_round_trip() {
        // Names carrying every structural character of the .kv format —
        // separators, line breaks, the escape character itself, and a
        // literal "%2C" that must NOT collapse to "," after one decode.
        let mut r = some_run();
        r.counters = vec![
            ("plain".to_string(), 1),
            ("with,comma".to_string(), 2),
            ("with:colon".to_string(), 3),
            ("multi\nline\rname".to_string(), 4),
            ("percent%sign".to_string(), 5),
            ("pre-escaped%2Cname".to_string(), 6),
            ("%25,:".to_string(), 7),
            ("trailing%".to_string(), 8),
        ];
        let expected = r.counters.clone();
        let out = JobOutput::Run(r);
        let dir = tmp_dir("hostile");
        store(&dir, 77, "hostile-key", &out).unwrap();
        let back = load(&dir, 77, "hostile-key").expect("hit");
        assert_eq!(back.run().counters, expected);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn escape_round_trip_and_lenient_decode() {
        for s in ["", "plain", "%", "%%", "%2", "%2C", "a,b:c\nd\re%f", "%zz"] {
            assert_eq!(unescape(&escape(s)), s, "round-trip of {s:?}");
        }
        // Escaped text never contains structural characters.
        for s in ["a,b", "x:y", "p%q", "n\nl"] {
            let e = escape(s);
            assert!(!e.contains([',', ':', '\n', '\r']), "{e:?}");
        }
        // Decoding tolerates stray escapes it did not produce.
        assert_eq!(unescape("%zz"), "%zz");
        assert_eq!(unescape("tail%"), "tail%");
    }

    #[test]
    fn traffic_round_trips_exactly() {
        use sst_sim::CoreModel;
        use sst_traffic::{run_traffic, Policy, TrafficSpec};
        let spec = TrafficSpec {
            model: CoreModel::InOrder,
            workload: "oltp".into(),
            cores: 2,
            load_permille: 200,
            txns_per_request: 2,
            requests: 24,
            warmup: 4,
            admission_cap: 16,
            lane_cap: 4,
            quantum: 256,
            policy: Policy::LeastLoaded,
        };
        let r = run_traffic(&spec, Scale::Smoke, 3, 1, 1_000_000_000);
        let out = JobOutput::Traffic(r.clone());
        let dir = tmp_dir("traffic");
        store(&dir, 55, "traffic-key", &out).unwrap();
        let back = load(&dir, 55, "traffic-key").expect("hit");
        assert_eq!(back.traffic(), &r, "lossless round-trip incl. histogram");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn key_mismatch_is_a_miss() {
        let out = JobOutput::Run(some_run());
        let dir = tmp_dir("key");
        store(&dir, 7, "key-a", &out).unwrap();
        assert!(load(&dir, 7, "key-b").is_none(), "collision must miss");
        assert!(load(&dir, 8, "key-a").is_none(), "absent hash must miss");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_entries_are_misses() {
        let dir = tmp_dir("corrupt");
        fs::create_dir_all(cache_dir(&dir)).unwrap();
        fs::write(cache_dir(&dir).join(format!("{:016x}.kv", 9u64)), "key=k\nkind=run\n").unwrap();
        assert!(load(&dir, 9, "k").is_none());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn claims_are_exclusive_and_released_on_drop() {
        let dir = tmp_dir("claim");
        let won = claim(&dir, 100).unwrap();
        assert!(matches!(won, Claim::Won(_)), "first claim wins");
        // While held, every other attempt loses.
        assert!(matches!(claim(&dir, 100).unwrap(), Claim::Lost));
        assert!(claim_age(&dir, 100).is_some());
        // A different hash is an independent claim.
        assert!(matches!(claim(&dir, 101).unwrap(), Claim::Won(_)));
        // Dropping the guard releases the claim; it can be won again.
        drop(won);
        assert!(claim_age(&dir, 100).is_none(), "guard removed the file");
        assert!(matches!(claim(&dir, 100).unwrap(), Claim::Won(_)));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_claims_are_reaped_fresh_ones_kept() {
        let dir = tmp_dir("reap");
        let _held = claim(&dir, 200).unwrap();
        let _also = claim(&dir, 201).unwrap();
        // A generous grace keeps freshly created claims.
        assert_eq!(reap_stale_claims(&dir, Duration::from_secs(3600)), 0);
        assert!(claim_age(&dir, 200).is_some());
        // Zero grace makes every claim "stale" without having to forge
        // file mtimes; both get reaped and the entries are re-claimable.
        assert_eq!(reap_stale_claims(&dir, Duration::ZERO), 2);
        assert!(claim_age(&dir, 200).is_none());
        let reclaimed = claim(&dir, 200).unwrap();
        assert!(matches!(reclaimed, Claim::Won(_)));
        // Reaping ignores .kv entries and tolerates a missing cache dir.
        store(&dir, 300, "k", &JobOutput::Run(some_run())).unwrap();
        assert_eq!(reap_stale_claims(&dir, Duration::ZERO), 1, "only the re-claim");
        drop(reclaimed);
        assert!(load(&dir, 300, "k").is_some(), "cache entry untouched");
        assert_eq!(reap_stale_claims(&tmp_dir("reap-empty"), Duration::ZERO), 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn remove_claim_breaks_a_stale_holder() {
        let dir = tmp_dir("break");
        let won = claim(&dir, 400).unwrap();
        assert!(matches!(claim(&dir, 400).unwrap(), Claim::Lost));
        remove_claim(&dir, 400);
        assert!(matches!(claim(&dir, 400).unwrap(), Claim::Won(_)));
        // Note the dead holder's guard deletes by path, so breaking a
        // claim whose holder is still alive would release the new
        // claimant's file too — which is why the scheduler only breaks
        // claims past the grace period, when the holder is long dead.
        drop(won);
        fs::remove_dir_all(&dir).ok();
    }
}
