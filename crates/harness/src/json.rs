//! A minimal write-only JSON value tree.
//!
//! The workspace builds with no external crates, so the harness carries
//! its own emitter. It covers exactly what the experiment reports need:
//! objects with ordered keys, arrays, strings, integers, and floats
//! (serialized with enough precision to round-trip an `f64`).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JVal {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (u64 keeps cycle counts exact).
    Int(u64),
    /// A float; non-finite values render as `null` per JSON's domain.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JVal>),
    /// An object; key order is preserved.
    Obj(Vec<(String, JVal)>),
}

impl JVal {
    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> JVal {
        JVal::Str(s.into())
    }

    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, JVal)>) -> JVal {
        JVal::Obj(
            pairs
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Renders compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders with 2-space indentation (the form written to disk).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let pad = |out: &mut String, d: usize| {
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * d));
            }
        };
        match self {
            JVal::Null => out.push_str("null"),
            JVal::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JVal::Int(n) => {
                let _ = write!(out, "{n}");
            }
            JVal::Num(x) => {
                if x.is_finite() {
                    // {:?} prints the shortest form that round-trips.
                    let _ = write!(out, "{x:?}");
                } else {
                    out.push_str("null");
                }
            }
            JVal::Str(s) => write_escaped(out, s),
            JVal::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    pad(out, depth + 1);
                    v.write(out, indent, depth + 1);
                }
                if !items.is_empty() {
                    pad(out, depth);
                }
                out.push(']');
            }
            JVal::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    pad(out, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                if !pairs.is_empty() {
                    pad(out, depth);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(JVal::Null.render(), "null");
        assert_eq!(JVal::Bool(true).render(), "true");
        assert_eq!(JVal::Int(18446744073709551615).render(), "18446744073709551615");
        assert_eq!(JVal::Num(1.5).render(), "1.5");
        assert_eq!(JVal::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(JVal::str("a\"b\\c\nd").render(), r#""a\"b\\c\nd""#);
        assert_eq!(JVal::str("\u{1}").render(), "\"\\u0001\"");
    }

    #[test]
    fn containers_nest() {
        let v = JVal::obj([
            ("xs", JVal::Arr(vec![JVal::Int(1), JVal::Int(2)])),
            ("s", JVal::str("hi")),
        ]);
        assert_eq!(v.render(), r#"{"xs":[1,2],"s":"hi"}"#);
    }

    #[test]
    fn pretty_is_parseably_shaped() {
        let v = JVal::obj([("a", JVal::Arr(vec![JVal::Int(1)]))]);
        let p = v.render_pretty();
        assert!(p.contains("\"a\": ["));
        assert!(p.ends_with("}\n"));
    }

    #[test]
    fn float_roundtrip_precision() {
        let x = 0.1234567890123456789f64;
        let s = JVal::Num(x).render();
        assert_eq!(s.parse::<f64>().unwrap(), x);
    }

    #[test]
    fn empty_containers() {
        assert_eq!(JVal::Arr(vec![]).render(), "[]");
        assert_eq!(JVal::Obj(vec![]).render(), "{}");
    }
}
