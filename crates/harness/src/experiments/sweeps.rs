//! E5–E8: the sensitivity sweeps — DRAM latency, deferred-queue size,
//! checkpoint count, and store-buffer size.

use sst_core::SstConfig;
use sst_mem::MemConfig;
use sst_sim::report::{f2, f3, Table};
use sst_sim::CoreModel;

use crate::job::JobSpec;
use crate::registry::{Experiment, Fold, RunCtx};
use crate::Env;

const E5_LATENCIES: [u64; 6] = [100, 200, 300, 450, 700, 1000];
const E5_WORKLOADS: [&str; 3] = ["oltp", "erp", "mcf"];
const E5_MODELS: [(&str, fn() -> CoreModel); 5] = [
    ("io", || CoreModel::InOrder),
    ("scout", || CoreModel::Scout),
    ("ea", || CoreModel::ExecuteAhead),
    ("sst", || CoreModel::Sst),
    ("o128", || CoreModel::Ooo128),
];

pub(super) fn e5() -> Experiment {
    fn jobs(_env: &Env) -> Vec<JobSpec> {
        let mut v = Vec::new();
        for name in E5_WORKLOADS {
            for base in E5_LATENCIES {
                let mut cfg = MemConfig::default();
                cfg.dram.base_cycles = base;
                for (tok, model) in E5_MODELS {
                    v.push(JobSpec::single_mem(
                        format!("{tok}/{name}/lat{base}"),
                        model(),
                        name,
                        cfg.clone(),
                    ));
                }
            }
        }
        v
    }
    fn fold(_env: &Env, ctx: &RunCtx) -> Fold {
        let mut f = Fold::default();
        for name in E5_WORKLOADS {
            let mut t = Table::new([
                "dram cycles",
                "in-order",
                "scout",
                "ea",
                "sst",
                "ooo-128",
                "sst/in-order",
                "sst/ooo-128",
            ]);
            for base in E5_LATENCIES {
                let ipc: Vec<f64> = E5_MODELS
                    .iter()
                    .map(|(tok, _)| {
                        ctx.run(&format!("{tok}/{name}/lat{base}")).measured_ipc()
                    })
                    .collect();
                t.row([
                    base.to_string(),
                    f3(ipc[0]),
                    f3(ipc[1]),
                    f3(ipc[2]),
                    f3(ipc[3]),
                    f3(ipc[4]),
                    format!("{}x", f2(ipc[3] / ipc[0])),
                    format!("{}x", f2(ipc[3] / ipc[4])),
                ]);
            }
            f.note(format!("workload: {name}"));
            f.table(format!("e5_latency_{name}"), t);
        }
        f.note("Shape check: the sst/in-order column grows monotonically on");
        f.note("oltp and erp; on mcf (MLP 1) every mechanism degrades together.");
        f
    }
    Experiment {
        id: "e5",
        family: "paper",
        title: "IPC vs DRAM latency (Figure C)",
        paper_note: "SST's advantage over in-order and ooo-128 widens with latency",
        hidden: false,
        jobs,
        fold,
    }
}

const E6_SIZES: [usize; 7] = [8, 16, 32, 64, 128, 256, 512];
const E6_WORKLOADS: [&str; 3] = ["oltp", "erp", "gups"];

pub(super) fn e6() -> Experiment {
    fn jobs(_env: &Env) -> Vec<JobSpec> {
        let mut v = Vec::new();
        for name in E6_WORKLOADS {
            for n in E6_SIZES {
                let cfg = SstConfig {
                    dq_entries: n,
                    ..SstConfig::sst()
                };
                v.push(JobSpec::single(
                    format!("dq{n}/{name}"),
                    CoreModel::CustomSst(cfg),
                    name,
                ));
            }
        }
        v
    }
    fn fold(_env: &Env, ctx: &RunCtx) -> Fold {
        let mut f = Fold::default();
        for name in E6_WORKLOADS {
            let mut t = Table::new([
                "dq entries",
                "IPC",
                "dq-full stall cycles",
                "dq high water",
                "deferred insts",
            ]);
            for n in E6_SIZES {
                let r = ctx.run(&format!("dq{n}/{name}"));
                t.row([
                    n.to_string(),
                    f3(r.ipc()),
                    r.counter("stall_dq_full").unwrap_or(0).to_string(),
                    r.counter("dq_high_water").unwrap_or(0).to_string(),
                    r.counter("deferred").unwrap_or(0).to_string(),
                ]);
            }
            f.note(format!("workload: {name}"));
            f.table(format!("e6_dq_{name}"), t);
        }
        f
    }
    Experiment {
        id: "e6",
        family: "paper",
        title: "IPC vs deferred-queue size (Figure D)",
        paper_note: "small DQs throttle the ahead thread (dq-full stalls); returns saturate by ~128",
        hidden: false,
        jobs,
        fold,
    }
}

const E7_CHECKPOINTS: [usize; 5] = [1, 2, 3, 4, 8];
const E7_WORKLOADS: [&str; 3] = ["oltp", "erp", "web"];

pub(super) fn e7() -> Experiment {
    fn jobs(_env: &Env) -> Vec<JobSpec> {
        let mut v = Vec::new();
        for name in E7_WORKLOADS {
            for n in E7_CHECKPOINTS {
                let cfg = SstConfig {
                    checkpoints: n,
                    ..SstConfig::sst()
                };
                v.push(JobSpec::single(
                    format!("ckpt{n}/{name}"),
                    CoreModel::CustomSst(cfg),
                    name,
                ));
            }
        }
        v
    }
    fn fold(_env: &Env, ctx: &RunCtx) -> Fold {
        let mut f = Fold::default();
        for name in E7_WORKLOADS {
            let mut t = Table::new([
                "checkpoints",
                "IPC",
                "vs 1 ckpt",
                "epochs committed",
                "ea-suspend cycles",
            ]);
            let mut base = None;
            for n in E7_CHECKPOINTS {
                let r = ctx.run(&format!("ckpt{n}/{name}"));
                let ipc = r.ipc();
                let b = *base.get_or_insert(ipc);
                t.row([
                    n.to_string(),
                    f3(ipc),
                    format!("{}x", f2(ipc / b)),
                    r.counter("epochs_committed").unwrap_or(0).to_string(),
                    r.counter("stall_ea_replay").unwrap_or(0).to_string(),
                ]);
            }
            f.note(format!("workload: {name}"));
            f.table(format!("e7_ckpt_{name}"), t);
        }
        f
    }
    Experiment {
        id: "e7",
        family: "paper",
        title: "IPC vs checkpoint count (Figure E)",
        paper_note: "1 -> 2 checkpoints (EA -> SST) helps; past ~4 the returns vanish",
        hidden: false,
        jobs,
        fold,
    }
}

const E8_SIZES: [usize; 6] = [4, 8, 16, 32, 64, 128];
const E8_WORKLOADS: [&str; 3] = ["gups", "oltp", "stream"];

pub(super) fn e8() -> Experiment {
    fn jobs(_env: &Env) -> Vec<JobSpec> {
        let mut v = Vec::new();
        for name in E8_WORKLOADS {
            for n in E8_SIZES {
                let cfg = SstConfig {
                    stb_entries: n,
                    ..SstConfig::sst()
                };
                v.push(JobSpec::single(
                    format!("stb{n}/{name}"),
                    CoreModel::CustomSst(cfg),
                    name,
                ));
            }
        }
        v
    }
    fn fold(_env: &Env, ctx: &RunCtx) -> Fold {
        let mut f = Fold::default();
        for name in E8_WORKLOADS {
            let mut t = Table::new([
                "stb entries",
                "IPC",
                "stb-full stall cycles",
                "stb high water",
                "forwards",
            ]);
            for n in E8_SIZES {
                let r = ctx.run(&format!("stb{n}/{name}"));
                t.row([
                    n.to_string(),
                    f3(r.ipc()),
                    r.counter("stall_stb_full").unwrap_or(0).to_string(),
                    r.counter("stb_high_water").unwrap_or(0).to_string(),
                    r.counter("stb_forwards").unwrap_or(0).to_string(),
                ]);
            }
            f.note(format!("workload: {name}"));
            f.table(format!("e8_stb_{name}"), t);
        }
        f
    }
    Experiment {
        id: "e8",
        family: "paper",
        title: "IPC vs store-buffer size (Figure F)",
        paper_note: "store-heavy workloads stall hard below ~16 entries; saturation by ~64",
        hidden: false,
        jobs,
        fold,
    }
}
