//! E13: "does SST leak?" — speculation-taint measurements over the
//! Spectre-v1-shaped gadget kernels.
//!
//! Every state element written between a checkpoint and its rollback is
//! tainted; the rollback sweep probes what survives (cache lines filled or
//! in flight, predictor updates, prefetcher trainings) and the
//! `leak_footprint` counter totals the distinct lines that squashed
//! speculation left behind and no architectural access ever legitimized —
//! the surviving covert-channel surface.
//!
//! The expected shape, and why it is interesting: the paper's pitch is
//! that SST reaches OoO-class performance with in-order-class hardware.
//! This experiment asks whether it also inherits OoO-class *speculative
//! side channels*. It does — and the deeper the design speculates, the
//! bigger the surface: scout (rolls back at cause-ready, re-executing the
//! same window twice) leaves roughly half the footprint of EA/SST, whose
//! single continuous window covers two memory round trips. The `g_chase`
//! contrast gadget shows the one place deferral *helps*: a transmitter
//! whose address depends on a not-there value never issues at all, while
//! an OoO core's wrong-path walk still leaks it.

use sst_core::SstConfig;
use sst_ooo::OooConfig;
use sst_sim::report::Table;
use sst_sim::CoreModel;
use sst_workloads::gadget_names;

use crate::job::JobSpec;
use crate::registry::{Experiment, Fold, RunCtx};
use crate::Env;

/// The model lineup: every speculating design with taint tracking on,
/// plus the in-order baseline (which has no speculative state to track —
/// its absence of `leak_` counters *is* the zero measurement).
fn models() -> Vec<(&'static str, CoreModel)> {
    vec![
        ("in-order", CoreModel::InOrder),
        (
            "scout",
            CoreModel::CustomSst(SstConfig {
                taint: true,
                ..SstConfig::scout()
            }),
        ),
        (
            "ea",
            CoreModel::CustomSst(SstConfig {
                taint: true,
                ..SstConfig::execute_ahead()
            }),
        ),
        (
            "sst",
            CoreModel::CustomSst(SstConfig {
                taint: true,
                ..SstConfig::sst()
            }),
        ),
        (
            "ooo-32",
            CoreModel::CustomOoo(OooConfig {
                taint: true,
                ..OooConfig::ooo_32()
            }),
        ),
    ]
}

pub(super) fn e13() -> Experiment {
    fn jobs(_env: &Env) -> Vec<JobSpec> {
        let mut v = Vec::new();
        for gadget in gadget_names() {
            for (label, model) in models() {
                v.push(JobSpec::leakage(format!("{label}/{gadget}"), model, gadget));
            }
        }
        v
    }
    fn fold(_env: &Env, ctx: &RunCtx) -> Fold {
        let mut f = Fold::default();
        let mut t = Table::new([
            "gadget",
            "model",
            "rollbacks",
            "lines swept",
            "resident",
            "in flight",
            "pred updates",
            "pf trainings",
            "NT",
            "DQ",
            "STB",
            "leak footprint",
        ]);
        let leak = |name: &str, key: &str| ctx.run(name).counter(key).unwrap_or(0);
        for gadget in gadget_names() {
            for (label, _) in models() {
                let name = format!("{label}/{gadget}");
                t.row([
                    gadget.to_string(),
                    label.to_string(),
                    leak(&name, "leak_rollbacks").to_string(),
                    leak(&name, "leak_lines_swept").to_string(),
                    leak(&name, "leak_lines_resident").to_string(),
                    leak(&name, "leak_lines_in_flight").to_string(),
                    leak(&name, "leak_predictor_updates").to_string(),
                    leak(&name, "leak_prefetch_trainings").to_string(),
                    leak(&name, "leak_nt_squashed").to_string(),
                    leak(&name, "leak_dq_squashed").to_string(),
                    leak(&name, "leak_stb_squashed").to_string(),
                    leak(&name, "leak_footprint").to_string(),
                ]);
            }
        }
        f.table("e13_leakage", t);

        // Shape checks the paper-level claims hang on. Stated as explicit
        // pass/fail notes so a regression is visible in the report (and
        // greppable by CI) without hiding the tables behind a panic.
        let io_total: u64 = gadget_names()
            .iter()
            .flat_map(|g| {
                let name = format!("in-order/{g}");
                ctx.run(&name)
                    .counters
                    .iter()
                    .filter(|(n, _)| n.starts_with("leak_"))
                    .map(|(_, v)| *v)
                    .collect::<Vec<_>>()
            })
            .sum();
        f.note(format!(
            "check: in-order leaks nothing on any gadget — {}",
            if io_total == 0 { "ok" } else { "VIOLATION" }
        ));
        let scout = leak("scout/g_bcb", "leak_footprint");
        let ea = leak("ea/g_bcb", "leak_footprint");
        let sst = leak("sst/g_bcb", "leak_footprint");
        f.note(format!(
            "check: deeper speculation leaves a larger surface on g_bcb \
             (scout {scout} < ea {ea}, scout {scout} < sst {sst}) — {}",
            if ea > scout && sst > scout { "ok" } else { "VIOLATION" }
        ));
        let chase_deferral: u64 = ["scout", "ea", "sst"]
            .iter()
            .map(|m| leak(&format!("{m}/g_chase"), "leak_footprint"))
            .sum();
        let chase_ooo = leak("ooo-32/g_chase", "leak_footprint");
        f.note(format!(
            "check: NT deferral blocks the g_chase transmitter that OoO leaks \
             (deferral designs {chase_deferral}, ooo {chase_ooo}) — {}",
            if chase_deferral == 0 && chase_ooo > 0 { "ok" } else { "VIOLATION" }
        ));
        f.note("Footprint = distinct lines filled (or still in flight) by".to_string());
        f.note("squashed speculation and never afterwards demanded by the".to_string());
        f.note("architectural path: what a Flush+Reload attacker can read.".to_string());
        f
    }
    Experiment {
        id: "e13",
        family: "paper",
        title: "speculative leakage: taint-swept rollback residue on Spectre gadgets",
        paper_note: "not in the paper — measures the side-channel surface the SST pipeline's \
                     deep speculation implies; scout ~ half of EA/SST, in-order zero",
        hidden: false,
        jobs,
        fold,
    }
}
