//! E14: open-loop service traffic over the CMP — throughput, tail
//! latency, and shed rate versus offered load, per core model, with
//! saturation-knee detection.
//!
//! The paper's headline workloads are *services*; this family measures
//! what a service operator would: at each offered load (in permille of
//! the chip's nominal capacity of one instruction per core-cycle),
//! Poisson-arriving OLTP requests queue through a bounded admission
//! queue onto per-core lanes, and we report delivered throughput,
//! p50/p99/p99.9 arrival-to-completion latency, and the shed rate. The
//! *knee* is the highest offered load a model still delivers at least
//! 90% of.

use sst_sim::report::{f2, Table};
use sst_sim::CoreModel;
use sst_traffic::{Policy, TrafficResult, TrafficSpec};
use sst_workloads::Scale;

use crate::job::JobSpec;
use crate::registry::{Experiment, Fold, RunCtx};
use crate::Env;

const E14_WORKLOAD: &str = "oltp";
const E14_MODELS: [(&str, fn() -> CoreModel); 5] = [
    ("io", || CoreModel::InOrder),
    ("scout", || CoreModel::Scout),
    ("ea", || CoreModel::ExecuteAhead),
    ("sst", || CoreModel::Sst),
    ("o128", || CoreModel::Ooo128),
];
/// Offered-load sweep, permille of nominal chip capacity.
const E14_LOADS: [u32; 7] = [50, 100, 200, 350, 500, 750, 1000];
/// Delivered/offered threshold (permille) defining the saturation knee.
const KNEE_PERMILLE: u64 = 900;

fn spec_for(env: &Env, model: CoreModel, load_permille: u32) -> TrafficSpec {
    let (cores, requests, warmup, txns_per_request) = match env.scale {
        Scale::Smoke => (2, 96, 16, 4),
        Scale::Full => (8, 1_200, 64, 8),
    };
    TrafficSpec {
        model,
        workload: E14_WORKLOAD.into(),
        cores,
        load_permille,
        txns_per_request,
        requests,
        warmup,
        admission_cap: 64,
        lane_cap: 8,
        quantum: 256,
        policy: Policy::LeastLoaded,
    }
}

/// Delivered throughput in permille of offered (100% = kept up).
fn delivered_vs_offered_permille(r: &TrafficResult) -> u64 {
    if r.offered == 0 {
        return 0;
    }
    r.completed * 1000 / r.offered
}

pub(super) fn e14() -> Experiment {
    fn jobs(env: &Env) -> Vec<JobSpec> {
        let mut v = Vec::new();
        for (tok, model) in E14_MODELS {
            for load in E14_LOADS {
                v.push(JobSpec::traffic(
                    format!("{tok}/l{load}"),
                    spec_for(env, model(), load),
                ));
            }
        }
        v
    }
    fn fold(env: &Env, ctx: &RunCtx) -> Fold {
        let mut f = Fold::default();
        let insts = spec_for(env, CoreModel::InOrder, 100).request_insts();
        for (tok, _) in E14_MODELS {
            let mut t = Table::new([
                "offered_permille",
                "offered_reqs",
                "completed",
                "shed",
                "shed_pct",
                "delivered_permille",
                "p50",
                "p99",
                "p999",
            ]);
            for load in E14_LOADS {
                let r = ctx.traffic(&format!("{tok}/l{load}"));
                let p = |q: u64| {
                    r.hist
                        .percentile_permille(q)
                        .map_or("-".to_string(), |v| v.to_string())
                };
                t.row([
                    load.to_string(),
                    r.offered.to_string(),
                    r.completed.to_string(),
                    r.shed.to_string(),
                    f2(r.shed as f64 * 100.0 / r.offered.max(1) as f64),
                    r.delivered_permille(insts).to_string(),
                    p(500),
                    p(990),
                    p(999),
                ]);
            }
            f.table(format!("e14_load_{tok}"), t);
        }

        // Knee summary: per model, the highest offered load still
        // delivered at >= 90%, with its p99 there.
        let mut knee = Table::new(["model", "knee_permille", "p99_at_knee", "shed_at_max_load"]);
        for (tok, _) in E14_MODELS {
            let mut knee_load = 0u32;
            for load in E14_LOADS {
                let r = ctx.traffic(&format!("{tok}/l{load}"));
                if delivered_vs_offered_permille(r) >= KNEE_PERMILLE {
                    knee_load = load;
                }
            }
            let p99_at_knee = if knee_load == 0 {
                "-".to_string()
            } else {
                let r = ctx.traffic(&format!("{tok}/l{knee_load}"));
                r.hist
                    .percentile_permille(990)
                    .map_or("-".to_string(), |v| v.to_string())
            };
            let max = ctx.traffic(&format!("{tok}/l{}", E14_LOADS[E14_LOADS.len() - 1]));
            knee.row([
                tok.to_string(),
                knee_load.to_string(),
                p99_at_knee,
                max.shed.to_string(),
            ]);
        }
        f.note(format!(
            "knee = highest offered load (permille of nominal IPC-1-per-core capacity) \
             with completed/offered >= {KNEE_PERMILLE} permille"
        ));
        f.table("e14_knee", knee);
        f
    }
    Experiment {
        id: "e14",
        family: "traffic",
        title: "open-loop service traffic: tail latency & knee vs offered load",
        paper_note: "miss-hiding models sustain higher offered load before the p99/knee collapse on the commercial (OLTP) mix",
        hidden: false,
        jobs,
        fold,
    }
}
