//! A1–A4: the design-choice ablations — defer threshold, replay bypass
//! window, confidence-gated deferral, and the stride prefetcher.

use sst_core::SstConfig;
use sst_mem::{MemConfig, StrideConfig};
use sst_sim::report::{f3, pct, Table};
use sst_sim::CoreModel;
use sst_workloads::Workload;

use crate::job::JobSpec;
use crate::registry::{Experiment, Fold, RunCtx};
use crate::Env;

const A1_THRESHOLDS: [u64; 6] = [5, 15, 30, 60, 150, 400];
const A1_WORKLOADS: [&str; 3] = ["oltp", "erp", "gzip"];

pub(super) fn a1() -> Experiment {
    fn jobs(_env: &Env) -> Vec<JobSpec> {
        let mut v = Vec::new();
        for name in A1_WORKLOADS {
            for thr in A1_THRESHOLDS {
                let cfg = SstConfig {
                    defer_threshold: thr,
                    ..SstConfig::sst()
                };
                v.push(JobSpec::single(
                    format!("thr{thr}/{name}"),
                    CoreModel::CustomSst(cfg),
                    name,
                ));
            }
        }
        v
    }
    fn fold(_env: &Env, ctx: &RunCtx) -> Fold {
        let mut f = Fold::default();
        for name in A1_WORKLOADS {
            let mut t = Table::new(["defer threshold", "IPC"]);
            for thr in A1_THRESHOLDS {
                let r = ctx.run(&format!("thr{thr}/{name}"));
                t.row([thr.to_string(), f3(r.measured_ipc())]);
            }
            f.note(format!("workload: {name}"));
            f.table(format!("a1_defer_{name}"), t);
        }
        f
    }
    Experiment {
        id: "a1",
        family: "ablation",
        title: "ablation: defer threshold",
        paper_note: "a knee between the L2 hit latency (~20) and the DRAM latency (~340); beyond it SST degrades toward in-order",
        hidden: false,
        jobs,
        fold,
    }
}

const A2_WINDOWS: [u64; 6] = [0, 2, 6, 12, 25, 60];
const A2_WORKLOADS: [&str; 3] = ["oltp", "erp", "gups"];

pub(super) fn a2() -> Experiment {
    fn jobs(_env: &Env) -> Vec<JobSpec> {
        let mut v = Vec::new();
        for name in A2_WORKLOADS {
            for win in A2_WINDOWS {
                let cfg = SstConfig {
                    bypass_stall_window: win,
                    ..SstConfig::sst()
                };
                v.push(JobSpec::single(
                    format!("win{win}/{name}"),
                    CoreModel::CustomSst(cfg),
                    name,
                ));
            }
        }
        v
    }
    fn fold(_env: &Env, ctx: &RunCtx) -> Fold {
        let mut f = Fold::default();
        for name in A2_WORKLOADS {
            let mut t = Table::new(["bypass window", "IPC"]);
            for win in A2_WINDOWS {
                let r = ctx.run(&format!("win{win}/{name}"));
                t.row([win.to_string(), f3(r.measured_ipc())]);
            }
            f.note(format!("workload: {name}"));
            f.table(format!("a2_bypass_{name}"), t);
        }
        f
    }
    Experiment {
        id: "a2",
        family: "ablation",
        title: "ablation: replay bypass-stall window",
        paper_note: "a shallow optimum near the ALU-latency scale (a few cycles)",
        hidden: false,
        jobs,
        fold,
    }
}

pub(super) fn a3() -> Experiment {
    fn jobs(_env: &Env) -> Vec<JobSpec> {
        let mut v = Vec::new();
        for name in Workload::all_names() {
            v.push(JobSpec::single(format!("off/{name}"), CoreModel::Sst, name));
            let gated = SstConfig {
                confidence_gate: true,
                ..SstConfig::sst()
            };
            v.push(JobSpec::single(
                format!("on/{name}"),
                CoreModel::CustomSst(gated),
                name,
            ));
        }
        v
    }
    fn fold(_env: &Env, ctx: &RunCtx) -> Fold {
        let mut f = Fold::default();
        let mut t = Table::new([
            "workload",
            "IPC (gate off)",
            "fails (off)",
            "IPC (gate on)",
            "fails (on)",
            "lowconf stall cyc",
            "gate effect",
        ]);
        for name in Workload::all_names() {
            let off = ctx.run(&format!("off/{name}"));
            let on = ctx.run(&format!("on/{name}"));
            t.row([
                name.to_string(),
                f3(off.ipc()),
                off.counter("fail_branch").unwrap_or(0).to_string(),
                f3(on.ipc()),
                on.counter("fail_branch").unwrap_or(0).to_string(),
                on.counter("stall_lowconf").unwrap_or(0).to_string(),
                pct(on.ipc() / off.ipc()),
            ]);
        }
        f.table("a3_confidence_gate", t);
        f
    }
    Experiment {
        id: "a3",
        family: "ablation",
        title: "ablation: confidence-gated deferral",
        paper_note: "the gate removes most deferred-branch rollbacks but costs run-ahead coverage; net effect is workload-dependent",
        hidden: false,
        jobs,
        fold,
    }
}

const A4_WORKLOADS: [&str; 6] = ["oltp", "erp", "stream", "stencil", "mcf", "gups"];

fn a4_mem(with_pf: bool) -> MemConfig {
    if with_pf {
        MemConfig {
            prefetch: Some(StrideConfig::default()),
            ..MemConfig::default()
        }
    } else {
        MemConfig::default()
    }
}

pub(super) fn a4() -> Experiment {
    fn jobs(_env: &Env) -> Vec<JobSpec> {
        let mut v = Vec::new();
        for name in A4_WORKLOADS {
            for (tok, model) in [("io", CoreModel::InOrder), ("sst", CoreModel::Sst)] {
                v.push(JobSpec::single_mem(
                    format!("{tok}/{name}"),
                    model.clone(),
                    name,
                    a4_mem(false),
                ));
                v.push(JobSpec::single_mem(
                    format!("{tok}-pf/{name}"),
                    model,
                    name,
                    a4_mem(true),
                ));
            }
        }
        v
    }
    fn fold(_env: &Env, ctx: &RunCtx) -> Fold {
        let mut f = Fold::default();
        let mut t = Table::new([
            "workload",
            "in-order",
            "in-order+pf",
            "pf gain",
            "sst",
            "sst+pf",
            "sst+pf vs sst",
        ]);
        for name in A4_WORKLOADS {
            let io = ctx.run(&format!("io/{name}")).measured_ipc();
            let io_pf = ctx.run(&format!("io-pf/{name}")).measured_ipc();
            let sst = ctx.run(&format!("sst/{name}")).measured_ipc();
            let sst_pf = ctx.run(&format!("sst-pf/{name}")).measured_ipc();
            t.row([
                name.to_string(),
                f3(io),
                f3(io_pf),
                pct(io_pf / io),
                f3(sst),
                f3(sst_pf),
                pct(sst_pf / sst),
            ]);
        }
        f.table("a4_prefetcher", t);
        f
    }
    Experiment {
        id: "a4",
        family: "ablation",
        title: "ablation: stride prefetcher vs speculation",
        paper_note: "the prefetcher rescues regular streams for in-order but not the pointer-chasing commercial suite; SST + prefetcher compose",
        hidden: false,
        jobs,
        fold,
    }
}
