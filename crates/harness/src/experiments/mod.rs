//! The experiment definitions: each of E1–E14 and A1–A4 as a
//! (jobs, fold) pair, ported from the original standalone binaries.

mod ablations;
mod core;
mod security;
mod sweeps;
mod system;
mod traffic;

use crate::job::{JobKind, JobSpec};
use crate::registry::{Experiment, Fold, RunCtx};
use crate::Env;

/// Every experiment, in publication order, plus the hidden `xfail`
/// fault-injection experiment.
pub fn all() -> Vec<Experiment> {
    vec![
        core::e1(),
        core::e2(),
        core::e3(),
        core::e4(),
        sweeps::e5(),
        sweeps::e6(),
        sweeps::e7(),
        sweeps::e8(),
        system::e9(),
        system::e10(),
        system::e11(),
        system::e12(),
        security::e13(),
        traffic::e14(),
        ablations::a1(),
        ablations::a2(),
        ablations::a3(),
        ablations::a4(),
        xfail(),
        xfold(),
    ]
}

/// The suite class label of a workload (for per-class geomeans).
pub(crate) fn class_of(env: &Env, name: &str) -> &'static str {
    sst_workloads::Workload::by_name(name, env.scale, env.seed)
        .unwrap_or_else(|| panic!("unknown workload {name:?}"))
        .class
        .label()
}

/// A deliberately failing experiment for exercising fault isolation:
/// one job panics, one succeeds. Hidden from `sst-run all`; addressable
/// as `sst-run xfail`.
fn xfail() -> Experiment {
    fn jobs(_env: &Env) -> Vec<JobSpec> {
        vec![
            JobSpec {
                name: "boom".into(),
                kind: JobKind::Panic {
                    message: "injected failure (xfail experiment)".into(),
                },
            },
            JobSpec::single("ok/gzip", sst_sim::CoreModel::InOrder, "gzip"),
        ]
    }
    fn fold(_env: &Env, _ctx: &RunCtx) -> Fold {
        let mut f = Fold::default();
        f.note("xfail fold ran — this should be impossible (the boom job must fail)".to_string());
        f
    }
    Experiment {
        id: "xfail",
        family: "internal",
        title: "fault-injection check (always fails by design)",
        paper_note: "harness self-test: the panicking job lands in the manifest, the rest proceed",
        hidden: true,
        jobs,
        fold,
    }
}

/// A deliberately failing experiment whose *jobs* all succeed but whose
/// *fold* panics — exercising the scheduler's fold isolation. Hidden
/// from `sst-run all`; addressable as `sst-run xfold`.
fn xfold() -> Experiment {
    fn jobs(_env: &Env) -> Vec<JobSpec> {
        vec![JobSpec::single("ok/gzip", sst_sim::CoreModel::InOrder, "gzip")]
    }
    fn fold(_env: &Env, _ctx: &RunCtx) -> Fold {
        panic!("injected failure (xfold experiment)");
    }
    Experiment {
        id: "xfold",
        family: "internal",
        title: "fold fault-injection check (always fails by design)",
        paper_note: "harness self-test: a panicking fold is recorded and cannot look clean",
        hidden: true,
        jobs,
        fold,
    }
}
