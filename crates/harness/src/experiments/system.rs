//! E9–E12: the area proxy, CMP throughput scaling, exposed MLP, and the
//! speculation outcome breakdown.

use sst_sim::area::model_area;
use sst_sim::report::{f2, f3, Table};
use sst_sim::{geomean, CoreModel};
use sst_workloads::Workload;

use crate::job::JobSpec;
use crate::registry::{Experiment, Fold, RunCtx};
use crate::Env;

pub(super) fn e9() -> Experiment {
    fn jobs(_env: &Env) -> Vec<JobSpec> {
        let mut v = Vec::new();
        for model in CoreModel::lineup() {
            for name in Workload::commercial_names() {
                v.push(JobSpec::single(
                    format!("{}/{name}", model.label()),
                    model.clone(),
                    name,
                ));
            }
        }
        v
    }
    fn fold(_env: &Env, ctx: &RunCtx) -> Fold {
        let mut f = Fold::default();
        let mut t = Table::new([
            "model",
            "SRAM bits",
            "CAM bits",
            "weighted cost",
            "commercial IPC (geomean)",
            "IPC per Mcost",
        ]);
        for model in CoreModel::lineup() {
            let est = model_area(&model);
            let ipcs: Vec<f64> = Workload::commercial_names()
                .iter()
                .map(|name| {
                    ctx.run(&format!("{}/{name}", model.label())).measured_ipc()
                })
                .collect();
            let ipc = geomean(&ipcs);
            let cost = est.weighted_cost();
            t.row([
                model.label(),
                est.sram_bits.to_string(),
                est.cam_bits.to_string(),
                format!("{:.0}", cost),
                f3(ipc),
                f2(ipc / cost * 1.0e6),
            ]);
        }
        f.table("e9_area_proxy", t);
        f.note("The last column is the paper's thesis: the SST core's");
        f.note("performance-per-structure-cost dominates every OoO point.");
        f
    }
    Experiment {
        id: "e9",
        family: "paper",
        title: "area/power structure proxy (Table 3)",
        paper_note: "SST ~= in-order + DQ/STB/checkpoints; large OoO is several times costlier (CAM-heavy)",
        hidden: false,
        jobs,
        fold,
    }
}

const E10_CORE_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];

fn e10_models() -> [CoreModel; 2] {
    [CoreModel::Sst, CoreModel::Ooo64]
}

pub(super) fn e10() -> Experiment {
    fn jobs(_env: &Env) -> Vec<JobSpec> {
        let mut v = Vec::new();
        for model in e10_models() {
            for n in E10_CORE_COUNTS {
                v.push(JobSpec::cmp(
                    format!("{}/x{n}", model.label()),
                    model.clone(),
                    "erp",
                    n,
                ));
            }
        }
        v
    }
    fn fold(_env: &Env, ctx: &RunCtx) -> Fold {
        let mut f = Fold::default();
        for model in e10_models() {
            let cost = model_area(&model).weighted_cost();
            let mut t = Table::new([
                "cores",
                "throughput IPC",
                "scaling",
                "mean core IPC",
                "DRAM reads",
                "IPC per Mcost (chip)",
            ]);
            let mut base = None;
            for n in E10_CORE_COUNTS {
                let r = ctx.cmp(&format!("{}/x{n}", model.label()));
                let tp = r.throughput_ipc();
                let b = *base.get_or_insert(tp);
                t.row([
                    n.to_string(),
                    f3(tp),
                    format!("{}x", f2(tp / b)),
                    f3(r.mean_core_ipc()),
                    r.mem.dram_reads.to_string(),
                    f2(tp / (cost * n as f64) * 1.0e6),
                ]);
            }
            f.note(format!("chip of {} cores:", model.label()));
            f.table(format!("e10_cmp_{}", model.label()), t);
        }
        f
    }
    Experiment {
        id: "e10",
        family: "paper",
        title: "CMP throughput scaling (Figure G)",
        paper_note: "near-linear to ~4-8 cores, then DRAM/L2 contention; SST chip leads per-cost at every size",
        hidden: false,
        jobs,
        fold,
    }
}

const E11_WORKLOADS: [&str; 5] = ["oltp", "erp", "gups", "mcf", "mlp8"];
const E11_MODELS: [(&str, fn() -> CoreModel); 5] = [
    ("io", || CoreModel::InOrder),
    ("scout", || CoreModel::Scout),
    ("ea", || CoreModel::ExecuteAhead),
    ("sst", || CoreModel::Sst),
    ("o128", || CoreModel::Ooo128),
];

pub(super) fn e11() -> Experiment {
    fn jobs(_env: &Env) -> Vec<JobSpec> {
        let mut v = Vec::new();
        for name in E11_WORKLOADS {
            for (tok, model) in E11_MODELS {
                v.push(JobSpec::single(format!("{tok}/{name}"), model(), name));
            }
        }
        v
    }
    fn fold(_env: &Env, ctx: &RunCtx) -> Fold {
        let mut f = Fold::default();
        let mut t = Table::new(["workload", "in-order", "scout", "ea", "sst", "ooo-128"]);
        for name in E11_WORKLOADS {
            let mut cells = vec![name.to_string()];
            for (tok, _) in E11_MODELS {
                let r = ctx.run(&format!("{tok}/{name}"));
                // Whole-run cycles: the warm-up share is identical across
                // models and EA-style cores can have degenerate
                // post-warm-up windows (end-of-run commit bursts).
                let mpkc = r.mem.dram_reads as f64 * 1000.0 / r.cycles.max(1) as f64;
                cells.push(f2(mpkc));
            }
            t.row(cells);
        }
        f.note("DRAM reads per kilocycle (same total work => higher = more overlap):");
        f.table("e11_mlp", t);

        let mut s = Table::new([
            "workload",
            "deferred",
            "overlapped misses",
            "redeferred",
            "defer rate",
        ]);
        for name in E11_WORKLOADS {
            let r = ctx.run(&format!("sst/{name}"));
            let issued =
                r.counter("ahead_issued").unwrap_or(0) + r.counter("replay_issued").unwrap_or(0);
            let defer_rate = if issued == 0 {
                0.0
            } else {
                r.counter("deferred").unwrap_or(0) as f64 / issued as f64
            };
            s.row([
                name.to_string(),
                r.counter("deferred").unwrap_or(0).to_string(),
                r.counter("overlapped_misses").unwrap_or(0).to_string(),
                r.counter("redeferred").unwrap_or(0).to_string(),
                f3(defer_rate),
            ]);
        }
        f.note("SST speculation anatomy:");
        f.table("e11_sst_anatomy", s);
        f
    }
    Experiment {
        id: "e11",
        family: "paper",
        title: "exposed MLP by core type (Figure H)",
        paper_note: "SST >= EA >= scout >= in-order miss overlap everywhere except MLP-1 chases",
        hidden: false,
        jobs,
        fold,
    }
}

pub(super) fn e12() -> Experiment {
    fn jobs(_env: &Env) -> Vec<JobSpec> {
        Workload::all_names()
            .iter()
            .map(|name| JobSpec::single(format!("sst/{name}"), CoreModel::Sst, name))
            .collect()
    }
    fn fold(_env: &Env, ctx: &RunCtx) -> Fold {
        let mut f = Fold::default();
        let mut t = Table::new([
            "workload",
            "episodes",
            "epochs committed",
            "branch fails",
            "fail %",
            "dq-full %cyc",
            "stb-full %cyc",
        ]);
        for name in Workload::all_names() {
            let r = ctx.run(&format!("sst/{name}"));
            let committed = r.counter("epochs_committed").unwrap_or(0);
            let fails = r.counter("fail_branch").unwrap_or(0);
            let ends = committed + fails;
            let fail_pct = if ends == 0 {
                0.0
            } else {
                fails as f64 * 100.0 / ends as f64
            };
            let cyc = r.cycles.max(1) as f64;
            t.row([
                name.to_string(),
                r.counter("episodes").unwrap_or(0).to_string(),
                committed.to_string(),
                fails.to_string(),
                f2(fail_pct),
                f2(r.counter("stall_dq_full").unwrap_or(0) as f64 * 100.0 / cyc),
                f2(r.counter("stall_stb_full").unwrap_or(0) as f64 * 100.0 / cyc),
            ]);
        }
        f.table("e12_failures", t);
        f
    }
    Experiment {
        id: "e12",
        family: "paper",
        title: "speculation outcome breakdown (Figure I)",
        paper_note: "commits dominate; deferred-branch failures are a small minority; stalls concentrated on store-heavy code",
        hidden: false,
        jobs,
        fold,
    }
}
