//! E1–E4: the configuration table, workload characterization, the
//! mechanism-family speedups, and the headline SST-vs-OoO comparison.

use sst_core::SstConfig;
use sst_inorder::InOrderConfig;
use sst_isa::InstClass;
use sst_mem::MemConfig;
use sst_ooo::OooConfig;
use sst_sim::report::{f2, f3, pct, Table};
use sst_sim::{geomean, CoreModel};
use sst_uarch::FrontendConfig;
use sst_workloads::Workload;

use super::class_of;
use crate::job::JobSpec;
use crate::registry::{Experiment, Fold, RunCtx};
use crate::Env;

pub(super) fn e1() -> Experiment {
    fn jobs(_env: &Env) -> Vec<JobSpec> {
        Vec::new() // pure configuration tables — nothing to simulate
    }
    fn fold(_env: &Env, _ctx: &RunCtx) -> Fold {
        let mut f = Fold::default();

        let mut t = Table::new([
            "model",
            "width",
            "checkpoints",
            "DQ",
            "store buffer",
            "ROB",
            "issue queue",
            "LQ/SQ",
            "D$ ports",
        ]);
        let io = InOrderConfig::default();
        t.row([
            "in-order".to_string(),
            io.width.to_string(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            io.dcache_ports.to_string(),
        ]);
        for cfg in [SstConfig::scout(), SstConfig::execute_ahead(), SstConfig::sst()] {
            t.row([
                cfg.label(),
                cfg.width.to_string(),
                cfg.checkpoints.to_string(),
                cfg.dq_entries.to_string(),
                cfg.stb_entries.to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
                cfg.dcache_ports.to_string(),
            ]);
        }
        for cfg in [OooConfig::ooo_32(), OooConfig::ooo_64(), OooConfig::ooo_128()] {
            t.row([
                cfg.label(),
                cfg.issue_width.to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
                cfg.rob_entries.to_string(),
                cfg.iq_entries.to_string(),
                format!("{}/{}", cfg.lq_entries, cfg.sq_entries),
                cfg.dcache_ports.to_string(),
            ]);
        }
        f.table("e1_configs", t);

        let fe = FrontendConfig::default();
        let mem = MemConfig::default();
        let mut shared = Table::new(["shared component", "value"]);
        shared.row(["direction predictor", &format!("{:?}", fe.predictor)]);
        shared.row(["BTB entries", &fe.btb_entries.to_string()]);
        shared.row(["RAS depth", &fe.ras_depth.to_string()]);
        shared.row(["redirect penalty", &format!("{} cycles", fe.redirect_penalty)]);
        shared.row([
            "L1 I/D",
            &format!(
                "{} KiB, {}-way, {} B lines",
                mem.l1d.size_bytes / 1024,
                mem.l1d.ways,
                mem.l1d.line_bytes
            ),
        ]);
        shared.row([
            "L2 (shared)",
            &format!("{} KiB, {}-way", mem.l2.size_bytes / 1024, mem.l2.ways),
        ]);
        shared.row([
            "L1 / L2 latency",
            &format!("{} / {} cycles", mem.l1_latency, mem.l2_latency),
        ]);
        shared.row(["L1D MSHRs", &mem.l1d_mshrs.to_string()]);
        shared.row(["DRAM base latency", &format!("{} cycles", mem.dram.base_cycles)]);
        shared.row(["DRAM banks", &mem.dram.banks.to_string()]);
        f.table("e1_shared", shared);

        f.note("The SST rows differ from in-order only by the checkpoint/DQ/");
        f.note("store-buffer columns — the paper's whole added cost. The OoO");
        f.note("rows carry the rename/ROB/issue-window/LSQ machinery SST");
        f.note("eliminates.");
        f
    }
    Experiment {
        id: "e1",
        family: "paper",
        title: "machine configurations (Table 1)",
        paper_note: "reconstructed configuration table: in-order / scout / EA / SST / OoO lineup",
        hidden: false,
        jobs,
        fold,
    }
}

pub(super) fn e2() -> Experiment {
    fn jobs(_env: &Env) -> Vec<JobSpec> {
        Workload::all_names()
            .iter()
            .map(|name| JobSpec::single(format!("io/{name}"), CoreModel::InOrder, name))
            .collect()
    }
    fn fold(env: &Env, ctx: &RunCtx) -> Fold {
        let mut f = Fold::default();
        let mut t = Table::new([
            "workload",
            "class",
            "insts",
            "loads%",
            "stores%",
            "branches%",
            "L1D MPKI",
            "L2 MPKI",
            "br-mispred%",
            "IPC(in-order)",
        ]);
        for name in Workload::all_names() {
            let r = ctx.run(&format!("io/{name}"));
            let share = |k: InstClass| r.mix_fraction(k) * 100.0;
            let preds = r.counter("cond_predictions").unwrap_or(0);
            let mispred = if preds == 0 {
                0.0
            } else {
                r.counter("cond_mispredictions").unwrap_or(0) as f64 * 100.0 / preds as f64
            };
            t.row([
                name.to_string(),
                class_of(env, name).to_string(),
                r.insts.to_string(),
                f2(share(InstClass::Load)),
                f2(share(InstClass::Store)),
                f2(share(InstClass::Branch) + share(InstClass::Jump)),
                f2(r.mem.l1d[0].mpki(r.insts)),
                f2(r.mem.l2.mpki(r.insts)),
                f2(mispred),
                f3(r.ipc()),
            ]);
        }
        f.table("e2_workloads", t);
        f.note("Expected regimes: oltp/erp/mcf/gups/chase/mlp8 land in the");
        f.note("tens of L2 MPKI (the paper's commercial regime); gzip/matmul");
        f.note("are cache-resident; gcc/web are branchy (mispredict > 5%).");
        f
    }
    Experiment {
        id: "e2",
        family: "paper",
        title: "workload characterization (Table 2)",
        paper_note: "commercial suite: high L2 MPKI + dependent loads; spec-fp: streaming; micro: MLP extremes",
        hidden: false,
        jobs,
        fold,
    }
}

const E3_MODELS: [(&str, fn() -> CoreModel); 4] = [
    ("io", || CoreModel::InOrder),
    ("scout", || CoreModel::Scout),
    ("ea", || CoreModel::ExecuteAhead),
    ("sst", || CoreModel::Sst),
];

pub(super) fn e3() -> Experiment {
    fn jobs(_env: &Env) -> Vec<JobSpec> {
        Workload::all_names()
            .iter()
            .flat_map(|name| {
                E3_MODELS
                    .iter()
                    .map(move |(tok, model)| JobSpec::single(format!("{tok}/{name}"), model(), name))
            })
            .collect()
    }
    fn fold(env: &Env, ctx: &RunCtx) -> Fold {
        let mut f = Fold::default();
        let mut t = Table::new(["workload", "in-order IPC", "scout", "ea", "sst"]);
        let mut per_class: Vec<(&str, [Vec<f64>; 3])> = vec![
            ("commercial", Default::default()),
            ("spec-int", Default::default()),
            ("spec-fp", Default::default()),
            ("micro", Default::default()),
        ];
        for name in Workload::all_names() {
            let base_ipc = ctx.run(&format!("io/{name}")).measured_ipc();
            let mut speedups = [0.0f64; 3];
            for (i, tok) in ["scout", "ea", "sst"].into_iter().enumerate() {
                speedups[i] = ctx.run(&format!("{tok}/{name}")).measured_ipc() / base_ipc;
            }
            let class = class_of(env, name);
            for (label, accum) in per_class.iter_mut() {
                if *label == class {
                    for i in 0..3 {
                        accum[i].push(speedups[i]);
                    }
                }
            }
            t.row([
                name.to_string(),
                f3(base_ipc),
                format!("{}x", f2(speedups[0])),
                format!("{}x", f2(speedups[1])),
                format!("{}x", f2(speedups[2])),
            ]);
        }
        f.table("e3_speedup_vs_inorder", t);

        let mut g = Table::new(["suite", "scout", "ea", "sst"]);
        for (label, accum) in &per_class {
            g.row([
                label.to_string(),
                format!("{}x", f2(geomean(&accum[0]))),
                format!("{}x", f2(geomean(&accum[1]))),
                format!("{}x", f2(geomean(&accum[2]))),
            ]);
        }
        f.note("geometric means by suite:");
        f.table("e3_geomeans", g);
        f
    }
    Experiment {
        id: "e3",
        family: "paper",
        title: "speedup over in-order: scout / EA / SST (Figure A)",
        paper_note: "every mechanism >= 1.0x; ordering scout <= EA <= SST; biggest gains on the commercial suite",
        hidden: false,
        jobs,
        fold,
    }
}

const E4_MODELS: [(&str, fn() -> CoreModel); 4] = [
    ("sst", || CoreModel::Sst),
    ("o32", || CoreModel::Ooo32),
    ("o64", || CoreModel::Ooo64),
    ("o128", || CoreModel::Ooo128),
];

pub(super) fn e4() -> Experiment {
    fn jobs(_env: &Env) -> Vec<JobSpec> {
        Workload::all_names()
            .iter()
            .flat_map(|name| {
                E4_MODELS
                    .iter()
                    .map(move |(tok, model)| JobSpec::single(format!("{tok}/{name}"), model(), name))
            })
            .collect()
    }
    fn fold(_env: &Env, ctx: &RunCtx) -> Fold {
        let mut f = Fold::default();
        let mut t = Table::new([
            "workload",
            "sst IPC",
            "ooo-32 IPC",
            "ooo-64 IPC",
            "ooo-128 IPC",
            "sst vs ooo-128",
        ]);
        let mut commercial: Vec<f64> = Vec::new();
        let mut all_vs_128: Vec<f64> = Vec::new();
        for name in Workload::all_names() {
            let ipc =
                |tok: &str| -> f64 { ctx.run(&format!("{tok}/{name}")).measured_ipc() };
            let (sst, o32, o64, o128) = (ipc("sst"), ipc("o32"), ipc("o64"), ipc("o128"));
            let ratio = sst / o128;
            if Workload::commercial_names().contains(name) {
                commercial.push(ratio);
            }
            all_vs_128.push(ratio);
            t.row([
                name.to_string(),
                f3(sst),
                f3(o32),
                f3(o64),
                f3(o128),
                pct(ratio),
            ]);
        }
        f.table("e4_vs_ooo", t);

        let headline = geomean(&commercial);
        f.note(format!(
            "HEADLINE — SST vs ooo-128, commercial-suite geomean: {}",
            pct(headline)
        ));
        f.note("paper: +18% vs \"larger and higher-powered out-of-order cores\"");

        let mut s = Table::new(["summary", "value"]);
        s.row(["commercial geomean (sst/ooo-128)", &pct(headline)]);
        s.row(["all-suite geomean", &pct(geomean(&all_vs_128))]);
        let mut all = all_vs_128;
        all.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        s.row([
            "min / max across workloads",
            &format!("{} / {}", pct(all[0]), pct(all[all.len() - 1])),
        ]);
        f.table("e4_headline", s);
        f
    }
    Experiment {
        id: "e4",
        family: "paper",
        title: "SST vs out-of-order (Figure B, the headline)",
        paper_note: "SST ~ +18% over the large OoO on the commercial suite (accept +10..30%); OoO wins on compute-bound kernels",
        hidden: false,
        jobs,
        fold,
    }
}
