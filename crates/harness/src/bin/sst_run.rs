//! `sst-run` — the experiment orchestrator. See `sst-run --help`.

fn main() {
    std::process::exit(sst_harness::cli_main(std::env::args().skip(1)));
}
