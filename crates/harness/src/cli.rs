//! The `sst-run` command line, shared by the thin per-experiment
//! binaries.
//!
//! ```text
//! sst-run all                 # every experiment, all cores
//! sst-run e4 a1 --jobs 8     # a subset, 8 workers
//! sst-run e3 --no-cache      # force re-simulation
//! sst-run --list             # what's available
//! ```

use crate::registry;
use crate::sched::{self, RunConfig};

const USAGE: &str = "\
usage: sst-run [all | <experiment>...] [options]

Runs the study's experiments on a parallel, cached, fault-isolated
worker pool and writes tables to results/.

experiments:
  all            every experiment (E1-E14, A1-A4)
  e1 .. e12      the paper reproductions
  e13            speculative-leakage audit: taint sweep over the gadgets
  e14            open-loop service traffic: tail latency vs offered load
  a1 .. a4       the ablations
  (legacy binary names like e4_vs_ooo are accepted)

subcommands:
  bench          time the simulation hot loop and report Minst/s
                 (see `sst-run bench --help`)
  trace          capture a Chrome-trace/Perfetto timeline of an
                 experiment's jobs (see `sst-run trace --help`)

options:
  --jobs N       worker threads (default: available parallelism)
  --threads N    simulation threads per CMP job (default 1; results
                 are byte-identical for any value)
  --no-cache     ignore and do not populate results/cache/
  --shard I/N    scale-out partition: execute only jobs whose cache
                 hash lands in shard I of N (0 <= I < N). Launch N
                 processes with the same out dir and I=0..N-1; they
                 divide the work deterministically with no duplicate
                 execution (claim files cover stragglers), and a final
                 unsharded run folds everything from the shared cache
  --list         list experiments and exit
  --help         this text

environment:
  SST_SCALE=smoke|full   workload scale (default full)
  SST_SEED=<u64>         data-generation seed (default 12345)
  SST_RESULTS=<dir>      output root; results/ is created under it
  SST_MAX_CYCLES=<u64>   per-job cycle budget (default 2e10)
  SST_MANIFEST=<name>    manifest filename under results/ (default
                         manifest.json; give concurrent schedulers on
                         one out dir distinct names)
  SST_TRACE=<path>       legacy shim: behave as `sst-run trace ...
                         --out <path>` (value 1 means trace.json)

exit status: 0 when every job succeeded, 1 otherwise.";

/// Parses a `--shard` value `"I/N"`; `None` on any malformed or
/// out-of-range input.
fn parse_shard(v: &str) -> Option<(usize, usize)> {
    let (i, n) = v.split_once('/')?;
    let i: usize = i.trim().parse().ok()?;
    let n: usize = n.trim().parse().ok()?;
    (n >= 1 && i < n).then_some((i, n))
}

/// `--list`: experiments grouped by family, one line each.
fn print_list() {
    let headers = [
        ("paper", "paper reproductions"),
        ("ablation", "ablations"),
        ("traffic", "service traffic (open-loop load sweeps)"),
    ];
    let all = registry::all();
    for (family, label) in headers {
        let members: Vec<_> = all
            .iter()
            .filter(|e| !e.hidden && e.family == family)
            .collect();
        if members.is_empty() {
            continue;
        }
        println!("{label}:");
        for e in members {
            println!("  {:<4} {}", e.id, e.title);
        }
        println!();
    }
}

/// Parses `args` (without the program name) and runs. Returns the
/// process exit code.
pub fn cli_main<I: IntoIterator<Item = String>>(args: I) -> i32 {
    let mut cfg = RunConfig::from_os();
    let mut tokens: Vec<String> = Vec::new();
    let mut want_all = false;
    let mut args = args.into_iter().peekable();
    if args.peek().map(String::as_str) == Some("bench") {
        args.next();
        return crate::bench::bench_main(args);
    }
    if args.peek().map(String::as_str) == Some("trace") {
        args.next();
        return crate::trace::trace_main(args);
    }
    // Thin shim for the retired in-core SST_TRACE ring — the one place
    // the variable is still read. `SST_TRACE=<path> sst-run e3` behaves
    // like `sst-run trace e3 --out <path>` (value "1" or empty keeps the
    // default trace.json). Simulation code no longer reads it, so
    // harness-parallel jobs cannot race on a construction-time env read.
    if let Ok(v) = std::env::var("SST_TRACE") {
        let mut fwd: Vec<String> = args.collect();
        if !v.is_empty() && v != "1" {
            fwd.push("--out".to_string());
            fwd.push(v);
        }
        return crate::trace::trace_main(fwd.into_iter());
    }
    while let Some(a) = args.next() {
        match a.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return 0;
            }
            "--list" => {
                print_list();
                return 0;
            }
            "--no-cache" => cfg.use_cache = false,
            "--jobs" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => cfg.jobs = n,
                _ => {
                    eprintln!("sst-run: --jobs needs a positive integer");
                    return 2;
                }
            },
            _ if a.starts_with("--jobs=") => {
                match a["--jobs=".len()..].parse::<usize>() {
                    Ok(n) if n >= 1 => cfg.jobs = n,
                    _ => {
                        eprintln!("sst-run: --jobs needs a positive integer");
                        return 2;
                    }
                }
            }
            "--threads" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => cfg.sim_threads = n,
                _ => {
                    eprintln!("sst-run: --threads needs a positive integer");
                    return 2;
                }
            },
            _ if a.starts_with("--threads=") => {
                match a["--threads=".len()..].parse::<usize>() {
                    Ok(n) if n >= 1 => cfg.sim_threads = n,
                    _ => {
                        eprintln!("sst-run: --threads needs a positive integer");
                        return 2;
                    }
                }
            }
            "--shard" => match args.next().as_deref().and_then(parse_shard) {
                Some(s) => cfg.shard = Some(s),
                None => {
                    eprintln!("sst-run: --shard needs I/N with 0 <= I < N (e.g. 0/4)");
                    return 2;
                }
            },
            _ if a.starts_with("--shard=") => {
                match parse_shard(&a["--shard=".len()..]) {
                    Some(s) => cfg.shard = Some(s),
                    None => {
                        eprintln!("sst-run: --shard needs I/N with 0 <= I < N (e.g. 0/4)");
                        return 2;
                    }
                }
            }
            "all" => want_all = true,
            _ if a.starts_with('-') => {
                eprintln!("sst-run: unknown option {a:?}\n\n{USAGE}");
                return 2;
            }
            _ => tokens.push(a),
        }
    }

    if cfg.shard.is_some() && !cfg.use_cache {
        // Shards exchange results exclusively through the shared cache;
        // without it they could never be merged.
        eprintln!("sst-run: --shard requires the cache (drop --no-cache)");
        return 2;
    }

    let experiments = if want_all {
        registry::all()
            .into_iter()
            .filter(|e| !e.hidden)
            .collect::<Vec<_>>()
    } else if tokens.is_empty() {
        eprintln!("{USAGE}");
        return 2;
    } else {
        let mut picked = Vec::new();
        for t in &tokens {
            match registry::find(t) {
                Some(e) if !picked.iter().any(|p: &registry::Experiment| p.id == e.id) => {
                    picked.push(e)
                }
                Some(_) => {}
                None => {
                    eprintln!("sst-run: unknown experiment {t:?} (try --list)");
                    return 2;
                }
            }
        }
        picked
    };

    run_and_report(&experiments, &cfg)
}

/// Runs one experiment by id, serially and uncached-by-default-settings
/// aside (cache stays on), printing its tables. This is what the legacy
/// per-experiment binaries call: `jobs = 1` keeps them byte-for-byte
/// comparable with a parallel `sst-run` of the same experiment.
pub fn experiment_main(id: &str) -> i32 {
    let mut cfg = RunConfig::from_os();
    cfg.jobs = 1;
    match registry::find(id) {
        Some(e) => run_and_report(&[e], &cfg),
        None => {
            eprintln!("unknown experiment {id:?}");
            2
        }
    }
}

fn run_and_report(experiments: &[registry::Experiment], cfg: &RunConfig) -> i32 {
    let n_jobs: usize = {
        let env = cfg.env;
        experiments.iter().map(|e| (e.jobs)(&env).len()).sum()
    };
    if !cfg.quiet {
        let shard = cfg
            .shard
            .map_or(String::new(), |(i, n)| format!(", shard {i}/{n}"));
        println!(
            "sst-run: {} experiment(s), {} job(s), {} worker(s), scale={}, cache {}{shard}",
            experiments.len(),
            n_jobs,
            cfg.jobs,
            cfg.env.scale_token(),
            if cfg.use_cache { "on" } else { "off" },
        );
    }
    let summary = sched::run(experiments, cfg);
    if !cfg.quiet {
        println!(
            "sst-run: {} job(s) done, {} from cache, {} failed",
            summary.total_jobs,
            summary.cache_hits,
            summary.failures.len(),
        );
        for f in &summary.failures {
            println!("  FAILED {}/{} ({}): {}", f.experiment, f.job, f.kind, f.message);
        }
    }
    if summary.clean() {
        0
    } else {
        1
    }
}
