//! # sst-harness
//!
//! Parallel, cached, fault-isolated orchestration for the study's
//! experiments (E1–E14, A1–A4).
//!
//! Each experiment declares a list of **jobs** — independent simulation
//! units (one `(model, workload, memory-config)` run, or one CMP
//! throughput run) — plus a **fold** step that assembles the published
//! tables from the job results. The scheduler executes jobs on a worker
//! pool (`--jobs N`, default: available parallelism), isolates each job
//! behind `catch_unwind` and a max-cycle budget, serves repeat runs from a
//! content-addressed cache under `results/cache/`, and reassembles tables
//! deterministically regardless of thread count or completion order.
//!
//! Outputs, per experiment: the markdown tables on stdout, one CSV per
//! table under `results/`, and a machine-readable `results/<id>.json`
//! with the raw per-job numbers (IPC, defer rates, stall breakdowns,
//! memory-hierarchy counters). A whole-run `results/manifest.json`
//! records job status, durations, cache hits, and structured failure
//! records — a panicking or wedged job never takes down the rest of the
//! run.
//!
//! Environment knobs (shared with the thin experiment binaries):
//!
//! * `SST_SCALE=smoke|full` — workload scale (default `full`).
//! * `SST_SEED=<u64>` — data-generation seed (default 12345).
//! * `SST_RESULTS=<dir>` — where `results/` is created (default CWD).
//! * `SST_MAX_CYCLES=<u64>` — per-job cycle budget (default 2e10).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod cache;
pub mod cli;
mod experiments;
pub mod job;
pub mod json;
pub mod registry;
pub mod sched;
pub mod trace;

pub use cli::cli_main;
pub use job::{JobKind, JobOutput, JobSpec};
pub use registry::{Experiment, Fold, FoldItem, RunCtx};
pub use sched::{FailureRecord, RunConfig, RunSummary};

use std::path::PathBuf;

use sst_workloads::Scale;

/// A generous per-job cycle ceiling (simulations are deterministic; this
/// only catches model wedges).
pub const DEFAULT_MAX_CYCLES: u64 = 20_000_000_000;

/// The experiment environment: everything that parameterizes job
/// *results* (and therefore the cache key). Output locations and thread
/// counts live in [`RunConfig`] instead — they must never affect results.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Env {
    /// Workload scale.
    pub scale: Scale,
    /// Data-generation seed.
    pub seed: u64,
    /// Per-job cycle budget.
    pub max_cycles: u64,
}

impl Env {
    /// Reads `SST_SCALE` / `SST_SEED` / `SST_MAX_CYCLES` with the
    /// documented defaults.
    pub fn from_os() -> Env {
        Env {
            scale: match std::env::var("SST_SCALE").as_deref() {
                Ok("smoke") => Scale::Smoke,
                _ => Scale::Full,
            },
            seed: std::env::var("SST_SEED")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(12345),
            max_cycles: std::env::var("SST_MAX_CYCLES")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(DEFAULT_MAX_CYCLES),
        }
    }

    /// The scale's token as it appears in cache keys ("smoke"/"full").
    pub fn scale_token(&self) -> &'static str {
        match self.scale {
            Scale::Smoke => "smoke",
            Scale::Full => "full",
        }
    }
}

impl Default for Env {
    fn default() -> Env {
        Env {
            scale: Scale::Full,
            seed: 12345,
            max_cycles: DEFAULT_MAX_CYCLES,
        }
    }
}

/// Output directory root from `SST_RESULTS` (default CWD). `results/` is
/// created beneath it.
pub fn out_dir_from_os() -> PathBuf {
    std::env::var("SST_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("."))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_env_is_full_scale() {
        let e = Env::default();
        assert_eq!(e.scale, Scale::Full);
        assert_eq!(e.seed, 12345);
        assert_eq!(e.scale_token(), "full");
    }
}
