//! `sst-run trace`: capture a Chrome-trace/Perfetto timeline for an
//! experiment's single-core jobs.
//!
//! ```text
//! sst-run trace e3 --model sst --out trace.json
//! ```
//!
//! Re-runs the selected jobs with the typed event sink enabled (the
//! cache is deliberately bypassed — cached results carry no rings) and
//! writes one JSON document that loads directly in `chrome://tracing`
//! or [ui.perfetto.dev](https://ui.perfetto.dev). Each job becomes a
//! process; its core pipeline and memory port become the two threads
//! underneath. Alongside the file, the per-phase cycle table of every
//! traced run is printed — the same rows that land in `RunResult::phases`
//! — so the terminal answers "where did the cycles go" without opening
//! the viewer.
//!
//! Tracing is observation-only: the traced `RunResult` is byte-identical
//! to an untraced run (enforced by `crates/sim/tests/trace_equiv.rs`),
//! so the numbers printed here agree exactly with `sst-run <exp>`.
//!
//! The legacy `SST_TRACE` env var is honoured as a thin CLI shim only —
//! `SST_TRACE=t.json sst-run e3` behaves like `sst-run trace e3 --out
//! t.json` (see [`crate::cli`]). No simulation code reads it anymore.

use sst_obs::ChromeTrace;
use sst_sim::System;
use sst_workloads::Workload;

use crate::job::JobKind;
use crate::{registry, Env};

const TRACE_USAGE: &str = "\
usage: sst-run trace <experiment>... [options]

Re-runs the experiment's single-core jobs with event tracing enabled
and writes one Chrome-trace JSON (open in chrome://tracing or
ui.perfetto.dev). Each job is a process; core and memory-port rings
are its threads. Per-phase cycle tables are printed alongside.

options:
  --model M       only jobs whose name starts with \"M/\" (the model
                  token, e.g. sst, ea, scout, io, o128); repeatable
  --workload W    only jobs of workload W (the part after '/'); repeatable
  --out PATH      where to write the JSON (default: trace.json)
  --help          this text

environment:
  SST_SCALE / SST_SEED / SST_MAX_CYCLES as for sst-run (tracing an
  experiment at full scale can produce very large files; smoke scale
  is usually what you want in a viewer)

exit status: 0 when every selected job ran, 1 otherwise.";

/// One selected-and-traced job, ready for export and table printing.
struct Traced {
    name: String,
    result: sst_sim::RunResult,
    trace: sst_sim::SystemTrace,
}

/// Entry point for `sst-run trace <args>`. Returns the process exit code.
pub fn trace_main<I: Iterator<Item = String>>(mut args: I) -> i32 {
    let mut tokens: Vec<String> = Vec::new();
    let mut models: Vec<String> = Vec::new();
    let mut workloads: Vec<String> = Vec::new();
    let mut out = String::from("trace.json");
    while let Some(a) = args.next() {
        match a.as_str() {
            "--help" | "-h" => {
                println!("{TRACE_USAGE}");
                return 0;
            }
            "--model" => match args.next() {
                Some(m) => models.push(m),
                None => return trace_arg_err("--model needs a model token"),
            },
            "--workload" => match args.next() {
                Some(w) => workloads.push(w),
                None => return trace_arg_err("--workload needs a workload name"),
            },
            "--out" => match args.next() {
                Some(p) => out = p,
                None => return trace_arg_err("--out needs a path"),
            },
            other if other.starts_with('-') => {
                return trace_arg_err(&format!("unknown option {other:?}"));
            }
            _ => tokens.push(a),
        }
    }
    if tokens.is_empty() {
        eprintln!("{TRACE_USAGE}");
        return 2;
    }
    run_trace(&tokens, &models, &workloads, &out, &Env::from_os())
}

/// The work behind [`trace_main`], with the environment passed in so
/// tests can pin the scale without touching process-global env vars.
fn run_trace(
    tokens: &[String],
    models: &[String],
    workloads: &[String],
    out: &str,
    env: &Env,
) -> i32 {
    let mut selected: Vec<(String, sst_sim::CoreModel, String, sst_mem::MemConfig)> = Vec::new();
    for t in tokens {
        let exp = match registry::find(t) {
            Some(e) => e,
            None => {
                eprintln!("sst-run trace: unknown experiment {t:?} (try sst-run --list)");
                return 2;
            }
        };
        for job in (exp.jobs)(&env) {
            // Tracing is a single-core instrument: CMP/traffic jobs are
            // skipped (their cores multiplex workload slices and would
            // need per-core rings the CmpSystem does not expose yet).
            let (model, workload, mem) = match job.kind {
                JobKind::Single { model, workload, mem }
                | JobKind::Leakage { model, workload, mem } => (model, workload, mem),
                _ => continue,
            };
            let (tok, wname) = match job.name.split_once('/') {
                Some((m, w)) => (m.to_string(), w.to_string()),
                None => (job.name.clone(), workload.clone()),
            };
            if !models.is_empty() && !models.iter().any(|m| *m == tok) {
                continue;
            }
            if !workloads.is_empty() && !workloads.iter().any(|w| *w == wname) {
                continue;
            }
            selected.push((job.name, model, workload, mem));
        }
    }
    if selected.is_empty() {
        eprintln!(
            "sst-run trace: no single-core jobs matched (models {models:?}, workloads {workloads:?})"
        );
        return 2;
    }

    println!(
        "sst-run trace: {} job(s), scale={}, writing {}",
        selected.len(),
        env.scale_token(),
        out
    );

    let mut traced: Vec<Traced> = Vec::new();
    for (name, model, workload, mem) in selected {
        let w = match Workload::by_name(&workload, env.scale, env.seed) {
            Some(w) => w,
            None => {
                eprintln!("sst-run trace: {name}: unknown workload {workload:?}");
                return 1;
            }
        };
        let sys = System::with_mem(model, &w, &mem).without_cosim().with_tracing();
        match sys.run_with_trace(env.max_cycles) {
            Ok((result, trace)) => traced.push(Traced { name, result, trace }),
            Err(e) => {
                eprintln!("sst-run trace: {name}: {e}");
                return 1;
            }
        }
    }
    let out = out.to_string();

    // Export: one process per job, core ring on tid 0, mem ring on tid 1.
    let mut chrome = ChromeTrace::new();
    for (i, t) in traced.iter().enumerate() {
        let pid = i as u64 + 1;
        chrome.name_process(pid, &t.name);
        if let Some(core) = &t.trace.core {
            chrome.name_thread(pid, 0, "core");
            chrome.add_track(pid, 0, &format!("{}:core", t.name), core);
        }
        if let Some(mem) = &t.trace.mem {
            chrome.name_thread(pid, 1, "mem");
            chrome.add_track(pid, 1, &format!("{}:mem", t.name), mem);
        }
    }
    if let Err(e) = std::fs::write(&out, chrome.finish()) {
        eprintln!("sst-run trace: cannot write {out}: {e}");
        return 1;
    }

    for t in &traced {
        print_phase_table(&t.name, &t.result);
    }
    println!("(trace written to {out} — open in chrome://tracing or ui.perfetto.dev)");
    0
}

/// Prints the per-phase cycle table of one run; the rows are
/// `RunResult::phases` and sum exactly to `RunResult::cycles`.
fn print_phase_table(name: &str, r: &sst_sim::RunResult) {
    println!("{name}: {} insts, {} cycles, IPC {:.3}", r.insts, r.cycles, r.ipc());
    let total: u64 = r.phases.iter().map(|&(_, v)| v).sum();
    for (phase, cycles) in &r.phases {
        let pct = if total == 0 { 0.0 } else { *cycles as f64 * 100.0 / total as f64 };
        println!("  {phase:<8} {cycles:>14} cycles  {pct:>5.1}%");
    }
    if total != r.cycles {
        // Cannot happen for the in-tree models (the equivalence suite
        // pins it); loud is better than wrong if a new model slips.
        println!("  WARNING: phase rows sum to {total}, run took {} cycles", r.cycles);
    }
}

fn trace_arg_err(msg: &str) -> i32 {
    eprintln!("sst-run trace: {msg}\n\n{TRACE_USAGE}");
    2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usage_mentions_the_canonical_invocation() {
        assert!(TRACE_USAGE.contains("--model"));
        assert!(TRACE_USAGE.contains("--out"));
    }

    #[test]
    fn end_to_end_smoke_trace() {
        // Trace one model on one workload of e3 into a temp file and
        // check the JSON envelope. The Env is passed directly (not via
        // process env vars) so parallel tests cannot race on SST_SCALE.
        let dir = std::env::temp_dir().join(format!("sst-trace-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.json");
        let env = Env {
            scale: sst_workloads::Scale::Smoke,
            seed: 7,
            max_cycles: 200_000_000,
        };
        let code = run_trace(
            &["e3".to_string()],
            &["sst".to_string()],
            &["gzip".to_string()],
            path.to_str().unwrap(),
            &env,
        );
        assert_eq!(code, 0);
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"traceEvents\""));
        assert!(body.contains("\"ph\":\"B\""), "has phase spans");
        assert!(body.contains("process_name"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_experiment_is_rejected() {
        let env = Env {
            scale: sst_workloads::Scale::Smoke,
            seed: 7,
            max_cycles: 1,
        };
        assert_eq!(run_trace(&["zzz".to_string()], &[], &[], "/dev/null", &env), 2);
    }
}
