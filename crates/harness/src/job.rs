//! Job specifications: the unit of scheduled, cached, fault-isolated
//! work. A job is pure — its output is fully determined by its spec plus
//! the [`Env`] — which is what makes content-addressed caching sound.

use sst_mem::MemConfig;
use sst_prng::fnv1a;
use sst_sim::{CmpResult, CmpSystem, CoreModel, RunResult, System};
use sst_traffic::{TrafficResult, TrafficSpec};
use sst_workloads::Workload;

use crate::Env;

/// What a job simulates.
#[derive(Clone, Debug)]
pub enum JobKind {
    /// One `(model, workload)` run on a private memory hierarchy.
    Single {
        /// Core model (custom configurations carry their full config).
        model: CoreModel,
        /// Workload name (`Workload::by_name`).
        workload: String,
        /// Memory hierarchy configuration.
        mem: MemConfig,
    },
    /// An `n`-core CMP throughput run (shared L2 + DRAM channel).
    Cmp {
        /// Core model for every core.
        model: CoreModel,
        /// Workload name, run homogeneously on all cores.
        workload: String,
        /// Core count.
        cores: usize,
        /// Memory hierarchy configuration.
        mem: MemConfig,
    },
    /// An open-loop traffic point: Poisson arrivals of server-kernel
    /// request slices over the CMP, with queueing and tail-latency
    /// accounting (experiment family E14).
    Traffic(TrafficSpec),
    /// One `(model, workload)` run with speculation-taint tracking: the
    /// result is a [`RunResult`] whose counters additionally carry the
    /// `leak_`-prefixed [`sst_uarch::LeakageSummary`] totals (experiment
    /// E13). Models built without taint report no `leak_` counters — an
    /// in-order core has nothing to track.
    Leakage {
        /// Core model (taint-enabled configs carry the flag themselves).
        model: CoreModel,
        /// Workload name (`Workload::by_name`, usually a gadget).
        workload: String,
        /// Memory hierarchy configuration.
        mem: MemConfig,
    },
    /// Panics immediately — exists to exercise the scheduler's fault
    /// isolation (the hidden `xfail` experiment and the harness tests).
    Panic {
        /// The panic payload.
        message: String,
    },
}

/// A named job within an experiment. Names are unique per experiment and
/// are how the fold step addresses results.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Unique-within-the-experiment name, e.g. `"sst/oltp"` or
    /// `"dq32/erp"`.
    pub name: String,
    /// What to simulate.
    pub kind: JobKind,
}

/// A job's result: whichever result type its kind produces.
#[derive(Clone, Debug)]
pub enum JobOutput {
    /// From [`JobKind::Single`].
    Run(RunResult),
    /// From [`JobKind::Cmp`].
    Cmp(CmpResult),
    /// From [`JobKind::Traffic`].
    Traffic(TrafficResult),
}

impl JobOutput {
    /// The single-run result.
    ///
    /// # Panics
    ///
    /// Panics if this is a CMP result.
    pub fn run(&self) -> &RunResult {
        match self {
            JobOutput::Run(r) => r,
            _ => panic!("expected a single-run result"),
        }
    }

    /// The CMP result.
    ///
    /// # Panics
    ///
    /// Panics if this is not a CMP result.
    pub fn cmp(&self) -> &CmpResult {
        match self {
            JobOutput::Cmp(r) => r,
            _ => panic!("expected a CMP result"),
        }
    }

    /// The traffic result.
    ///
    /// # Panics
    ///
    /// Panics if this is not a traffic result.
    pub fn traffic(&self) -> &TrafficResult {
        match self {
            JobOutput::Traffic(r) => r,
            _ => panic!("expected a traffic result"),
        }
    }
}

impl JobSpec {
    /// A single run with the default memory configuration.
    pub fn single(name: impl Into<String>, model: CoreModel, workload: &str) -> JobSpec {
        JobSpec::single_mem(name, model, workload, MemConfig::default())
    }

    /// A single run with an explicit memory configuration.
    pub fn single_mem(
        name: impl Into<String>,
        model: CoreModel,
        workload: &str,
        mem: MemConfig,
    ) -> JobSpec {
        JobSpec {
            name: name.into(),
            kind: JobKind::Single {
                model,
                workload: workload.to_string(),
                mem,
            },
        }
    }

    /// An open-loop traffic point.
    pub fn traffic(name: impl Into<String>, spec: TrafficSpec) -> JobSpec {
        JobSpec {
            name: name.into(),
            kind: JobKind::Traffic(spec),
        }
    }

    /// A taint-tracked leakage run with the default memory configuration.
    pub fn leakage(name: impl Into<String>, model: CoreModel, workload: &str) -> JobSpec {
        JobSpec {
            name: name.into(),
            kind: JobKind::Leakage {
                model,
                workload: workload.to_string(),
                mem: MemConfig::default(),
            },
        }
    }

    /// A CMP throughput run.
    pub fn cmp(name: impl Into<String>, model: CoreModel, workload: &str, cores: usize) -> JobSpec {
        JobSpec {
            name: name.into(),
            kind: JobKind::Cmp {
                model,
                workload: workload.to_string(),
                cores,
                mem: MemConfig::default(),
            },
        }
    }

    /// The canonical cache key: a readable string covering everything
    /// that determines the job's output — experiment id, job kind, full
    /// model and memory configuration (via their stable `Debug` forms),
    /// workload, seed, scale, cycle budget, and the crate version (so new
    /// releases never serve stale numbers).
    pub fn cache_key(&self, exp_id: &str, env: &Env) -> String {
        let mut key = format!(
            "v={};exp={};job={};scale={};seed={};max_cycles={};",
            env!("CARGO_PKG_VERSION"),
            exp_id,
            self.name,
            env.scale_token(),
            env.seed,
            env.max_cycles,
        );
        match &self.kind {
            JobKind::Single { model, workload, mem } => {
                key.push_str(&format!(
                    "kind=single;model={model:?};workload={workload};mem={mem:?}"
                ));
            }
            JobKind::Cmp {
                model,
                workload,
                cores,
                mem,
            } => {
                key.push_str(&format!(
                    "kind=cmp;model={model:?};workload={workload};cores={cores};mem={mem:?}"
                ));
            }
            JobKind::Traffic(spec) => {
                // The spec's stable Debug form carries every sweep
                // parameter (load, queue bounds, policy, quantum, ...).
                key.push_str(&format!("kind=traffic;spec={spec:?}"));
            }
            JobKind::Leakage { model, workload, mem } => {
                key.push_str(&format!(
                    "kind=leakage;model={model:?};workload={workload};mem={mem:?}"
                ));
            }
            JobKind::Panic { message } => {
                key.push_str(&format!("kind=panic;message={message}"));
            }
        }
        key
    }

    /// FNV-1a hash of the cache key — the cache file name.
    pub fn cache_hash(&self, exp_id: &str, env: &Env) -> u64 {
        fnv1a(self.cache_key(exp_id, env).as_bytes())
    }

    /// Runs the job to completion.
    ///
    /// `threads` is the CMP simulation thread count — a pure wall-clock
    /// knob (the parallel driver is byte-identical to the serial one),
    /// which is why it is a call argument and not part of the spec or
    /// the cache key. Single runs ignore it.
    ///
    /// Returns `Err` with a descriptive message for *detected* failures
    /// (a run exceeding the cycle budget, a co-simulation divergence).
    /// Model bugs that panic are *not* caught here — the scheduler wraps
    /// this call in `catch_unwind`.
    pub fn execute(&self, env: &Env, threads: usize) -> Result<JobOutput, String> {
        match &self.kind {
            JobKind::Single { model, workload, mem } => {
                let w = Workload::by_name(workload, env.scale, env.seed)
                    .unwrap_or_else(|| panic!("unknown workload {workload:?}"));
                System::with_mem(model.clone(), &w, mem)
                    .without_cosim()
                    .run_checked(env.max_cycles)
                    .map(JobOutput::Run)
                    .map_err(|e| e.to_string())
            }
            JobKind::Cmp {
                model,
                workload,
                cores,
                mem,
            } => {
                // CmpSystem::run panics on a budget overrun; the
                // scheduler's catch_unwind turns that into a failure
                // record like any other panic.
                let r = CmpSystem::homogeneous(
                    model.clone(),
                    workload,
                    env.scale,
                    env.seed,
                    *cores,
                    mem,
                )
                .with_threads(threads)
                .run(env.max_cycles);
                Ok(JobOutput::Cmp(r))
            }
            JobKind::Traffic(spec) => {
                // Like Cmp, a budget overrun panics inside the service
                // driver and surfaces through the scheduler's
                // catch_unwind as a failed job.
                let r = sst_traffic::run_traffic(spec, env.scale, env.seed, threads, env.max_cycles);
                Ok(JobOutput::Traffic(r))
            }
            JobKind::Leakage { model, workload, mem } => {
                let w = Workload::by_name(workload, env.scale, env.seed)
                    .unwrap_or_else(|| panic!("unknown workload {workload:?}"));
                System::with_mem(model.clone(), &w, mem)
                    .without_cosim()
                    .run_with_leakage(env.max_cycles)
                    .map(|(mut r, leak)| {
                        if let Some(l) = leak {
                            r.counters
                                .extend(l.counters().into_iter().map(|(n, v)| (n.to_string(), v)));
                        }
                        JobOutput::Run(r)
                    })
                    .map_err(|e| e.to_string())
            }
            JobKind::Panic { message } => panic!("{message}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> Env {
        Env {
            scale: sst_workloads::Scale::Smoke,
            seed: 7,
            max_cycles: 100_000_000,
        }
    }

    #[test]
    fn cache_key_is_stable_and_sensitive() {
        let j = JobSpec::single("sst/oltp", CoreModel::Sst, "oltp");
        let k1 = j.cache_key("e4", &env());
        let k2 = j.cache_key("e4", &env());
        assert_eq!(k1, k2, "same spec, same key");
        assert_eq!(j.cache_hash("e4", &env()), j.cache_hash("e4", &env()));

        // Any parameter change must move the hash.
        let mut other = env();
        other.seed = 8;
        assert_ne!(j.cache_hash("e4", &env()), j.cache_hash("e4", &other));
        assert_ne!(j.cache_hash("e4", &env()), j.cache_hash("e3", &env()));
        let j2 = JobSpec::single("sst/oltp", CoreModel::Sst, "erp");
        assert_ne!(j.cache_hash("e4", &env()), j2.cache_hash("e4", &env()));
        let j3 = JobSpec::single("sst/oltp", CoreModel::Scout, "oltp");
        assert_ne!(j.cache_hash("e4", &env()), j3.cache_hash("e4", &env()));
    }

    #[test]
    fn config_contents_reach_the_key() {
        use sst_core::SstConfig;
        let a = JobSpec::single(
            "x",
            CoreModel::CustomSst(SstConfig {
                dq_entries: 16,
                ..SstConfig::sst()
            }),
            "gups",
        );
        let b = JobSpec::single(
            "x",
            CoreModel::CustomSst(SstConfig {
                dq_entries: 32,
                ..SstConfig::sst()
            }),
            "gups",
        );
        assert_ne!(a.cache_hash("e6", &env()), b.cache_hash("e6", &env()));
    }

    #[test]
    fn cmp_output_is_identical_for_any_thread_count() {
        // `threads` is a wall-clock knob: the same spec must produce the
        // same CmpResult at 1 and 4 simulation threads (which is why it
        // is not in the cache key).
        let j = JobSpec::cmp("sst/x4", CoreModel::Sst, "erp", 4);
        let serial = j.execute(&env(), 1).expect("runs");
        let parallel = j.execute(&env(), 4).expect("runs");
        assert_eq!(serial.cmp(), parallel.cmp());
    }

    #[test]
    fn single_executes_and_reports_budget_overruns() {
        let j = JobSpec::single("io/gzip", CoreModel::InOrder, "gzip");
        let out = j.execute(&env(), 1).expect("runs");
        assert!(out.run().insts > 0);

        let tiny = Env {
            max_cycles: 50,
            ..env()
        };
        let err = j.execute(&tiny, 1).unwrap_err();
        assert!(err.contains("did not halt"), "{err}");
    }
}
