//! The experiment registry: every reproduced table/figure declares its
//! jobs and a fold that assembles the published tables from job results.

use std::collections::BTreeMap;

use sst_sim::report::Table;
use sst_sim::{CmpResult, RunResult};
use sst_traffic::TrafficResult;

use crate::experiments;
use crate::job::{JobOutput, JobSpec};
use crate::Env;

/// One element of a fold's output stream.
pub enum FoldItem {
    /// A named table, printed as markdown and persisted as
    /// `results/<name>.csv`.
    Table(String, Table),
    /// A free-form line (shape checks, headline numbers).
    Note(String),
}

/// What a fold produces: an ordered stream of tables and notes.
#[derive(Default)]
pub struct Fold {
    /// Tables and notes, emitted in declaration order.
    pub items: Vec<FoldItem>,
}

impl Fold {
    /// Appends a table.
    pub fn table(&mut self, name: impl Into<String>, t: Table) {
        self.items.push(FoldItem::Table(name.into(), t));
    }

    /// Appends a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.items.push(FoldItem::Note(s.into()));
    }

    /// The tables alone, in order.
    pub fn tables(&self) -> impl Iterator<Item = (&str, &Table)> {
        self.items.iter().filter_map(|i| match i {
            FoldItem::Table(n, t) => Some((n.as_str(), t)),
            FoldItem::Note(_) => None,
        })
    }
}

/// Completed job results, addressed by job name. Handed to fold steps
/// once every job of the experiment has succeeded.
pub struct RunCtx<'a> {
    results: &'a BTreeMap<String, JobOutput>,
}

impl<'a> RunCtx<'a> {
    /// Wraps a result map.
    pub fn new(results: &'a BTreeMap<String, JobOutput>) -> RunCtx<'a> {
        RunCtx { results }
    }

    /// The single-run result of job `name`.
    ///
    /// # Panics
    ///
    /// Panics if the job does not exist or is not a single run — both are
    /// registry-definition bugs, not runtime conditions.
    pub fn run(&self, name: &str) -> &RunResult {
        self.results
            .get(name)
            .unwrap_or_else(|| panic!("no job named {name:?}"))
            .run()
    }

    /// The CMP result of job `name`.
    ///
    /// # Panics
    ///
    /// Panics if the job does not exist or is not a CMP run.
    pub fn cmp(&self, name: &str) -> &CmpResult {
        self.results
            .get(name)
            .unwrap_or_else(|| panic!("no job named {name:?}"))
            .cmp()
    }

    /// The traffic result of job `name`.
    ///
    /// # Panics
    ///
    /// Panics if the job does not exist or is not a traffic run.
    pub fn traffic(&self, name: &str) -> &TrafficResult {
        self.results
            .get(name)
            .unwrap_or_else(|| panic!("no job named {name:?}"))
            .traffic()
    }
}

/// One experiment: identity, job declaration, and fold.
pub struct Experiment {
    /// Short id (`"e4"`, `"a1"`).
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// Family the experiment belongs to — groups `sst-run --list` output
    /// (`"paper"` for E1-E13, `"ablation"` for A1-A4, `"traffic"` for the
    /// E14 service-level family, `"internal"` for hidden fixtures).
    pub family: &'static str,
    /// What the paper says the result should look like.
    pub paper_note: &'static str,
    /// Excluded from `sst-run all` (the fault-injection experiment).
    pub hidden: bool,
    /// Declares the experiment's jobs for an environment.
    pub jobs: fn(&Env) -> Vec<JobSpec>,
    /// Assembles tables from completed job results.
    pub fold: fn(&Env, &RunCtx) -> Fold,
}

/// Every experiment, in publication order. `hidden` entries are
/// addressable by id but excluded from `all`.
pub fn all() -> Vec<Experiment> {
    experiments::all()
}

/// Resolves a CLI token to an experiment: exact id (case-insensitive) or
/// a legacy binary name (`"e4_vs_ooo"` → `"e4"`).
pub fn find(token: &str) -> Option<Experiment> {
    let token = token.to_ascii_lowercase();
    let id = token.split('_').next().unwrap_or(&token);
    all().into_iter().find(|e| e.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_the_study() {
        let ids: Vec<&str> = all().iter().map(|e| e.id).collect();
        for want in [
            "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13",
            "e14", "a1", "a2", "a3", "a4",
        ] {
            assert!(ids.contains(&want), "missing {want}");
        }
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len(), "duplicate experiment ids");
    }

    #[test]
    fn find_accepts_ids_and_legacy_names() {
        assert_eq!(find("e4").unwrap().id, "e4");
        assert_eq!(find("E4").unwrap().id, "e4");
        assert_eq!(find("e4_vs_ooo").unwrap().id, "e4");
        assert_eq!(find("a3_confidence_gate").unwrap().id, "a3");
        assert_eq!(find("e10_cmp_throughput").unwrap().id, "e10");
        assert!(find("zzz").is_none());
    }

    #[test]
    fn job_names_are_unique_within_each_experiment() {
        let env = Env {
            scale: sst_workloads::Scale::Smoke,
            seed: 1,
            max_cycles: 1,
        };
        for e in all() {
            let jobs = (e.jobs)(&env);
            let mut names: Vec<&str> = jobs.iter().map(|j| j.name.as_str()).collect();
            let n = names.len();
            names.sort();
            names.dedup();
            assert_eq!(names.len(), n, "duplicate job names in {}", e.id);
        }
    }

    #[test]
    fn hidden_experiments_exist_but_do_not_leak() {
        let xfail = all().into_iter().find(|e| e.id == "xfail").expect("xfail");
        assert!(xfail.hidden);
    }

    #[test]
    fn every_experiment_declares_a_known_family() {
        for e in all() {
            assert!(
                ["paper", "ablation", "traffic", "internal"].contains(&e.family),
                "{}: unknown family {:?}",
                e.id,
                e.family
            );
            assert_eq!(e.family == "internal", e.hidden, "{}", e.id);
        }
    }
}
