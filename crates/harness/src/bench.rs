//! `sst-run bench`: the hot-loop throughput benchmark.
//!
//! Times a fixed matrix of single-core simulations (no co-simulation, no
//! cache, one thread) and reports simulated **Minst/s** — millions of
//! committed instructions per wall-clock second — per (model, workload)
//! pair plus the geometric mean. The numbers measure the *simulator*,
//! not the simulated machines: a regression here means `tick()` or the
//! memory walk got slower, long before anyone notices on a full sweep.
//!
//! Each pair gets one unmeasured warm-up run (page faults, allocator
//! growth, icache) followed by `--repeats` timed runs; the reported wall
//! time is the median, which shrugs off one noisy neighbour on a shared
//! runner. A CMP section times a 16-core SST chip at `--threads` 1 and 4
//! and reports the parallel speedup alongside the host's available
//! parallelism (a 1-CPU host will honestly report ~1×).
//!
//! The result is written as JSON (default `BENCH_hotloop.json`, intended
//! to live at the repo root) so CI can compare a fresh run against the
//! committed baseline with `--check`:
//!
//! * fresh geomean < 90% of baseline → loud warning, exit 0 (soft gate —
//!   shared CI runners are noisy);
//! * fresh geomean < 80% of baseline → exit 1 (a real regression).
//!
//! The `--check` geomean covers the single-core matrix only; the CMP
//! pairs are informational (their wall time depends on host parallelism,
//! which CI runners do not guarantee).

use std::collections::BTreeMap;
use std::time::Instant;

use crate::json::JVal;
use sst_mem::MemConfig;
use sst_obs::{HostTimes, Stage};
use sst_sim::{geomean, CmpSystem, CoreModel, System};
use sst_workloads::{Scale, Workload};

/// Cycle budget per pair; bench pairs are small, this is wedge insurance.
const BENCH_MAX_CYCLES: u64 = 2_000_000_000;

/// The default matrix: every pipeline family the study compares, over a
/// compute-bound, a memory-bound, and a commercial-style workload.
const DEFAULT_MODELS: &[&str] = &["io", "scout", "ea", "sst", "o128"];
const DEFAULT_WORKLOADS: &[&str] = &["gzip", "erp", "oltp"];

/// Ratio thresholds for `--check` (fresh / baseline geomean).
const WARN_BELOW: f64 = 0.90;
const FAIL_BELOW: f64 = 0.80;

/// The CMP section: a 16-core SST chip on the memory-bound workload,
/// serial vs. 4 simulation threads.
const CMP_CORES: usize = 16;
const CMP_WORKLOAD: &str = "erp";
const CMP_THREADS: [usize; 2] = [1, 4];

/// The sampling benchmark (`--sampling`): a ~10M-instruction OLTP run
/// (oltp averages ~63.5 insts/txn, so 160k transactions), measured both
/// fully detailed and SMARTS-sampled.
const SAMPLING_TXNS: i64 = 160_000;
/// Sampled CPI must land within this fraction of the fully detailed CPI.
const SAMPLING_MAX_REL_ERR: f64 = 0.03;
/// `--check` floor on sampled-mode effective throughput.
const SAMPLING_MIN_MINST_PER_S: f64 = 50.0;

struct PairResult {
    model: String,
    workload: String,
    insts: u64,
    cycles: u64,
    wall_ms: f64,
    minst_per_s: f64,
}

struct CmpPairResult {
    model: String,
    workload: String,
    cores: usize,
    threads: usize,
    insts: u64,
    cycles: u64,
    wall_ms: f64,
    minst_per_s: f64,
}

fn parse_model(tok: &str) -> Option<CoreModel> {
    Some(match tok {
        "io" | "in-order" | "inorder" => CoreModel::InOrder,
        "scout" => CoreModel::Scout,
        "ea" | "execute-ahead" => CoreModel::ExecuteAhead,
        "sst" => CoreModel::Sst,
        "o32" | "ooo-32" => CoreModel::Ooo32,
        "o64" | "ooo-64" => CoreModel::Ooo64,
        "o128" | "ooo-128" => CoreModel::Ooo128,
        _ => return None,
    })
}

/// Options parsed from `sst-run bench ...` arguments.
struct BenchOpts {
    scale: Scale,
    seed: u64,
    models: Vec<String>,
    workloads: Vec<String>,
    out: String,
    out_set: bool,
    check: bool,
    fast_forward: bool,
    repeats: usize,
    cmp: bool,
    sampling: bool,
}

impl BenchOpts {
    fn defaults() -> BenchOpts {
        BenchOpts {
            scale: Scale::Smoke,
            seed: 12345,
            models: DEFAULT_MODELS.iter().map(|s| s.to_string()).collect(),
            workloads: DEFAULT_WORKLOADS.iter().map(|s| s.to_string()).collect(),
            out: "BENCH_hotloop.json".to_string(),
            out_set: false,
            check: false,
            fast_forward: true,
            repeats: 3,
            cmp: true,
            sampling: false,
        }
    }
}

const BENCH_USAGE: &str = "\
usage: sst-run bench [options]

Times the simulation hot loop (single thread, cosim off) and reports
simulated Minst/s per (model, workload) pair plus the geometric mean.

options:
  --out PATH         where to write the JSON report
                     (default: BENCH_hotloop.json)
  --check            compare against the existing report at --out PATH:
                     warn below 90% of its geomean, fail below 80%
  --scale S          smoke|full (default smoke)
  --seed N           workload seed (default 12345)
  --models a,b,..    io scout ea sst o32 o64 o128 (default io,scout,ea,sst,o128)
  --workloads a,b,.. any study workload (default gzip,erp,oltp)
  --repeats N        timed runs per pair after one warm-up; the median
                     is reported (default 3)
  --no-cmp           skip the 16-core CMP pairs (threads 1 vs 4)
  --no-fast-forward  tick every cycle (measures the unskipped loop)
  --sampling         run the SMARTS sampling benchmark instead: a ~10M
                     instruction oltp run, fully detailed vs sampled.
                     Fails if the sampled CPI is off by more than 3%;
                     with --check also fails below 50 Minst/s effective.
                     Writes BENCH_sampling.json unless --out is given
  --help             this text";

/// Entry point for `sst-run bench <args>`. Returns the process exit code.
pub fn bench_main<I: Iterator<Item = String>>(mut args: I) -> i32 {
    let mut o = BenchOpts::defaults();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--help" | "-h" => {
                println!("{BENCH_USAGE}");
                return 0;
            }
            "--check" => o.check = true,
            "--no-fast-forward" => o.fast_forward = false,
            "--no-cmp" => o.cmp = false,
            "--sampling" => o.sampling = true,
            "--repeats" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => o.repeats = n,
                _ => return bench_arg_err("--repeats needs a positive integer"),
            },
            "--out" => match args.next() {
                Some(p) => {
                    o.out = p;
                    o.out_set = true;
                }
                None => return bench_arg_err("--out needs a path"),
            },
            "--scale" => match args.next().as_deref() {
                Some("smoke") => o.scale = Scale::Smoke,
                Some("full") => o.scale = Scale::Full,
                _ => return bench_arg_err("--scale needs smoke|full"),
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => o.seed = n,
                None => return bench_arg_err("--seed needs a u64"),
            },
            "--models" => match args.next() {
                Some(v) => o.models = v.split(',').map(|s| s.to_string()).collect(),
                None => return bench_arg_err("--models needs a list"),
            },
            "--workloads" => match args.next() {
                Some(v) => o.workloads = v.split(',').map(|s| s.to_string()).collect(),
                None => return bench_arg_err("--workloads needs a list"),
            },
            other => return bench_arg_err(&format!("unknown option {other:?}")),
        }
    }
    if o.sampling {
        if !o.out_set {
            o.out = "BENCH_sampling.json".to_string();
        }
        return run_sampling_bench(&o);
    }
    run_bench(&o)
}

fn bench_arg_err(msg: &str) -> i32 {
    eprintln!("sst-run bench: {msg}\n\n{BENCH_USAGE}");
    2
}

fn run_bench(o: &BenchOpts) -> i32 {
    let mut models = Vec::new();
    for tok in &o.models {
        match parse_model(tok) {
            Some(m) => models.push(m),
            None => return bench_arg_err(&format!("unknown model {tok:?}")),
        }
    }

    // Read the baseline geomean *before* running, so `--check` against
    // the file we are about to overwrite still compares old vs new.
    let baseline = if o.check {
        match read_baseline_geomean(&o.out) {
            Some(g) => Some(g),
            None => {
                eprintln!(
                    "sst-run bench: --check: no readable baseline at {} — treating as first run",
                    o.out
                );
                None
            }
        }
    } else {
        None
    };

    let host_cpus = host_cpus();
    println!(
        "sst-run bench: {} pair(s), scale={}, seed={}, fast-forward {}, \
         warm-up + median of {}, host cpus {}",
        models.len() * o.workloads.len(),
        match o.scale {
            Scale::Smoke => "smoke",
            Scale::Full => "full",
        },
        o.seed,
        if o.fast_forward { "on" } else { "off" },
        o.repeats,
        host_cpus,
    );

    let mut pairs: Vec<PairResult> = Vec::new();
    // Host-side self-profile: one additional instrumented run per pair,
    // stage times merged per model. Kept out of the timed runs — the
    // scoped timers cost a few percent, and Minst/s must measure the
    // uninstrumented loop.
    let mut prof_by_model: BTreeMap<String, HostTimes> = BTreeMap::new();
    for model in &models {
        for wname in &o.workloads {
            if Workload::by_name(wname, o.scale, o.seed).is_none() {
                return bench_arg_err(&format!("unknown workload {wname:?}"));
            }
            let label = model.label();
            let run_once = || {
                let w = Workload::by_name(wname, o.scale, o.seed).expect("checked above");
                let mut sys = System::new(model.clone(), &w).without_cosim();
                if !o.fast_forward {
                    sys = sys.without_fast_forward();
                }
                let started = Instant::now();
                let r = sys.run_checked(BENCH_MAX_CYCLES).map_err(|e| e.to_string())?;
                Ok((r.insts, r.cycles, started.elapsed().as_secs_f64()))
            };
            let (insts, cycles, wall) = match timed_median(o.repeats, run_once) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("sst-run bench: {label}/{wname}: {e}");
                    return 1;
                }
            };
            let minst_per_s = insts as f64 / 1e6 / wall.max(1e-9);
            println!(
                "  {label:<8} {wname:<8} {:>9} insts {:>10} cycles {:>8.1} ms {:>8.2} Minst/s",
                insts,
                cycles,
                wall * 1e3,
                minst_per_s,
            );
            pairs.push(PairResult {
                model: label.clone(),
                workload: wname.clone(),
                insts,
                cycles,
                wall_ms: wall * 1e3,
                minst_per_s,
            });

            let w = Workload::by_name(wname, o.scale, o.seed).expect("checked above");
            let mut sys = System::new(model.clone(), &w).without_cosim().with_host_prof();
            if !o.fast_forward {
                sys = sys.without_fast_forward();
            }
            match sys.run_with_profile(BENCH_MAX_CYCLES) {
                Ok((_, Some(times))) => {
                    prof_by_model.entry(label).or_insert_with(HostTimes::new).merge(&times);
                }
                Ok((_, None)) => {}
                Err(e) => {
                    eprintln!("sst-run bench: {label}/{wname} (profiled): {e}");
                    return 1;
                }
            }
        }
    }

    let g = geomean(&pairs.iter().map(|p| p.minst_per_s).collect::<Vec<_>>());
    println!("geomean: {g:.2} Minst/s");
    print_host_profile(&prof_by_model);

    let cmp_pairs = if o.cmp {
        match run_cmp_bench(o) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("sst-run bench: cmp: {e}");
                return 1;
            }
        }
    } else {
        Vec::new()
    };

    if let Err(e) = std::fs::write(
        &o.out,
        render_report(o, &pairs, &cmp_pairs, &prof_by_model, g, host_cpus),
    ) {
        eprintln!("sst-run bench: cannot write {}: {e}", o.out);
        return 1;
    }
    println!("(report written to {})", o.out);

    if let Some(base) = baseline {
        let ratio = g / base.max(1e-12);
        println!(
            "check: fresh {g:.2} vs baseline {base:.2} Minst/s ({:+.1}%)",
            (ratio - 1.0) * 100.0
        );
        if ratio < FAIL_BELOW {
            eprintln!(
                "sst-run bench: FAIL — hot loop is {:.0}% of baseline (< {:.0}%)",
                ratio * 100.0,
                FAIL_BELOW * 100.0
            );
            return 1;
        }
        if ratio < WARN_BELOW {
            eprintln!(
                "sst-run bench: WARNING — hot loop is {:.0}% of baseline (< {:.0}%); \
                 investigate before merging",
                ratio * 100.0,
                WARN_BELOW * 100.0
            );
        }
    }
    0
}

/// The host's available parallelism (1 when unknown). Recorded in the
/// report so a ~1× CMP speedup on a 1-CPU runner reads as expected, not
/// as a regression.
fn host_cpus() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// One unmeasured warm-up run, then `repeats` timed runs; returns the
/// (insts, cycles, wall-seconds) triple of the run with the median wall
/// time. The simulations are deterministic, so insts and cycles are
/// identical across runs — only the wall time varies.
fn timed_median<F>(repeats: usize, run_once: F) -> Result<(u64, u64, f64), String>
where
    F: Fn() -> Result<(u64, u64, f64), String>,
{
    run_once()?; // warm-up: faults the pages, grows the allocator
    let mut timed = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        timed.push(run_once()?);
    }
    timed.sort_by(|a, b| a.2.total_cmp(&b.2));
    Ok(timed[timed.len() / 2])
}

/// Times the 16-core SST chip on the memory-bound workload at each entry
/// of [`CMP_THREADS`], printing the thread-scaling speedup. The results
/// are byte-identical across thread counts (the equivalence suite proves
/// it), so the CMP rows differ only in wall time.
fn run_cmp_bench(o: &BenchOpts) -> Result<Vec<CmpPairResult>, String> {
    let model = CoreModel::Sst;
    let label = model.label();
    let mut out: Vec<CmpPairResult> = Vec::new();
    for threads in CMP_THREADS {
        let run_once = || {
            let sys = CmpSystem::homogeneous(
                model.clone(),
                CMP_WORKLOAD,
                o.scale,
                o.seed,
                CMP_CORES,
                &MemConfig::default(),
            )
            .with_threads(threads);
            let started = Instant::now();
            let r = sys.run(BENCH_MAX_CYCLES);
            let insts: u64 = r.per_core.iter().map(|&(_, i)| i).sum();
            Ok((insts, r.cycles, started.elapsed().as_secs_f64()))
        };
        let (insts, cycles, wall) = timed_median(o.repeats, run_once)?;
        let minst_per_s = insts as f64 / 1e6 / wall.max(1e-9);
        println!(
            "  {label:<8} {CMP_WORKLOAD}x{CMP_CORES} t={threads} {insts:>9} insts \
             {cycles:>10} cycles {:>8.1} ms {minst_per_s:>8.2} Minst/s",
            wall * 1e3,
        );
        out.push(CmpPairResult {
            model: label.clone(),
            workload: CMP_WORKLOAD.to_string(),
            cores: CMP_CORES,
            threads,
            insts,
            cycles,
            wall_ms: wall * 1e3,
            minst_per_s,
        });
    }
    if let (Some(serial), Some(parallel)) = (out.first(), out.last()) {
        if serial.threads != parallel.threads {
            let cpus = host_cpus();
            // On a host with fewer CPUs than simulation threads the
            // speedup is honestly ~1x; it is still *recorded* (the
            // report annotates it), but nothing should compare it
            // against a many-core baseline.
            let note = if cpus < parallel.threads {
                " — fewer host cpus than threads, ~1x expected; not compared"
            } else {
                ""
            };
            println!(
                "cmp speedup: {:.2}x at {} thread(s) vs 1 (host cpus: {}){note}",
                serial.wall_ms / parallel.wall_ms.max(1e-9),
                parallel.threads,
                cpus,
            );
        }
    }
    Ok(out)
}

/// `sst-run bench --sampling`: validates SMARTS sampling on a ~10M
/// instruction OLTP run under the SST model.
///
/// Two runs of the same program: fully detailed (every instruction
/// through the timing model) and sampled
/// ([`sst_sim::run_sampled`] — functional skip, functional warming,
/// short detailed intervals). The benchmark reports both CPIs, the
/// relative error, and the sampled run's *effective* throughput (total
/// program instructions over sampled wall time), then gates:
///
/// * accuracy — sampled CPI within [`SAMPLING_MAX_REL_ERR`] of detailed
///   CPI. The simulators are deterministic, so this is enforced
///   unconditionally: exceeding 3% is a modeling bug, not host noise.
/// * throughput — effective rate at least [`SAMPLING_MIN_MINST_PER_S`].
///   Host-dependent, so enforced only under `--check`.
fn run_sampling_bench(o: &BenchOpts) -> i32 {
    let model = CoreModel::Sst;
    // Continuous functional warming: the entire gap between measured
    // intervals runs through the warming path (skip is a single
    // instruction), so cache tags and predictor state track the full
    // reference stream. oltp's working set is far larger than what a
    // short warming window can rebuild — with only burst warming the
    // intervals measure a half-cold hierarchy and overshoot CPI by ~2x.
    let (period, interval) = (2_000_000u64, 20_000u64);
    let scfg = sst_sim::SamplingConfig {
        period,
        interval,
        warm: period - interval - 1,
        ..sst_sim::SamplingConfig::default()
    };
    let make_workload = || sst_workloads::oltp_sized(o.scale, o.seed, 0, SAMPLING_TXNS);
    println!(
        "sst-run bench --sampling: {} on oltp x{} txns, scale={}, seed={}, \
         period {} / interval {} / warm {}, warm-up + median of {}",
        model.label(),
        SAMPLING_TXNS,
        match o.scale {
            Scale::Smoke => "smoke",
            Scale::Full => "full",
        },
        o.seed,
        scfg.period,
        scfg.interval,
        scfg.warm,
        o.repeats,
    );

    // Fully detailed reference: the whole program through the timing
    // model (cosim off — the sampled path has no checker either). The
    // comparison CPI is the *measured* (post-warm-up) region's: sampled
    // intervals all land past the workload's declared warm-up, so
    // including the detailed run's cold start would bias the reference
    // by exactly the region sampling is designed to skip.
    let detailed_once = || {
        let w = make_workload();
        let sys = System::new(model.clone(), &w).without_cosim();
        let started = Instant::now();
        let r = sys.run_checked(BENCH_MAX_CYCLES).map_err(|e| e.to_string())?;
        Ok((
            r.insts - r.warmup_insts,
            r.cycles - r.warmup_cycles,
            started.elapsed().as_secs_f64(),
        ))
    };
    let (meas_insts, meas_cycles, wall_detailed) = match timed_median(o.repeats, detailed_once) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("sst-run bench: sampling (detailed run): {e}");
            return 1;
        }
    };
    let cpi_detailed = meas_cycles as f64 / meas_insts.max(1) as f64;
    println!(
        "  detailed  {meas_insts:>9} measured insts {meas_cycles:>10} cycles {:>8.1} ms  CPI {cpi_detailed:.4}",
        wall_detailed * 1e3,
    );

    // Sampled run: same program, same model. Deterministic, so repeats
    // differ only in wall time; keep the result of the median-wall run.
    let sampled_once = || {
        let w = make_workload();
        let started = Instant::now();
        let r = sst_sim::run_sampled(model.clone(), &w, &scfg).map_err(|e| e.to_string())?;
        Ok((r, started.elapsed().as_secs_f64()))
    };
    let (sampled, wall_sampled) = {
        // One unmeasured warm-up, then `repeats` timed runs; keep the
        // median-wall run (the results themselves are deterministic).
        let runs: Result<Vec<_>, String> =
            (0..=o.repeats).map(|_| sampled_once()).collect();
        match runs {
            Ok(mut rs) => {
                rs.remove(0); // warm-up run, unmeasured
                rs.sort_by(|a, b| a.1.total_cmp(&b.1));
                rs.swap_remove(rs.len() / 2)
            }
            Err(e) => {
                eprintln!("sst-run bench: sampling (sampled run): {e}");
                return 1;
            }
        }
    };
    let cpi_sampled = sampled.cpi;
    let effective = sampled.insts as f64 / 1e6 / wall_sampled.max(1e-9);
    let rel_err = (cpi_sampled - cpi_detailed).abs() / cpi_detailed.max(f64::MIN_POSITIVE);
    println!(
        "  sampled   {:>9} insts ({} intervals, {} detailed) {:>8.1} ms  CPI {cpi_sampled:.4} ± {:.4}",
        sampled.insts,
        sampled.intervals,
        sampled.detailed_insts,
        wall_sampled * 1e3,
        sampled.ci95,
    );
    println!(
        "  effective {effective:.1} Minst/s ({:.1}x over detailed), CPI error {:+.2}%",
        wall_detailed / wall_sampled.max(1e-9),
        (cpi_sampled / cpi_detailed - 1.0) * 100.0,
    );

    let pass_accuracy = rel_err <= SAMPLING_MAX_REL_ERR;
    let pass_throughput = effective >= SAMPLING_MIN_MINST_PER_S;
    let doc = JVal::obj([
        ("version", JVal::str(env!("CARGO_PKG_VERSION"))),
        (
            "scale",
            JVal::str(match o.scale {
                Scale::Smoke => "smoke",
                Scale::Full => "full",
            }),
        ),
        ("seed", JVal::Int(o.seed)),
        ("model", JVal::str(model.label())),
        ("workload", JVal::str("oltp")),
        ("txns", JVal::Int(SAMPLING_TXNS as u64)),
        ("insts", JVal::Int(sampled.insts)),
        ("period", JVal::Int(scfg.period)),
        ("interval", JVal::Int(scfg.interval)),
        ("warm", JVal::Int(scfg.warm)),
        ("intervals", JVal::Int(sampled.intervals as u64)),
        ("detailed_insts", JVal::Int(sampled.detailed_insts)),
        // Post-warm-up (measured) region of the fully detailed run —
        // the region systematic sampling estimates.
        ("cpi_detailed", JVal::Num(cpi_detailed)),
        ("cpi_sampled", JVal::Num(cpi_sampled)),
        ("ci95", JVal::Num(sampled.ci95)),
        ("cpi_rel_err", JVal::Num(rel_err)),
        ("max_cpi_rel_err", JVal::Num(SAMPLING_MAX_REL_ERR)),
        ("wall_ms_detailed", JVal::Num(wall_detailed * 1e3)),
        ("wall_ms_sampled", JVal::Num(wall_sampled * 1e3)),
        ("effective_minst_per_s", JVal::Num(effective)),
        (
            "min_effective_minst_per_s",
            JVal::Num(SAMPLING_MIN_MINST_PER_S),
        ),
        (
            "speedup_over_detailed",
            JVal::Num(wall_detailed / wall_sampled.max(1e-9)),
        ),
        ("pass_accuracy", JVal::Bool(pass_accuracy)),
        ("pass_throughput", JVal::Bool(pass_throughput)),
    ]);
    if let Err(e) = std::fs::write(&o.out, doc.render_pretty()) {
        eprintln!("sst-run bench: cannot write {}: {e}", o.out);
        return 1;
    }
    println!("(report written to {})", o.out);

    if !pass_accuracy {
        eprintln!(
            "sst-run bench: FAIL — sampled CPI off by {:.2}% (> {:.0}%)",
            rel_err * 100.0,
            SAMPLING_MAX_REL_ERR * 100.0
        );
        return 1;
    }
    if o.check && !pass_throughput {
        eprintln!(
            "sst-run bench: FAIL — sampled mode at {effective:.1} Minst/s effective \
             (< {SAMPLING_MIN_MINST_PER_S:.0})",
        );
        return 1;
    }
    0
}

/// Prints the per-model host wall-time breakdown gathered from the
/// profiled runs: where the *simulator* spends its time, per pipeline
/// stage. `mem` (the memory walk) runs inside issue/replay and is shown
/// as an overlapping share of the same total rather than a column that
/// would make the rows sum past 100%.
fn print_host_profile(prof_by_model: &BTreeMap<String, HostTimes>) {
    if prof_by_model.is_empty() {
        return;
    }
    println!("host profile (one instrumented run per pair, share of model wall time):");
    println!(
        "  {:<8} {:>7} {:>7} {:>7} {:>7} {:>7} {:>9} {:>10}",
        "model", "fetch", "decode", "issue", "replay", "other", "mem(ovl)", "total ms"
    );
    for (model, t) in prof_by_model {
        let total = t.total_ns().max(1) as f64;
        let pct = |s: Stage| t.get(s) as f64 * 100.0 / total;
        println!(
            "  {model:<8} {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>8.1}% {:>10.1}",
            pct(Stage::Fetch),
            pct(Stage::Decode),
            pct(Stage::Issue),
            pct(Stage::Replay),
            pct(Stage::Other),
            pct(Stage::MemTick),
            total / 1e6,
        );
    }
}

fn render_report(
    o: &BenchOpts,
    pairs: &[PairResult],
    cmp_pairs: &[CmpPairResult],
    prof_by_model: &BTreeMap<String, HostTimes>,
    g: f64,
    host_cpus: usize,
) -> String {
    let cmp_speedup = match (cmp_pairs.first(), cmp_pairs.last()) {
        (Some(s), Some(p)) if s.threads != p.threads => {
            Some(s.wall_ms / p.wall_ms.max(1e-9))
        }
        _ => None,
    };
    let mut fields = vec![
        ("version".to_string(), JVal::str(env!("CARGO_PKG_VERSION"))),
        (
            "scale".to_string(),
            JVal::str(match o.scale {
                Scale::Smoke => "smoke",
                Scale::Full => "full",
            }),
        ),
        ("seed".to_string(), JVal::Int(o.seed)),
        ("fast_forward".to_string(), JVal::Bool(o.fast_forward)),
        ("repeats".to_string(), JVal::Int(o.repeats as u64)),
        ("host_cpus".to_string(), JVal::Int(host_cpus as u64)),
        (
            "pairs".to_string(),
            JVal::Arr(
                pairs
                    .iter()
                    .map(|p| {
                        JVal::obj([
                            ("model", JVal::str(&p.model)),
                            ("workload", JVal::str(&p.workload)),
                            ("insts", JVal::Int(p.insts)),
                            ("cycles", JVal::Int(p.cycles)),
                            ("wall_ms", JVal::Num(p.wall_ms)),
                            ("minst_per_s", JVal::Num(p.minst_per_s)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "cmp_pairs".to_string(),
            JVal::Arr(
                cmp_pairs
                    .iter()
                    .map(|p| {
                        JVal::obj([
                            ("model", JVal::str(&p.model)),
                            ("workload", JVal::str(&p.workload)),
                            ("cores", JVal::Int(p.cores as u64)),
                            ("threads", JVal::Int(p.threads as u64)),
                            ("insts", JVal::Int(p.insts)),
                            ("cycles", JVal::Int(p.cycles)),
                            ("wall_ms", JVal::Num(p.wall_ms)),
                            ("minst_per_s", JVal::Num(p.minst_per_s)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ];
    if let Some(s) = cmp_speedup {
        fields.push(("cmp_parallel_speedup".to_string(), JVal::Num(s)));
        // Recorded even on hosts with fewer CPUs than simulation
        // threads; this flag tells readers whether the number is a
        // meaningful scaling measurement (enough host parallelism) or an
        // honest ~1x from an oversubscribed host that must not be
        // compared against a baseline.
        let max_threads = cmp_pairs.iter().map(|p| p.threads).max().unwrap_or(1);
        fields.push((
            "cmp_speedup_expected".to_string(),
            JVal::Bool(host_cpus >= max_threads),
        ));
    }
    if !prof_by_model.is_empty() {
        let per_model: Vec<(String, JVal)> = prof_by_model
            .iter()
            .map(|(model, t)| {
                let mut rows: Vec<(String, JVal)> = t
                    .rows()
                    .into_iter()
                    .map(|(stage, ns)| (format!("{stage}_ns"), JVal::Int(ns)))
                    .collect();
                rows.push(("total_ns".to_string(), JVal::Int(t.total_ns())));
                (model.clone(), JVal::Obj(rows))
            })
            .collect();
        fields.push(("host_profile".to_string(), JVal::Obj(per_model)));
    }
    fields.push(("geomean_minst_per_s".to_string(), JVal::Num(g)));
    JVal::Obj(fields).render_pretty()
}

/// Extracts `geomean_minst_per_s` from a previous report. A string scan,
/// not a parser: the file is machine-written by `render_report`, and the
/// harness intentionally has no JSON reader.
fn read_baseline_geomean(path: &str) -> Option<f64> {
    let body = std::fs::read_to_string(path).ok()?;
    let tail = body.split("\"geomean_minst_per_s\"").nth(1)?;
    let val = tail.split(':').nth(1)?;
    val.trim().trim_end_matches(['}', ',', '\n', ' ']).parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_tokens_parse() {
        for t in ["io", "scout", "ea", "sst", "o32", "o64", "o128"] {
            assert!(parse_model(t).is_some(), "{t}");
        }
        assert!(parse_model("warp-drive").is_none());
    }

    #[test]
    fn baseline_scan_reads_what_render_writes() {
        let o = BenchOpts::defaults();
        let pairs = vec![PairResult {
            model: "sst".into(),
            workload: "gzip".into(),
            insts: 1_000_000,
            cycles: 2_000_000,
            wall_ms: 250.0,
            minst_per_s: 4.0,
        }];
        let body = render_report(&o, &pairs, &[], &BTreeMap::new(), 4.0, 1);
        let dir = std::env::temp_dir().join(format!("sst-bench-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_hotloop.json");
        std::fs::write(&path, body).unwrap();
        let g = read_baseline_geomean(path.to_str().unwrap()).expect("scan");
        assert!((g - 4.0).abs() < 1e-9, "{g}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_baseline_is_none() {
        assert_eq!(read_baseline_geomean("/no/such/file.json"), None);
    }

    #[test]
    fn timed_median_warms_up_then_takes_the_median() {
        // Walls: warm-up 100.0 (discarded), then 9.0, 1.0, 5.0 → median 5.0.
        let walls = std::cell::Cell::new(0usize);
        let sched = [100.0, 9.0, 1.0, 5.0];
        let (insts, cycles, wall) = timed_median(3, || {
            let i = walls.get();
            walls.set(i + 1);
            Ok((42, 84, sched[i]))
        })
        .unwrap();
        assert_eq!((insts, cycles), (42, 84));
        assert!((wall - 5.0).abs() < 1e-12, "{wall}");
        assert_eq!(walls.get(), 4, "one warm-up + three timed runs");
    }

    #[test]
    fn timed_median_propagates_failures() {
        let err = timed_median(2, || Err::<(u64, u64, f64), _>("boom".to_string()));
        assert_eq!(err.unwrap_err(), "boom");
    }
}
