//! `sst-run bench`: the hot-loop throughput benchmark.
//!
//! Times a fixed matrix of single-core simulations (no co-simulation, no
//! cache, one thread) and reports simulated **Minst/s** — millions of
//! committed instructions per wall-clock second — per (model, workload)
//! pair plus the geometric mean. The numbers measure the *simulator*,
//! not the simulated machines: a regression here means `tick()` or the
//! memory walk got slower, long before anyone notices on a full sweep.
//!
//! The result is written as JSON (default `BENCH_hotloop.json`, intended
//! to live at the repo root) so CI can compare a fresh run against the
//! committed baseline with `--check`:
//!
//! * fresh geomean < 90% of baseline → loud warning, exit 0 (soft gate —
//!   shared CI runners are noisy);
//! * fresh geomean < 75% of baseline → exit 1 (a real regression).

use std::time::Instant;

use crate::json::JVal;
use sst_sim::{geomean, CoreModel, System};
use sst_workloads::{Scale, Workload};

/// Cycle budget per pair; bench pairs are small, this is wedge insurance.
const BENCH_MAX_CYCLES: u64 = 2_000_000_000;

/// The default matrix: every pipeline family the study compares, over a
/// compute-bound, a memory-bound, and a commercial-style workload.
const DEFAULT_MODELS: &[&str] = &["io", "scout", "ea", "sst", "o128"];
const DEFAULT_WORKLOADS: &[&str] = &["gzip", "erp", "oltp"];

/// Ratio thresholds for `--check` (fresh / baseline geomean).
const WARN_BELOW: f64 = 0.90;
const FAIL_BELOW: f64 = 0.75;

struct PairResult {
    model: String,
    workload: String,
    insts: u64,
    cycles: u64,
    wall_ms: f64,
    minst_per_s: f64,
}

fn parse_model(tok: &str) -> Option<CoreModel> {
    Some(match tok {
        "io" | "in-order" | "inorder" => CoreModel::InOrder,
        "scout" => CoreModel::Scout,
        "ea" | "execute-ahead" => CoreModel::ExecuteAhead,
        "sst" => CoreModel::Sst,
        "o32" | "ooo-32" => CoreModel::Ooo32,
        "o64" | "ooo-64" => CoreModel::Ooo64,
        "o128" | "ooo-128" => CoreModel::Ooo128,
        _ => return None,
    })
}

/// Options parsed from `sst-run bench ...` arguments.
struct BenchOpts {
    scale: Scale,
    seed: u64,
    models: Vec<String>,
    workloads: Vec<String>,
    out: String,
    check: bool,
    fast_forward: bool,
}

impl BenchOpts {
    fn defaults() -> BenchOpts {
        BenchOpts {
            scale: Scale::Smoke,
            seed: 12345,
            models: DEFAULT_MODELS.iter().map(|s| s.to_string()).collect(),
            workloads: DEFAULT_WORKLOADS.iter().map(|s| s.to_string()).collect(),
            out: "BENCH_hotloop.json".to_string(),
            check: false,
            fast_forward: true,
        }
    }
}

const BENCH_USAGE: &str = "\
usage: sst-run bench [options]

Times the simulation hot loop (single thread, cosim off) and reports
simulated Minst/s per (model, workload) pair plus the geometric mean.

options:
  --out PATH         where to write the JSON report
                     (default: BENCH_hotloop.json)
  --check            compare against the existing report at --out PATH:
                     warn below 90% of its geomean, fail below 75%
  --scale S          smoke|full (default smoke)
  --seed N           workload seed (default 12345)
  --models a,b,..    io scout ea sst o32 o64 o128 (default io,scout,ea,sst,o128)
  --workloads a,b,.. any study workload (default gzip,erp,oltp)
  --no-fast-forward  tick every cycle (measures the unskipped loop)
  --help             this text";

/// Entry point for `sst-run bench <args>`. Returns the process exit code.
pub fn bench_main<I: Iterator<Item = String>>(mut args: I) -> i32 {
    let mut o = BenchOpts::defaults();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--help" | "-h" => {
                println!("{BENCH_USAGE}");
                return 0;
            }
            "--check" => o.check = true,
            "--no-fast-forward" => o.fast_forward = false,
            "--out" => match args.next() {
                Some(p) => o.out = p,
                None => return bench_arg_err("--out needs a path"),
            },
            "--scale" => match args.next().as_deref() {
                Some("smoke") => o.scale = Scale::Smoke,
                Some("full") => o.scale = Scale::Full,
                _ => return bench_arg_err("--scale needs smoke|full"),
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => o.seed = n,
                None => return bench_arg_err("--seed needs a u64"),
            },
            "--models" => match args.next() {
                Some(v) => o.models = v.split(',').map(|s| s.to_string()).collect(),
                None => return bench_arg_err("--models needs a list"),
            },
            "--workloads" => match args.next() {
                Some(v) => o.workloads = v.split(',').map(|s| s.to_string()).collect(),
                None => return bench_arg_err("--workloads needs a list"),
            },
            other => return bench_arg_err(&format!("unknown option {other:?}")),
        }
    }
    run_bench(&o)
}

fn bench_arg_err(msg: &str) -> i32 {
    eprintln!("sst-run bench: {msg}\n\n{BENCH_USAGE}");
    2
}

fn run_bench(o: &BenchOpts) -> i32 {
    let mut models = Vec::new();
    for tok in &o.models {
        match parse_model(tok) {
            Some(m) => models.push(m),
            None => return bench_arg_err(&format!("unknown model {tok:?}")),
        }
    }

    // Read the baseline geomean *before* running, so `--check` against
    // the file we are about to overwrite still compares old vs new.
    let baseline = if o.check {
        match read_baseline_geomean(&o.out) {
            Some(g) => Some(g),
            None => {
                eprintln!(
                    "sst-run bench: --check: no readable baseline at {} — treating as first run",
                    o.out
                );
                None
            }
        }
    } else {
        None
    };

    println!(
        "sst-run bench: {} pair(s), scale={}, seed={}, fast-forward {}",
        models.len() * o.workloads.len(),
        match o.scale {
            Scale::Smoke => "smoke",
            Scale::Full => "full",
        },
        o.seed,
        if o.fast_forward { "on" } else { "off" },
    );

    let mut pairs: Vec<PairResult> = Vec::new();
    for model in &models {
        for wname in &o.workloads {
            let Some(w) = Workload::by_name(wname, o.scale, o.seed) else {
                return bench_arg_err(&format!("unknown workload {wname:?}"));
            };
            let label = model.label();
            let mut sys = System::new(model.clone(), &w).without_cosim();
            if !o.fast_forward {
                sys = sys.without_fast_forward();
            }
            let started = Instant::now();
            let r = match sys.run_checked(BENCH_MAX_CYCLES) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("sst-run bench: {label}/{wname}: {e}");
                    return 1;
                }
            };
            let wall = started.elapsed().as_secs_f64();
            let minst_per_s = r.insts as f64 / 1e6 / wall.max(1e-9);
            println!(
                "  {label:<8} {wname:<8} {:>9} insts {:>10} cycles {:>8.1} ms {:>8.2} Minst/s",
                r.insts,
                r.cycles,
                wall * 1e3,
                minst_per_s,
            );
            pairs.push(PairResult {
                model: label,
                workload: wname.clone(),
                insts: r.insts,
                cycles: r.cycles,
                wall_ms: wall * 1e3,
                minst_per_s,
            });
        }
    }

    let g = geomean(&pairs.iter().map(|p| p.minst_per_s).collect::<Vec<_>>());
    println!("geomean: {g:.2} Minst/s");

    if let Err(e) = std::fs::write(&o.out, render_report(o, &pairs, g)) {
        eprintln!("sst-run bench: cannot write {}: {e}", o.out);
        return 1;
    }
    println!("(report written to {})", o.out);

    if let Some(base) = baseline {
        let ratio = g / base.max(1e-12);
        println!(
            "check: fresh {g:.2} vs baseline {base:.2} Minst/s ({:+.1}%)",
            (ratio - 1.0) * 100.0
        );
        if ratio < FAIL_BELOW {
            eprintln!(
                "sst-run bench: FAIL — hot loop is {:.0}% of baseline (< {:.0}%)",
                ratio * 100.0,
                FAIL_BELOW * 100.0
            );
            return 1;
        }
        if ratio < WARN_BELOW {
            eprintln!(
                "sst-run bench: WARNING — hot loop is {:.0}% of baseline (< {:.0}%); \
                 investigate before merging",
                ratio * 100.0,
                WARN_BELOW * 100.0
            );
        }
    }
    0
}

fn render_report(o: &BenchOpts, pairs: &[PairResult], g: f64) -> String {
    let doc = JVal::obj([
        ("version", JVal::str(env!("CARGO_PKG_VERSION"))),
        (
            "scale",
            JVal::str(match o.scale {
                Scale::Smoke => "smoke",
                Scale::Full => "full",
            }),
        ),
        ("seed", JVal::Int(o.seed)),
        ("fast_forward", JVal::Bool(o.fast_forward)),
        (
            "pairs",
            JVal::Arr(
                pairs
                    .iter()
                    .map(|p| {
                        JVal::obj([
                            ("model", JVal::str(&p.model)),
                            ("workload", JVal::str(&p.workload)),
                            ("insts", JVal::Int(p.insts)),
                            ("cycles", JVal::Int(p.cycles)),
                            ("wall_ms", JVal::Num(p.wall_ms)),
                            ("minst_per_s", JVal::Num(p.minst_per_s)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("geomean_minst_per_s", JVal::Num(g)),
    ]);
    doc.render_pretty()
}

/// Extracts `geomean_minst_per_s` from a previous report. A string scan,
/// not a parser: the file is machine-written by `render_report`, and the
/// harness intentionally has no JSON reader.
fn read_baseline_geomean(path: &str) -> Option<f64> {
    let body = std::fs::read_to_string(path).ok()?;
    let tail = body.split("\"geomean_minst_per_s\"").nth(1)?;
    let val = tail.split(':').nth(1)?;
    val.trim().trim_end_matches(['}', ',', '\n', ' ']).parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_tokens_parse() {
        for t in ["io", "scout", "ea", "sst", "o32", "o64", "o128"] {
            assert!(parse_model(t).is_some(), "{t}");
        }
        assert!(parse_model("warp-drive").is_none());
    }

    #[test]
    fn baseline_scan_reads_what_render_writes() {
        let o = BenchOpts::defaults();
        let pairs = vec![PairResult {
            model: "sst".into(),
            workload: "gzip".into(),
            insts: 1_000_000,
            cycles: 2_000_000,
            wall_ms: 250.0,
            minst_per_s: 4.0,
        }];
        let body = render_report(&o, &pairs, 4.0);
        let dir = std::env::temp_dir().join(format!("sst-bench-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_hotloop.json");
        std::fs::write(&path, body).unwrap();
        let g = read_baseline_geomean(path.to_str().unwrap()).expect("scan");
        assert!((g - 4.0).abs() < 1e-9, "{g}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_baseline_is_none() {
        assert_eq!(read_baseline_geomean("/no/such/file.json"), None);
    }
}
