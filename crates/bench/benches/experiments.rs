//! Criterion benches: one group per reproduced table/figure (E1–E12),
//! each timing a smoke-scale kernel of that experiment. `cargo bench`
//! therefore exercises every experiment's code path and reports simulator
//! throughput; the full-scale numbers come from the `e*` binaries.

use criterion::{criterion_group, criterion_main, Criterion};
use sst_core::SstConfig;
use sst_mem::MemConfig;
use sst_sim::area::model_area;
use sst_sim::{CmpSystem, CoreModel, System};
use sst_workloads::{Scale, Workload};

const MAX: u64 = 5_000_000_000;

fn measure(model: CoreModel, name: &str) -> f64 {
    let w = Workload::by_name(name, Scale::Smoke, 1).expect("known");
    System::new(model, &w)
        .without_cosim()
        .run_checked(MAX)
        .expect("completes")
        .measured_ipc()
}

fn small(c: &mut Criterion) -> Criterion {
    let _ = c;
    Criterion::default().sample_size(10)
}

fn e1_configs(c: &mut Criterion) {
    // Table construction is trivial; bench the config -> area path used by
    // the table.
    c.bench_function("e1_configs", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for m in CoreModel::lineup() {
                total += model_area(&m).total_bits();
            }
            total
        })
    });
}

fn e2_workload_characterization(c: &mut Criterion) {
    c.bench_function("e2_workloads_inorder_gzip", |b| {
        b.iter(|| measure(CoreModel::InOrder, "gzip"))
    });
}

fn e3_speedup_vs_inorder(c: &mut Criterion) {
    c.bench_function("e3_sst_erp", |b| b.iter(|| measure(CoreModel::Sst, "erp")));
}

fn e4_vs_ooo(c: &mut Criterion) {
    c.bench_function("e4_ooo128_erp", |b| {
        b.iter(|| measure(CoreModel::Ooo128, "erp"))
    });
}

fn e5_latency(c: &mut Criterion) {
    c.bench_function("e5_latency_sst_mcf", |b| {
        b.iter(|| {
            let mut cfg = MemConfig::default();
            cfg.dram.base_cycles = 600;
            let w = Workload::by_name("mcf", Scale::Smoke, 1).expect("known");
            System::with_mem(CoreModel::Sst, &w, &cfg)
                .without_cosim()
                .run_checked(MAX)
                .expect("completes")
                .measured_ipc()
        })
    });
}

fn e6_dq(c: &mut Criterion) {
    c.bench_function("e6_dq16_oltp", |b| {
        b.iter(|| {
            let cfg = SstConfig {
                dq_entries: 16,
                ..SstConfig::sst()
            };
            measure(CoreModel::CustomSst(cfg), "oltp")
        })
    });
}

fn e7_ckpt(c: &mut Criterion) {
    c.bench_function("e7_ckpt4_oltp", |b| {
        b.iter(|| {
            let cfg = SstConfig {
                checkpoints: 4,
                ..SstConfig::sst()
            };
            measure(CoreModel::CustomSst(cfg), "oltp")
        })
    });
}

fn e8_stb(c: &mut Criterion) {
    c.bench_function("e8_stb8_gups", |b| {
        b.iter(|| {
            let cfg = SstConfig {
                stb_entries: 8,
                ..SstConfig::sst()
            };
            measure(CoreModel::CustomSst(cfg), "gups")
        })
    });
}

fn e9_area(c: &mut Criterion) {
    c.bench_function("e9_area_proxy", |b| {
        b.iter(|| {
            CoreModel::lineup()
                .iter()
                .map(|m| model_area(m).weighted_cost())
                .sum::<f64>()
        })
    });
}

fn e10_cmp(c: &mut Criterion) {
    c.bench_function("e10_cmp4_gzip", |b| {
        b.iter(|| {
            CmpSystem::homogeneous(
                CoreModel::Sst,
                "gzip",
                Scale::Smoke,
                1,
                4,
                &MemConfig::default(),
            )
            .run(MAX)
            .throughput_ipc()
        })
    });
}

fn e11_mlp(c: &mut Criterion) {
    c.bench_function("e11_mlp8_sst", |b| b.iter(|| measure(CoreModel::Sst, "mlp8")));
}

fn e12_failures(c: &mut Criterion) {
    c.bench_function("e12_scout_web", |b| b.iter(|| measure(CoreModel::Scout, "web")));
}

criterion_group! {
    name = experiments;
    config = small(&mut Criterion::default());
    targets =
        e1_configs,
        e2_workload_characterization,
        e3_speedup_vs_inorder,
        e4_vs_ooo,
        e5_latency,
        e6_dq,
        e7_ckpt,
        e8_stb,
        e9_area,
        e10_cmp,
        e11_mlp,
        e12_failures
}
criterion_main!(experiments);
