//! Timing benches: one entry per reproduced table/figure (E1–E12), each
//! timing a smoke-scale kernel of that experiment's code path. Runs under
//! `cargo bench` with no external crates: a minimal best-of-N wall-clock
//! harness over `std::time::Instant`. The full-scale numbers come from
//! `sst-run` / the `e*` binaries; this reports simulator throughput.
//!
//! With the `ext` feature the sample count rises from 3 to 10.

use std::hint::black_box;
use std::time::Instant;

use sst_core::SstConfig;
use sst_mem::MemConfig;
use sst_sim::area::model_area;
use sst_sim::{CmpSystem, CoreModel, System};
use sst_workloads::{Scale, Workload};

const MAX: u64 = 5_000_000_000;

fn samples() -> usize {
    if cfg!(feature = "ext") {
        10
    } else {
        3
    }
}

/// Runs `f` `samples()` times and reports best / median wall-clock time.
fn bench(name: &str, mut f: impl FnMut() -> f64) {
    let n = samples();
    let mut times_ms: Vec<f64> = Vec::with_capacity(n);
    let mut last = 0.0;
    for _ in 0..n {
        let t0 = Instant::now();
        last = black_box(f());
        times_ms.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    times_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    println!(
        "{name:<28} best {:>9.2} ms   median {:>9.2} ms   (result {last:.4})",
        times_ms[0],
        times_ms[times_ms.len() / 2],
    );
}

fn measure(model: CoreModel, name: &str) -> f64 {
    let w = Workload::by_name(name, Scale::Smoke, 1).expect("known");
    System::new(model, &w)
        .without_cosim()
        .run_checked(MAX)
        .expect("completes")
        .measured_ipc()
}

fn main() {
    println!("experiment kernels, smoke scale, best of {}:", samples());

    bench("e1_configs_area", || {
        let mut total = 0u64;
        for m in CoreModel::lineup() {
            total += model_area(&m).total_bits();
        }
        total as f64
    });
    bench("e2_workloads_inorder_gzip", || {
        measure(CoreModel::InOrder, "gzip")
    });
    bench("e3_sst_erp", || measure(CoreModel::Sst, "erp"));
    bench("e4_ooo128_erp", || measure(CoreModel::Ooo128, "erp"));
    bench("e5_latency_sst_mcf", || {
        let mut cfg = MemConfig::default();
        cfg.dram.base_cycles = 600;
        let w = Workload::by_name("mcf", Scale::Smoke, 1).expect("known");
        System::with_mem(CoreModel::Sst, &w, &cfg)
            .without_cosim()
            .run_checked(MAX)
            .expect("completes")
            .measured_ipc()
    });
    bench("e6_dq16_oltp", || {
        let cfg = SstConfig {
            dq_entries: 16,
            ..SstConfig::sst()
        };
        measure(CoreModel::CustomSst(cfg), "oltp")
    });
    bench("e7_ckpt4_oltp", || {
        let cfg = SstConfig {
            checkpoints: 4,
            ..SstConfig::sst()
        };
        measure(CoreModel::CustomSst(cfg), "oltp")
    });
    bench("e8_stb8_gups", || {
        let cfg = SstConfig {
            stb_entries: 8,
            ..SstConfig::sst()
        };
        measure(CoreModel::CustomSst(cfg), "gups")
    });
    bench("e9_area_proxy", || {
        CoreModel::lineup()
            .iter()
            .map(|m| model_area(m).weighted_cost())
            .sum::<f64>()
    });
    bench("e10_cmp4_gzip", || {
        CmpSystem::homogeneous(
            CoreModel::Sst,
            "gzip",
            Scale::Smoke,
            1,
            4,
            &MemConfig::default(),
        )
        .run(MAX)
        .throughput_ipc()
    });
    bench("e11_mlp8_sst", || measure(CoreModel::Sst, "mlp8"));
    bench("e12_scout_web", || measure(CoreModel::Scout, "web"));
}
