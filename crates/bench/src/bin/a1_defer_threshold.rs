//! Ablation A1 — defer-threshold sensitivity.
//!
//! DESIGN.md calls out the defer threshold (the latency at which a load
//! stops waiting and defers) as a design choice. Too low and L2 hits
//! trigger pointless speculation episodes; too high and off-chip misses
//! stall the ahead thread. The paper's implicit choice is "off-chip
//! misses defer, on-chip hits do not".

use sst_bench::{banner, emit, run};
use sst_core::SstConfig;
use sst_sim::report::{f3, Table};
use sst_sim::CoreModel;

const THRESHOLDS: [u64; 6] = [5, 15, 30, 60, 150, 400];
const WORKLOADS: [&str; 3] = ["oltp", "erp", "gzip"];

fn main() {
    banner(
        "A1",
        "ablation: defer threshold",
        "a knee between the L2 hit latency (~20) and the DRAM latency (~340); beyond it SST degrades toward in-order",
    );

    for name in WORKLOADS {
        let mut t = Table::new(["defer threshold", "IPC"]);
        for thr in THRESHOLDS {
            let cfg = SstConfig {
                defer_threshold: thr,
                ..SstConfig::sst()
            };
            let r = run(CoreModel::CustomSst(cfg), name);
            t.row([thr.to_string(), f3(r.measured_ipc())]);
        }
        println!("workload: {name}");
        emit(&format!("a1_defer_{name}"), &t);
    }
}
