//! Ablation A2 — replay bypass-stall window.
//!
//! During replay the deferred strand stalls in place for inputs that land
//! within this window (modeling pipeline bypass of back-to-back dependent
//! replays) and re-defers anything farther out. Too small: dependent
//! chains take a full queue rotation per instruction. Too large: the
//! strand serializes on medium-latency loads it should have re-deferred.

use sst_bench::{banner, emit, run};
use sst_core::SstConfig;
use sst_sim::report::{f3, Table};
use sst_sim::CoreModel;

const WINDOWS: [u64; 6] = [0, 2, 6, 12, 25, 60];
const WORKLOADS: [&str; 3] = ["oltp", "erp", "gups"];

fn main() {
    banner(
        "A2",
        "ablation: replay bypass-stall window",
        "a shallow optimum near the ALU-latency scale (a few cycles)",
    );

    for name in WORKLOADS {
        let mut t = Table::new(["bypass window", "IPC"]);
        for win in WINDOWS {
            let cfg = SstConfig {
                bypass_stall_window: win,
                ..SstConfig::sst()
            };
            let r = run(CoreModel::CustomSst(cfg), name);
            t.row([win.to_string(), f3(r.measured_ipc())]);
        }
        println!("workload: {name}");
        emit(&format!("a2_bypass_{name}"), &t);
    }
}
