//! Ablation A2 — replay bypass-stall window.
//!
//! Thin wrapper over the `sst-harness` registry: equivalent to
//! `sst-run a2 --jobs 1` (serial, so its output is byte-comparable
//! with a parallel `sst-run` of the same experiment).

fn main() {
    std::process::exit(sst_harness::cli::experiment_main("a2"));
}
