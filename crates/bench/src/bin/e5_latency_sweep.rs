//! E5 / Figure C — Memory-latency sensitivity.
//!
//! Sweeps DRAM base latency and reports each model's IPC on the
//! latency-bound workloads. The paper's motivation: as the memory wall
//! grows, the checkpoint-based speculation window keeps paying while the
//! in-order core collapses and the OoO window saturates.

use sst_bench::{banner, emit, run_mem};
use sst_mem::MemConfig;
use sst_sim::report::{f2, f3, Table};
use sst_sim::CoreModel;

const LATENCIES: [u64; 6] = [100, 200, 300, 450, 700, 1000];
const WORKLOADS: [&str; 3] = ["oltp", "erp", "mcf"];

fn main() {
    banner(
        "E5",
        "IPC vs DRAM latency (Figure C)",
        "SST's advantage over in-order and ooo-128 widens with latency",
    );

    for name in WORKLOADS {
        let mut t = Table::new([
            "dram cycles",
            "in-order",
            "scout",
            "ea",
            "sst",
            "ooo-128",
            "sst/in-order",
            "sst/ooo-128",
        ]);
        for base in LATENCIES {
            let mut cfg = MemConfig::default();
            cfg.dram.base_cycles = base;
            let mut ipc = Vec::new();
            for model in [
                CoreModel::InOrder,
                CoreModel::Scout,
                CoreModel::ExecuteAhead,
                CoreModel::Sst,
                CoreModel::Ooo128,
            ] {
                ipc.push(run_mem(model, name, &cfg).measured_ipc());
            }
            t.row([
                base.to_string(),
                f3(ipc[0]),
                f3(ipc[1]),
                f3(ipc[2]),
                f3(ipc[3]),
                f3(ipc[4]),
                format!("{}x", f2(ipc[3] / ipc[0])),
                format!("{}x", f2(ipc[3] / ipc[4])),
            ]);
        }
        println!("workload: {name}");
        emit(&format!("e5_latency_{name}"), &t);
    }
    println!("Shape check: the sst/in-order column grows monotonically on");
    println!("oltp and erp; on mcf (MLP 1) every mechanism degrades together.");
}
