//! Ablation A4 — hardware stride prefetching vs the speculation mechanisms.
//!
//! A classic question about runahead-style designs: does a conventional
//! stride prefetcher subsume them? It covers regular streams (stream,
//! stencil) but not pointer chasing or hash probes — exactly the
//! commercial access patterns SST targets. This ablation runs the in-order
//! and SST cores with and without the prefetcher.

use sst_bench::{banner, emit, run_mem};
use sst_mem::{MemConfig, StrideConfig};
use sst_sim::report::{f3, pct, Table};
use sst_sim::CoreModel;

const WORKLOADS: [&str; 6] = ["oltp", "erp", "stream", "stencil", "mcf", "gups"];

fn main() {
    banner(
        "A4",
        "ablation: stride prefetcher vs speculation",
        "the prefetcher rescues regular streams for in-order but not the pointer-chasing commercial suite; SST + prefetcher compose",
    );

    let base = MemConfig::default();
    let with_pf = MemConfig {
        prefetch: Some(StrideConfig::default()),
        ..MemConfig::default()
    };

    let mut t = Table::new([
        "workload",
        "in-order",
        "in-order+pf",
        "pf gain",
        "sst",
        "sst+pf",
        "sst+pf vs sst",
    ]);
    for name in WORKLOADS {
        let io = run_mem(CoreModel::InOrder, name, &base).measured_ipc();
        let io_pf = run_mem(CoreModel::InOrder, name, &with_pf).measured_ipc();
        let sst = run_mem(CoreModel::Sst, name, &base).measured_ipc();
        let sst_pf = run_mem(CoreModel::Sst, name, &with_pf).measured_ipc();
        t.row([
            name.to_string(),
            f3(io),
            f3(io_pf),
            pct(io_pf / io),
            f3(sst),
            f3(sst_pf),
            pct(sst_pf / sst),
        ]);
    }
    emit("a4_prefetcher", &t);
}
