//! E6 / Figure D — Deferred-queue size sensitivity.
//!
//! The DQ bounds how far the ahead thread can run past outstanding misses;
//! when it fills, the ahead strand stalls. The paper sizes it so the
//! common case never saturates — this sweep finds that knee.

use sst_bench::{banner, emit, workload, MAX_CYCLES};
use sst_core::{SstConfig, SstCore};
use sst_mem::{MemConfig, MemSystem};
use sst_sim::report::{f3, Table};
use sst_uarch::Core;

const SIZES: [usize; 7] = [8, 16, 32, 64, 128, 256, 512];
const WORKLOADS: [&str; 3] = ["oltp", "erp", "gups"];

fn main() {
    banner(
        "E6",
        "IPC vs deferred-queue size (Figure D)",
        "small DQs throttle the ahead thread (dq-full stalls); returns saturate by ~128",
    );

    for name in WORKLOADS {
        let mut t = Table::new([
            "dq entries",
            "IPC",
            "dq-full stall cycles",
            "dq high water",
            "deferred insts",
        ]);
        for n in SIZES {
            let cfg = SstConfig {
                dq_entries: n,
                ..SstConfig::sst()
            };
            let w = workload(name);
            let mut mem = MemSystem::new(&MemConfig::default(), 1);
            w.program.load_into(mem.mem_mut());
            let mut core = SstCore::new(cfg, 0, &w.program);
            while !core.halted() {
                assert!(core.cycle() < MAX_CYCLES, "{name}/dq{n} wedged");
                core.tick(&mut mem);
                core.drain_commits();
            }
            t.row([
                n.to_string(),
                f3(core.retired() as f64 / core.cycle() as f64),
                core.stats.stall_dq_full.to_string(),
                core.dq_high_water().to_string(),
                core.stats.deferred.to_string(),
            ]);
        }
        println!("workload: {name}");
        emit(&format!("e6_dq_{name}"), &t);
    }
}
