//! E12 / Figure I — Speculation outcome breakdown.
//!
//! Where each SST speculation episode ends: committed epochs vs
//! deferred-branch rollbacks, and the stall anatomy (DQ-full, STB-full,
//! EA-suspend). The paper's design sizing rests on failures being rare
//! and structure stalls bounded.

use sst_bench::{banner, emit, workload, MAX_CYCLES};
use sst_core::{SstConfig, SstCore};
use sst_mem::{MemConfig, MemSystem};
use sst_sim::report::{f2, Table};
use sst_uarch::Core;
use sst_workloads::Workload;

fn main() {
    banner(
        "E12",
        "speculation outcome breakdown (Figure I)",
        "commits dominate; deferred-branch failures are a small minority; stalls concentrated on store-heavy code",
    );

    let mut t = Table::new([
        "workload",
        "episodes",
        "epochs committed",
        "branch fails",
        "fail %",
        "dq-full %cyc",
        "stb-full %cyc",
    ]);

    for name in Workload::all_names() {
        let w = workload(name);
        let mut mem = MemSystem::new(&MemConfig::default(), 1);
        w.program.load_into(mem.mem_mut());
        let mut core = SstCore::new(SstConfig::sst(), 0, &w.program);
        while !core.halted() {
            assert!(core.cycle() < MAX_CYCLES, "{name} wedged");
            core.tick(&mut mem);
            core.drain_commits();
        }
        let ends = core.stats.epochs_committed + core.stats.fail_branch;
        let fail_pct = if ends == 0 {
            0.0
        } else {
            core.stats.fail_branch as f64 * 100.0 / ends as f64
        };
        let cyc = core.cycle() as f64;
        t.row([
            name.to_string(),
            core.stats.episodes.to_string(),
            core.stats.epochs_committed.to_string(),
            core.stats.fail_branch.to_string(),
            f2(fail_pct),
            f2(core.stats.stall_dq_full as f64 * 100.0 / cyc),
            f2(core.stats.stall_stb_full as f64 * 100.0 / cyc),
        ]);
    }
    emit("e12_failures", &t);
}
