//! E9 / T3 — Area/power structure proxy and performance-per-cost.
//!
//! The paper's efficiency claim in numbers: per-core storage bits for the
//! speculation structures (SRAM and CAM counted separately), and the
//! commercial-suite performance divided by that cost. See DESIGN.md
//! substitution S4 — this is a structure count, not a circuit model.

use sst_bench::{banner, emit, run};
use sst_sim::area::model_area;
use sst_sim::report::{f2, f3, Table};
use sst_sim::{geomean, CoreModel};
use sst_workloads::Workload;

fn main() {
    banner(
        "E9",
        "area/power structure proxy (Table 3)",
        "SST ~= in-order + DQ/STB/checkpoints; large OoO is several times costlier (CAM-heavy)",
    );

    let mut t = Table::new([
        "model",
        "SRAM bits",
        "CAM bits",
        "weighted cost",
        "commercial IPC (geomean)",
        "IPC per Mcost",
    ]);

    for model in CoreModel::lineup() {
        let est = model_area(&model);
        let mut ipcs = Vec::new();
        for name in Workload::commercial_names() {
            ipcs.push(run(model.clone(), name).measured_ipc());
        }
        let ipc = geomean(&ipcs);
        let cost = est.weighted_cost();
        t.row([
            model.label(),
            est.sram_bits.to_string(),
            est.cam_bits.to_string(),
            format!("{:.0}", cost),
            f3(ipc),
            f2(ipc / cost * 1.0e6),
        ]);
    }
    emit("e9_area_proxy", &t);

    println!("The last column is the paper's thesis: the SST core's");
    println!("performance-per-structure-cost dominates every OoO point.");
}
