//! E11 / Figure H — Why it works: exposed memory-level parallelism.
//!
//! For each core type, how much miss traffic it keeps in flight: DRAM
//! reads per kilocycle (higher = more overlap for the same work), plus the
//! SST-side counters (misses deferred while another was outstanding).

use sst_bench::{banner, emit, run, workload, MAX_CYCLES};
use sst_core::{SstConfig, SstCore};
use sst_mem::{MemConfig, MemSystem};
use sst_sim::report::{f2, f3, Table};
use sst_sim::CoreModel;
use sst_uarch::Core;

const WORKLOADS: [&str; 5] = ["oltp", "erp", "gups", "mcf", "mlp8"];

fn main() {
    banner(
        "E11",
        "exposed MLP by core type (Figure H)",
        "SST >= EA >= scout >= in-order miss overlap everywhere except MLP-1 chases",
    );

    let mut t = Table::new([
        "workload",
        "in-order",
        "scout",
        "ea",
        "sst",
        "ooo-128",
    ]);
    for name in WORKLOADS {
        let mut cells = vec![name.to_string()];
        for model in [
            CoreModel::InOrder,
            CoreModel::Scout,
            CoreModel::ExecuteAhead,
            CoreModel::Sst,
            CoreModel::Ooo128,
        ] {
            let r = run(model, name);
            // Whole-run cycles: the warm-up share is identical across
            // models and EA-style cores can have degenerate post-warm-up
            // windows (end-of-run commit bursts).
            let mpkc = r.mem.dram_reads as f64 * 1000.0 / r.cycles.max(1) as f64;
            cells.push(f2(mpkc));
        }
        t.row(cells);
    }
    println!("DRAM reads per kilocycle (same total work => higher = more overlap):");
    emit("e11_mlp", &t);

    // SST-internal overlap counters.
    let mut s = Table::new([
        "workload",
        "deferred",
        "overlapped misses",
        "redeferred",
        "defer rate",
    ]);
    for name in WORKLOADS {
        let w = workload(name);
        let mut mem = MemSystem::new(&MemConfig::default(), 1);
        w.program.load_into(mem.mem_mut());
        let mut core = SstCore::new(SstConfig::sst(), 0, &w.program);
        while !core.halted() {
            assert!(core.cycle() < MAX_CYCLES);
            core.tick(&mut mem);
            core.drain_commits();
        }
        s.row([
            name.to_string(),
            core.stats.deferred.to_string(),
            core.stats.overlapped_misses.to_string(),
            core.stats.redeferred.to_string(),
            f3(core.stats.defer_rate()),
        ]);
    }
    println!("SST speculation anatomy:");
    emit("e11_sst_anatomy", &s);
}
