//! E11 / Figure H — Exposed memory-level parallelism by core type.
//!
//! Thin wrapper over the `sst-harness` registry: equivalent to
//! `sst-run e11 --jobs 1` (serial, so its output is byte-comparable
//! with a parallel `sst-run` of the same experiment).

fn main() {
    std::process::exit(sst_harness::cli::experiment_main("e11"));
}
