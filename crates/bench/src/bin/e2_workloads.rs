//! E2 / T2 — Workload characterization.
//!
//! Runs every workload on the in-order baseline and reports the
//! characteristics that drive the study: instruction mix, cache MPKIs,
//! branch misprediction rate, and DRAM traffic. This is the evidence that
//! the synthetic suite lands in the regimes the paper attributes to its
//! benchmarks (DESIGN.md substitution S2).

use sst_bench::{banner, emit, scale, seed, MAX_CYCLES};
use sst_inorder::{InOrderConfig, InOrderCore};
use sst_isa::InstClass;
use sst_mem::{MemConfig, MemSystem};
use sst_sim::report::{f2, f3, Table};
use sst_uarch::Core;
use sst_workloads::Workload;

fn main() {
    banner(
        "E2",
        "workload characterization (Table 2)",
        "commercial suite: high L2 MPKI + dependent loads; spec-fp: streaming; micro: MLP extremes",
    );

    let mut t = Table::new([
        "workload",
        "class",
        "insts",
        "loads%",
        "stores%",
        "branches%",
        "L1D MPKI",
        "L2 MPKI",
        "br-mispred%",
        "IPC(in-order)",
    ]);

    for name in Workload::all_names() {
        let w = Workload::by_name(name, scale(), seed()).expect("known");
        let mut mem = MemSystem::new(&MemConfig::default(), 1);
        w.program.load_into(mem.mem_mut());
        let mut core = InOrderCore::new(InOrderConfig::default(), 0, &w.program);

        let mut class_counts = [0u64; InstClass::ALL.len()];
        let mut total = 0u64;
        while !core.halted() {
            assert!(core.cycle() < MAX_CYCLES, "{name} wedged");
            core.tick(&mut mem);
            for c in core.drain_commits() {
                let idx = InstClass::ALL
                    .iter()
                    .position(|&k| k == c.inst.class())
                    .expect("class covered");
                class_counts[idx] += 1;
                total += 1;
            }
        }
        let share = |k: InstClass| {
            let idx = InstClass::ALL.iter().position(|&x| x == k).unwrap();
            class_counts[idx] as f64 * 100.0 / total as f64
        };
        let st = mem.stats();
        let bu = core.frontend().branch_unit();
        let mispred = bu.cond_mispredict_rate() * 100.0;

        t.row([
            name.to_string(),
            w.class.label().to_string(),
            total.to_string(),
            f2(share(InstClass::Load)),
            f2(share(InstClass::Store)),
            f2(share(InstClass::Branch) + share(InstClass::Jump)),
            f2(st.l1d[0].mpki(total)),
            f2(st.l2.mpki(total)),
            f2(mispred),
            f3(total as f64 / core.cycle() as f64),
        ]);
    }
    emit("e2_workloads", &t);

    println!("Expected regimes: oltp/erp/mcf/gups/chase/mlp8 land in the");
    println!("tens of L2 MPKI (the paper's commercial regime); gzip/matmul");
    println!("are cache-resident; gcc/web are branchy (mispredict > 5%).");
}
