//! E10 / Figure G — CMP throughput scaling.
//!
//! ROCK is a 16-core chip of SST cores. This experiment scales core count
//! over the shared L2 + single DRAM channel on a multiprogrammed
//! commercial mix and compares aggregate throughput of SST-core chips
//! against OoO-core chips (which, per E9, could fit fewer cores in the
//! same area — reported here as throughput per structure cost).

use sst_bench::{banner, emit, scale, seed, MAX_CYCLES};
use sst_mem::MemConfig;
use sst_sim::area::model_area;
use sst_sim::report::{f2, f3, Table};
use sst_sim::{CmpSystem, CoreModel};

const CORE_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];

fn main() {
    banner(
        "E10",
        "CMP throughput scaling (Figure G)",
        "near-linear to ~4-8 cores, then DRAM/L2 contention; SST chip leads per-cost at every size",
    );

    for model in [CoreModel::Sst, CoreModel::Ooo64] {
        let cost = model_area(&model).weighted_cost();
        let mut t = Table::new([
            "cores",
            "throughput IPC",
            "scaling",
            "mean core IPC",
            "DRAM reads",
            "IPC per Mcost (chip)",
        ]);
        let mut base = None;
        for &n in &CORE_COUNTS {
            let r = CmpSystem::homogeneous(
                model.clone(),
                "erp",
                scale(),
                seed(),
                n,
                &MemConfig::default(),
            )
            .run(MAX_CYCLES);
            let tp = r.throughput_ipc();
            let b = *base.get_or_insert(tp);
            t.row([
                n.to_string(),
                f3(tp),
                format!("{}x", f2(tp / b)),
                f3(r.mean_core_ipc()),
                r.mem.dram_reads.to_string(),
                f2(tp / (cost * n as f64) * 1.0e6),
            ]);
        }
        println!("chip of {} cores:", model.label());
        emit(&format!("e10_cmp_{}", model.label()), &t);
    }
}
