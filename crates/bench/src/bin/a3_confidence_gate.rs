//! Ablation A3 — confidence-gated deferral.
//!
//! When enabled, the ahead strand refuses to speculate past a
//! low-confidence deferred branch (it stalls for the branch's inputs
//! instead). The gate trades run-ahead coverage for fewer deferred-branch
//! rollbacks; ROCK ships with the gate off because wrong-path prefetching
//! past reconvergent hammocks usually pays for the occasional rollback —
//! this ablation quantifies that call on every workload.

use sst_bench::{banner, emit, workload, MAX_CYCLES};
use sst_core::{SstConfig, SstCore};
use sst_mem::{MemConfig, MemSystem};
use sst_sim::report::{f3, pct, Table};
use sst_uarch::Core;
use sst_workloads::Workload;

fn run(cfg: SstConfig, name: &str) -> (f64, u64, u64) {
    let w = workload(name);
    let mut mem = MemSystem::new(&MemConfig::default(), 1);
    w.program.load_into(mem.mem_mut());
    let mut core = SstCore::new(cfg, 0, &w.program);
    while !core.halted() {
        assert!(core.cycle() < MAX_CYCLES, "{name} wedged");
        core.tick(&mut mem);
        core.drain_commits();
    }
    (
        core.retired() as f64 / core.cycle() as f64,
        core.stats.fail_branch,
        core.stats.stall_lowconf,
    )
}

fn main() {
    banner(
        "A3",
        "ablation: confidence-gated deferral",
        "the gate removes most deferred-branch rollbacks but costs run-ahead coverage; net effect is workload-dependent",
    );

    let mut t = Table::new([
        "workload",
        "IPC (gate off)",
        "fails (off)",
        "IPC (gate on)",
        "fails (on)",
        "lowconf stall cyc",
        "gate effect",
    ]);
    for name in Workload::all_names() {
        let off = run(SstConfig::sst(), name);
        let on = run(
            SstConfig {
                confidence_gate: true,
                ..SstConfig::sst()
            },
            name,
        );
        t.row([
            name.to_string(),
            f3(off.0),
            off.1.to_string(),
            f3(on.0),
            on.1.to_string(),
            on.2.to_string(),
            pct(on.0 / off.0),
        ]);
    }
    emit("a3_confidence_gate", &t);
}
