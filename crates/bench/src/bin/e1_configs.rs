//! E1 / T1 — Machine configuration table.
//!
//! The paper's configuration table: every core model in the study with its
//! pipeline widths and key structure sizes, plus the shared frontend and
//! memory hierarchy.

use sst_bench::{banner, emit};
use sst_core::SstConfig;
use sst_inorder::InOrderConfig;
use sst_mem::MemConfig;
use sst_ooo::OooConfig;
use sst_sim::report::Table;
use sst_uarch::FrontendConfig;

fn main() {
    banner(
        "E1",
        "machine configurations (Table 1)",
        "reconstructed configuration table: in-order / scout / EA / SST / OoO lineup",
    );

    let mut t = Table::new([
        "model",
        "width",
        "checkpoints",
        "DQ",
        "store buffer",
        "ROB",
        "issue queue",
        "LQ/SQ",
        "D$ ports",
    ]);

    let io = InOrderConfig::default();
    t.row([
        "in-order".to_string(),
        io.width.to_string(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        io.dcache_ports.to_string(),
    ]);

    for cfg in [SstConfig::scout(), SstConfig::execute_ahead(), SstConfig::sst()] {
        t.row([
            cfg.label(),
            cfg.width.to_string(),
            cfg.checkpoints.to_string(),
            cfg.dq_entries.to_string(),
            cfg.stb_entries.to_string(),
            "-".into(),
            "-".into(),
            "-".into(),
            cfg.dcache_ports.to_string(),
        ]);
    }

    for cfg in [OooConfig::ooo_32(), OooConfig::ooo_64(), OooConfig::ooo_128()] {
        t.row([
            cfg.label(),
            cfg.issue_width.to_string(),
            "-".into(),
            "-".into(),
            "-".into(),
            cfg.rob_entries.to_string(),
            cfg.iq_entries.to_string(),
            format!("{}/{}", cfg.lq_entries, cfg.sq_entries),
            cfg.dcache_ports.to_string(),
        ]);
    }
    emit("e1_configs", &t);

    let fe = FrontendConfig::default();
    let mem = MemConfig::default();
    let mut shared = Table::new(["shared component", "value"]);
    shared.row(["direction predictor", &format!("{:?}", fe.predictor)]);
    shared.row(["BTB entries", &fe.btb_entries.to_string()]);
    shared.row(["RAS depth", &fe.ras_depth.to_string()]);
    shared.row(["redirect penalty", &format!("{} cycles", fe.redirect_penalty)]);
    shared.row(["L1 I/D", &format!("{} KiB, {}-way, {} B lines", mem.l1d.size_bytes / 1024, mem.l1d.ways, mem.l1d.line_bytes)]);
    shared.row(["L2 (shared)", &format!("{} KiB, {}-way", mem.l2.size_bytes / 1024, mem.l2.ways)]);
    shared.row(["L1 / L2 latency", &format!("{} / {} cycles", mem.l1_latency, mem.l2_latency)]);
    shared.row(["L1D MSHRs", &mem.l1d_mshrs.to_string()]);
    shared.row(["DRAM base latency", &format!("{} cycles", mem.dram.base_cycles)]);
    shared.row(["DRAM banks", &mem.dram.banks.to_string()]);
    emit("e1_shared", &shared);

    println!("The SST rows differ from in-order only by the checkpoint/DQ/");
    println!("store-buffer columns — the paper's whole added cost. The OoO");
    println!("rows carry the rename/ROB/issue-window/LSQ machinery SST");
    println!("eliminates.");
}
