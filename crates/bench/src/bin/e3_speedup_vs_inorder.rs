//! E3 / Figure A — Per-benchmark speedup of scout, execute-ahead, and SST
//! over the in-order baseline.
//!
//! The figure that introduces the mechanism family: hardware scouting
//! helps via prefetching alone, EA adds result retention, SST adds the
//! simultaneous deferred strand.

use sst_bench::{banner, emit, run};
use sst_sim::geomean;
use sst_sim::report::{f2, f3, Table};
use sst_sim::CoreModel;
use sst_workloads::Workload;

fn main() {
    banner(
        "E3",
        "speedup over in-order: scout / EA / SST (Figure A)",
        "every mechanism >= 1.0x; ordering scout <= EA <= SST; biggest gains on the commercial suite",
    );

    let mut t = Table::new([
        "workload",
        "in-order IPC",
        "scout",
        "ea",
        "sst",
    ]);
    let mut per_class: Vec<(&str, [Vec<f64>; 3])> = vec![
        ("commercial", Default::default()),
        ("spec-int", Default::default()),
        ("spec-fp", Default::default()),
        ("micro", Default::default()),
    ];

    for name in Workload::all_names() {
        let base = run(CoreModel::InOrder, name);
        let base_ipc = base.measured_ipc();
        let mut speedups = [0.0f64; 3];
        for (i, model) in [CoreModel::Scout, CoreModel::ExecuteAhead, CoreModel::Sst]
            .into_iter()
            .enumerate()
        {
            speedups[i] = run(model, name).measured_ipc() / base_ipc;
        }
        let class = sst_workloads::Workload::by_name(name, sst_bench::scale(), sst_bench::seed())
            .expect("known")
            .class
            .label();
        for (label, accum) in per_class.iter_mut() {
            if *label == class {
                for i in 0..3 {
                    accum[i].push(speedups[i]);
                }
            }
        }
        t.row([
            name.to_string(),
            f3(base_ipc),
            format!("{}x", f2(speedups[0])),
            format!("{}x", f2(speedups[1])),
            format!("{}x", f2(speedups[2])),
        ]);
    }

    let mut g = Table::new(["suite", "scout", "ea", "sst"]);
    for (label, accum) in &per_class {
        g.row([
            label.to_string(),
            format!("{}x", f2(geomean(&accum[0]))),
            format!("{}x", f2(geomean(&accum[1]))),
            format!("{}x", f2(geomean(&accum[2]))),
        ]);
    }

    emit("e3_speedup_vs_inorder", &t);
    println!("geometric means by suite:");
    emit("e3_geomeans", &g);
}
