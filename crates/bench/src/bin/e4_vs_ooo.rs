//! E4 / Figure B — **The headline**: SST per-thread performance against
//! out-of-order cores of increasing size.
//!
//! The abstract's claim: *"Simulations of certain SST implementations show
//! 18% better per-thread performance on commercial benchmarks than larger
//! and higher-powered out-of-order cores."* This binary regenerates that
//! comparison: SST vs ooo-32/ooo-64/ooo-128 per benchmark, with the
//! commercial-suite geometric mean as the headline number.

use sst_bench::{banner, emit, run};
use sst_sim::geomean;
use sst_sim::report::{f3, pct, Table};
use sst_sim::CoreModel;
use sst_workloads::Workload;

fn main() {
    banner(
        "E4",
        "SST vs out-of-order (Figure B, the headline)",
        "SST ~ +18% over the large OoO on the commercial suite (accept +10..30%); OoO wins on compute-bound kernels",
    );

    let mut t = Table::new([
        "workload",
        "sst IPC",
        "ooo-32 IPC",
        "ooo-64 IPC",
        "ooo-128 IPC",
        "sst vs ooo-128",
    ]);

    let mut commercial: Vec<f64> = Vec::new();
    let mut all_vs_128: Vec<(String, f64)> = Vec::new();

    for name in Workload::all_names() {
        let sst = run(CoreModel::Sst, name).measured_ipc();
        let o32 = run(CoreModel::Ooo32, name).measured_ipc();
        let o64 = run(CoreModel::Ooo64, name).measured_ipc();
        let o128 = run(CoreModel::Ooo128, name).measured_ipc();
        let ratio = sst / o128;
        if Workload::commercial_names().contains(name) {
            commercial.push(ratio);
        }
        all_vs_128.push((name.to_string(), ratio));
        t.row([
            name.to_string(),
            f3(sst),
            f3(o32),
            f3(o64),
            f3(o128),
            pct(ratio),
        ]);
    }
    emit("e4_vs_ooo", &t);

    let headline = geomean(&commercial);
    println!("HEADLINE — SST vs ooo-128, commercial-suite geomean: {}", pct(headline));
    println!("paper: +18% vs \"larger and higher-powered out-of-order cores\"\n");

    let mut s = Table::new(["summary", "value"]);
    s.row(["commercial geomean (sst/ooo-128)", &pct(headline)]);
    let mut all: Vec<f64> = all_vs_128.iter().map(|x| x.1).collect();
    s.row(["all-suite geomean", &pct(geomean(&all))]);
    all.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    s.row(["min / max across workloads", &format!("{} / {}", pct(all[0]), pct(all[all.len() - 1]))]);
    emit("e4_headline", &s);
}
