//! E7 / Figure E — Checkpoint-count sensitivity.
//!
//! One checkpoint is execute-ahead (the ahead thread suspends during
//! replay); two is ROCK's SST (simultaneous strands); more checkpoints
//! allow deeper epoch pipelining with diminishing returns. This sweep is
//! the paper's core design-space argument.

use sst_bench::{banner, emit, workload, MAX_CYCLES};
use sst_core::{SstConfig, SstCore};
use sst_mem::{MemConfig, MemSystem};
use sst_sim::report::{f2, f3, Table};
use sst_uarch::Core;

const CHECKPOINTS: [usize; 5] = [1, 2, 3, 4, 8];
const WORKLOADS: [&str; 3] = ["oltp", "erp", "web"];

fn main() {
    banner(
        "E7",
        "IPC vs checkpoint count (Figure E)",
        "1 -> 2 checkpoints (EA -> SST) helps; past ~4 the returns vanish",
    );

    for name in WORKLOADS {
        let mut t = Table::new([
            "checkpoints",
            "IPC",
            "vs 1 ckpt",
            "epochs committed",
            "ea-suspend cycles",
        ]);
        let mut base = None;
        for n in CHECKPOINTS {
            let cfg = SstConfig {
                checkpoints: n,
                ..SstConfig::sst()
            };
            let w = workload(name);
            let mut mem = MemSystem::new(&MemConfig::default(), 1);
            w.program.load_into(mem.mem_mut());
            let mut core = SstCore::new(cfg, 0, &w.program);
            while !core.halted() {
                assert!(core.cycle() < MAX_CYCLES, "{name}/ckpt{n} wedged");
                core.tick(&mut mem);
                core.drain_commits();
            }
            let ipc = core.retired() as f64 / core.cycle() as f64;
            let b = *base.get_or_insert(ipc);
            t.row([
                n.to_string(),
                f3(ipc),
                format!("{}x", f2(ipc / b)),
                core.stats.epochs_committed.to_string(),
                core.stats.stall_ea_replay.to_string(),
            ]);
        }
        println!("workload: {name}");
        emit(&format!("e7_ckpt_{name}"), &t);
    }
}
