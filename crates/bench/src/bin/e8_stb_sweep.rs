//! E8 / Figure F — Store-buffer size sensitivity.
//!
//! Thin wrapper over the `sst-harness` registry: equivalent to
//! `sst-run e8 --jobs 1` (serial, so its output is byte-comparable
//! with a parallel `sst-run` of the same experiment).

fn main() {
    std::process::exit(sst_harness::cli::experiment_main("e8"));
}
