//! E8 / Figure F — Store-buffer size sensitivity.
//!
//! Speculative stores cannot drain until their epoch commits, so the
//! store buffer bounds speculation depth on store-heavy code. This sweep
//! shows the stall knee the paper sizes against.

use sst_bench::{banner, emit, workload, MAX_CYCLES};
use sst_core::{SstConfig, SstCore};
use sst_mem::{MemConfig, MemSystem};
use sst_sim::report::{f3, Table};
use sst_uarch::Core;

const SIZES: [usize; 6] = [4, 8, 16, 32, 64, 128];
const WORKLOADS: [&str; 3] = ["gups", "oltp", "stream"];

fn main() {
    banner(
        "E8",
        "IPC vs store-buffer size (Figure F)",
        "store-heavy workloads stall hard below ~16 entries; saturation by ~64",
    );

    for name in WORKLOADS {
        let mut t = Table::new([
            "stb entries",
            "IPC",
            "stb-full stall cycles",
            "stb high water",
            "forwards",
        ]);
        for n in SIZES {
            let cfg = SstConfig {
                stb_entries: n,
                ..SstConfig::sst()
            };
            let w = workload(name);
            let mut mem = MemSystem::new(&MemConfig::default(), 1);
            w.program.load_into(mem.mem_mut());
            let mut core = SstCore::new(cfg, 0, &w.program);
            while !core.halted() {
                assert!(core.cycle() < MAX_CYCLES, "{name}/stb{n} wedged");
                core.tick(&mut mem);
                core.drain_commits();
            }
            t.row([
                n.to_string(),
                f3(core.retired() as f64 / core.cycle() as f64),
                core.stats.stall_stb_full.to_string(),
                core.stb_high_water().to_string(),
                core.stb_forwards().to_string(),
            ]);
        }
        println!("workload: {name}");
        emit(&format!("e8_stb_{name}"), &t);
    }
}
