//! # sst-bench
//!
//! Experiment entry points: one thin binary per reproduced table/figure
//! (see DESIGN.md's per-experiment index E1–E12 and EXPERIMENTS.md for
//! the recorded results), each delegating to the `sst-harness` registry,
//! plus an internal timing bench (`cargo bench`) over scaled-down
//! kernels. The helpers below remain for ad-hoc use and for callers that
//! want a single `(model, workload)` run without the harness.
//!
//! Every binary prints its tables as markdown and writes
//! `results/<table>.csv`. Common environment knobs:
//!
//! * `SST_SCALE=smoke|full` — workload scale (default `full`).
//! * `SST_SEED=<u64>` — data-generation seed (default 12345).
//! * `SST_RESULTS=<dir>` — where `results/` is created (default CWD).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;

use sst_mem::MemConfig;
use sst_sim::report::Table;
use sst_sim::{CoreModel, RunResult, System};
use sst_workloads::{Scale, Workload};

/// Workload scale from `SST_SCALE` (default full).
pub fn scale() -> Scale {
    match std::env::var("SST_SCALE").as_deref() {
        Ok("smoke") => Scale::Smoke,
        _ => Scale::Full,
    }
}

/// Data seed from `SST_SEED` (default 12345).
pub fn seed() -> u64 {
    std::env::var("SST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(12345)
}

/// Output directory root from `SST_RESULTS` (default CWD).
pub fn out_dir() -> PathBuf {
    std::env::var("SST_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("."))
}

/// A generous cycle ceiling (simulations are deterministic; this only
/// catches model wedges).
pub const MAX_CYCLES: u64 = 20_000_000_000;

/// Builds a workload at the harness scale/seed.
pub fn workload(name: &str) -> Workload {
    Workload::by_name(name, scale(), seed()).expect("known workload")
}

/// Runs one (model, workload) pair without per-commit co-simulation (the
/// test suite performs the checked runs; the harness optimizes for sweep
/// throughput).
pub fn run(model: CoreModel, name: &str) -> RunResult {
    let w = workload(name);
    System::new(model, &w)
        .without_cosim()
        .run_checked(MAX_CYCLES)
        .expect("run completes")
}

/// Like [`run`] with an explicit memory configuration.
pub fn run_mem(model: CoreModel, name: &str, mem: &MemConfig) -> RunResult {
    let w = workload(name);
    System::with_mem(model, &w, mem)
        .without_cosim()
        .run_checked(MAX_CYCLES)
        .expect("run completes")
}

/// Prints the experiment banner.
pub fn banner(id: &str, title: &str, paper_note: &str) {
    println!("===============================================================");
    println!("{id}: {title}");
    println!("  paper target: {paper_note}");
    println!(
        "  scale={:?} seed={}",
        scale(),
        seed()
    );
    println!("===============================================================\n");
}

/// Prints a table and persists its CSV under `results/<id>.csv`.
pub fn emit(id: &str, table: &Table) {
    println!("{}", table.to_markdown());
    match table.write_csv(out_dir(), id) {
        Ok(p) => println!("(csv written to {})\n", p.display()),
        Err(e) => println!("(csv not written: {e})\n"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        // These read the environment; in the test environment the defaults
        // apply unless the harness variables are set.
        let _ = scale();
        assert!(seed() > 0);
        let _ = out_dir();
    }
}
