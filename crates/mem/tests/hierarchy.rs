//! Hierarchy-level scenarios: inclusion-ish behaviour, writeback
//! correctness signals, DRAM row locality, and the MLP limiter working
//! through the full stack.

use sst_mem::{AccessKind, CacheConfig, DramConfig, HitLevel, MemConfig, MemSystem};

fn tiny_l1() -> MemConfig {
    MemConfig {
        l1d: CacheConfig {
            size_bytes: 1024,
            ways: 2,
            line_bytes: 64,
        },
        ..MemConfig::default()
    }
}

#[test]
fn l1_evictions_land_in_l2() {
    let mut ms = MemSystem::new(&tiny_l1(), 1);
    let mut t = 0;
    // Touch 64 lines: way beyond the 16-line L1, well within L2.
    for i in 0..64u64 {
        let o = ms.access(t, 0, AccessKind::Load, 0x10_0000 + i * 64);
        t = o.ready_at + 1;
    }
    // Early lines should now be L2 hits (fetched once, evicted from L1).
    let o = ms.access(t, 0, AccessKind::Load, 0x10_0000);
    assert_eq!(o.level, HitLevel::L2);
    assert_eq!(ms.stats().dram_reads, 64, "no refetch from DRAM");
}

#[test]
fn dirty_evictions_count_writebacks_and_preserve_data() {
    let mut ms = MemSystem::new(&tiny_l1(), 1);
    let mut t = 0;
    for i in 0..32u64 {
        ms.write(0x20_0000 + i * 64, 8, i + 1);
        let o = ms.access(t, 0, AccessKind::Store, 0x20_0000 + i * 64);
        t = o.ready_at + 1;
    }
    let st = ms.stats();
    assert!(st.l1d[0].writebacks > 0, "dirty lines were displaced");
    for i in 0..32u64 {
        assert_eq!(ms.read(0x20_0000 + i * 64, 8), i + 1);
    }
}

#[test]
fn sequential_stream_exploits_dram_rows() {
    let cfg = MemConfig {
        l2: CacheConfig {
            size_bytes: 64 * 1024, // tiny L2 so the stream reaches DRAM
            ways: 4,
            line_bytes: 64,
        },
        ..MemConfig::default()
    };
    let mut ms = MemSystem::new(&cfg, 1);
    let mut t = 0;
    // Scattered pattern: a stride larger than the 4 KiB row, so nearly
    // every access opens a new row.
    for i in 0..512u64 {
        let o = ms.access(t, 0, AccessKind::Load, 0x100_0000 + i * 64 * 1087);
        t = o.ready_at + 1;
    }
    let random_hits = ms.stats().dram_row_hits;

    let mut ms2 = MemSystem::new(&cfg, 1);
    let mut t = 0;
    for i in 0..512u64 {
        let o = ms2.access(t, 0, AccessKind::Load, 0x100_0000 + i * 64);
        t = o.ready_at + 1;
    }
    let seq_hits = ms2.stats().dram_row_hits;
    assert!(
        seq_hits > random_hits * 2,
        "sequential rows must hit more: {seq_hits} vs {random_hits}"
    );
}

#[test]
fn bank_parallel_misses_beat_same_bank() {
    let dram = DramConfig {
        banks: 8,
        row_bytes: 4096,
        ..DramConfig::default()
    };
    let cfg = MemConfig {
        dram,
        ..MemConfig::default()
    };

    // Misses striped across banks (consecutive rows).
    let mut ms = MemSystem::new(&cfg, 1);
    let start = 0;
    let mut latest = 0;
    for i in 0..8u64 {
        let o = ms.access(start, 0, AccessKind::Load, 0x200_0000 + i * 4096);
        latest = latest.max(o.ready_at);
    }
    let striped = latest;

    // Misses all in one bank (stride = banks * row).
    let mut ms2 = MemSystem::new(&cfg, 1);
    let mut latest = 0;
    for i in 0..8u64 {
        let o = ms2.access(start, 0, AccessKind::Load, 0x200_0000 + i * 4096 * 8);
        latest = latest.max(o.ready_at);
    }
    let same_bank = latest;
    assert!(
        same_bank > striped + 100,
        "bank conflicts must serialize: {same_bank} vs {striped}"
    );
}

#[test]
fn mshr_limit_applies_through_the_full_stack() {
    for (mshrs, expect_faster) in [(2usize, false), (16, true)] {
        let cfg = MemConfig {
            l1d_mshrs: mshrs,
            ..MemConfig::default()
        };
        let mut ms = MemSystem::new(&cfg, 1);
        let mut latest = 0;
        for i in 0..16u64 {
            let o = ms.access(0, 0, AccessKind::Load, 0x300_0000 + i * (1 << 16));
            latest = latest.max(o.ready_at);
        }
        if expect_faster {
            assert!(latest < 1000, "16 MSHRs overlap 16 misses: {latest}");
        } else {
            assert!(latest > 2000, "2 MSHRs serialize 16 misses: {latest}");
        }
    }
}

#[test]
fn stats_snapshot_is_consistent() {
    let mut ms = MemSystem::new(&MemConfig::default(), 2);
    for core in 0..2 {
        for i in 0..32u64 {
            ms.access(i * 400, core, AccessKind::Load, 0x40_0000 + i * 64 + core as u64 * (1 << 30));
        }
    }
    let st = ms.stats();
    assert_eq!(st.l1d.len(), 2);
    let total_l1_misses: u64 = st.l1d.iter().map(|s| s.misses()).sum();
    assert!(st.l2.accesses >= total_l1_misses, "every L1 miss reaches L2");
    assert!(st.dram_reads <= st.l2.accesses);
}
