//! Randomized property tests for the memory hierarchy: timing
//! monotonicity, tag-array invariants, and functional/timing independence.
//! Driven by the workspace's deterministic PRNG (fixed seeds, reproducible
//! failures); build with `--features ext` for more cases.

use sst_mem::{AccessKind, CacheConfig, MemConfig, MemSystem, TagArray};
use sst_prng::Prng;

fn cases(base: usize) -> usize {
    if cfg!(feature = "ext") {
        base * 8
    } else {
        base
    }
}

fn small_mem() -> MemConfig {
    MemConfig {
        l1d: CacheConfig {
            size_bytes: 1024,
            ways: 2,
            line_bytes: 64,
        },
        l1i: CacheConfig {
            size_bytes: 1024,
            ways: 2,
            line_bytes: 64,
        },
        l2: CacheConfig {
            size_bytes: 8192,
            ways: 4,
            line_bytes: 64,
        },
        ..MemConfig::default()
    }
}

const KINDS: [AccessKind; 4] = [
    AccessKind::Load,
    AccessKind::Store,
    AccessKind::IFetch,
    AccessKind::Prefetch,
];

fn arb_kind(r: &mut Prng) -> AccessKind {
    KINDS[r.gen_range(0..KINDS.len())]
}

/// Completion time never precedes issue time, for any access sequence.
#[test]
fn ready_at_is_never_before_issue() {
    let mut r = Prng::seed_from_u64(0x3e3_0001);
    for _ in 0..cases(64) {
        let mut ms = MemSystem::new(&small_mem(), 1);
        let mut now = 0u64;
        for _ in 0..r.gen_range(1..200usize) {
            let kind = arb_kind(&mut r);
            let addr = r.gen_range(0..1u64 << 20);
            let o = ms.access(now, 0, kind, addr);
            assert!(o.ready_at >= now || kind == AccessKind::Prefetch);
            now += r.gen_range(0..50u64);
        }
    }
}

/// Repeating the same address back-to-back always ends in an L1 hit.
#[test]
fn second_access_hits_l1() {
    let mut r = Prng::seed_from_u64(0x3e3_0002);
    for _ in 0..cases(64) {
        let addr = r.gen_range(0..1u64 << 30);
        let mut ms = MemSystem::new(&small_mem(), 1);
        let a = ms.access(0, 0, AccessKind::Load, addr);
        let b = ms.access(a.ready_at + 1, 0, AccessKind::Load, addr);
        assert_eq!(b.level, sst_mem::HitLevel::L1);
    }
}

/// Timing accesses never change memory contents.
#[test]
fn timing_never_mutates_data() {
    let mut r = Prng::seed_from_u64(0x3e3_0003);
    for _ in 0..cases(64) {
        let addr = r.gen_range(0..1u64 << 20);
        let val: u64 = r.gen();
        let mut ms = MemSystem::new(&small_mem(), 1);
        ms.write(addr, 8, val);
        let mut now = 0;
        for _ in 0..r.gen_range(1..100usize) {
            let kind = arb_kind(&mut r);
            let a = r.gen_range(0..1u64 << 20);
            let o = ms.access(now, 0, kind, a);
            now = o.ready_at.max(now) + 1;
        }
        assert_eq!(ms.read(addr, 8), val);
    }
}

/// The tag array never exceeds its capacity and fill-then-probe holds.
#[test]
fn tag_array_capacity_invariant() {
    let mut r = Prng::seed_from_u64(0x3e3_0004);
    for _ in 0..cases(32) {
        let cfg = CacheConfig {
            size_bytes: 2048,
            ways: 4,
            line_bytes: 64,
        };
        let mut tags = TagArray::new(&cfg);
        let capacity = (cfg.size_bytes / cfg.line_bytes) as usize;
        for _ in 0..r.gen_range(1..300usize) {
            let a = r.gen_range(0..1u64 << 24);
            tags.fill(a, false);
            assert!(tags.probe(a), "line just filled must be present");
            assert!(tags.valid_lines() <= capacity);
        }
    }
}

/// LRU property: within one set, the most recently touched line of a
/// (ways+1)-line working set is never the victim.
#[test]
fn mru_line_survives_eviction() {
    let mut r = Prng::seed_from_u64(0x3e3_0005);
    for _ in 0..cases(128) {
        let base = r.gen_range(0..1u64 << 16) & !63;
        let cfg = CacheConfig {
            size_bytes: 512,
            ways: 2,
            line_bytes: 64,
        };
        let mut tags = TagArray::new(&cfg);
        let stride = 64 * cfg.sets() as u64;
        let a = base;
        let b = base + stride;
        let c = base + 2 * stride;
        tags.fill(a, false);
        tags.fill(b, false);
        tags.access(a, false); // a is MRU
        tags.fill(c, false); // must evict b
        assert!(tags.probe(a));
        assert!(!tags.probe(b));
        assert!(tags.probe(c));
    }
}

/// Merged misses (same line) never complete later than a fresh miss
/// would, and never earlier than the primary fill.
#[test]
fn merge_bounded_by_primary() {
    for offset in 0u64..64 {
        let mut ms = MemSystem::new(&small_mem(), 1);
        let base = 0x40_0000u64;
        let primary = ms.access(0, 0, AccessKind::Load, base);
        let merged = ms.access(1, 0, AccessKind::Load, base + offset);
        assert!(merged.ready_at >= 1);
        assert!(merged.ready_at <= primary.ready_at.max(1 + ms.config().l1_latency));
    }
}
