//! Property tests for the memory hierarchy: timing monotonicity, tag-array
//! invariants, and functional/timing independence.

use proptest::prelude::*;
use sst_mem::{AccessKind, CacheConfig, MemConfig, MemSystem, TagArray};

fn small_mem() -> MemConfig {
    MemConfig {
        l1d: CacheConfig {
            size_bytes: 1024,
            ways: 2,
            line_bytes: 64,
        },
        l1i: CacheConfig {
            size_bytes: 1024,
            ways: 2,
            line_bytes: 64,
        },
        l2: CacheConfig {
            size_bytes: 8192,
            ways: 4,
            line_bytes: 64,
        },
        ..MemConfig::default()
    }
}

fn arb_kind() -> impl Strategy<Value = AccessKind> {
    prop_oneof![
        Just(AccessKind::Load),
        Just(AccessKind::Store),
        Just(AccessKind::IFetch),
        Just(AccessKind::Prefetch),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Completion time never precedes issue time, for any access sequence.
    #[test]
    fn ready_at_is_never_before_issue(
        seq in prop::collection::vec((arb_kind(), 0u64..1u64 << 20, 0u64..50), 1..200)
    ) {
        let mut ms = MemSystem::new(&small_mem(), 1);
        let mut now = 0u64;
        for (kind, addr, gap) in seq {
            let o = ms.access(now, 0, kind, addr);
            prop_assert!(o.ready_at >= now || kind == AccessKind::Prefetch);
            now += gap;
        }
    }

    /// Repeating the same address back-to-back always ends in an L1 hit.
    #[test]
    fn second_access_hits_l1(addr in 0u64..1u64 << 30) {
        let mut ms = MemSystem::new(&small_mem(), 1);
        let a = ms.access(0, 0, AccessKind::Load, addr);
        let b = ms.access(a.ready_at + 1, 0, AccessKind::Load, addr);
        prop_assert_eq!(b.level, sst_mem::HitLevel::L1);
    }

    /// Timing accesses never change memory contents.
    #[test]
    fn timing_never_mutates_data(
        addr in 0u64..1u64 << 20,
        val in any::<u64>(),
        probes in prop::collection::vec((arb_kind(), 0u64..1u64 << 20), 1..100),
    ) {
        let mut ms = MemSystem::new(&small_mem(), 1);
        ms.write(addr, 8, val);
        let mut now = 0;
        for (kind, a) in probes {
            let o = ms.access(now, 0, kind, a);
            now = o.ready_at.max(now) + 1;
        }
        prop_assert_eq!(ms.read(addr, 8), val);
    }

    /// The tag array never exceeds its capacity and fill-then-probe holds.
    #[test]
    fn tag_array_capacity_invariant(
        addrs in prop::collection::vec(0u64..1u64 << 24, 1..300)
    ) {
        let cfg = CacheConfig { size_bytes: 2048, ways: 4, line_bytes: 64 };
        let mut tags = TagArray::new(&cfg);
        let capacity = (cfg.size_bytes / cfg.line_bytes) as usize;
        for a in addrs {
            tags.fill(a, false);
            prop_assert!(tags.probe(a), "line just filled must be present");
            prop_assert!(tags.valid_lines() <= capacity);
        }
    }

    /// LRU property: within one set, the most recently touched line of a
    /// (ways+1)-line working set is never the victim.
    #[test]
    fn mru_line_survives_eviction(base in (0u64..1u64 << 16).prop_map(|a| a & !63)) {
        let cfg = CacheConfig { size_bytes: 512, ways: 2, line_bytes: 64 };
        let mut tags = TagArray::new(&cfg);
        let stride = 64 * cfg.sets() as u64;
        let a = base;
        let b = base + stride;
        let c = base + 2 * stride;
        tags.fill(a, false);
        tags.fill(b, false);
        tags.access(a, false); // a is MRU
        tags.fill(c, false); // must evict b
        prop_assert!(tags.probe(a));
        prop_assert!(!tags.probe(b));
        prop_assert!(tags.probe(c));
    }

    /// Merged misses (same line) never complete later than a fresh miss
    /// would, and never earlier than the primary fill.
    #[test]
    fn merge_bounded_by_primary(offset in 0u64..64) {
        let mut ms = MemSystem::new(&small_mem(), 1);
        let base = 0x40_0000u64;
        let primary = ms.access(0, 0, AccessKind::Load, base);
        let merged = ms.access(1, 0, AccessKind::Load, base + offset);
        prop_assert!(merged.ready_at >= 1);
        prop_assert!(merged.ready_at <= primary.ready_at.max(1 + ms.config().l1_latency));
    }
}
