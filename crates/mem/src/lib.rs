//! # sst-mem
//!
//! Cycle-level memory hierarchy for the `rock-sst` workspace: per-core
//! split L1 instruction/data caches, a shared banked L2, MSHRs that bound
//! miss-level parallelism, a DRAM model with bank and row-buffer effects,
//! and an optional stride prefetcher.
//!
//! ## Modeling approach
//!
//! The hierarchy separates **data** from **timing**:
//!
//! * Data lives in one [`sst_isa::SparseMem`] backing store and is read and
//!   written functionally ([`MemSystem::read`], [`MemSystem::write`]); the
//!   cache models carry tags only.
//! * Timing is computed at issue: [`MemSystem::access`] walks the hierarchy
//!   once and returns the absolute [`Cycle`] at which the access completes,
//!   accounting for hit level, MSHR availability (which bounds how many
//!   misses can overlap — the crucial resource for the SST study),
//!   shared-L2 port contention, DRAM bank conflicts, and row-buffer
//!   locality.
//!
//! This "resolve-at-issue" style keeps every core model simple (no
//! callback plumbing) while preserving the effects the ISCA 2009 evaluation
//! depends on: miss rates, overlap limits, and latency accumulation.
//!
//! Coherence is intentionally absent: the reproduced experiments run
//! single-threaded programs (or multiprogrammed mixes with disjoint address
//! spaces), matching the paper's per-thread performance methodology.
//!
//! ## Ports and deterministic parallelism
//!
//! The system splits along the chip's ownership boundary: each core owns a
//! private [`MemPort`] (L1s, L1 MSHRs, prefetcher, its slice of the backing
//! store, per-core counters) and reaches the shared L2/DRAM residue through
//! a [`MemBus`]. Serial drivers use [`MemSystem::bus`] (a plain reborrow);
//! parallel drivers call [`MemSystem::into_parallel`] and hand each worker
//! thread its ports plus a gated bus from [`ParallelMem::bus`], which
//! blocks each shared-state escalation until the core's deterministic turn
//! — so parallel runs are byte-identical to serial ones. See
//! [`ParallelMem`] for the turn protocol.
//!
//! ```
//! use sst_mem::{MemConfig, MemSystem, AccessKind, HitLevel};
//!
//! let mut ms = MemSystem::new(&MemConfig::default(), 1);
//! ms.write(0x1000, 8, 42); // functional write
//! let first = ms.access(0, 0, AccessKind::Load, 0x1000); // cold miss
//! assert_eq!(first.level, HitLevel::Mem);
//! let again = ms.access(first.ready_at, 0, AccessKind::Load, 0x1000);
//! assert_eq!(again.level, HitLevel::L1); // now cached
//! assert_eq!(ms.read(0x1000, 8), 42);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod config;
mod dram;
mod mshr;
mod parallel;
mod prefetch;
mod stats;
mod system;

pub use cache::TagArray;
pub use config::{CacheConfig, DramConfig, MemConfig, StrideConfig};
pub use dram::Dram;
pub use mshr::MshrFile;
pub use parallel::ParallelMem;
pub use prefetch::StridePrefetcher;
pub use stats::{CacheStats, MemStats};
pub use system::{AccessKind, AccessOutcome, HitLevel, LineProbe, MemBus, MemPort, MemSystem};

/// Simulation time, in core clock cycles.
pub type Cycle = u64;
