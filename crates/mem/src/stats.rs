//! Memory-hierarchy statistics.

/// Hit/miss counters for one cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total lookups.
    pub accesses: u64,
    /// Lookups that hit.
    pub hits: u64,
    /// Dirty evictions written back to the next level.
    pub writebacks: u64,
}

impl CacheStats {
    /// Misses (`accesses - hits`).
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }

    /// Miss ratio in `[0, 1]`; zero when idle.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses as f64
        }
    }

    /// Misses per thousand of `insts` retired instructions (MPKI).
    pub fn mpki(&self, insts: u64) -> f64 {
        if insts == 0 {
            0.0
        } else {
            self.misses() as f64 * 1000.0 / insts as f64
        }
    }
}

/// Aggregate statistics for a [`crate::MemSystem`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Per-core L1I stats.
    pub l1i: Vec<CacheStats>,
    /// Per-core L1D stats.
    pub l1d: Vec<CacheStats>,
    /// Shared L2 stats.
    pub l2: CacheStats,
    /// Demand DRAM reads.
    pub dram_reads: u64,
    /// DRAM row-buffer hits among demand reads.
    pub dram_row_hits: u64,
    /// DRAM writebacks.
    pub dram_writebacks: u64,
    /// Misses merged into in-flight MSHRs (all levels).
    pub mshr_merges: u64,
    /// Misses delayed by a full MSHR file (all levels).
    pub mshr_full_delays: u64,
    /// Prefetches issued into the hierarchy.
    pub prefetches: u64,
    /// Prefetched lines that were later demanded while still cached.
    pub useful_prefetches: u64,
}

impl MemStats {
    /// Creates per-core vectors for `cores` cores.
    pub fn new(cores: usize) -> MemStats {
        MemStats {
            l1i: vec![CacheStats::default(); cores],
            l1d: vec![CacheStats::default(); cores],
            ..MemStats::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates() {
        let s = CacheStats {
            accesses: 100,
            hits: 90,
            writebacks: 0,
        };
        assert_eq!(s.misses(), 10);
        assert!((s.miss_rate() - 0.1).abs() < 1e-12);
        assert!((s.mpki(1000) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn idle_rates_are_zero() {
        let s = CacheStats::default();
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.mpki(0), 0.0);
    }
}
