//! Deterministic parallel access to the shared memory residue.
//!
//! [`crate::MemSystem::into_parallel`] splits a memory system into its
//! per-core [`MemPort`]s (moved onto worker threads) and a
//! [`ParallelMem`] holding the shared L2/DRAM residue. Workers drive
//! their cores through gated [`MemBus`]es; every escalation into the
//! shared residue first waits for the core's *turn*, defined so that
//! shared structures observe accesses in exactly the order a serial
//! driver produces: ascending cycle, and within one cycle ascending
//! core id, with each core's whole tick atomic.
//!
//! # The horizon protocol
//!
//! Each core `i` publishes a *horizon* `h[i]`: the number of cycles it
//! has fully completed (equivalently, the cycle it will execute next).
//! A halted core publishes `u64::MAX`. Core `i`, mid-tick at cycle
//! `c`, may touch shared state once
//!
//! * every lower-id core `j < i` has `h[j] > c` (its cycle-`c` shared
//!   accesses are all done), and
//! * every higher-id core `j > i` has `h[j] >= c` (its accesses from
//!   cycles before `c` are all done; its cycle-`c` accesses come after
//!   `i`'s and are blocked on `h[i] > c`, which cannot hold while `i`
//!   is still mid-tick).
//!
//! Suppose cores `i < j` were both inside the shared residue at once,
//! at cycles `ci` and `cj`. `i` required `h[j] >= ci`, and `j` mid-tick
//! means `h[j] = cj`, so `cj >= ci`; `j` required `h[i] > cj`, and `i`
//! mid-tick means `h[i] = ci`, so `ci > cj` — a contradiction. Mutual
//! exclusion therefore holds *by the protocol*; the [`Mutex`] around
//! the residue is uncontended and exists to make the sharing sound
//! safe Rust, not to order anything. Progress: the globally minimal
//! `(cycle, id)` unhalted core satisfies both conditions and never
//! blocks. Because horizons only grow, one wait per `(core, cycle)`
//! suffices; the bus caches the acquired cycle and skips the scan for
//! further shared accesses within the same tick.
//!
//! If a worker panics (a wedged core, a model bug), it poisons the
//! horizon table on unwind so that peers spinning on its horizon panic
//! too instead of waiting forever.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use crate::system::{L2Shared, MemBus, MemPort, MemSystem};
use crate::{Cycle, MemConfig};

/// Per-core progress horizons plus the poison flag (see module docs).
pub(crate) struct Horizons {
    h: Vec<AtomicU64>,
    poisoned: AtomicBool,
}

impl Horizons {
    fn new(cores: usize) -> Horizons {
        Horizons {
            h: (0..cores).map(|_| AtomicU64::new(0)).collect(),
            poisoned: AtomicBool::new(false),
        }
    }

    /// Blocks until it is `core`'s turn to touch shared state at `now`.
    ///
    /// # Panics
    ///
    /// Panics if a peer worker poisoned the table (its own panic is
    /// already unwinding; this one just stops the spin).
    fn wait_turn(&self, core: usize, now: Cycle) {
        let mut spins = 0u32;
        loop {
            let mut ready = true;
            for (j, h) in self.h.iter().enumerate() {
                if j == core {
                    continue;
                }
                let need = if j < core { now + 1 } else { now };
                if h.load(Ordering::Acquire) < need {
                    ready = false;
                    break;
                }
            }
            if ready {
                return;
            }
            if self.poisoned.load(Ordering::Relaxed) {
                panic!("parallel CMP worker: a peer worker panicked");
            }
            // Brief spin for the common near-lockstep case, then yield so
            // lagging workers get the CPU (essential on small hosts).
            spins = spins.wrapping_add(1);
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }
}

/// The shared half of a split [`MemSystem`]: configuration, the
/// L2/DRAM residue behind an (uncontended, see module docs) [`Mutex`],
/// and the horizon table that serializes access to it.
///
/// `&ParallelMem` is shared across worker threads; each worker pairs it
/// with its owned [`MemPort`]s via [`ParallelMem::bus`].
pub struct ParallelMem {
    cfg: MemConfig,
    shared: Mutex<L2Shared>,
    horizons: Horizons,
}

impl MemSystem {
    /// Splits the system into its per-core ports (to be moved onto
    /// worker threads) and the shared residue. [`ParallelMem::into_system`]
    /// reassembles the pieces for final statistics.
    pub fn into_parallel(self) -> (Vec<MemPort>, ParallelMem) {
        let n = self.ports.len();
        (
            self.ports,
            ParallelMem {
                cfg: self.cfg,
                shared: Mutex::new(self.shared),
                horizons: Horizons::new(n),
            },
        )
    }
}

impl ParallelMem {
    /// A gated bus for `core`: L1-local traffic hits `port` directly;
    /// escalations into the shared residue wait for the core's turn.
    ///
    /// The caller must pass the port that was at index `core` in the
    /// [`MemSystem::into_parallel`] result — the pairing is what keeps
    /// per-core statistics and the turn order consistent.
    pub fn bus<'a>(&'a self, port: &'a mut MemPort, core: usize) -> MemBus<'a> {
        MemBus::new(
            &self.cfg,
            port,
            SharedHandle::Gated {
                shared: &self.shared,
                horizons: &self.horizons,
                core,
                acquired_for: None,
            },
        )
    }

    /// The configuration in use.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Publishes that `core` has completed every cycle below
    /// `next_cycle`. Call after each tick with `now + 1`, and after a
    /// fast-forward skip with the skip target (skipped cycles touch no
    /// memory, so jumping the horizon over them is exact).
    pub fn note_progress(&self, core: usize, next_cycle: Cycle) {
        self.horizons.h[core].store(next_cycle, Ordering::Release);
    }

    /// Publishes that `core` has halted and will never touch shared
    /// state again.
    pub fn note_halted(&self, core: usize) {
        self.horizons.h[core].store(u64::MAX, Ordering::Release);
    }

    /// Marks the run as failed so peers blocked in a turn wait panic
    /// instead of spinning forever. Called from workers' unwind paths.
    pub fn poison(&self) {
        self.horizons.poisoned.store(true, Ordering::Release);
    }

    /// `true` once any worker poisoned the run.
    pub fn is_poisoned(&self) -> bool {
        self.horizons.poisoned.load(Ordering::Relaxed)
    }

    /// Reassembles a serial [`MemSystem`] (for [`MemSystem::stats`])
    /// from the shared residue and the ports handed back by the
    /// workers, in core order.
    pub fn into_system(self, ports: Vec<MemPort>) -> MemSystem {
        let shared = match self.shared.into_inner() {
            Ok(s) => s,
            Err(poisoned) => poisoned.into_inner(),
        };
        MemSystem {
            cfg: self.cfg,
            ports,
            shared,
        }
    }
}

/// How a [`MemBus`] reaches the shared residue: directly (serial) or
/// through the horizon gate (parallel).
pub(crate) enum SharedHandle<'a> {
    /// Serial simulation: a plain reborrow, zero synchronization.
    Direct(&'a mut L2Shared),
    /// Parallel simulation: wait for the core's turn, then lock the
    /// (uncontended) mutex.
    Gated {
        shared: &'a Mutex<L2Shared>,
        horizons: &'a Horizons,
        core: usize,
        /// Cycle for which the turn wait has already been performed;
        /// horizons only grow, so one wait per (core, cycle) suffices.
        acquired_for: Option<Cycle>,
    },
}

impl<'a> SharedHandle<'a> {
    /// Grants access to the shared residue for an access at cycle `now`,
    /// waiting for the core's deterministic turn when gated.
    pub(crate) fn acquire(&mut self, now: Cycle) -> SharedGuard<'_> {
        match self {
            SharedHandle::Direct(s) => SharedGuard::Direct(s),
            SharedHandle::Gated {
                shared,
                horizons,
                core,
                acquired_for,
            } => {
                if *acquired_for != Some(now) {
                    horizons.wait_turn(*core, now);
                    *acquired_for = Some(now);
                }
                let guard = shared.lock().unwrap_or_else(|p| p.into_inner());
                SharedGuard::Locked(guard)
            }
        }
    }
}

/// Exclusive access to the shared residue for one escalation.
pub(crate) enum SharedGuard<'g> {
    Direct(&'g mut L2Shared),
    Locked(MutexGuard<'g, L2Shared>),
}

impl std::ops::Deref for SharedGuard<'_> {
    type Target = L2Shared;
    fn deref(&self) -> &L2Shared {
        match self {
            SharedGuard::Direct(s) => s,
            SharedGuard::Locked(g) => g,
        }
    }
}

impl std::ops::DerefMut for SharedGuard<'_> {
    fn deref_mut(&mut self) -> &mut L2Shared {
        match self {
            SharedGuard::Direct(s) => s,
            SharedGuard::Locked(g) => g,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AccessKind, MemConfig};

    /// Runs `accesses` (one per core, all at the same cycle) through a
    /// serial MemSystem and returns the outcomes in core order.
    fn serial_outcomes(
        cfg: &MemConfig,
        cores: usize,
        accesses: &[(AccessKind, u64)],
    ) -> Vec<crate::AccessOutcome> {
        let mut ms = MemSystem::new(cfg, cores);
        accesses
            .iter()
            .enumerate()
            .map(|(i, &(kind, addr))| ms.access(0, i, kind, addr))
            .collect()
    }

    /// Same accesses through the parallel path, with thread `i` started
    /// in *reverse* core order and staggered so the raw thread schedule
    /// is maximally wrong — the horizon gate must still impose core
    /// order. Returns (outcomes, reassembled system).
    fn parallel_outcomes(
        cfg: &MemConfig,
        cores: usize,
        accesses: &[(AccessKind, u64)],
    ) -> (Vec<crate::AccessOutcome>, MemSystem) {
        let ms = MemSystem::new(cfg, cores);
        let (mut ports, pmem) = ms.into_parallel();
        let mut outcomes = vec![None; cores];
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            // Reverse order + stagger: higher-id cores race ahead.
            for (i, port) in ports.iter_mut().enumerate().rev() {
                let pmem = &pmem;
                let (kind, addr) = accesses[i];
                handles.push((
                    i,
                    s.spawn(move || {
                        // Lower-id cores start later: if the gate were
                        // absent, higher cores would win the L2 port.
                        std::thread::sleep(std::time::Duration::from_millis(
                            10 * (cores - 1 - i) as u64,
                        ));
                        let mut bus = pmem.bus(port, i);
                        let out = bus.access(0, kind, addr);
                        drop(bus);
                        pmem.note_halted(i);
                        out
                    }),
                ));
            }
            for (i, h) in handles {
                outcomes[i] = Some(h.join().expect("worker ok"));
            }
        });
        let sys = pmem.into_system(ports);
        (outcomes.into_iter().map(|o| o.unwrap()).collect(), sys)
    }

    fn assert_parallel_matches_serial(cfg: &MemConfig, accesses: &[(AccessKind, u64)]) {
        let n = accesses.len();
        let serial = serial_outcomes(cfg, n, accesses);
        let (par, sys) = parallel_outcomes(cfg, n, accesses);
        assert_eq!(par, serial, "outcomes must match the serial interleaving");
        let mut ms = MemSystem::new(cfg, n);
        for (i, &(kind, addr)) in accesses.iter().enumerate() {
            ms.access(0, i, kind, addr);
        }
        assert_eq!(sys.stats(), ms.stats(), "stats must match too");
    }

    #[test]
    fn same_cycle_requests_are_serviced_in_core_order() {
        // Distinct lines, same cycle: the L2 port arbiter must see core
        // 0 first even though core 2's thread runs first.
        let cfg = MemConfig {
            l2_port_cycles: 7,
            ..MemConfig::default()
        };
        let accesses = [
            (AccessKind::Load, 0x1_0000),
            (AccessKind::Load, 0x2_0000),
            (AccessKind::Load, 0x3_0000),
        ];
        assert_parallel_matches_serial(&cfg, &accesses);
        // And the ordering is visible in the outcomes: core 0 wins the
        // port, each later core waits one more port slot.
        let serial = serial_outcomes(&cfg, 3, &accesses);
        assert!(serial[0].ready_at < serial[1].ready_at);
        assert!(serial[1].ready_at < serial[2].ready_at);
    }

    #[test]
    fn bank_conflict_backpressure_is_deterministic() {
        // Large port occupancy: same-cycle accesses serialize hard on
        // the shared port; order must still be core 0 < 1 < 2 < 3.
        let cfg = MemConfig {
            l2_port_cycles: 50,
            ..MemConfig::default()
        };
        let accesses = [
            (AccessKind::Load, 0x1_0000),
            (AccessKind::Store, 0x2_0000),
            (AccessKind::Load, 0x3_0000),
            (AccessKind::Store, 0x4_0000),
        ];
        assert_parallel_matches_serial(&cfg, &accesses);
    }

    #[test]
    fn l2_mshr_full_backpressure_is_deterministic() {
        // One L2 MSHR: the second and third cores' misses must queue
        // behind the first in core order, regardless of thread schedule.
        let cfg = MemConfig {
            l2_mshrs: 1,
            ..MemConfig::default()
        };
        let accesses = [
            (AccessKind::Load, 0x1_0000),
            (AccessKind::Load, 0x2_0000),
            (AccessKind::Load, 0x3_0000),
        ];
        assert_parallel_matches_serial(&cfg, &accesses);
        let serial = serial_outcomes(&cfg, 3, &accesses);
        assert!(
            serial[2].ready_at > serial[0].ready_at,
            "third miss queues behind the single MSHR"
        );
        let mut ms = MemSystem::new(&cfg, 3);
        for (i, &(kind, addr)) in accesses.iter().enumerate() {
            ms.access(0, i, kind, addr);
        }
        assert!(ms.stats().mshr_full_delays > 0);
    }

    #[test]
    fn multi_cycle_interleaving_matches_serial() {
        // Two cores, several ticks each, sharing L2 lines (cross-core
        // L2 reuse): drive the parallel path tick by tick with real
        // progress notes and compare against the serial driver.
        let cfg = MemConfig::default();
        let plan: [&[(AccessKind, u64)]; 2] = [
            &[(AccessKind::Load, 0x5000), (AccessKind::Load, 0x6000)],
            &[(AccessKind::Load, 0x5000), (AccessKind::Store, 0x6000)],
        ];

        // Serial reference: cycle-major, core-minor.
        let mut ms = MemSystem::new(&cfg, 2);
        let mut serial = Vec::new();
        for t in 0..2 {
            for core in 0..2 {
                serial.push(ms.access(t as Cycle, core, plan[core][t].0, plan[core][t].1));
            }
        }
        let serial_stats = ms.stats();

        // Parallel: each worker plays its core's two ticks.
        let (mut ports, pmem) = MemSystem::new(&cfg, 2).into_parallel();
        let mut par = vec![Vec::new(); 2];
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for (i, port) in ports.iter_mut().enumerate().rev() {
                let pmem = &pmem;
                let my_plan = plan[i];
                handles.push((
                    i,
                    s.spawn(move || {
                        let mut outs = Vec::new();
                        for (t, &(kind, addr)) in my_plan.iter().enumerate() {
                            let mut bus = pmem.bus(port, i);
                            outs.push(bus.access(t as Cycle, kind, addr));
                            drop(bus);
                            pmem.note_progress(i, t as Cycle + 1);
                        }
                        pmem.note_halted(i);
                        outs
                    }),
                ));
            }
            for (i, h) in handles {
                par[i] = h.join().expect("worker ok");
            }
        });
        let psys = pmem.into_system(ports);

        let par_flat: Vec<_> = (0..2).flat_map(|t| [par[0][t], par[1][t]]).collect();
        assert_eq!(par_flat, serial);
        assert_eq!(psys.stats(), serial_stats);
    }

    #[test]
    fn poison_unblocks_waiters() {
        let (mut ports, pmem) = MemSystem::new(&MemConfig::default(), 2).into_parallel();
        let mut it = ports.iter_mut();
        let p0 = it.next().unwrap();
        let _p0 = p0; // core 0 never progresses: core 1 would wait forever
        let p1 = it.next().unwrap();
        let caught = std::thread::scope(|s| {
            let pmem = &pmem;
            let h = s.spawn(move || {
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let mut bus = pmem.bus(p1, 1);
                    bus.access(0, AccessKind::Load, 0x9000)
                }));
                r.is_err()
            });
            std::thread::sleep(std::time::Duration::from_millis(30));
            pmem.poison();
            h.join().expect("join")
        });
        assert!(caught, "waiter must panic once poisoned");
        assert!(pmem.is_poisoned());
    }
}
