//! Set-associative tag array with true-LRU replacement.
//!
//! The array tracks presence, dirtiness, and recency only; data always
//! lives in the backing [`sst_isa::SparseMem`].

use sst_isa::{SnapError, SnapReader, SnapWriter};

use crate::CacheConfig;

#[derive(Clone, Copy, Debug, Default)]
struct Way {
    valid: bool,
    dirty: bool,
    tag: u64,
    /// LRU stamp; larger = more recently used.
    stamp: u64,
}

/// Result of a fill that displaced a line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Eviction {
    /// Block-aligned address of the displaced line.
    pub addr: u64,
    /// `true` if the displaced line was dirty (needs a writeback).
    pub dirty: bool,
}

/// A set-associative, write-back, write-allocate tag array.
#[derive(Clone, Debug)]
pub struct TagArray {
    ways: Vec<Way>, // sets * assoc, row-major by set
    assoc: usize,
    sets: usize,
    line_shift: u32,
    next_stamp: u64,
}

impl TagArray {
    /// Builds an empty array for the given geometry.
    pub fn new(config: &CacheConfig) -> TagArray {
        let sets = config.sets();
        TagArray {
            ways: vec![Way::default(); sets * config.ways],
            assoc: config.ways,
            sets,
            line_shift: config.line_bytes.trailing_zeros(),
            next_stamp: 1,
        }
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        1 << self.line_shift
    }

    /// The block-aligned address containing `addr`.
    pub fn block_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift << self.line_shift
    }

    fn set_index(&self, addr: u64) -> usize {
        ((addr >> self.line_shift) as usize) & (self.sets - 1)
    }

    fn tag_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift >> self.sets.trailing_zeros()
    }

    fn set_range(&self, set: usize) -> std::ops::Range<usize> {
        set * self.assoc..(set + 1) * self.assoc
    }

    /// Looks up `addr`; on hit, refreshes recency and (for writes) sets the
    /// dirty bit. Returns `true` on hit.
    pub fn access(&mut self, addr: u64, write: bool) -> bool {
        let set = self.set_index(addr);
        let tag = self.tag_of(addr);
        let stamp = self.next_stamp;
        let range = self.set_range(set);
        for way in &mut self.ways[range] {
            if way.valid && way.tag == tag {
                way.stamp = stamp;
                way.dirty |= write;
                self.next_stamp += 1;
                return true;
            }
        }
        false
    }

    /// Checks for presence without perturbing recency or dirty state.
    pub fn probe(&self, addr: u64) -> bool {
        let set = self.set_index(addr);
        let tag = self.tag_of(addr);
        self.ways[self.set_range(set)]
            .iter()
            .any(|w| w.valid && w.tag == tag)
    }

    /// Inserts the line containing `addr`, evicting the LRU way if the set
    /// is full. The new line's dirty bit is `write`. Returns the eviction,
    /// if a valid line was displaced.
    ///
    /// Inserting a line that is already present just refreshes it.
    pub fn fill(&mut self, addr: u64, write: bool) -> Option<Eviction> {
        if self.access(addr, write) {
            return None;
        }
        let set = self.set_index(addr);
        let tag = self.tag_of(addr);
        let stamp = self.next_stamp;
        self.next_stamp += 1;

        let range = self.set_range(set);
        // Choose an invalid way, else the smallest stamp (LRU).
        let mut victim = range.start;
        let mut best = u64::MAX;
        for i in range {
            let w = &self.ways[i];
            if !w.valid {
                victim = i;
                break;
            }
            if w.stamp < best {
                best = w.stamp;
                victim = i;
            }
        }

        let w = &mut self.ways[victim];
        let evicted = if w.valid {
            let set_bits = self.sets.trailing_zeros();
            let addr = ((w.tag << set_bits) | set as u64) << self.line_shift;
            Some(Eviction {
                addr,
                dirty: w.dirty,
            })
        } else {
            None
        };
        *w = Way {
            valid: true,
            dirty: write,
            tag,
            stamp,
        };
        evicted
    }

    /// Invalidates the line containing `addr` if present; returns whether it
    /// was dirty.
    pub fn invalidate(&mut self, addr: u64) -> Option<bool> {
        let set = self.set_index(addr);
        let tag = self.tag_of(addr);
        let range = self.set_range(set);
        for way in &mut self.ways[range] {
            if way.valid && way.tag == tag {
                way.valid = false;
                return Some(way.dirty);
            }
        }
        None
    }

    /// Number of currently valid lines (for occupancy diagnostics).
    pub fn valid_lines(&self) -> usize {
        self.ways.iter().filter(|w| w.valid).count()
    }

    /// Serializes every way (valid, dirty, tag, LRU stamp) plus the stamp
    /// counter. Geometry is not written: it derives from the config the
    /// restored array was built with, and restore validates the way count.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.tag("TAGA");
        w.put_u64(self.next_stamp);
        w.put_usize(self.ways.len());
        for way in &self.ways {
            w.put_bool(way.valid);
            w.put_bool(way.dirty);
            w.put_u64(way.tag);
            w.put_u64(way.stamp);
        }
    }

    /// Restores state written by [`TagArray::save_state`] on an array of
    /// the same geometry.
    ///
    /// # Errors
    ///
    /// [`SnapError`] on truncated, corrupt, or geometry-mismatched input.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.tag("TAGA")?;
        let next_stamp = r.take_u64()?;
        let n = r.take_usize()?;
        if n != self.ways.len() {
            return Err(SnapError::Mismatch(format!(
                "tag-array way count {n} != configured {}",
                self.ways.len()
            )));
        }
        for way in self.ways.iter_mut() {
            way.valid = r.take_bool()?;
            way.dirty = r.take_bool()?;
            way.tag = r.take_u64()?;
            way.stamp = r.take_u64()?;
        }
        self.next_stamp = next_stamp;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TagArray {
        // 4 sets x 2 ways x 64B = 512B
        TagArray::new(&CacheConfig {
            size_bytes: 512,
            ways: 2,
            line_bytes: 64,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x1000, false));
        assert_eq!(c.fill(0x1000, false), None);
        assert!(c.access(0x1000, false));
        assert!(c.access(0x103f, false), "same line hits");
        assert!(!c.access(0x1040, false), "next line misses");
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Three conflicting lines in a 2-way set: strides of sets*line = 256.
        c.fill(0x0000, false);
        c.fill(0x0100, false);
        c.access(0x0000, false); // make 0x0100 the LRU
        let ev = c.fill(0x0200, false).expect("set overflow evicts");
        assert_eq!(ev.addr, 0x0100);
        assert!(c.probe(0x0000));
        assert!(!c.probe(0x0100));
        assert!(c.probe(0x0200));
    }

    #[test]
    fn dirty_bit_tracks_writes() {
        let mut c = tiny();
        c.fill(0x0000, false);
        c.access(0x0000, true); // dirty it
        c.fill(0x0100, false);
        let ev = c.fill(0x0200, false).expect("evicts");
        assert_eq!(ev.addr, 0x0000, "0x0000 became LRU after later fills");
        assert!(ev.dirty);
    }

    #[test]
    fn fill_with_write_marks_dirty() {
        let mut c = tiny();
        c.fill(0x0000, true);
        c.fill(0x0100, false);
        c.access(0x0100, false);
        let ev = c.fill(0x0200, false).unwrap();
        assert_eq!(ev.addr, 0x0000);
        assert!(ev.dirty);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        c.fill(0x0000, true);
        assert_eq!(c.invalidate(0x0000), Some(true));
        assert_eq!(c.invalidate(0x0000), None);
        assert!(!c.probe(0x0000));
    }

    #[test]
    fn eviction_address_reconstruction() {
        let mut c = tiny();
        let addr = 0xdead_bec0u64; // arbitrary, line-aligned bits preserved
        c.fill(addr, false);
        // Conflict it out with two same-set lines.
        let stride = 256; // sets * line
        c.fill(addr + stride, false);
        let ev = c.fill(addr + 2 * stride, false).unwrap();
        assert_eq!(ev.addr, c.block_of(addr));
    }

    #[test]
    fn refill_existing_line_refreshes_without_evicting() {
        let mut c = tiny();
        c.fill(0x0000, false);
        c.fill(0x0100, false);
        assert_eq!(c.fill(0x0000, false), None); // refresh, no eviction
        let ev = c.fill(0x0200, false).unwrap();
        assert_eq!(ev.addr, 0x0100, "refreshed 0x0000 survives");
    }

    #[test]
    fn valid_lines_counts() {
        let mut c = tiny();
        assert_eq!(c.valid_lines(), 0);
        c.fill(0, false);
        c.fill(64, false);
        assert_eq!(c.valid_lines(), 2);
    }
}
