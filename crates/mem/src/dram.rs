//! DRAM timing model: one channel, N banks, per-bank open-row tracking.

use sst_isa::{SnapError, SnapReader, SnapWriter};

use crate::{Cycle, DramConfig};

/// Per-access DRAM timing outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DramOutcome {
    /// Cycle the data returns to the requester.
    pub ready_at: Cycle,
    /// Whether the access hit the bank's open row.
    pub row_hit: bool,
}

/// The DRAM device + channel model.
///
/// Each access serializes on the shared channel, then on its bank. Banks
/// keep one open row; accesses to the same row pay
/// [`DramConfig::row_hit_cycles`], others pay
/// [`DramConfig::row_miss_cycles`].
#[derive(Clone, Debug)]
pub struct Dram {
    cfg: DramConfig,
    channel_free_at: Cycle,
    bank_free_at: Vec<Cycle>,
    open_row: Vec<Option<u64>>,
    /// Total demand accesses served.
    pub accesses: u64,
    /// Accesses that hit an open row.
    pub row_hits: u64,
    /// Writebacks absorbed (occupy the channel but return no data).
    pub writebacks: u64,
}

impl Dram {
    /// Creates an idle DRAM model.
    pub fn new(cfg: DramConfig) -> Dram {
        Dram {
            channel_free_at: 0,
            bank_free_at: vec![0; cfg.banks],
            open_row: vec![None; cfg.banks],
            cfg,
            accesses: 0,
            row_hits: 0,
            writebacks: 0,
        }
    }

    /// Timing parameters in use.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    fn bank_of(&self, addr: u64) -> usize {
        // Interleave banks on row granularity so sequential rows hit
        // different banks.
        ((addr / self.cfg.row_bytes) as usize) % self.cfg.banks
    }

    fn row_of(&self, addr: u64) -> u64 {
        addr / self.cfg.row_bytes / self.cfg.banks as u64
    }

    /// Issues a demand read arriving at the controller at `now`.
    pub fn read(&mut self, now: Cycle, addr: u64) -> DramOutcome {
        self.accesses += 1;
        let bank = self.bank_of(addr);
        let row = self.row_of(addr);

        let start = now.max(self.channel_free_at).max(self.bank_free_at[bank]);
        let row_hit = self.open_row[bank] == Some(row);
        if row_hit {
            self.row_hits += 1;
        }
        let access = self.cfg.base_cycles
            + if row_hit {
                self.cfg.row_hit_cycles
            } else {
                self.cfg.row_miss_cycles
            };
        let ready_at = start + access;

        self.channel_free_at = start + self.cfg.burst_cycles;
        self.bank_free_at[bank] = start + self.cfg.bank_busy_cycles;
        self.open_row[bank] = Some(row);

        DramOutcome { ready_at, row_hit }
    }

    /// Absorbs a writeback at `now`; occupies channel and bank but the
    /// requester does not wait for it.
    pub fn writeback(&mut self, now: Cycle, addr: u64) {
        self.writebacks += 1;
        let bank = self.bank_of(addr);
        let start = now.max(self.channel_free_at).max(self.bank_free_at[bank]);
        self.channel_free_at = start + self.cfg.burst_cycles;
        self.bank_free_at[bank] = start + self.cfg.bank_busy_cycles;
        self.open_row[bank] = Some(self.row_of(addr));
    }

    /// Serializes channel/bank timing, open rows, and counters.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.tag("DRAM");
        w.put_u64(self.channel_free_at);
        w.put_u64(self.accesses);
        w.put_u64(self.row_hits);
        w.put_u64(self.writebacks);
        w.put_usize(self.bank_free_at.len());
        for (&free_at, &row) in self.bank_free_at.iter().zip(&self.open_row) {
            w.put_u64(free_at);
            w.put_opt_u64(row);
        }
    }

    /// Restores state written by [`Dram::save_state`] on a model with the
    /// same bank count.
    ///
    /// # Errors
    ///
    /// [`SnapError`] on truncated, corrupt, or bank-mismatched input.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.tag("DRAM")?;
        let channel_free_at = r.take_u64()?;
        let accesses = r.take_u64()?;
        let row_hits = r.take_u64()?;
        let writebacks = r.take_u64()?;
        let banks = r.take_usize()?;
        if banks != self.bank_free_at.len() {
            return Err(SnapError::Mismatch(format!(
                "DRAM bank count {banks} != configured {}",
                self.bank_free_at.len()
            )));
        }
        for i in 0..banks {
            self.bank_free_at[i] = r.take_u64()?;
            self.open_row[i] = r.take_opt_u64()?;
        }
        self.channel_free_at = channel_free_at;
        self.accesses = accesses;
        self.row_hits = row_hits;
        self.writebacks = writebacks;
        Ok(())
    }

    /// Fraction of demand accesses that hit an open row.
    pub fn row_hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DramConfig {
        DramConfig {
            base_cycles: 100,
            row_hit_cycles: 10,
            row_miss_cycles: 50,
            banks: 4,
            row_bytes: 1024,
            bank_busy_cycles: 30,
            burst_cycles: 4,
        }
    }

    #[test]
    fn first_access_misses_row() {
        let mut d = Dram::new(cfg());
        let o = d.read(0, 0);
        assert!(!o.row_hit);
        assert_eq!(o.ready_at, 150);
    }

    #[test]
    fn second_access_same_row_hits() {
        let mut d = Dram::new(cfg());
        let a = d.read(0, 0);
        // Bank busy until 30; issue late enough to see only the row effect.
        let b = d.read(40, 512);
        assert!(b.row_hit);
        assert_eq!(b.ready_at, 40 + 110);
        assert!(a.ready_at > 0);
        assert_eq!(d.row_hit_rate(), 0.5);
    }

    #[test]
    fn bank_conflict_serializes() {
        let mut d = Dram::new(cfg());
        let rows_per_cycle = 1024 * 4; // same bank every banks*row_bytes
        let a = d.read(0, 0);
        let b = d.read(0, rows_per_cycle); // same bank 0, different row
        assert!(!b.row_hit);
        // Second starts when bank frees at 30.
        assert_eq!(b.ready_at, 30 + 150);
        assert!(b.ready_at > a.ready_at);
    }

    #[test]
    fn different_banks_overlap() {
        let mut d = Dram::new(cfg());
        let a = d.read(0, 0);
        let b = d.read(0, 1024); // next row -> different bank
        // Only channel burst (4) separates them.
        assert_eq!(a.ready_at, 150);
        assert_eq!(b.ready_at, 4 + 150);
    }

    #[test]
    fn writeback_occupies_but_does_not_block_result() {
        let mut d = Dram::new(cfg());
        d.writeback(0, 0);
        assert_eq!(d.writebacks, 1);
        let a = d.read(0, 1024); // different bank, only channel conflict
        assert_eq!(a.ready_at, 4 + 150);
    }
}
