//! The top-level memory system: per-core L1s, shared L2, DRAM.
//!
//! # Ports and the shared residue
//!
//! The system is split along the chip's natural ownership boundary:
//!
//! * [`MemPort`] — everything private to one core: its L1I/L1D tag
//!   arrays, L1 MSHR files, stride prefetcher, prefetch-residency set,
//!   its slice of the functional backing store, and its per-core
//!   statistics. A port can be handed to a worker thread wholesale.
//! * [`L2Shared`] (crate-private) — the residue every core contends on:
//!   the shared L2 tags, the L2 MSHR file, the L2 port arbiter, DRAM,
//!   and the L2/DRAM counters.
//!
//! Cores never touch either piece directly; they go through a
//! [`MemBus`], a per-core handle that routes L1-local traffic to the
//! port and escalates misses to the shared residue. In serial
//! simulation the bus holds a plain `&mut` to the shared state
//! ([`MemSystem::bus`]); in parallel simulation it holds a gated
//! reference that blocks until the core's deterministic turn comes up
//! (see [`crate::ParallelMem`]), so the shared structures observe the
//! exact same access interleaving — ascending `(cycle, core)` — as a
//! serial run.

use std::collections::HashSet;

use sst_isa::{SnapError, SnapReader, SnapWriter, SparseMem};
use sst_obs::{Event, HostTimes, Stage, TraceBuf};

use crate::cache::TagArray;
use crate::dram::Dram;
use crate::mshr::MshrFile;
use crate::parallel::SharedHandle;
use crate::prefetch::StridePrefetcher;
use crate::stats::{CacheStats, MemStats};
use crate::{Cycle, MemConfig};

/// What an access is, for routing and statistics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// Instruction fetch (routed to the L1I).
    IFetch,
    /// Demand data load.
    Load,
    /// Demand data store (write-allocate).
    Store,
    /// Software or hardware prefetch (fills caches, nobody waits).
    Prefetch,
}

/// Deepest level an access had to reach.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum HitLevel {
    /// Served by the L1.
    L1,
    /// Served by the shared L2.
    L2,
    /// Served by DRAM.
    Mem,
}

impl HitLevel {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            HitLevel::L1 => "L1",
            HitLevel::L2 => "L2",
            HitLevel::Mem => "mem",
        }
    }
}

/// Residency answer from [`MemBus::probe_residency`]: where (if
/// anywhere) a line still lives, observed without perturbing any cache,
/// MSHR, or counter state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LineProbe {
    /// Line present in the probing core's L1D tags.
    pub l1d: bool,
    /// Line present in the shared L2 tags.
    pub l2: bool,
    /// A fill of the line is still outstanding in the core's L1D MSHRs
    /// or the shared L2 MSHRs.
    pub in_flight: bool,
}

impl LineProbe {
    /// `true` when the line is observable anywhere — resident or with a
    /// fill on the way.
    pub fn any(&self) -> bool {
        self.l1d || self.l2 || self.in_flight
    }
}

/// Timing result of one access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Absolute cycle at which the data is available to the core.
    pub ready_at: Cycle,
    /// Deepest level reached.
    pub level: HitLevel,
}

impl AccessOutcome {
    /// Latency relative to the issue cycle.
    pub fn latency(&self, issued_at: Cycle) -> Cycle {
        self.ready_at.saturating_sub(issued_at)
    }
}

/// One core's private side of the memory system: L1 caches, L1 MSHRs,
/// prefetcher, prefetch-residency tracking, functional backing store,
/// and per-core counters.
///
/// Ports are created by [`MemSystem::new`] and either used in place
/// (serial simulation, through [`MemSystem::bus`]) or carved out with
/// [`MemSystem::into_parallel`] and moved onto worker threads.
pub struct MemPort {
    mem: SparseMem,
    l1i: TagArray,
    l1d: TagArray,
    l1i_mshr: MshrFile,
    l1d_mshr: MshrFile,
    prefetcher: Option<StridePrefetcher>,
    /// Blocks brought in by a prefetch and still resident in this L1D.
    /// Cleared on eviction, so the set is bounded by L1D capacity and a
    /// long-evicted prefetch is never credited as useful. Workload
    /// address slots are disjoint across cores, so per-port tracking is
    /// exact.
    prefetched: HashSet<u64>,
    l1i_stats: CacheStats,
    l1d_stats: CacheStats,
    prefetches: u64,
    useful_prefetches: u64,
    /// Typed event trace of demand-miss lifetimes, present only while
    /// tracing is enabled. Record-only (the `sst-obs` event-sink
    /// contract): nothing in the walk ever consults it, so traced runs
    /// are byte-identical to untraced ones.
    trace: Option<Box<TraceBuf>>,
    /// Host-side wall time spent inside this port's timing walks.
    prof: Option<Box<HostTimes>>,
}

impl MemPort {
    fn new(cfg: &MemConfig) -> MemPort {
        MemPort {
            mem: SparseMem::new(),
            l1i: TagArray::new(&cfg.l1i),
            l1d: TagArray::new(&cfg.l1d),
            l1i_mshr: MshrFile::new(4),
            l1d_mshr: MshrFile::new(cfg.l1d_mshrs),
            prefetcher: cfg.prefetch.map(StridePrefetcher::new),
            prefetched: HashSet::new(),
            l1i_stats: CacheStats::default(),
            l1d_stats: CacheStats::default(),
            prefetches: 0,
            useful_prefetches: 0,
            trace: None,
            prof: None,
        }
    }

    /// Enables (or disables) demand-miss tracing on this port.
    pub fn set_trace(&mut self, on: bool) {
        if on {
            if self.trace.is_none() {
                self.trace = Some(Box::new(TraceBuf::new()));
            }
        } else {
            self.trace = None;
        }
    }

    /// Takes the recorded miss trace, leaving tracing disabled.
    pub fn take_trace(&mut self) -> Option<TraceBuf> {
        self.trace.take().map(|tb| *tb)
    }

    /// Enables (or disables) host-side timing of this port's walks.
    pub fn set_host_prof(&mut self, on: bool) {
        if on {
            if self.prof.is_none() {
                self.prof = Some(Box::new(HostTimes::new()));
            }
        } else {
            self.prof = None;
        }
    }

    /// The accumulated host time, when profiling is enabled.
    pub fn host_times(&self) -> Option<&HostTimes> {
        self.prof.as_deref()
    }

    /// Mutable access to the port's functional backing store (program
    /// loading, test setup).
    pub fn mem_mut(&mut self) -> &mut SparseMem {
        &mut self.mem
    }

    /// Credits a prefetched line the first time a demand access touches
    /// it while it is still cached (or in flight).
    ///
    /// Policy: credit survives speculation rollback. A demand touch from
    /// a path that is later squashed still converts the prefetch to
    /// "useful", and a prefetch trained by a squashed load keeps its
    /// entry in `prefetched` until the line itself is evicted. This is
    /// deliberate: `useful_prefetches` measures *fill timeliness* — did
    /// the prefetcher move the line before something wanted it — not
    /// architectural correctness of the wanter, which is E13's business
    /// (the taint sweep separately reports squashed trainings as
    /// `leak_prefetch_trainings`). Rolling the credit back would also
    /// make the counter depend on checkpoint placement, destroying its
    /// comparability across the scout/EA/SST lineup, whose rollback
    /// cadences differ by design. `remove` keeps the credit at-most-once
    /// per prefetched fill; re-prefetching after eviction re-arms it.
    fn note_useful_prefetch(&mut self, block: u64) {
        // The set is empty whenever no prefetch is outstanding (always, for
        // workloads the stride table never locks onto) — skip the hash.
        if !self.prefetched.is_empty() && self.prefetched.remove(&block) {
            self.useful_prefetches += 1;
        }
    }

    fn save_state(&self, w: &mut SnapWriter) {
        w.tag("PORT");
        self.mem.save_state(w);
        self.l1i.save_state(w);
        self.l1d.save_state(w);
        self.l1i_mshr.save_state(w);
        self.l1d_mshr.save_state(w);
        match &self.prefetcher {
            Some(p) => {
                w.put_bool(true);
                p.save_state(w);
            }
            None => w.put_bool(false),
        }
        // The residency set is written sorted so serialization is a pure
        // function of logical state, not of hash iteration order.
        let mut resident: Vec<u64> = self.prefetched.iter().copied().collect();
        resident.sort_unstable();
        w.put_usize(resident.len());
        for b in resident {
            w.put_u64(b);
        }
        put_cache_stats(w, &self.l1i_stats);
        put_cache_stats(w, &self.l1d_stats);
        w.put_u64(self.prefetches);
        w.put_u64(self.useful_prefetches);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.tag("PORT")?;
        self.mem.restore_state(r)?;
        self.l1i.restore_state(r)?;
        self.l1d.restore_state(r)?;
        self.l1i_mshr.restore_state(r)?;
        self.l1d_mshr.restore_state(r)?;
        let has_prefetcher = r.take_bool()?;
        match (&mut self.prefetcher, has_prefetcher) {
            (Some(p), true) => p.restore_state(r)?,
            (None, false) => {}
            _ => {
                return Err(SnapError::Mismatch(
                    "prefetcher presence differs between snapshot and config".into(),
                ));
            }
        }
        let n = r.take_usize()?;
        self.prefetched.clear();
        for _ in 0..n {
            self.prefetched.insert(r.take_u64()?);
        }
        self.l1i_stats = take_cache_stats(r)?;
        self.l1d_stats = take_cache_stats(r)?;
        self.prefetches = r.take_u64()?;
        self.useful_prefetches = r.take_u64()?;
        Ok(())
    }
}

fn put_cache_stats(w: &mut SnapWriter, s: &CacheStats) {
    w.put_u64(s.accesses);
    w.put_u64(s.hits);
    w.put_u64(s.writebacks);
}

fn take_cache_stats(r: &mut SnapReader<'_>) -> Result<CacheStats, SnapError> {
    Ok(CacheStats {
        accesses: r.take_u64()?,
        hits: r.take_u64()?,
        writebacks: r.take_u64()?,
    })
}

/// The state every core contends on: shared L2 tags and MSHRs, the L2
/// port arbiter, DRAM, and their counters. Only ever touched through a
/// [`MemBus`], which serializes access in `(cycle, core)` order.
pub(crate) struct L2Shared {
    l2: TagArray,
    l2_mshr: MshrFile,
    l2_port_free_at: Cycle,
    dram: Dram,
    l2_stats: CacheStats,
}

impl L2Shared {
    /// The shared L2 + DRAM portion of a miss that starts at `start`.
    fn l2_walk(&mut self, cfg: &MemConfig, start: Cycle, write: bool, block: u64) -> (Cycle, HitLevel) {
        // Shared L2 port arbitration.
        let at_port = start.max(self.l2_port_free_at);
        self.l2_port_free_at = at_port + cfg.l2_port_cycles;
        let after_l2 = at_port + cfg.l2_latency;

        self.l2_stats.accesses += 1;

        // In-flight L2 fill?
        if let Some((ready, _)) = self.l2_mshr.lookup(at_port, block) {
            self.l2_mshr.note_merge();
            self.l2.access(block, false);
            return (ready.max(after_l2), HitLevel::Mem);
        }

        // Note: fills never mark L2 dirty — dirtiness reaches L2 only via
        // L1 writebacks (write-back hierarchy).
        if self.l2.access(block, false) {
            self.l2_stats.hits += 1;
            return (after_l2, HitLevel::L2);
        }

        // L2 miss: MSHR, then DRAM.
        let slot = self.l2_mshr.earliest_slot(after_l2);
        let dram_out = self.dram.read(slot, block);
        let ready = dram_out.ready_at;
        self.l2_mshr.insert(slot, block, ready, true);
        if let Some(ev) = self.l2.fill(block, false) {
            if ev.dirty {
                self.l2_stats.writebacks += 1;
                self.dram.writeback(slot, ev.addr);
            }
        }
        let _ = write;
        (ready, HitLevel::Mem)
    }

    /// An L1 dirty-victim writeback arriving at the L2 at `at`.
    fn l1_writeback(&mut self, at: Cycle, victim: u64) {
        // Write the dirty line into L2 (tag state only; the backing
        // store is always current).
        if let Some(l2_ev) = self.l2.fill(victim, true) {
            if l2_ev.dirty {
                self.l2_stats.writebacks += 1;
                self.dram.writeback(at, l2_ev.addr);
            }
        }
    }

    fn save_state(&self, w: &mut SnapWriter) {
        w.tag("L2SH");
        self.l2.save_state(w);
        self.l2_mshr.save_state(w);
        w.put_u64(self.l2_port_free_at);
        self.dram.save_state(w);
        put_cache_stats(w, &self.l2_stats);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.tag("L2SH")?;
        self.l2.restore_state(r)?;
        self.l2_mshr.restore_state(r)?;
        self.l2_port_free_at = r.take_u64()?;
        self.dram.restore_state(r)?;
        self.l2_stats = take_cache_stats(r)?;
        Ok(())
    }
}

/// A core's handle onto the memory system: its private [`MemPort`] plus
/// a (possibly gated) reference to the shared L2/DRAM residue.
///
/// All timing and functional traffic from a core goes through its bus;
/// the core index is implicit. In serial runs the bus is a zero-cost
/// reborrow ([`MemSystem::bus`]); in parallel runs shared-state
/// escalations first wait for the core's deterministic turn
/// ([`crate::ParallelMem::bus`]).
pub struct MemBus<'a> {
    cfg: &'a MemConfig,
    port: &'a mut MemPort,
    shared: SharedHandle<'a>,
}

impl<'a> MemBus<'a> {
    pub(crate) fn new(cfg: &'a MemConfig, port: &'a mut MemPort, shared: SharedHandle<'a>) -> MemBus<'a> {
        MemBus { cfg, port, shared }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MemConfig {
        self.cfg
    }

    /// Cache line size in bytes (uniform across levels).
    pub fn line_bytes(&self) -> u64 {
        self.cfg.l1d.line_bytes
    }

    // ---- functional data path ----------------------------------------------

    /// The core's functional backing memory.
    pub fn mem(&self) -> &SparseMem {
        &self.port.mem
    }

    /// Functionally reads `bytes` little-endian bytes at `addr`.
    pub fn read(&self, addr: u64, bytes: u64) -> u64 {
        self.port.mem.read_le(addr, bytes)
    }

    /// Functionally writes the low `bytes` bytes of `val` at `addr`.
    pub fn write(&mut self, addr: u64, bytes: u64, val: u64) {
        self.port.mem.write_le(addr, bytes, val);
    }

    // ---- timing path -------------------------------------------------------

    /// Performs the timing walk for one access and returns when it
    /// completes.
    ///
    /// `pc` is used only to train the optional stride prefetcher (pass the
    /// accessing instruction's PC; the value is irrelevant for fetches and
    /// prefetches). Accesses are attributed to the line containing `addr`;
    /// the rare line-straddling access is charged to its first line.
    pub fn access(&mut self, now: Cycle, kind: AccessKind, addr: u64) -> AccessOutcome {
        self.access_pc(now, kind, addr, 0)
    }

    /// Like [`MemBus::access`] but with the accessing PC for prefetcher
    /// training.
    pub fn access_pc(&mut self, now: Cycle, kind: AccessKind, addr: u64, pc: u64) -> AccessOutcome {
        let t0 = HostTimes::start(&self.port.prof);
        let outcome = self.demand_walk(now, kind, addr);

        // Train the prefetcher on demand data accesses and issue its
        // candidates as best-effort fills.
        if matches!(kind, AccessKind::Load | AccessKind::Store) {
            let candidates = match self.port.prefetcher.as_mut() {
                Some(p) => p.train(pc, addr),
                None => Vec::new(),
            };
            for cand in candidates {
                self.issue_prefetch(now, cand);
            }
        }
        HostTimes::stop(&mut self.port.prof, Stage::MemTick, t0);
        outcome
    }

    fn demand_walk(&mut self, now: Cycle, kind: AccessKind, addr: u64) -> AccessOutcome {
        let is_fetch = kind == AccessKind::IFetch;
        let write = kind == AccessKind::Store;
        let block = self.port.l1d.block_of(addr);

        if kind == AccessKind::Prefetch {
            self.issue_prefetch(now, addr);
            return AccessOutcome {
                ready_at: now,
                level: HitLevel::L1,
            };
        }

        let port = &mut *self.port;

        // Stats: L1 lookup.
        {
            let s = if is_fetch { &mut port.l1i_stats } else { &mut port.l1d_stats };
            s.accesses += 1;
        }

        // An in-flight fill for this block wins over the tag state (the tag
        // is installed at issue; data arrives at the MSHR's ready cycle).
        let mshr_hit = {
            let mshr = if is_fetch { &mut port.l1i_mshr } else { &mut port.l1d_mshr };
            mshr.lookup(now, block)
        };
        if let Some((ready, deep)) = mshr_hit {
            let mshr = if is_fetch { &mut port.l1i_mshr } else { &mut port.l1d_mshr };
            mshr.note_merge();
            // Keep dirty/recency state coherent with the logical access.
            let l1 = if is_fetch { &mut port.l1i } else { &mut port.l1d };
            l1.access(addr, write);
            port.note_useful_prefetch(block);
            return AccessOutcome {
                ready_at: ready.max(now + self.cfg.l1_latency),
                level: if deep { HitLevel::Mem } else { HitLevel::L2 },
            };
        }

        // L1 tag lookup.
        let l1_hit = {
            let l1 = if is_fetch { &mut port.l1i } else { &mut port.l1d };
            l1.access(addr, write)
        };
        if l1_hit {
            let s = if is_fetch { &mut port.l1i_stats } else { &mut port.l1d_stats };
            s.hits += 1;
            port.note_useful_prefetch(block);
            return AccessOutcome {
                ready_at: now + self.cfg.l1_latency,
                level: HitLevel::L1,
            };
        }

        // L1 miss: wait for an MSHR, then go to L2.
        let after_lookup = now + self.cfg.l1_latency;
        let start = {
            let mshr = if is_fetch { &mut port.l1i_mshr } else { &mut port.l1d_mshr };
            mshr.earliest_slot(after_lookup)
        };

        // Escalate into the shared residue: in parallel runs this blocks
        // until every lower-id core has finished this cycle and every
        // higher-id core has reached it, reproducing the serial
        // interleaving exactly.
        let mut sh = self.shared.acquire(now);
        let (ready_at, level) = sh.l2_walk(self.cfg, start, write, block);

        // Install the line in L1 and register the in-flight fill.
        {
            let l1 = if is_fetch { &mut port.l1i } else { &mut port.l1d };
            let evicted = l1.fill(addr, write);
            if let Some(ev) = evicted {
                if !is_fetch {
                    // A prefetched line leaving the L1D loses its tag: a
                    // later demand to it is no longer a useful prefetch,
                    // and the set stays bounded by the cache's capacity.
                    port.prefetched.remove(&ev.addr);
                }
                if ev.dirty {
                    let s = if is_fetch { &mut port.l1i_stats } else { &mut port.l1d_stats };
                    s.writebacks += 1;
                    sh.l1_writeback(start, ev.addr);
                }
            }
            let mshr = if is_fetch { &mut port.l1i_mshr } else { &mut port.l1d_mshr };
            // The register is claimed from the miss's start time (which
            // earliest_slot() may have pushed past `now` when the file was
            // full).
            mshr.insert(start, block, ready_at, level == HitLevel::Mem);
            if let Some(tb) = port.trace.as_mut() {
                tb.push(Event::MissSpan {
                    start,
                    end: ready_at,
                    block,
                    deep: level == HitLevel::Mem,
                });
            }
        }

        AccessOutcome { ready_at, level }
    }

    /// The block-aligned address of `addr`'s cache line.
    pub fn block_of(&self, addr: u64) -> u64 {
        self.port.l1d.block_of(addr)
    }

    /// Probes where `addr`'s line currently lives, without perturbing
    /// anything: no recency refresh, no dirty bits, no MSHR reaping, no
    /// counters. The speculation-taint sweep calls this at rollback to
    /// ask what squashed speculation left behind, and "zero cost when
    /// disabled" only holds because an *enabled* sweep is also invisible
    /// to timing. In parallel CMP runs the L2-side probe waits for the
    /// core's deterministic turn like any other shared-residue access.
    pub fn probe_residency(&mut self, now: Cycle, addr: u64) -> LineProbe {
        let block = self.port.l1d.block_of(addr);
        let l1d = self.port.l1d.probe(block);
        let l1_in_flight = self.port.l1d_mshr.probe(now, block);
        let sh = self.shared.acquire(now);
        LineProbe {
            l1d,
            l2: sh.l2.probe(block),
            in_flight: l1_in_flight || sh.l2_mshr.probe(now, block),
        }
    }

    /// Issues a best-effort prefetch of `addr`'s line.
    fn issue_prefetch(&mut self, now: Cycle, addr: u64) {
        let port = &mut *self.port;
        let block = port.l1d.block_of(addr);
        // Already cached or already in flight: nothing to do.
        if port.l1d.probe(block) || port.l1d_mshr.lookup(now, block).is_some() {
            return;
        }
        port.prefetches += 1;

        // Prefetches do not steal demand MSHRs if the file is full.
        let slot = {
            let mshr = &mut port.l1d_mshr;
            if mshr.in_flight(now) >= mshr.capacity() {
                return; // drop: demand traffic saturates the file
            }
            now + self.cfg.l1_latency
        };

        let mut sh = self.shared.acquire(now);
        let (ready_at, level) = sh.l2_walk(self.cfg, slot, false, block);
        let evicted = port.l1d.fill(block, false);
        if let Some(ev) = evicted {
            port.prefetched.remove(&ev.addr);
            if ev.dirty {
                port.l1d_stats.writebacks += 1;
                sh.l1_writeback(slot, ev.addr);
            }
        }
        port.l1d_mshr.insert(now, block, ready_at, level == HitLevel::Mem);
        port.prefetched.insert(block);
    }
}

/// The complete memory system for `n` cores sharing an L2 and DRAM.
///
/// See the [crate documentation](crate) for the modeling approach. All
/// methods taking a `core` index panic if it is out of range.
pub struct MemSystem {
    pub(crate) cfg: MemConfig,
    pub(crate) ports: Vec<MemPort>,
    pub(crate) shared: L2Shared,
}

impl MemSystem {
    /// Builds an empty (cold) memory system for `cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero or any cache geometry is inconsistent.
    pub fn new(cfg: &MemConfig, cores: usize) -> MemSystem {
        assert!(cores > 0, "need at least one core");
        MemSystem {
            cfg: cfg.clone(),
            ports: (0..cores).map(|_| MemPort::new(cfg)).collect(),
            shared: L2Shared {
                l2: TagArray::new(&cfg.l2),
                l2_mshr: MshrFile::new(cfg.l2_mshrs),
                l2_port_free_at: 0,
                dram: Dram::new(cfg.dram),
                l2_stats: CacheStats::default(),
            },
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Cache line size in bytes (uniform across levels).
    pub fn line_bytes(&self) -> u64 {
        self.cfg.l1d.line_bytes
    }

    /// Number of cores this system serves.
    pub fn core_count(&self) -> usize {
        self.ports.len()
    }

    /// A serial (ungated) bus for `core`: the view a core gets of its
    /// private port plus direct access to the shared residue.
    pub fn bus(&mut self, core: usize) -> MemBus<'_> {
        MemBus {
            cfg: &self.cfg,
            port: &mut self.ports[core],
            shared: SharedHandle::Direct(&mut self.shared),
        }
    }

    // ---- functional data path ------------------------------------------------

    /// The backing memory image of core 0 (single-core systems' program
    /// and data live here).
    pub fn mem(&self) -> &SparseMem {
        &self.ports[0].mem
    }

    /// Mutable backing memory of core 0 (program loading, test setup).
    pub fn mem_mut(&mut self) -> &mut SparseMem {
        &mut self.ports[0].mem
    }

    /// Mutable backing memory of `core`'s port. Multiprogrammed CMP
    /// drivers load each slot's program through this; workload address
    /// slots are disjoint, so splitting the image per port is exact.
    pub fn port_mem_mut(&mut self, core: usize) -> &mut SparseMem {
        &mut self.ports[core].mem
    }

    /// Functionally reads `bytes` little-endian bytes at `addr` from
    /// core 0's image.
    pub fn read(&self, addr: u64, bytes: u64) -> u64 {
        self.ports[0].mem.read_le(addr, bytes)
    }

    /// Functionally writes the low `bytes` bytes of `val` at `addr` into
    /// core 0's image.
    pub fn write(&mut self, addr: u64, bytes: u64, val: u64) {
        self.ports[0].mem.write_le(addr, bytes, val);
    }

    // ---- timing path -----------------------------------------------------------

    /// Performs the timing walk for one access by `core` and returns when
    /// it completes. Convenience form of [`MemBus::access`] for tests and
    /// single-threaded callers.
    pub fn access(&mut self, now: Cycle, core: usize, kind: AccessKind, addr: u64) -> AccessOutcome {
        self.bus(core).access_pc(now, kind, addr, 0)
    }

    /// Like [`MemSystem::access`] but with the accessing PC for prefetcher
    /// training.
    pub fn access_pc(
        &mut self,
        now: Cycle,
        core: usize,
        kind: AccessKind,
        addr: u64,
        pc: u64,
    ) -> AccessOutcome {
        self.bus(core).access_pc(now, kind, addr, pc)
    }

    // ---- observability ---------------------------------------------------------

    /// Enables (or disables) demand-miss tracing on `core`'s port.
    /// Record-only (the `sst-obs` event-sink contract): traced runs are
    /// byte-identical to untraced ones.
    pub fn set_trace(&mut self, core: usize, on: bool) {
        self.ports[core].set_trace(on);
    }

    /// Takes `core`'s recorded miss trace, leaving tracing disabled.
    pub fn take_trace(&mut self, core: usize) -> Option<TraceBuf> {
        self.ports[core].take_trace()
    }

    /// Enables (or disables) host-side timing of every port's walks.
    pub fn set_host_prof(&mut self, on: bool) {
        for p in &mut self.ports {
            p.set_host_prof(on);
        }
    }

    /// The host time spent inside all ports' timing walks, merged.
    /// `None` when profiling is disabled.
    pub fn host_times(&self) -> Option<HostTimes> {
        let mut out: Option<HostTimes> = None;
        for p in &self.ports {
            if let Some(t) = p.host_times() {
                out.get_or_insert_with(HostTimes::new).merge(t);
            }
        }
        out
    }

    // ---- snapshot / sampling support -------------------------------------------

    /// Serializes the complete mutable state — every port (backing memory,
    /// L1 tags, MSHRs, prefetcher, counters) and the shared L2/DRAM
    /// residue — so a run can resume byte-identically on a freshly built
    /// system of the same configuration. Observability attachments
    /// (traces, host profiles) are excluded: they are record-only.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.tag("MEMS");
        w.put_usize(self.ports.len());
        for p in &self.ports {
            p.save_state(w);
        }
        self.shared.save_state(w);
    }

    /// Restores state written by [`MemSystem::save_state`] on a system
    /// built with the same configuration and core count.
    ///
    /// # Errors
    ///
    /// [`SnapError`] on truncated, corrupt, or configuration-mismatched
    /// input.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.tag("MEMS")?;
        let n = r.take_usize()?;
        if n != self.ports.len() {
            return Err(SnapError::Mismatch(format!(
                "snapshot has {n} memory ports, system has {}",
                self.ports.len()
            )));
        }
        for p in &mut self.ports {
            p.restore_state(r)?;
        }
        self.shared.restore_state(r)
    }

    /// Warms the cache *tags* with one architecturally executed access —
    /// no timing, no MSHRs, no statistics. Functional warming between
    /// sampled measurement intervals drives this: the L1 (and on an L1
    /// miss, the shared L2) observes the reference stream's fills,
    /// recency, and dirtiness, so the next detailed interval starts with
    /// realistic cache contents instead of a cold or stale hierarchy.
    pub fn warm_touch(&mut self, core: usize, kind: AccessKind, addr: u64) {
        let port = &mut self.ports[core];
        let block = port.l1d.block_of(addr);
        let is_fetch = kind == AccessKind::IFetch;
        let write = kind == AccessKind::Store;
        let l1 = if is_fetch { &mut port.l1i } else { &mut port.l1d };
        if l1.access(block, write) {
            return;
        }
        if let Some(ev) = l1.fill(block, write) {
            if !is_fetch {
                port.prefetched.remove(&ev.addr);
            }
            if ev.dirty {
                self.shared.l2.fill(ev.addr, true);
            }
        }
        if !self.shared.l2.access(block, false) {
            self.shared.l2.fill(block, false);
        }
    }

    /// Drops all in-flight miss state (every L1 and L2 MSHR entry),
    /// keeping tags, counters, and DRAM bank state. The sampled driver
    /// calls this when it teleports cores to a new architectural point:
    /// fills issued on the abandoned path must not linger into the next
    /// measured interval.
    pub fn reset_timing(&mut self) {
        for p in &mut self.ports {
            p.l1i_mshr.clear();
            p.l1d_mshr.clear();
        }
        self.shared.l2_mshr.clear();
    }

    /// Replaces `core`'s functional backing image wholesale. The sampled
    /// driver clones the reference interpreter's memory in after
    /// functional warming, so the detailed core executes the measured
    /// window against the architecturally correct bytes.
    pub fn replace_port_mem(&mut self, core: usize, mem: SparseMem) {
        self.ports[core].mem = mem;
    }

    // ---- statistics -----------------------------------------------------------

    /// A snapshot of all statistics, folding in per-structure counters.
    pub fn stats(&self) -> MemStats {
        let mut s = MemStats::new(self.ports.len());
        for (i, p) in self.ports.iter().enumerate() {
            s.l1i[i] = p.l1i_stats;
            s.l1d[i] = p.l1d_stats;
            s.prefetches += p.prefetches;
            s.useful_prefetches += p.useful_prefetches;
        }
        s.l2 = self.shared.l2_stats;
        s.dram_reads = self.shared.dram.accesses;
        s.dram_row_hits = self.shared.dram.row_hits;
        s.dram_writebacks = self.shared.dram.writebacks;
        s.mshr_merges = self.shared.l2_mshr.merged
            + self
                .ports
                .iter()
                .map(|p| p.l1d_mshr.merged + p.l1i_mshr.merged)
                .sum::<u64>();
        s.mshr_full_delays = self.shared.l2_mshr.full_stalls
            + self
                .ports
                .iter()
                .map(|p| p.l1d_mshr.full_stalls + p.l1i_mshr.full_stalls)
                .sum::<u64>();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> MemSystem {
        MemSystem::new(&MemConfig::default(), 1)
    }

    #[test]
    fn cold_miss_goes_to_memory_then_hits() {
        let mut ms = sys();
        let a = ms.access(0, 0, AccessKind::Load, 0x4000);
        assert_eq!(a.level, HitLevel::Mem);
        assert!(a.ready_at >= ms.config().mem_round_trip() - ms.config().dram.row_miss_cycles);
        let b = ms.access(a.ready_at + 1, 0, AccessKind::Load, 0x4000);
        assert_eq!(b.level, HitLevel::L1);
        assert_eq!(b.latency(a.ready_at + 1), ms.config().l1_latency);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut ms = sys();
        let mut t = 0;
        // Fill way beyond L1 capacity (32 KiB) but within L2 (2 MiB).
        for i in 0..2048u64 {
            let o = ms.access(t, 0, AccessKind::Load, 0x10_0000 + i * 64);
            t = o.ready_at + 1;
        }
        // First lines have been evicted from L1 but live in L2.
        let o = ms.access(t, 0, AccessKind::Load, 0x10_0000);
        assert_eq!(o.level, HitLevel::L2);
    }

    #[test]
    fn merged_miss_completes_with_primary() {
        let mut ms = sys();
        let a = ms.access(0, 0, AccessKind::Load, 0x8000);
        let b = ms.access(5, 0, AccessKind::Load, 0x8010); // same line
        assert_eq!(a.level, HitLevel::Mem);
        assert_eq!(b.ready_at, a.ready_at.max(5 + ms.config().l1_latency));
        assert_eq!(ms.stats().mshr_merges, 1);
        assert_eq!(ms.stats().dram_reads, 1, "one line fetch");
    }

    #[test]
    fn mshr_capacity_limits_overlap() {
        let cfg = MemConfig {
            l1d_mshrs: 2,
            ..MemConfig::default()
        };
        let mut ms = MemSystem::new(&cfg, 1);
        // Three distinct-line misses at once: third must start after one
        // of the first two completes.
        let a = ms.access(0, 0, AccessKind::Load, 0x10000);
        let b = ms.access(0, 0, AccessKind::Load, 0x20000);
        let c = ms.access(0, 0, AccessKind::Load, 0x30000);
        let first_done = a.ready_at.min(b.ready_at);
        assert!(
            c.ready_at >= first_done + ms.config().dram.base_cycles,
            "third miss serialized: {} vs {}",
            c.ready_at,
            first_done
        );
        assert!(ms.stats().mshr_full_delays > 0);
    }

    #[test]
    fn store_allocates_and_dirties() {
        let mut ms = sys();
        let a = ms.access(0, 0, AccessKind::Store, 0x9000);
        assert_eq!(a.level, HitLevel::Mem, "write-allocate fetches the line");
        let b = ms.access(a.ready_at + 1, 0, AccessKind::Store, 0x9000);
        assert_eq!(b.level, HitLevel::L1);
        // Evict it by conflict to force a writeback.
        let sets = ms.config().l1d.sets() as u64;
        let stride = sets * 64;
        let mut t = b.ready_at + 1;
        for i in 1..=4u64 {
            let o = ms.access(t, 0, AccessKind::Load, 0x9000 + i * stride);
            t = o.ready_at + 1;
        }
        assert!(ms.stats().l1d[0].writebacks >= 1);
    }

    #[test]
    fn ifetch_uses_l1i() {
        let mut ms = sys();
        let a = ms.access(0, 0, AccessKind::IFetch, 0x1000);
        assert_eq!(a.level, HitLevel::Mem);
        let st = ms.stats();
        assert_eq!(st.l1i[0].accesses, 1);
        assert_eq!(st.l1d[0].accesses, 0);
        let b = ms.access(a.ready_at, 0, AccessKind::IFetch, 0x1004);
        assert_eq!(b.level, HitLevel::L1, "same line");
    }

    #[test]
    fn cores_have_private_l1_but_shared_l2() {
        let mut ms = MemSystem::new(&MemConfig::default(), 2);
        let a = ms.access(0, 0, AccessKind::Load, 0xa000);
        // Other core: misses its own L1 but hits shared L2.
        let b = ms.access(a.ready_at + 1, 1, AccessKind::Load, 0xa000);
        assert_eq!(b.level, HitLevel::L2);
        let st = ms.stats();
        assert_eq!(st.l1d[0].accesses, 1);
        assert_eq!(st.l1d[1].accesses, 1);
    }

    #[test]
    fn l2_port_contention_serializes_cores() {
        let cfg = MemConfig {
            l2_port_cycles: 10,
            ..MemConfig::default()
        };
        let mut ms = MemSystem::new(&cfg, 2);
        let a = ms.access(0, 0, AccessKind::Load, 0xb000);
        let b = ms.access(0, 1, AccessKind::Load, 0xc000);
        // Same issue cycle: second core's L2 access waits for the port.
        assert!(b.ready_at >= a.ready_at.min(b.ready_at) + 10 - 1);
        assert!(b.ready_at > a.ready_at || a.ready_at > b.ready_at);
    }

    #[test]
    fn software_prefetch_hides_latency() {
        let mut ms = sys();
        let p = ms.access(0, 0, AccessKind::Prefetch, 0xd000);
        assert_eq!(p.ready_at, 0, "nobody waits for a prefetch");
        // Demand access long after the prefetch completes: L1 hit.
        let o = ms.access(2000, 0, AccessKind::Load, 0xd000);
        assert_eq!(o.level, HitLevel::L1);
        assert_eq!(ms.stats().useful_prefetches, 1);
        // Demand access shortly after: merged with in-flight fill.
        let p2 = ms.access(2100, 0, AccessKind::Prefetch, 0xe000);
        let o2 = ms.access(2110, 0, AccessKind::Load, 0xe000);
        assert!(o2.ready_at > 2110 + ms.config().l1_latency);
        assert!(o2.ready_at < 2110 + ms.config().mem_round_trip());
        let _ = p2;
    }

    #[test]
    fn prefetch_credit_is_at_most_once_per_fill() {
        // Policy regression (see `note_useful_prefetch`): the first demand
        // touch converts the prefetch to useful; further touches — e.g.
        // re-execution after a speculation rollback demanding the same
        // line — must not double-credit. There is deliberately no rollback
        // hook in the memory system: a squashed path's touch counts, since
        // the counter measures fill timeliness, not architectural use.
        let mut ms = sys();
        let p = ms.access(0, 0, AccessKind::Prefetch, 0xd000);
        let t = p.ready_at.max(2000);
        let o1 = ms.access(t, 0, AccessKind::Load, 0xd000);
        assert_eq!(o1.level, HitLevel::L1);
        assert_eq!(ms.stats().useful_prefetches, 1);
        let o2 = ms.access(o1.ready_at + 1, 0, AccessKind::Load, 0xd000);
        assert_eq!(o2.level, HitLevel::L1);
        assert_eq!(ms.stats().useful_prefetches, 1, "credit is at-most-once");
        // A fresh prefetch of a *different* line re-arms normally.
        let p2 = ms.access(o2.ready_at + 1, 0, AccessKind::Prefetch, 0x2d000);
        let o3 = ms.access(p2.ready_at.max(o2.ready_at + 2000), 0, AccessKind::Load, 0x2d000);
        assert_eq!(o3.level, HitLevel::L1);
        assert_eq!(ms.stats().useful_prefetches, 2);
    }

    #[test]
    fn evicted_prefetch_is_not_counted_useful() {
        let mut ms = sys();
        let p = ms.access(0, 0, AccessKind::Prefetch, 0xd000);
        let mut t = p.ready_at.max(2000);
        // Conflict-evict the prefetched line: demand-load `ways` other
        // lines mapping to the same set.
        let sets = ms.config().l1d.sets() as u64;
        let stride = sets * ms.config().l1d.line_bytes;
        for i in 1..=ms.config().l1d.ways as u64 {
            let o = ms.access(t, 0, AccessKind::Load, 0xd000 + i * stride);
            t = o.ready_at + 1;
        }
        // The prefetched line is gone from L1D; demanding it now must not
        // credit the long-dead prefetch.
        let o = ms.access(t, 0, AccessKind::Load, 0xd000);
        assert_ne!(o.level, HitLevel::L1, "line was evicted");
        assert_eq!(ms.stats().useful_prefetches, 0);
        // And after the re-fetch, a hit still earns no credit (the line is
        // demand-resident now, not prefetch-resident).
        let o2 = ms.access(o.ready_at + 1, 0, AccessKind::Load, 0xd000);
        assert_eq!(o2.level, HitLevel::L1);
        assert_eq!(ms.stats().useful_prefetches, 0);
    }

    #[test]
    fn stride_prefetcher_trains_and_helps() {
        let cfg = MemConfig {
            prefetch: Some(crate::StrideConfig::default()),
            ..MemConfig::default()
        };
        let mut ms = MemSystem::new(&cfg, 1);
        let mut t = 0;
        let pc = 0x1000;
        let mut slow = 0;
        for i in 0..32u64 {
            let o = ms.access_pc(t, 0, AccessKind::Load, 0x10_0000 + i * 64, pc);
            if o.latency(t) >= ms.config().dram.base_cycles {
                slow += 1;
            }
            t = o.ready_at + 10;
        }
        let st = ms.stats();
        assert!(st.prefetches > 0, "prefetcher fired");
        // Most of the stream is covered (fully or partially) by prefetches;
        // only the training prefix pays the full memory latency.
        assert!(slow <= 8, "prefetch should hide most latency, {slow}/32 slow");
        assert!(st.useful_prefetches > 0);
    }

    #[test]
    fn functional_rw_independent_of_timing() {
        let mut ms = sys();
        ms.write(0xf000, 8, 0x1234);
        assert_eq!(ms.read(0xf000, 8), 0x1234);
        // No timing access happened.
        assert_eq!(ms.stats().l1d[0].accesses, 0);
    }

    #[test]
    fn bus_and_system_access_agree() {
        // The MemBus form and the MemSystem convenience form are the same
        // walk: interleaving them must behave like one serial stream.
        let mut ms = MemSystem::new(&MemConfig::default(), 2);
        let a = ms.bus(0).access(0, AccessKind::Load, 0x4000);
        let b = ms.access(a.ready_at + 1, 1, AccessKind::Load, 0x4000);
        assert_eq!(a.level, HitLevel::Mem);
        assert_eq!(b.level, HitLevel::L2, "L2 is shared across ports");
        // Functional state is per-port.
        ms.bus(1).write(0x100, 8, 77);
        assert_eq!(ms.bus(1).read(0x100, 8), 77);
        assert_eq!(ms.bus(0).read(0x100, 8), 0, "port images are disjoint");
    }
}
