//! The top-level memory system: per-core L1s, shared L2, DRAM.

use std::collections::HashSet;

use sst_isa::SparseMem;

use crate::cache::TagArray;
use crate::dram::Dram;
use crate::mshr::MshrFile;
use crate::prefetch::StridePrefetcher;
use crate::stats::MemStats;
use crate::{Cycle, MemConfig};

/// What an access is, for routing and statistics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// Instruction fetch (routed to the L1I).
    IFetch,
    /// Demand data load.
    Load,
    /// Demand data store (write-allocate).
    Store,
    /// Software or hardware prefetch (fills caches, nobody waits).
    Prefetch,
}

/// Deepest level an access had to reach.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum HitLevel {
    /// Served by the L1.
    L1,
    /// Served by the shared L2.
    L2,
    /// Served by DRAM.
    Mem,
}

impl HitLevel {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            HitLevel::L1 => "L1",
            HitLevel::L2 => "L2",
            HitLevel::Mem => "mem",
        }
    }
}

/// Timing result of one access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Absolute cycle at which the data is available to the core.
    pub ready_at: Cycle,
    /// Deepest level reached.
    pub level: HitLevel,
}

impl AccessOutcome {
    /// Latency relative to the issue cycle.
    pub fn latency(&self, issued_at: Cycle) -> Cycle {
        self.ready_at.saturating_sub(issued_at)
    }
}

struct CoreCaches {
    l1i: TagArray,
    l1d: TagArray,
    l1i_mshr: MshrFile,
    l1d_mshr: MshrFile,
    prefetcher: Option<StridePrefetcher>,
}

/// The complete memory system for `n` cores sharing an L2 and DRAM.
///
/// See the [crate documentation](crate) for the modeling approach. All
/// methods taking a `core` index panic if it is out of range.
pub struct MemSystem {
    cfg: MemConfig,
    mem: SparseMem,
    cores: Vec<CoreCaches>,
    l2: TagArray,
    l2_mshr: MshrFile,
    l2_port_free_at: Cycle,
    dram: Dram,
    /// Blocks brought in by a prefetch and still resident in an L1D.
    /// Cleared on eviction, so the set is bounded by L1D capacity and a
    /// long-evicted prefetch is never credited as useful.
    prefetched: HashSet<u64>,
    stats: MemStats,
}

impl MemSystem {
    /// Builds an empty (cold) memory system for `cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero or any cache geometry is inconsistent.
    pub fn new(cfg: &MemConfig, cores: usize) -> MemSystem {
        assert!(cores > 0, "need at least one core");
        let mk_core = || CoreCaches {
            l1i: TagArray::new(&cfg.l1i),
            l1d: TagArray::new(&cfg.l1d),
            l1i_mshr: MshrFile::new(4),
            l1d_mshr: MshrFile::new(cfg.l1d_mshrs),
            prefetcher: cfg.prefetch.map(StridePrefetcher::new),
        };
        MemSystem {
            cfg: cfg.clone(),
            mem: SparseMem::new(),
            cores: (0..cores).map(|_| mk_core()).collect(),
            l2: TagArray::new(&cfg.l2),
            l2_mshr: MshrFile::new(cfg.l2_mshrs),
            l2_port_free_at: 0,
            dram: Dram::new(cfg.dram),
            prefetched: HashSet::new(),
            stats: MemStats::new(cores),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Cache line size in bytes (uniform across levels).
    pub fn line_bytes(&self) -> u64 {
        self.cfg.l1d.line_bytes
    }

    /// Number of cores this system serves.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    // ---- functional data path ------------------------------------------------

    /// The backing memory image.
    pub fn mem(&self) -> &SparseMem {
        &self.mem
    }

    /// Mutable backing memory (program loading, test setup).
    pub fn mem_mut(&mut self) -> &mut SparseMem {
        &mut self.mem
    }

    /// Functionally reads `bytes` little-endian bytes at `addr`.
    pub fn read(&self, addr: u64, bytes: u64) -> u64 {
        self.mem.read_le(addr, bytes)
    }

    /// Functionally writes the low `bytes` bytes of `val` at `addr`.
    pub fn write(&mut self, addr: u64, bytes: u64, val: u64) {
        self.mem.write_le(addr, bytes, val);
    }

    // ---- timing path -----------------------------------------------------------

    /// Performs the timing walk for one access and returns when it
    /// completes.
    ///
    /// `pc` is used only to train the optional stride prefetcher (pass the
    /// accessing instruction's PC; the value is irrelevant for fetches and
    /// prefetches). Accesses are attributed to the line containing `addr`;
    /// the rare line-straddling access is charged to its first line.
    pub fn access(&mut self, now: Cycle, core: usize, kind: AccessKind, addr: u64) -> AccessOutcome {
        self.access_pc(now, core, kind, addr, 0)
    }

    /// Like [`MemSystem::access`] but with the accessing PC for prefetcher
    /// training.
    pub fn access_pc(
        &mut self,
        now: Cycle,
        core: usize,
        kind: AccessKind,
        addr: u64,
        pc: u64,
    ) -> AccessOutcome {
        let outcome = self.demand_walk(now, core, kind, addr);

        // Train the prefetcher on demand data accesses and issue its
        // candidates as best-effort fills.
        if matches!(kind, AccessKind::Load | AccessKind::Store) {
            let candidates = match self.cores[core].prefetcher.as_mut() {
                Some(p) => p.train(pc, addr),
                None => Vec::new(),
            };
            for cand in candidates {
                self.issue_prefetch(now, core, cand);
            }
        }
        outcome
    }

    fn demand_walk(&mut self, now: Cycle, core: usize, kind: AccessKind, addr: u64) -> AccessOutcome {
        let is_fetch = kind == AccessKind::IFetch;
        let write = kind == AccessKind::Store;
        let block = self.cores[core].l1d.block_of(addr);

        if kind == AccessKind::Prefetch {
            self.issue_prefetch(now, core, addr);
            return AccessOutcome {
                ready_at: now,
                level: HitLevel::L1,
            };
        }

        // Stats: L1 lookup.
        {
            let s = if is_fetch {
                &mut self.stats.l1i[core]
            } else {
                &mut self.stats.l1d[core]
            };
            s.accesses += 1;
        }

        // An in-flight fill for this block wins over the tag state (the tag
        // is installed at issue; data arrives at the MSHR's ready cycle).
        let mshr_hit = {
            let mshr = if is_fetch {
                &mut self.cores[core].l1i_mshr
            } else {
                &mut self.cores[core].l1d_mshr
            };
            mshr.lookup(now, block)
        };
        if let Some((ready, deep)) = mshr_hit {
            let mshr = if is_fetch {
                &mut self.cores[core].l1i_mshr
            } else {
                &mut self.cores[core].l1d_mshr
            };
            mshr.note_merge();
            // Keep dirty/recency state coherent with the logical access.
            let l1 = if is_fetch {
                &mut self.cores[core].l1i
            } else {
                &mut self.cores[core].l1d
            };
            l1.access(addr, write);
            self.note_useful_prefetch(block);
            return AccessOutcome {
                ready_at: ready.max(now + self.cfg.l1_latency),
                level: if deep { HitLevel::Mem } else { HitLevel::L2 },
            };
        }

        // L1 tag lookup.
        let l1_hit = {
            let l1 = if is_fetch {
                &mut self.cores[core].l1i
            } else {
                &mut self.cores[core].l1d
            };
            l1.access(addr, write)
        };
        if l1_hit {
            let s = if is_fetch {
                &mut self.stats.l1i[core]
            } else {
                &mut self.stats.l1d[core]
            };
            s.hits += 1;
            self.note_useful_prefetch(block);
            return AccessOutcome {
                ready_at: now + self.cfg.l1_latency,
                level: HitLevel::L1,
            };
        }

        // L1 miss: wait for an MSHR, then go to L2.
        let after_lookup = now + self.cfg.l1_latency;
        let start = {
            let mshr = if is_fetch {
                &mut self.cores[core].l1i_mshr
            } else {
                &mut self.cores[core].l1d_mshr
            };
            mshr.earliest_slot(after_lookup)
        };

        let (ready_at, level) = self.l2_walk(start, write, block);

        // Install the line in L1 and register the in-flight fill.
        {
            let l1 = if is_fetch {
                &mut self.cores[core].l1i
            } else {
                &mut self.cores[core].l1d
            };
            let evicted = l1.fill(addr, write);
            if let Some(ev) = evicted {
                if !is_fetch {
                    // A prefetched line leaving the L1D loses its tag: a
                    // later demand to it is no longer a useful prefetch,
                    // and the set stays bounded by the cache's capacity.
                    self.prefetched.remove(&ev.addr);
                }
                if ev.dirty {
                    let s = if is_fetch {
                        &mut self.stats.l1i[core]
                    } else {
                        &mut self.stats.l1d[core]
                    };
                    s.writebacks += 1;
                    // Write the dirty line into L2 (tag state only; the
                    // backing store is always current).
                    if let Some(l2_ev) = self.l2.fill(ev.addr, true) {
                        if l2_ev.dirty {
                            self.stats.l2.writebacks += 1;
                            self.dram.writeback(start, l2_ev.addr);
                        }
                    }
                }
            }
            let mshr = if is_fetch {
                &mut self.cores[core].l1i_mshr
            } else {
                &mut self.cores[core].l1d_mshr
            };
            // The register is claimed from the miss's start time (which
            // earliest_slot() may have pushed past `now` when the file was
            // full).
            mshr.insert(start, block, ready_at, level == HitLevel::Mem);
        }

        AccessOutcome { ready_at, level }
    }

    /// The shared L2 + DRAM portion of a miss that starts at `start`.
    fn l2_walk(&mut self, start: Cycle, write: bool, block: u64) -> (Cycle, HitLevel) {
        // Shared L2 port arbitration.
        let at_port = start.max(self.l2_port_free_at);
        self.l2_port_free_at = at_port + self.cfg.l2_port_cycles;
        let after_l2 = at_port + self.cfg.l2_latency;

        self.stats.l2.accesses += 1;

        // In-flight L2 fill?
        if let Some((ready, _)) = self.l2_mshr.lookup(at_port, block) {
            self.l2_mshr.note_merge();
            self.l2.access(block, false);
            return (ready.max(after_l2), HitLevel::Mem);
        }

        // Note: fills never mark L2 dirty — dirtiness reaches L2 only via
        // L1 writebacks (write-back hierarchy).
        if self.l2.access(block, false) {
            self.stats.l2.hits += 1;
            return (after_l2, HitLevel::L2);
        }

        // L2 miss: MSHR, then DRAM.
        let slot = self.l2_mshr.earliest_slot(after_l2);
        let dram_out = self.dram.read(slot, block);
        let ready = dram_out.ready_at;
        self.l2_mshr.insert(slot, block, ready, true);
        if let Some(ev) = self.l2.fill(block, false) {
            if ev.dirty {
                self.stats.l2.writebacks += 1;
                self.dram.writeback(slot, ev.addr);
            }
        }
        let _ = write;
        (ready, HitLevel::Mem)
    }

    /// Issues a best-effort prefetch of `addr`'s line for `core`.
    fn issue_prefetch(&mut self, now: Cycle, core: usize, addr: u64) {
        let block = self.cores[core].l1d.block_of(addr);
        // Already cached or already in flight: nothing to do.
        if self.cores[core].l1d.probe(block)
            || self.cores[core].l1d_mshr.lookup(now, block).is_some()
        {
            return;
        }
        self.stats.prefetches += 1;

        // Prefetches do not steal demand MSHRs if the file is full.
        let slot = {
            let mshr = &mut self.cores[core].l1d_mshr;
            if mshr.in_flight(now) >= mshr.capacity() {
                return; // drop: demand traffic saturates the file
            }
            now + self.cfg.l1_latency
        };

        let (ready_at, level) = self.l2_walk(slot, false, block);
        let evicted = self.cores[core].l1d.fill(block, false);
        if let Some(ev) = evicted {
            self.prefetched.remove(&ev.addr);
            if ev.dirty {
                self.stats.l1d[core].writebacks += 1;
                if let Some(l2_ev) = self.l2.fill(ev.addr, true) {
                    if l2_ev.dirty {
                        self.stats.l2.writebacks += 1;
                        self.dram.writeback(slot, l2_ev.addr);
                    }
                }
            }
        }
        self.cores[core]
            .l1d_mshr
            .insert(now, block, ready_at, level == HitLevel::Mem);
        self.prefetched.insert(block);
    }

    fn note_useful_prefetch(&mut self, block: u64) {
        if self.prefetched.remove(&block) {
            self.stats.useful_prefetches += 1;
        }
    }

    // ---- statistics -----------------------------------------------------------

    /// A snapshot of all statistics, folding in per-structure counters.
    pub fn stats(&self) -> MemStats {
        let mut s = self.stats.clone();
        s.dram_reads = self.dram.accesses;
        s.dram_row_hits = self.dram.row_hits;
        s.dram_writebacks = self.dram.writebacks;
        s.mshr_merges = self.l2_mshr.merged
            + self
                .cores
                .iter()
                .map(|c| c.l1d_mshr.merged + c.l1i_mshr.merged)
                .sum::<u64>();
        s.mshr_full_delays = self.l2_mshr.full_stalls
            + self
                .cores
                .iter()
                .map(|c| c.l1d_mshr.full_stalls + c.l1i_mshr.full_stalls)
                .sum::<u64>();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> MemSystem {
        MemSystem::new(&MemConfig::default(), 1)
    }

    #[test]
    fn cold_miss_goes_to_memory_then_hits() {
        let mut ms = sys();
        let a = ms.access(0, 0, AccessKind::Load, 0x4000);
        assert_eq!(a.level, HitLevel::Mem);
        assert!(a.ready_at >= ms.config().mem_round_trip() - ms.config().dram.row_miss_cycles);
        let b = ms.access(a.ready_at + 1, 0, AccessKind::Load, 0x4000);
        assert_eq!(b.level, HitLevel::L1);
        assert_eq!(b.latency(a.ready_at + 1), ms.config().l1_latency);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut ms = sys();
        let mut t = 0;
        // Fill way beyond L1 capacity (32 KiB) but within L2 (2 MiB).
        for i in 0..2048u64 {
            let o = ms.access(t, 0, AccessKind::Load, 0x10_0000 + i * 64);
            t = o.ready_at + 1;
        }
        // First lines have been evicted from L1 but live in L2.
        let o = ms.access(t, 0, AccessKind::Load, 0x10_0000);
        assert_eq!(o.level, HitLevel::L2);
    }

    #[test]
    fn merged_miss_completes_with_primary() {
        let mut ms = sys();
        let a = ms.access(0, 0, AccessKind::Load, 0x8000);
        let b = ms.access(5, 0, AccessKind::Load, 0x8010); // same line
        assert_eq!(a.level, HitLevel::Mem);
        assert_eq!(b.ready_at, a.ready_at.max(5 + ms.config().l1_latency));
        assert_eq!(ms.stats().mshr_merges, 1);
        assert_eq!(ms.stats().dram_reads, 1, "one line fetch");
    }

    #[test]
    fn mshr_capacity_limits_overlap() {
        let cfg = MemConfig {
            l1d_mshrs: 2,
            ..MemConfig::default()
        };
        let mut ms = MemSystem::new(&cfg, 1);
        // Three distinct-line misses at once: third must start after one
        // of the first two completes.
        let a = ms.access(0, 0, AccessKind::Load, 0x10000);
        let b = ms.access(0, 0, AccessKind::Load, 0x20000);
        let c = ms.access(0, 0, AccessKind::Load, 0x30000);
        let first_done = a.ready_at.min(b.ready_at);
        assert!(
            c.ready_at >= first_done + ms.config().dram.base_cycles,
            "third miss serialized: {} vs {}",
            c.ready_at,
            first_done
        );
        assert!(ms.stats().mshr_full_delays > 0);
    }

    #[test]
    fn store_allocates_and_dirties() {
        let mut ms = sys();
        let a = ms.access(0, 0, AccessKind::Store, 0x9000);
        assert_eq!(a.level, HitLevel::Mem, "write-allocate fetches the line");
        let b = ms.access(a.ready_at + 1, 0, AccessKind::Store, 0x9000);
        assert_eq!(b.level, HitLevel::L1);
        // Evict it by conflict to force a writeback.
        let sets = ms.config().l1d.sets() as u64;
        let stride = sets * 64;
        let mut t = b.ready_at + 1;
        for i in 1..=4u64 {
            let o = ms.access(t, 0, AccessKind::Load, 0x9000 + i * stride);
            t = o.ready_at + 1;
        }
        assert!(ms.stats().l1d[0].writebacks >= 1);
    }

    #[test]
    fn ifetch_uses_l1i() {
        let mut ms = sys();
        let a = ms.access(0, 0, AccessKind::IFetch, 0x1000);
        assert_eq!(a.level, HitLevel::Mem);
        let st = ms.stats();
        assert_eq!(st.l1i[0].accesses, 1);
        assert_eq!(st.l1d[0].accesses, 0);
        let b = ms.access(a.ready_at, 0, AccessKind::IFetch, 0x1004);
        assert_eq!(b.level, HitLevel::L1, "same line");
    }

    #[test]
    fn cores_have_private_l1_but_shared_l2() {
        let mut ms = MemSystem::new(&MemConfig::default(), 2);
        let a = ms.access(0, 0, AccessKind::Load, 0xa000);
        // Other core: misses its own L1 but hits shared L2.
        let b = ms.access(a.ready_at + 1, 1, AccessKind::Load, 0xa000);
        assert_eq!(b.level, HitLevel::L2);
        let st = ms.stats();
        assert_eq!(st.l1d[0].accesses, 1);
        assert_eq!(st.l1d[1].accesses, 1);
    }

    #[test]
    fn l2_port_contention_serializes_cores() {
        let cfg = MemConfig {
            l2_port_cycles: 10,
            ..MemConfig::default()
        };
        let mut ms = MemSystem::new(&cfg, 2);
        let a = ms.access(0, 0, AccessKind::Load, 0xb000);
        let b = ms.access(0, 1, AccessKind::Load, 0xc000);
        // Same issue cycle: second core's L2 access waits for the port.
        assert!(b.ready_at >= a.ready_at.min(b.ready_at) + 10 - 1);
        assert!(b.ready_at > a.ready_at || a.ready_at > b.ready_at);
    }

    #[test]
    fn software_prefetch_hides_latency() {
        let mut ms = sys();
        let p = ms.access(0, 0, AccessKind::Prefetch, 0xd000);
        assert_eq!(p.ready_at, 0, "nobody waits for a prefetch");
        // Demand access long after the prefetch completes: L1 hit.
        let o = ms.access(2000, 0, AccessKind::Load, 0xd000);
        assert_eq!(o.level, HitLevel::L1);
        assert_eq!(ms.stats().useful_prefetches, 1);
        // Demand access shortly after: merged with in-flight fill.
        let p2 = ms.access(2100, 0, AccessKind::Prefetch, 0xe000);
        let o2 = ms.access(2110, 0, AccessKind::Load, 0xe000);
        assert!(o2.ready_at > 2110 + ms.config().l1_latency);
        assert!(o2.ready_at < 2110 + ms.config().mem_round_trip());
        let _ = p2;
    }

    #[test]
    fn evicted_prefetch_is_not_counted_useful() {
        let mut ms = sys();
        let p = ms.access(0, 0, AccessKind::Prefetch, 0xd000);
        let mut t = p.ready_at.max(2000);
        // Conflict-evict the prefetched line: demand-load `ways` other
        // lines mapping to the same set.
        let sets = ms.config().l1d.sets() as u64;
        let stride = sets * ms.config().l1d.line_bytes;
        for i in 1..=ms.config().l1d.ways as u64 {
            let o = ms.access(t, 0, AccessKind::Load, 0xd000 + i * stride);
            t = o.ready_at + 1;
        }
        // The prefetched line is gone from L1D; demanding it now must not
        // credit the long-dead prefetch.
        let o = ms.access(t, 0, AccessKind::Load, 0xd000);
        assert_ne!(o.level, HitLevel::L1, "line was evicted");
        assert_eq!(ms.stats().useful_prefetches, 0);
        // And after the re-fetch, a hit still earns no credit (the line is
        // demand-resident now, not prefetch-resident).
        let o2 = ms.access(o.ready_at + 1, 0, AccessKind::Load, 0xd000);
        assert_eq!(o2.level, HitLevel::L1);
        assert_eq!(ms.stats().useful_prefetches, 0);
    }

    #[test]
    fn stride_prefetcher_trains_and_helps() {
        let cfg = MemConfig {
            prefetch: Some(crate::StrideConfig::default()),
            ..MemConfig::default()
        };
        let mut ms = MemSystem::new(&cfg, 1);
        let mut t = 0;
        let pc = 0x1000;
        let mut slow = 0;
        for i in 0..32u64 {
            let o = ms.access_pc(t, 0, AccessKind::Load, 0x10_0000 + i * 64, pc);
            if o.latency(t) >= ms.config().dram.base_cycles {
                slow += 1;
            }
            t = o.ready_at + 10;
        }
        let st = ms.stats();
        assert!(st.prefetches > 0, "prefetcher fired");
        // Most of the stream is covered (fully or partially) by prefetches;
        // only the training prefix pays the full memory latency.
        assert!(slow <= 8, "prefetch should hide most latency, {slow}/32 slow");
        assert!(st.useful_prefetches > 0);
    }

    #[test]
    fn functional_rw_independent_of_timing() {
        let mut ms = sys();
        ms.write(0xf000, 8, 0x1234);
        assert_eq!(ms.read(0xf000, 8), 0x1234);
        // No timing access happened.
        assert_eq!(ms.stats().l1d[0].accesses, 0);
    }
}
