//! PC-indexed stride prefetcher.

use sst_isa::{SnapError, SnapReader, SnapWriter};

use crate::StrideConfig;

#[derive(Clone, Copy, Debug, Default)]
struct Entry {
    valid: bool,
    pc_tag: u64,
    last_addr: u64,
    stride: i64,
    confidence: u8,
}

/// A classic PC-indexed stride detector.
///
/// Trained on every L1D demand access; once a PC repeats the same stride
/// [`StrideConfig::confidence`] times, [`StridePrefetcher::train`] returns
/// up to [`StrideConfig::degree`] prefetch addresses ahead of the stream.
#[derive(Clone, Debug)]
pub struct StridePrefetcher {
    cfg: StrideConfig,
    table: Vec<Entry>,
    /// Prefetch addresses produced.
    pub issued: u64,
}

impl StridePrefetcher {
    /// Creates an empty prefetcher.
    ///
    /// # Panics
    ///
    /// Panics if the entry count is not a power of two.
    pub fn new(cfg: StrideConfig) -> StridePrefetcher {
        assert!(cfg.entries.is_power_of_two(), "table size must be 2^n");
        StridePrefetcher {
            table: vec![Entry::default(); cfg.entries],
            cfg,
            issued: 0,
        }
    }

    /// Observes a demand access by `pc` to `addr`; returns prefetch
    /// candidate addresses (possibly empty).
    pub fn train(&mut self, pc: u64, addr: u64) -> Vec<u64> {
        let idx = ((pc >> 2) as usize) & (self.cfg.entries - 1);
        let tag = pc >> 2 >> self.cfg.entries.trailing_zeros();
        let e = &mut self.table[idx];

        if !e.valid || e.pc_tag != tag {
            *e = Entry {
                valid: true,
                pc_tag: tag,
                last_addr: addr,
                stride: 0,
                confidence: 0,
            };
            return Vec::new();
        }

        let stride = addr.wrapping_sub(e.last_addr) as i64;
        if stride == e.stride && stride != 0 {
            e.confidence = e.confidence.saturating_add(1);
        } else {
            e.stride = stride;
            e.confidence = 0;
        }
        e.last_addr = addr;

        if e.confidence >= self.cfg.confidence {
            let stride = e.stride;
            let out: Vec<u64> = (1..=self.cfg.degree)
                .map(|i| addr.wrapping_add_signed(stride * i as i64))
                .collect();
            self.issued += out.len() as u64;
            out
        } else {
            Vec::new()
        }
    }

    /// Serializes the stride table and the issue counter.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.tag("STRD");
        w.put_u64(self.issued);
        w.put_usize(self.table.len());
        for e in &self.table {
            w.put_bool(e.valid);
            w.put_u64(e.pc_tag);
            w.put_u64(e.last_addr);
            w.put_i64(e.stride);
            w.put_u8(e.confidence);
        }
    }

    /// Restores state written by [`StridePrefetcher::save_state`] on a
    /// prefetcher of the same table size.
    ///
    /// # Errors
    ///
    /// [`SnapError`] on truncated, corrupt, or size-mismatched input.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.tag("STRD")?;
        let issued = r.take_u64()?;
        let n = r.take_usize()?;
        if n != self.table.len() {
            return Err(SnapError::Mismatch(format!(
                "stride-table size {n} != configured {}",
                self.table.len()
            )));
        }
        for e in self.table.iter_mut() {
            e.valid = r.take_bool()?;
            e.pc_tag = r.take_u64()?;
            e.last_addr = r.take_u64()?;
            e.stride = r.take_i64()?;
            e.confidence = r.take_u8()?;
        }
        self.issued = issued;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pf() -> StridePrefetcher {
        StridePrefetcher::new(StrideConfig {
            entries: 16,
            confidence: 2,
            degree: 2,
        })
    }

    #[test]
    fn constant_stride_detected() {
        let mut p = pf();
        assert!(p.train(0x100, 0).is_empty()); // allocate
        assert!(p.train(0x100, 64).is_empty()); // stride=64, conf 0
        assert!(p.train(0x100, 128).is_empty()); // conf 1
        let out = p.train(0x100, 192); // conf 2 -> fire
        assert_eq!(out, vec![256, 320]);
        assert_eq!(p.issued, 2);
    }

    #[test]
    fn stride_change_resets_confidence() {
        let mut p = pf();
        p.train(0x100, 0);
        p.train(0x100, 64);
        p.train(0x100, 128);
        assert!(p.train(0x100, 1000).is_empty(), "stride break");
        assert!(p.train(0x100, 1064).is_empty());
        assert!(p.train(0x100, 1128).is_empty());
        assert!(!p.train(0x100, 1192).is_empty(), "retrained");
    }

    #[test]
    fn zero_stride_never_fires() {
        let mut p = pf();
        for _ in 0..10 {
            assert!(p.train(0x100, 64).is_empty());
        }
    }

    #[test]
    fn negative_stride_supported() {
        let mut p = pf();
        p.train(0x100, 1000);
        p.train(0x100, 936);
        p.train(0x100, 872);
        let out = p.train(0x100, 808);
        assert_eq!(out, vec![744, 680]);
    }

    #[test]
    fn distinct_pcs_use_distinct_entries() {
        let mut p = pf();
        p.train(0x100, 0);
        p.train(0x104, 777); // different entry; must not disturb 0x100
        p.train(0x100, 64);
        p.train(0x100, 128);
        assert!(!p.train(0x100, 192).is_empty());
    }
}
