/// Geometry of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes (must be a power of two).
    pub line_bytes: u64,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (non-power-of-two line size,
    /// or capacity not divisible into whole sets).
    pub fn sets(&self) -> usize {
        assert!(self.line_bytes.is_power_of_two(), "line size must be 2^n");
        let lines = self.size_bytes / self.line_bytes;
        let sets = lines as usize / self.ways;
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "cache must have a power-of-two number of sets, got {sets}"
        );
        assert_eq!(
            sets as u64 * self.ways as u64 * self.line_bytes,
            self.size_bytes,
            "size/ways/line must divide evenly"
        );
        sets
    }

    /// A 32 KiB, 4-way, 64 B-line cache (the workspace's default L1).
    pub fn l1_default() -> CacheConfig {
        CacheConfig {
            size_bytes: 32 * 1024,
            ways: 4,
            line_bytes: 64,
        }
    }

    /// A 2 MiB, 8-way, 64 B-line cache (the workspace's default L2).
    pub fn l2_default() -> CacheConfig {
        CacheConfig {
            size_bytes: 2 * 1024 * 1024,
            ways: 8,
            line_bytes: 64,
        }
    }
}

/// DRAM timing parameters, in core cycles.
///
/// The model has one channel shared by all banks. Each access occupies the
/// channel for [`DramConfig::burst_cycles`] and its bank for
/// [`DramConfig::bank_busy_cycles`]; the latency of the access itself is
/// [`DramConfig::base_cycles`] plus a row-buffer hit/miss component. The
/// paper's memory-latency sweep (experiment E5) varies `base_cycles`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DramConfig {
    /// Fixed request latency (controller + interconnect + DRAM core).
    pub base_cycles: u64,
    /// Additional latency when the access hits the open row.
    pub row_hit_cycles: u64,
    /// Additional latency when the row buffer must be opened.
    pub row_miss_cycles: u64,
    /// Number of independent banks.
    pub banks: usize,
    /// Bytes per row (row-buffer reach).
    pub row_bytes: u64,
    /// Cycles a bank stays busy per access.
    pub bank_busy_cycles: u64,
    /// Cycles the shared channel is occupied per access.
    pub burst_cycles: u64,
}

impl Default for DramConfig {
    fn default() -> DramConfig {
        // Roughly a 2+ GHz core in front of commodity DDR: ~300-cycle
        // loaded round trip, 16 banks, 4 KiB rows.
        DramConfig {
            base_cycles: 280,
            row_hit_cycles: 20,
            row_miss_cycles: 60,
            banks: 16,
            row_bytes: 4096,
            bank_busy_cycles: 40,
            burst_cycles: 4,
        }
    }
}

/// Stride-prefetcher parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StrideConfig {
    /// Number of PC-indexed tracking entries.
    pub entries: usize,
    /// Consecutive same-stride observations required before issuing.
    pub confidence: u8,
    /// How many lines ahead to prefetch once confident.
    pub degree: u64,
}

impl Default for StrideConfig {
    fn default() -> StrideConfig {
        StrideConfig {
            entries: 64,
            confidence: 2,
            degree: 2,
        }
    }
}

/// Full memory-system configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MemConfig {
    /// Per-core L1 instruction cache geometry.
    pub l1i: CacheConfig,
    /// Per-core L1 data cache geometry.
    pub l1d: CacheConfig,
    /// Shared L2 geometry.
    pub l2: CacheConfig,
    /// L1 hit latency in cycles (applies to both L1I and L1D).
    pub l1_latency: u64,
    /// L2 hit latency in cycles, on top of the L1 lookup.
    pub l2_latency: u64,
    /// Cycles the shared L2 port is occupied per access (contention in CMPs).
    pub l2_port_cycles: u64,
    /// Outstanding-miss registers per core L1D. **This bounds each core's
    /// memory-level parallelism** and is a first-class parameter of the SST
    /// study.
    pub l1d_mshrs: usize,
    /// Outstanding-miss registers at the shared L2.
    pub l2_mshrs: usize,
    /// DRAM timing.
    pub dram: DramConfig,
    /// Optional stride prefetcher trained on L1D accesses.
    pub prefetch: Option<StrideConfig>,
}

impl Default for MemConfig {
    fn default() -> MemConfig {
        MemConfig {
            l1i: CacheConfig::l1_default(),
            l1d: CacheConfig::l1_default(),
            l2: CacheConfig::l2_default(),
            l1_latency: 2,
            l2_latency: 18,
            l2_port_cycles: 2,
            l1d_mshrs: 16,
            l2_mshrs: 32,
            dram: DramConfig::default(),
            prefetch: None,
        }
    }
}

impl MemConfig {
    /// Approximate unloaded memory round-trip latency in cycles (L1 + L2
    /// lookups + DRAM base + row miss). Used by cores to pick deferral
    /// thresholds and by reports.
    pub fn mem_round_trip(&self) -> u64 {
        self.l1_latency + self.l2_latency + self.dram.base_cycles + self.dram.row_miss_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_geometries_are_consistent() {
        assert_eq!(CacheConfig::l1_default().sets(), 128);
        assert_eq!(CacheConfig::l2_default().sets(), 4096);
    }

    #[test]
    #[should_panic]
    fn bad_geometry_panics() {
        CacheConfig {
            size_bytes: 3000,
            ways: 7,
            line_bytes: 64,
        }
        .sets();
    }

    #[test]
    fn round_trip_reflects_dram_base() {
        let mut c = MemConfig::default();
        let base = c.mem_round_trip();
        c.dram.base_cycles += 100;
        assert_eq!(c.mem_round_trip(), base + 100);
    }
}
