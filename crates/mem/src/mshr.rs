//! Miss-status holding registers.
//!
//! An [`MshrFile`] bounds how many distinct line misses a cache can have in
//! flight. In this hierarchy's resolve-at-issue timing model each entry
//! records the block address and the cycle its fill completes; an entry is
//! implicitly freed once simulation time passes that cycle.
//!
//! Two behaviours matter for the SST study:
//!
//! * **Merging** — a second miss to a block already in flight does not
//!   consume a new entry and completes when the first fill returns.
//! * **Capacity back-pressure** — when every register is busy, a new miss
//!   must wait until the earliest in-flight fill frees its register; the
//!   returned start time reflects that serialization. This is what caps a
//!   core's achievable memory-level parallelism.

use sst_isa::{SnapError, SnapReader, SnapWriter};

use crate::Cycle;

#[derive(Clone, Copy, Debug)]
struct Entry {
    block: u64,
    ready_at: Cycle,
    deep: bool,
}

/// A fixed-capacity file of in-flight line misses.
#[derive(Clone, Debug)]
pub struct MshrFile {
    entries: Vec<Entry>,
    capacity: usize,
    /// Earliest `ready_at` among live entries (`Cycle::MAX` when empty);
    /// lets the per-access reap degenerate to one compare until a fill
    /// actually completes.
    earliest_ready: Cycle,
    /// Total misses that found a matching in-flight entry.
    pub merged: u64,
    /// Total misses delayed because all registers were busy.
    pub full_stalls: u64,
}

impl MshrFile {
    /// Creates a file with `capacity` registers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> MshrFile {
        assert!(capacity > 0, "an MSHR file needs at least one register");
        MshrFile {
            entries: Vec::with_capacity(capacity),
            capacity,
            earliest_ready: Cycle::MAX,
            merged: 0,
            full_stalls: 0,
        }
    }

    /// Number of registers.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn reap(&mut self, now: Cycle) {
        if now < self.earliest_ready {
            return; // nothing has completed yet
        }
        self.entries.retain(|e| e.ready_at > now);
        self.earliest_ready = self
            .entries
            .iter()
            .map(|e| e.ready_at)
            .min()
            .unwrap_or(Cycle::MAX);
    }

    /// Number of registers in flight at `now`.
    pub fn in_flight(&mut self, now: Cycle) -> usize {
        self.reap(now);
        self.entries.len()
    }

    /// If `block` is already being fetched at `now`, returns the cycle that
    /// fill completes and whether the fill goes all the way to memory
    /// (`deep`, as recorded at [`MshrFile::insert`]).
    pub fn lookup(&mut self, now: Cycle, block: u64) -> Option<(Cycle, bool)> {
        if self.entries.is_empty() {
            return None; // common case on every demand access
        }
        self.reap(now);
        self.entries
            .iter()
            .find(|e| e.block == block)
            .map(|e| (e.ready_at, e.deep))
    }

    /// Earliest cycle at which a register will be free, given `now`.
    ///
    /// Returns `now` when a register is already free.
    pub fn earliest_slot(&mut self, now: Cycle) -> Cycle {
        self.reap(now);
        if self.entries.len() < self.capacity {
            now
        } else {
            self.full_stalls += 1;
            self.entries
                .iter()
                .map(|e| e.ready_at)
                .min()
                .expect("full file is non-empty")
        }
    }

    /// Records a new in-flight miss completing at `ready_at`. `deep` marks
    /// fills that go all the way to memory (vs. the next cache level) and is
    /// handed back to merged lookups.
    ///
    /// Callers must have consulted [`MshrFile::earliest_slot`] so that a
    /// register is free at the miss's start time; this is asserted.
    pub fn insert(&mut self, now: Cycle, block: u64, ready_at: Cycle, deep: bool) {
        self.reap(now);
        assert!(
            self.entries.len() < self.capacity,
            "MSHR overflow: caller must serialize on earliest_slot()"
        );
        self.entries.push(Entry {
            block,
            ready_at,
            deep,
        });
        self.earliest_ready = self.earliest_ready.min(ready_at);
    }

    /// Notes a merged (secondary) miss, for statistics.
    pub fn note_merge(&mut self) {
        self.merged += 1;
    }

    /// Non-mutating in-flight check: `true` when a fill of `block` is
    /// still outstanding at `now`. Unlike [`MshrFile::lookup`] this never
    /// reaps completed entries, so a probe leaves the file bit-identical —
    /// the speculation-taint sweep relies on that to stay invisible.
    pub fn probe(&self, now: Cycle, block: u64) -> bool {
        self.entries.iter().any(|e| e.block == block && e.ready_at > now)
    }

    /// Drops every in-flight entry, keeping the merge/stall counters. The
    /// sampled-simulation driver calls this between measurement intervals:
    /// misses issued during a discarded interval must not linger into the
    /// next measured one.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.earliest_ready = Cycle::MAX;
    }

    /// Serializes in-flight entries and counters.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.tag("MSHR");
        w.put_u64(self.earliest_ready);
        w.put_u64(self.merged);
        w.put_u64(self.full_stalls);
        w.put_usize(self.entries.len());
        for e in &self.entries {
            w.put_u64(e.block);
            w.put_u64(e.ready_at);
            w.put_bool(e.deep);
        }
    }

    /// Restores state written by [`MshrFile::save_state`] on a file of the
    /// same capacity.
    ///
    /// # Errors
    ///
    /// [`SnapError`] on truncated, corrupt, or capacity-mismatched input.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.tag("MSHR")?;
        let earliest_ready = r.take_u64()?;
        let merged = r.take_u64()?;
        let full_stalls = r.take_u64()?;
        let n = r.take_usize()?;
        if n > self.capacity {
            return Err(SnapError::Corrupt(format!(
                "MSHR occupancy {n} exceeds capacity {}",
                self.capacity
            )));
        }
        self.entries.clear();
        for _ in 0..n {
            self.entries.push(Entry {
                block: r.take_u64()?,
                ready_at: r.take_u64()?,
                deep: r.take_bool()?,
            });
        }
        self.earliest_ready = earliest_ready;
        self.merged = merged;
        self.full_stalls = full_stalls;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_merges_in_flight_blocks() {
        let mut m = MshrFile::new(4);
        m.insert(0, 0x100, 300, true);
        assert_eq!(m.lookup(10, 0x100), Some((300, true)));
        assert_eq!(m.lookup(10, 0x200), None);
        // After completion the entry is gone.
        assert_eq!(m.lookup(301, 0x100), None);
    }

    #[test]
    fn capacity_backpressure() {
        let mut m = MshrFile::new(2);
        m.insert(0, 0x100, 300, true);
        m.insert(0, 0x200, 500, true);
        // Full: next slot frees when the earliest fill (300) completes.
        assert_eq!(m.earliest_slot(10), 300);
        assert_eq!(m.full_stalls, 1);
        // At 301 one register is free again.
        assert_eq!(m.earliest_slot(301), 301);
    }

    #[test]
    fn in_flight_reaps_completed() {
        let mut m = MshrFile::new(8);
        m.insert(0, 0x100, 100, false);
        m.insert(0, 0x200, 200, false);
        assert_eq!(m.in_flight(50), 2);
        assert_eq!(m.in_flight(150), 1);
        assert_eq!(m.in_flight(250), 0);
    }

    #[test]
    #[should_panic]
    fn overflow_asserts() {
        let mut m = MshrFile::new(1);
        m.insert(0, 0x100, 300, true);
        m.insert(0, 0x200, 300, true);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        let _ = MshrFile::new(0);
    }
}
