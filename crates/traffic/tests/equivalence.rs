//! Determinism and paper-claim sanity checks for the traffic subsystem.
//!
//! The contract under test: for a fixed `(spec, scale, seed)`, the
//! per-request trace and the aggregate result are **byte-identical**
//! regardless of the simulation thread count — global dispatch decisions
//! happen only at quantum boundaries, on one thread.

use sst_sim::CoreModel;
use sst_traffic::{run_traffic_full, Policy, TrafficSpec};
use sst_workloads::Scale;

fn spec(model: CoreModel, policy: Policy, load_permille: u32) -> TrafficSpec {
    TrafficSpec {
        model,
        workload: "oltp".into(),
        cores: 3,
        load_permille,
        txns_per_request: 4,
        requests: 48,
        warmup: 8,
        admission_cap: 24,
        lane_cap: 4,
        quantum: 256,
        policy,
    }
}

#[test]
fn trace_is_identical_across_thread_counts() {
    for policy in [Policy::LeastLoaded, Policy::RoundRobin] {
        let s = spec(CoreModel::Sst, policy, 400);
        let base = run_traffic_full(&s, Scale::Smoke, 11, 1, 2_000_000_000);
        assert_eq!(
            base.result.completed + base.result.shed,
            base.result.offered,
            "every request must complete or shed"
        );
        for threads in [2, 4] {
            let other = run_traffic_full(&s, Scale::Smoke, 11, threads, 2_000_000_000);
            assert_eq!(base.records, other.records, "{policy:?} threads={threads}");
            assert_eq!(base.result, other.result, "{policy:?} threads={threads}");
        }
    }
}

#[test]
fn overload_sheds_and_underload_does_not() {
    let light = run_traffic_full(
        &spec(CoreModel::InOrder, Policy::LeastLoaded, 50),
        Scale::Smoke,
        5,
        1,
        2_000_000_000,
    );
    assert_eq!(light.result.shed, 0, "5% load must not shed");
    assert_eq!(light.result.completed, light.result.offered);

    // Far beyond saturation with tiny queues: sheds must appear.
    let mut s = spec(CoreModel::InOrder, Policy::LeastLoaded, 1000);
    s.load_permille = 5000; // 5x nominal capacity
    s.admission_cap = 4;
    s.lane_cap = 2;
    let heavy = run_traffic_full(&s, Scale::Smoke, 5, 1, 2_000_000_000);
    assert!(heavy.result.shed > 0, "5x overload with cap 4 must shed");
    assert_eq!(heavy.result.completed + heavy.result.shed, heavy.result.offered);
}

#[test]
fn latency_is_sane_and_histogram_counts_match() {
    let run = run_traffic_full(
        &spec(CoreModel::Sst, Policy::LeastLoaded, 200),
        Scale::Smoke,
        3,
        1,
        2_000_000_000,
    );
    let r = &run.result;
    // Histogram holds exactly the post-warm-up completions.
    let expected = run
        .records
        .iter()
        .enumerate()
        .filter(|(i, rec)| (*i as u64) >= 8 && rec.completion.is_some())
        .count() as u64;
    assert_eq!(r.hist.count(), expected);
    let p50 = r.hist.percentile_permille(500).unwrap();
    let p99 = r.hist.percentile_permille(990).unwrap();
    // A request is >= 220 instructions; latency below that is impossible,
    // and percentiles must be ordered.
    assert!(p50 >= 100, "p50 {p50} impossibly small");
    assert!(p99 >= p50);
    // Completion at or after arrival, on the dispatched core.
    for rec in &run.records {
        if let Some(c) = rec.completion {
            assert!(c >= rec.arrival);
            assert!(rec.core.is_some());
            assert!(!rec.shed);
        }
    }
}

/// The paper's service-level claim, smoke scale: below the knee, SST's
/// tail latency is no worse than the in-order baseline's on the OLTP mix
/// (SST hides the misses that stall an in-order pipeline).
#[test]
fn sst_p99_beats_in_order_below_the_knee() {
    let lo = |model| {
        let s = spec(model, Policy::LeastLoaded, 150);
        run_traffic_full(&s, Scale::Smoke, 9, 1, 2_000_000_000)
            .result
            .hist
            .percentile_permille(990)
            .unwrap()
    };
    let sst = lo(CoreModel::Sst);
    let inorder = lo(CoreModel::InOrder);
    assert!(
        sst <= inorder,
        "p99 at 15% load: sst {sst} should be <= in-order {inorder}"
    );
}
