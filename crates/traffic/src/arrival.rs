//! Deterministic open-loop arrival process: exponential (Poisson-process)
//! inter-arrival times sampled by inverse CDF, in **pure integer math** so
//! the request trace is byte-identical on every host.
//!
//! The inverse CDF of the exponential is `t = -ln(U) * mean` for uniform
//! `U` in (0, 1]. We compute `-log2(U)` in Q32.32 fixed point — integer
//! part from the leading-zero count, 32 fractional bits by the classic
//! iterated-squaring digit recurrence — and scale by `ln 2` in Q32.32.
//! No floats anywhere, so there is no host-dependent rounding to leak
//! into the trace.

use sst_mem::Cycle;
use sst_prng::Prng;

/// `ln 2` in Q32.32: `round(0.6931471805599453 * 2^32)`.
const LN2_Q32: u64 = 2_977_044_472;

/// `-log2(u)` in Q32.32 for `u = (bits + 1) / 2^64` (so `u` is uniform on
/// (0, 1] and the log is finite). Exact integer part; 32 fractional bits
/// computed by squaring: `log2(x)`'s next binary digit is 1 iff `x^2 >= 2`.
fn neg_log2_q32(bits: u64) -> u64 {
    if bits == u64::MAX {
        return 0; // u = 1 exactly
    }
    let v = bits + 1; // numerator of u over 2^64; v >= 1
    let lz = v.leading_zeros() as u64;
    let msb = 63 - lz; // log2(v) integer part
    // Normalized mantissa m/2^63 in [1, 2).
    let mut m = v << lz;
    let mut frac: u64 = 0;
    for _ in 0..32 {
        // x <- x^2; digit is the resulting integer bit.
        let sq = ((m as u128) * (m as u128)) >> 63;
        frac <<= 1;
        if sq >= 1u128 << 64 {
            frac |= 1;
            m = (sq >> 1) as u64;
        } else {
            m = sq as u64;
        }
    }
    // -log2(v / 2^64) = 64 - log2(v).
    (64u64 << 32) - ((msb << 32) | frac)
}

/// One exponential sample with the given mean, in cycles (floor-rounded;
/// the mean of the generated stream converges to `mean_interarrival` to
/// within the sub-cycle truncation).
fn exp_sample(prng: &mut Prng, mean_interarrival: u64) -> u64 {
    let nl2 = neg_log2_q32(prng.next_u64());
    // nl2 (Q32.32) * LN2_Q32 (Q32.32) = -ln(u) in Q64.64; times the mean,
    // then drop the 64 fractional bits. Max ~2^38 * 2^31.5 * mean fits
    // u128 for any plausible mean.
    (((nl2 as u128) * (LN2_Q32 as u128) * (mean_interarrival as u128)) >> 64) as u64
}

/// The full request trace: `count` cumulative arrival cycles of a Poisson
/// process with the given mean inter-arrival time. Deterministic in
/// `seed` alone — independent of host, thread count, and batching.
pub fn arrival_cycles(seed: u64, mean_interarrival: u64, count: u64) -> Vec<Cycle> {
    let mut prng = Prng::seed_from_u64(seed);
    let mut now: Cycle = 0;
    let mut out = Vec::with_capacity(count as usize);
    for _ in 0..count {
        now += exp_sample(&mut prng, mean_interarrival);
        out.push(now);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neg_log2_is_exact_on_powers_of_two() {
        // u = 2^-k  =>  -log2(u) = k exactly.
        for k in 1..40u64 {
            let bits = (1u64 << (64 - k)) - 1; // v = 2^(64-k)
            assert_eq!(neg_log2_q32(bits), k << 32, "k={k}");
        }
        assert_eq!(neg_log2_q32(u64::MAX), 0);
    }

    #[test]
    fn neg_log2_is_monotone_nonincreasing_in_u() {
        let mut prev = u64::MAX;
        for bits in (0..64u64).map(|k| (1u64 << k).wrapping_sub(1)) {
            let nl = neg_log2_q32(bits);
            assert!(nl <= prev, "bits={bits}");
            prev = nl;
        }
    }

    #[test]
    fn trace_is_deterministic_and_independent_of_batching() {
        let a = arrival_cycles(42, 1000, 500);
        let b = arrival_cycles(42, 1000, 500);
        assert_eq!(a, b);
        // A longer trace extends, never perturbs, a shorter one.
        let c = arrival_cycles(42, 1000, 200);
        assert_eq!(&a[..200], &c[..]);
        assert_ne!(a, arrival_cycles(43, 1000, 500));
    }

    #[test]
    fn empirical_mean_matches_requested_mean() {
        // Truncation costs ~0.5 cycles/sample; allow 3% + that.
        for mean in [100u64, 1000, 25_000] {
            let n = 40_000u64;
            let trace = arrival_cycles(7, mean, n);
            let total = *trace.last().unwrap();
            let emp = total / n;
            let lo = mean - mean / 25 - 1;
            let hi = mean + mean / 25 + 1;
            assert!(
                (lo..=hi).contains(&emp),
                "mean {mean}: empirical {emp} outside [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn arrivals_are_nondecreasing() {
        let trace = arrival_cycles(9, 50, 2_000);
        for w in trace.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }
}
