//! Deterministic log-bucketed latency histogram (HDR-histogram style):
//! integer-only bucket math, exact merge, and permille percentile
//! extraction with a bounded relative error of `2^-precision`.
//!
//! Values below `2^precision` get exact unit buckets; above that, each
//! octave is split into `2^precision` sub-buckets, so a reported
//! percentile is the *upper bound* of its bucket — at most a factor
//! `1 + 2^-precision` above the true order statistic, and never below it.

/// Log-bucketed latency histogram with integer bucket math.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyHistogram {
    precision: u32,
    max_value: u64,
    buckets: Vec<u64>,
    saturated: u64,
    total: u64,
}

impl LatencyHistogram {
    /// A histogram tracking values in `[0, max_value]` with
    /// `2^precision` sub-buckets per octave. Values above `max_value`
    /// are counted in a saturation bucket and report as `max_value`.
    pub fn new(precision: u32, max_value: u64) -> LatencyHistogram {
        assert!((1..=10).contains(&precision), "precision out of range");
        assert!(max_value >= (1 << precision));
        let buckets = vec![0; Self::bucket_of(precision, max_value) + 1];
        LatencyHistogram {
            precision,
            max_value,
            buckets,
            saturated: 0,
            total: 0,
        }
    }

    fn bucket_of(precision: u32, v: u64) -> usize {
        if v < (1 << precision) {
            return v as usize;
        }
        let top = 63 - v.leading_zeros(); // index of the highest set bit
        let shift = top - precision;
        let mask = (1u64 << precision) - 1;
        (((shift as usize) + 1) << precision) + (((v >> shift) & mask) as usize)
    }

    /// The largest value a bucket covers (the value percentiles report).
    fn bucket_upper(&self, index: usize) -> u64 {
        let p = self.precision;
        if index < (1usize << p) {
            return index as u64;
        }
        let shift = (index >> p) as u32 - 1;
        let off = (index & ((1 << p) - 1)) as u64;
        // The last sub-bucket of the top octave (values up to u64::MAX)
        // computes `2^(p+1) << (63-p)` = 2^64 here, which sheds its high
        // bit to 0; wrapping the decrement turns that into the intended
        // u64::MAX instead of a debug-build underflow panic. Every other
        // index stays below 2^64 and is unaffected.
        (((1u64 << p) + off + 1) << shift).wrapping_sub(1)
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        if v > self.max_value {
            self.saturated += 1;
        } else {
            self.buckets[Self::bucket_of(self.precision, v)] += 1;
        }
        self.total += 1;
    }

    /// Exact element-wise merge. Panics if the shapes differ.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        assert_eq!(self.precision, other.precision, "precision mismatch");
        assert_eq!(self.max_value, other.max_value, "max_value mismatch");
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.saturated += other.saturated;
        self.total += other.total;
    }

    /// The value at permille rank `p` (`500` = median, `990` = p99,
    /// `999` = p99.9): the upper bound of the bucket holding the
    /// `ceil(total * p / 1000)`-th smallest sample. `None` when empty.
    pub fn percentile_permille(&self, p: u64) -> Option<u64> {
        assert!(p <= 1000, "permille rank out of range");
        if self.total == 0 {
            return None;
        }
        let rank = ((self.total as u128 * p as u128).div_ceil(1000) as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(self.bucket_upper(i).min(self.max_value));
            }
        }
        Some(self.max_value) // rank falls among the saturated samples
    }

    /// Total recorded values (including saturated ones).
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Values recorded above `max_value`.
    pub fn saturated(&self) -> u64 {
        self.saturated
    }

    /// Sub-bucket precision bits.
    pub fn precision(&self) -> u32 {
        self.precision
    }

    /// The largest representable value.
    pub fn max_value(&self) -> u64 {
        self.max_value
    }

    /// Occupied buckets as `(index, count)`, for sparse serialization.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// Rebuilds a histogram from its sparse parts (cache round-trip).
    /// Panics on an out-of-range bucket index.
    pub fn from_parts(
        precision: u32,
        max_value: u64,
        buckets: impl IntoIterator<Item = (usize, u64)>,
        saturated: u64,
    ) -> LatencyHistogram {
        let mut h = LatencyHistogram::new(precision, max_value);
        for (i, c) in buckets {
            h.buckets[i] += c;
            h.total += c;
        }
        h.saturated = saturated;
        h.total += saturated;
        h
    }

    /// [`LatencyHistogram::from_parts`] that rejects malformed shapes
    /// instead of panicking — for deserializing untrusted bytes (a
    /// corrupt cache entry must read as a miss, not abort the run).
    pub fn try_from_parts(
        precision: u32,
        max_value: u64,
        buckets: impl IntoIterator<Item = (usize, u64)>,
        saturated: u64,
    ) -> Option<LatencyHistogram> {
        if !(1..=10).contains(&precision) || max_value < (1 << precision) {
            return None;
        }
        let mut h = LatencyHistogram::new(precision, max_value);
        for (i, c) in buckets {
            *h.buckets.get_mut(i)? += c;
            h.total += c;
        }
        h.saturated = saturated;
        h.total += saturated;
        Some(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sst_prng::Prng;

    #[test]
    fn empty_histogram_has_no_percentiles() {
        let h = LatencyHistogram::new(5, 1 << 20);
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile_permille(500), None);
        assert_eq!(h.percentile_permille(999), None);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let mut h = LatencyHistogram::new(5, 1 << 20);
        h.record(777);
        for p in [0, 1, 500, 990, 999, 1000] {
            let got = h.percentile_permille(p).unwrap();
            assert!(got >= 777 && got <= 777 + 777 / 32, "p{p} -> {got}");
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new(5, 1 << 20);
        for v in 0..32 {
            h.record(v);
        }
        assert_eq!(h.percentile_permille(500), Some(15));
        assert_eq!(h.percentile_permille(1000), Some(31));
    }

    #[test]
    fn saturating_values_clamp_to_max() {
        let mut h = LatencyHistogram::new(5, 1 << 10);
        h.record(5);
        h.record(u64::MAX);
        h.record(1 << 40);
        assert_eq!(h.saturated(), 2);
        assert_eq!(h.count(), 3);
        assert_eq!(h.percentile_permille(999), Some(1 << 10));
        assert!(h.percentile_permille(333).unwrap() >= 5);
    }

    #[test]
    fn merge_is_associative_and_equals_bulk_recording() {
        let mk = |vals: &[u64]| {
            let mut h = LatencyHistogram::new(5, 1 << 16);
            for &v in vals {
                h.record(v);
            }
            h
        };
        let (a, b, c) = (
            mk(&[1, 50, 3000, 1 << 20]),
            mk(&[7, 7, 7, 99_999]),
            mk(&[0, 65_536, 12]),
        );
        // (a+b)+c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a+(b+c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
        // and both equal recording everything into one histogram
        let all = mk(&[1, 50, 3000, 1 << 20, 7, 7, 7, 99_999, 0, 65_536, 12]);
        assert_eq!(left, all);
    }

    #[test]
    fn round_trips_through_sparse_parts() {
        let mut h = LatencyHistogram::new(6, 1 << 24);
        for v in [0, 1, 63, 64, 1000, 123_456, 1 << 24, (1 << 24) + 1] {
            h.record(v);
        }
        let back = LatencyHistogram::from_parts(
            h.precision(),
            h.max_value(),
            h.nonzero_buckets(),
            h.saturated(),
        );
        assert_eq!(h, back);
    }

    /// Bucket edges at the seams: every power of two and its neighbours
    /// must satisfy the reporting contract `v <= upper(bucket_of(v)) <=
    /// v * (1 + 2^-p)`, for every precision — this is where the octave
    /// math can be off by one.
    #[test]
    fn bucket_edges_bracket_powers_of_two() {
        for p in 1..=10u32 {
            let h = LatencyHistogram::new(p, u64::MAX);
            let mut probes: Vec<u64> = vec![0, 1, u64::MAX - 1, u64::MAX];
            for e in 1..64u32 {
                let v = 1u64 << e;
                probes.extend([v - 1, v, v + 1]);
            }
            for v in probes {
                let upper = h.bucket_upper(LatencyHistogram::bucket_of(p, v));
                assert!(upper >= v, "p{p}: upper({v}) = {upper} < value");
                let slack = v.saturating_add((v >> p) + 1);
                assert!(
                    upper <= slack,
                    "p{p}: upper({v}) = {upper} > {v} + 2^-{p} slack"
                );
            }
        }
    }

    /// The sub-`2^precision` region is exact: each value its own bucket,
    /// with the upper bound equal to the value itself.
    #[test]
    fn linear_region_is_exact_per_value() {
        for p in [1u32, 5, 10] {
            let h = LatencyHistogram::new(p, u64::MAX);
            for v in 0..(1u64 << p) {
                let b = LatencyHistogram::bucket_of(p, v);
                assert_eq!(b, v as usize, "p{p}: value {v} not its own bucket");
                assert_eq!(h.bucket_upper(b), v);
            }
            // First value past the linear region starts the octave math.
            let v = 1u64 << p;
            assert!(h.bucket_upper(LatencyHistogram::bucket_of(p, v)) >= v);
        }
    }

    /// Regression: a histogram spanning the full u64 range must report a
    /// percentile from its top bucket without overflowing (`bucket_upper`
    /// used to compute `2^64 - 1` via an underflowing subtraction).
    #[test]
    fn top_bucket_of_full_range_histogram_reports_max() {
        let mut h = LatencyHistogram::new(5, u64::MAX);
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        h.record(1);
        assert_eq!(h.saturated(), 0, "u64::MAX is representable, not saturated");
        assert_eq!(h.percentile_permille(1000), Some(u64::MAX));
        assert!(h.percentile_permille(900).unwrap() >= u64::MAX - (u64::MAX >> 5));
    }

    /// Property check: for random samples, every histogram percentile
    /// must bracket the exact order statistic from a sorted vector:
    /// `exact <= hist <= exact * (1 + 2^-p)` (upper-bound reporting).
    #[test]
    fn percentiles_bracket_exact_quantiles() {
        let mut prng = Prng::seed_from_u64(1234);
        for round in 0..20 {
            let n = 1 + (prng.next_u64() % 3000) as usize;
            let mut vals: Vec<u64> = (0..n)
                .map(|_| {
                    // Mixture: mostly small, a heavy tail.
                    let r = prng.next_u64();
                    if r % 10 == 0 {
                        r % (1 << 22)
                    } else {
                        r % 2048
                    }
                })
                .collect();
            let mut h = LatencyHistogram::new(5, 1 << 30);
            for &v in &vals {
                h.record(v);
            }
            vals.sort_unstable();
            for p in [1u64, 10, 250, 500, 900, 990, 999, 1000] {
                let rank = ((n as u128 * p as u128).div_ceil(1000) as usize).max(1);
                let exact = vals[rank - 1];
                let got = h.percentile_permille(p).unwrap();
                assert!(got >= exact, "round {round} p{p}: {got} < exact {exact}");
                let slack = exact + (exact >> 5) + 1;
                assert!(
                    got <= slack,
                    "round {round} p{p}: {got} > {exact} + 1/32 ({slack})"
                );
            }
        }
    }
}
