//! # sst-traffic
//!
//! Open-loop request generation, queueing, and tail-latency measurement
//! over the CMP — the paper's commercial workloads are *services*, and a
//! service's figure of merit is tail latency at an offered load, not the
//! IPC of an endless loop. This crate provides experiment family **E14**
//! with the three layers that measurement needs:
//!
//! 1. [`arrival_cycles`] — a deterministic Poisson arrival process
//!    (inverse-CDF exponential sampling in pure integer math), so the
//!    request trace is byte-identical for a given seed on every host and
//!    at every `--threads`/`--jobs` setting.
//! 2. [`TrafficSpec`]/[`run_traffic`] — each request is a bounded slice
//!    (N transactions) of a commercial server kernel, dispatched through
//!    a bounded admission queue onto per-core lanes
//!    ([`Policy::LeastLoaded`] or [`Policy::RoundRobin`]), with explicit
//!    shed accounting on overflow; cores serve via the `sst-sim` service
//!    driver.
//! 3. [`LatencyHistogram`] — HDR-style log-bucketed latency histogram
//!    with integer-only bucket math, exact merge, and permille
//!    percentile extraction (p50/p99/p99.9).
//!
//! ```
//! use sst_traffic::{Policy, TrafficSpec, run_traffic};
//! use sst_sim::CoreModel;
//! use sst_workloads::Scale;
//!
//! let spec = TrafficSpec {
//!     model: CoreModel::Sst,
//!     workload: "oltp".into(),
//!     cores: 2,
//!     load_permille: 100,
//!     txns_per_request: 2,
//!     requests: 32,
//!     warmup: 8,
//!     admission_cap: 32,
//!     lane_cap: 4,
//!     quantum: 256,
//!     policy: Policy::LeastLoaded,
//! };
//! let r = run_traffic(&spec, Scale::Smoke, 1, 1, 1_000_000_000);
//! assert_eq!(r.completed + r.shed, r.offered);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arrival;
mod hist;
mod source;

pub use arrival::arrival_cycles;
pub use hist::LatencyHistogram;
pub use source::{
    run_traffic, run_traffic_full, Policy, ReqRecord, TrafficResult, TrafficRun, TrafficSpec,
};
