//! The open-loop traffic generator: a [`WorkSource`] that admits a
//! pre-sampled Poisson arrival trace through a bounded admission queue,
//! dispatches to per-core lanes under a configurable policy, and records
//! every request's arrival, placement, and completion.

use std::collections::VecDeque;

use sst_mem::{Cycle, MemConfig, MemStats};
use sst_prng::splitmix64;
use sst_sim::{CmpSystem, CoreModel, Lane, Request, WorkSource};
use sst_workloads::{Scale, ServerKernel};

use crate::arrival::arrival_cycles;
use crate::hist::LatencyHistogram;

/// Histogram sub-bucket precision bits (~3% relative error).
const HIST_PRECISION: u32 = 5;
/// Histogram range: latencies beyond 2^34 cycles saturate.
const HIST_MAX: u64 = 1 << 34;

/// Dispatch policy for moving admitted requests onto core lanes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// Lowest queued+running count wins, ties to the lowest core id.
    LeastLoaded,
    /// Strict rotation over cores with lane headroom.
    RoundRobin,
}

/// Everything that defines one traffic point. `Debug` is the harness
/// cache identity: every field lands in the cache key, so any sweep
/// parameter change re-simulates.
#[derive(Clone, Debug)]
pub struct TrafficSpec {
    /// Core model under test.
    pub model: CoreModel,
    /// Server-kernel name ("oltp", "erp", "web").
    pub workload: String,
    /// Chip width (one server kernel per core).
    pub cores: usize,
    /// Offered load in permille of nominal chip capacity, where nominal
    /// is 1 instruction per core-cycle (IPC 1.0 per core).
    pub load_permille: u32,
    /// Transactions bundled into one request.
    pub txns_per_request: u64,
    /// Total requests offered (the trace length).
    pub requests: u64,
    /// Leading requests excluded from the latency histogram (cold caches).
    pub warmup: u64,
    /// Admission-queue bound; arrivals beyond it are shed.
    pub admission_cap: usize,
    /// Per-core lane bound (queued + running) for dispatch eligibility.
    pub lane_cap: usize,
    /// Dispatch quantum in cycles (global decisions happen only here).
    pub quantum: u64,
    /// Dispatch policy.
    pub policy: Policy,
}

impl TrafficSpec {
    /// Mean inter-arrival time in cycles for this spec's offered load:
    /// at `load_permille = 1000` the chip receives work at exactly its
    /// nominal capacity of `cores` instructions per cycle.
    pub fn mean_interarrival(&self) -> u64 {
        let k = self.request_insts();
        (k * 1000 / (self.load_permille as u64 * self.cores as u64)).max(1)
    }

    /// Instructions per request (transaction size x bundle count).
    pub fn request_insts(&self) -> u64 {
        let txn = ServerKernel::txn_insts_of(&self.workload)
            .unwrap_or_else(|| panic!("{}: not a server workload", self.workload));
        txn * self.txns_per_request
    }
}

/// One request's lifecycle, in arrival order. The `Vec<ReqRecord>` a run
/// produces *is* the request trace the determinism contract covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReqRecord {
    /// Arrival cycle (sampled, independent of simulation behaviour).
    pub arrival: Cycle,
    /// Core the request was dispatched to (`None` if shed).
    pub core: Option<u32>,
    /// Completion cycle (`None` if shed).
    pub completion: Option<Cycle>,
    /// `true` when the admission queue was full at arrival.
    pub shed: bool,
}

/// Aggregate outcome of one traffic point (what the harness caches).
#[derive(Clone, Debug, PartialEq)]
pub struct TrafficResult {
    /// Core model label.
    pub model: String,
    /// Server-kernel name.
    pub workload: String,
    /// Chip width.
    pub cores: usize,
    /// Offered load in permille of nominal capacity.
    pub load_permille: u32,
    /// Mean inter-arrival time the load mapped to (cycles).
    pub mean_interarrival: u64,
    /// Makespan: the boundary cycle at which the source declared done.
    pub cycles: Cycle,
    /// Requests offered (trace length).
    pub offered: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests shed at admission.
    pub shed: u64,
    /// Arrival-to-completion latency histogram (post-warm-up requests).
    pub hist: LatencyHistogram,
    /// Final per-core `(cycle, retired)`.
    pub per_core: Vec<(Cycle, u64)>,
    /// Shared-memory statistics.
    pub mem: MemStats,
}

impl TrafficResult {
    /// Delivered throughput in permille of nominal chip capacity
    /// (completed work over elapsed core-cycles), for knee detection
    /// against `load_permille`.
    pub fn delivered_permille(&self, request_insts: u64) -> u64 {
        if self.cycles == 0 {
            return 0;
        }
        (self.completed as u128 * request_insts as u128 * 1000
            / (self.cycles as u128 * self.cores as u128)) as u64
    }
}

/// A full run: the aggregate result plus the per-request trace (the
/// equivalence tests compare the trace byte-for-byte across `--threads`).
#[derive(Clone, Debug, PartialEq)]
pub struct TrafficRun {
    /// Aggregate tables input.
    pub result: TrafficResult,
    /// Per-request lifecycle, arrival order.
    pub records: Vec<ReqRecord>,
}

/// The open-loop generator driving [`CmpSystem::run_service`].
struct TrafficSource {
    arrivals: Vec<Cycle>,
    request_insts: u64,
    next_arrival: usize,
    admission: VecDeque<u64>,
    admission_cap: usize,
    lane_cap: usize,
    quantum: Cycle,
    policy: Policy,
    rr_cursor: usize,
    records: Vec<ReqRecord>,
}

impl TrafficSource {
    fn new(spec: &TrafficSpec, arrivals: Vec<Cycle>) -> TrafficSource {
        let records = arrivals
            .iter()
            .map(|&arrival| ReqRecord {
                arrival,
                core: None,
                completion: None,
                shed: false,
            })
            .collect();
        TrafficSource {
            arrivals,
            request_insts: spec.request_insts(),
            next_arrival: 0,
            admission: VecDeque::new(),
            admission_cap: spec.admission_cap,
            lane_cap: spec.lane_cap,
            quantum: spec.quantum,
            policy: spec.policy,
            rr_cursor: 0,
            records,
        }
    }

    /// The lane to dispatch to, or `None` when every lane is full.
    fn pick_lane(&mut self, lanes: &[Lane]) -> Option<usize> {
        match self.policy {
            Policy::LeastLoaded => lanes
                .iter()
                .enumerate()
                .filter(|(_, l)| l.load() < self.lane_cap)
                .min_by_key(|(i, l)| (l.load(), *i))
                .map(|(i, _)| i),
            Policy::RoundRobin => {
                let n = lanes.len();
                for k in 0..n {
                    let i = (self.rr_cursor + k) % n;
                    if lanes[i].load() < self.lane_cap {
                        self.rr_cursor = (i + 1) % n;
                        return Some(i);
                    }
                }
                None
            }
        }
    }
}

impl WorkSource for TrafficSource {
    fn quantum(&self) -> Cycle {
        self.quantum
    }

    fn boundary(&mut self, now: Cycle, lanes: &mut [Lane]) -> bool {
        // 1. Harvest completions since the last boundary.
        for lane in lanes.iter_mut() {
            for (id, cycle) in lane.done.drain(..) {
                self.records[id as usize].completion = Some(cycle);
            }
        }
        // 2. Admit (or shed) everything that has arrived by `now`. Open
        //    loop: arrivals never wait for the system, only for the queue
        //    bound.
        while self.next_arrival < self.arrivals.len() && self.arrivals[self.next_arrival] <= now {
            let id = self.next_arrival as u64;
            if self.admission.len() < self.admission_cap {
                self.admission.push_back(id);
            } else {
                self.records[self.next_arrival].shed = true;
            }
            self.next_arrival += 1;
        }
        // 3. Dispatch to lanes with headroom.
        while let Some(&id) = self.admission.front() {
            let Some(lane) = self.pick_lane(lanes) else {
                break;
            };
            self.admission.pop_front();
            self.records[id as usize].core = Some(lane as u32);
            lanes[lane].queue.push_back(Request {
                id,
                insts: self.request_insts,
            });
        }
        // 4. Keep running until the trace is exhausted and drained.
        let drained = self.next_arrival == self.arrivals.len()
            && self.admission.is_empty()
            && lanes.iter().all(|l| !l.busy() && l.queue.is_empty());
        !drained
    }
}

/// Per-core seed derivation: distinct data images per slot, decoupled
/// from the arrival stream (same recipe as the CMP mix driver).
fn core_seed(seed: u64, id: usize) -> u64 {
    let mut s = seed.wrapping_add((id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    splitmix64(&mut s)
}

/// The arrival-stream seed, decoupled from workload-data seeds.
fn arrival_seed(seed: u64) -> u64 {
    let mut s = seed ^ 0x5452_4146_4649_4331; // "TRAFFIC1"
    splitmix64(&mut s)
}

/// Runs one traffic point and returns both the aggregate result and the
/// per-request trace. Deterministic in `(spec, scale, seed)`: `threads`
/// only changes wall-clock, never a byte of the outcome.
pub fn run_traffic_full(
    spec: &TrafficSpec,
    scale: Scale,
    seed: u64,
    threads: usize,
    max_cycles: Cycle,
) -> TrafficRun {
    assert!(spec.cores > 0 && spec.load_permille > 0, "degenerate spec");
    assert!(spec.admission_cap > 0 && spec.lane_cap > 0, "degenerate caps");
    let kernels: Vec<ServerKernel> = (0..spec.cores)
        .map(|slot| {
            ServerKernel::by_name(&spec.workload, scale, core_seed(seed, slot), slot)
                .unwrap_or_else(|| panic!("{}: not a server workload", spec.workload))
        })
        .collect();
    let programs: Vec<&sst_isa::Program> = kernels.iter().map(|k| &k.workload.program).collect();
    let sys = CmpSystem::from_programs(spec.model.clone(), &programs, &MemConfig::default())
        .with_threads(threads);

    let arrivals = arrival_cycles(arrival_seed(seed), spec.mean_interarrival(), spec.requests);
    let mut source = TrafficSource::new(spec, arrivals);
    let sim = sys.run_service(&mut source, max_cycles);

    let records = source.records;
    let mut hist = LatencyHistogram::new(HIST_PRECISION, HIST_MAX);
    let mut completed = 0u64;
    let mut shed = 0u64;
    for (i, r) in records.iter().enumerate() {
        if r.shed {
            shed += 1;
        }
        if let Some(c) = r.completion {
            completed += 1;
            if (i as u64) >= spec.warmup {
                hist.record(c - r.arrival);
            }
        }
    }
    let result = TrafficResult {
        model: sim.model,
        workload: spec.workload.clone(),
        cores: spec.cores,
        load_permille: spec.load_permille,
        mean_interarrival: spec.mean_interarrival(),
        cycles: sim.cycles,
        offered: spec.requests,
        completed,
        shed,
        hist,
        per_core: sim.per_core,
        mem: sim.mem,
    };
    TrafficRun { result, records }
}

/// [`run_traffic_full`] without the trace — what harness jobs call.
pub fn run_traffic(
    spec: &TrafficSpec,
    scale: Scale,
    seed: u64,
    threads: usize,
    max_cycles: Cycle,
) -> TrafficResult {
    run_traffic_full(spec, scale, seed, threads, max_cycles).result
}
