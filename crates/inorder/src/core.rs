//! The in-order pipeline model.

use sst_isa::{Inst, Program, Reg, SnapError, SnapReader, SnapWriter, NUM_REGS};
use sst_mem::{AccessKind, Cycle, MemBus};
use sst_obs::{HostTimes, Phase, Stage, TraceBuf};
use sst_uarch::{
    execute, extend_load, mem_addr, Commit, Core, ExecLatency, FetchedInst, Frontend,
    FrontendConfig, RegImage, Seq,
};

/// Configuration of the in-order baseline.
#[derive(Clone, Debug)]
pub struct InOrderConfig {
    /// Issue width (instructions per cycle).
    pub width: usize,
    /// Frontend (fetch/predict) configuration.
    pub frontend: FrontendConfig,
    /// Functional-unit latencies.
    pub latency: ExecLatency,
    /// Memory operations issued per cycle (D-cache ports).
    pub dcache_ports: usize,
}

impl Default for InOrderConfig {
    fn default() -> InOrderConfig {
        InOrderConfig {
            width: 2,
            frontend: FrontendConfig::default(),
            latency: ExecLatency::default(),
            dcache_ports: 1,
        }
    }
}

/// Cycle-accounting statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct InOrderStats {
    /// Cycles with zero issue because the decode queue was empty.
    pub stall_frontend: u64,
    /// Cycles with issue blocked on a not-ready source operand.
    pub stall_operand: u64,
    /// Issue slots lost to D-cache port limits.
    pub stall_port: u64,
    /// Resolved control transfers that disagreed with the prediction.
    pub mispredicts: u64,
    /// Total issue slots used.
    pub issued: u64,
}

/// The in-order stall-on-use core.
pub struct InOrderCore {
    cfg: InOrderConfig,
    id: usize,
    frontend: Frontend,
    regs: RegImage,
    seq: Seq,
    cycle: Cycle,
    halted: bool,
    commits: Vec<Commit>,
    /// Typed event trace, present only while tracing is enabled
    /// (record-only: see the `sst-obs` event-sink contract). An in-order
    /// core has a single phase, so its track is one `normal` span.
    trace: Option<Box<TraceBuf>>,
    /// Host-side stage timers, present only while profiling is enabled.
    prof: Option<Box<HostTimes>>,
    /// Statistics counters.
    pub stats: InOrderStats,
}

impl InOrderCore {
    /// Creates a core with index `id` that will start at `program.entry`.
    ///
    /// The caller is responsible for loading the program image into the
    /// core's memory port (see `Program::load_into`).
    pub fn new(cfg: InOrderConfig, id: usize, program: &Program) -> InOrderCore {
        InOrderCore {
            frontend: Frontend::new(cfg.frontend, program),
            cfg,
            id,
            regs: RegImage::new(),
            seq: 0,
            cycle: 0,
            halted: false,
            commits: Vec::new(),
            trace: None,
            prof: None,
            stats: InOrderStats::default(),
        }
    }

    /// Read-only view of the architectural register image (tests).
    pub fn regs(&self) -> &RegImage {
        &self.regs
    }

    /// The frontend (to inspect prediction statistics).
    pub fn frontend(&mut self) -> &mut Frontend {
        &mut self.frontend
    }

    fn source_vals(&self, inst: Inst) -> (u64, u64) {
        let [s1, s2] = inst.sources();
        let v1 = s1.map_or(0, |r| self.regs.value(r));
        let v2 = s2.map_or(0, |r| self.regs.value(r));
        (v1, v2)
    }

    /// Issues one instruction; returns `false` if issue must stop this
    /// cycle (control redirect or halt).
    fn issue(&mut self, fetched: FetchedInst, now: Cycle, mem: &mut MemBus) -> bool {
        self.seq += 1;
        let seq = self.seq;
        let pc = fetched.pc;
        let inst = fetched.inst;
        self.stats.issued += 1;

        let mut reg_write = None;
        let mut store = None;
        let mut redirect = None;

        match inst {
            Inst::Load {
                width, signed, rd, ..
            } => {
                let (base_val, _) = self.source_vals(inst);
                let addr = mem_addr(inst, base_val);
                let bytes = width.bytes();
                let out = mem.access_pc(now, AccessKind::Load, addr, pc);
                let raw = mem.read(addr, bytes);
                let value = extend_load(width, signed, raw);
                self.regs.write(rd, value, seq, out.ready_at);
                if !rd.is_zero() {
                    reg_write = Some((rd, value));
                }
            }
            Inst::Store { width, src, .. } => {
                let (base_val, data) = self.source_vals(inst);
                let _ = src;
                let addr = mem_addr(inst, base_val);
                let bytes = width.bytes();
                mem.access_pc(now, AccessKind::Store, addr, pc);
                mem.write(addr, bytes, data);
                store = Some((addr, bytes, data));
            }
            Inst::Prefetch { .. } => {
                let (base_val, _) = self.source_vals(inst);
                let addr = mem_addr(inst, base_val);
                mem.access_pc(now, AccessKind::Prefetch, addr, pc);
            }
            Inst::Halt => {
                self.halted = true;
            }
            _ => {
                let (s1, s2) = self.source_vals(inst);
                let out = execute(inst, s1, s2, pc);
                if let (Some(v), Some(rd)) = (out.value, inst.dest()) {
                    self.regs
                        .write(rd, v, seq, now + self.cfg.latency.of(inst));
                    reg_write = Some((rd, v));
                }
                if inst.is_control() {
                    self.frontend.resolve(pc, inst, out.taken, out.next_pc);
                    if out.next_pc != fetched.pred_next_pc {
                        redirect = Some(out.next_pc);
                    }
                }
            }
        }

        self.commits.push(Commit {
            seq,
            pc,
            inst,
            reg_write,
            store,
            at: now,
        });

        if let Some(target) = redirect {
            self.stats.mispredicts += 1;
            self.frontend.redirect(now + 1, target);
            return false;
        }
        !self.halted
    }
}

impl Core for InOrderCore {
    fn tick(&mut self, mem: &mut MemBus) {
        let now = self.cycle;
        self.cycle += 1;
        if let Some(tb) = self.trace.as_mut() {
            tb.set_phase(Phase::Normal, now);
        }
        if self.halted {
            return;
        }
        let t0 = HostTimes::start(&self.prof);
        self.frontend.tick(now, mem);
        HostTimes::stop(&mut self.prof, Stage::Fetch, t0);

        let t0 = HostTimes::start(&self.prof);
        let mut mem_ops = 0;
        for slot in 0..self.cfg.width {
            let Some(peeked) = self.frontend.peek() else {
                if slot == 0 {
                    self.stats.stall_frontend += 1;
                }
                break;
            };
            let inst = peeked.inst;

            // Stall-on-use: all sources must be produced and timed ready.
            if self.regs.ready_after(inst.sources()) > now {
                if slot == 0 {
                    self.stats.stall_operand += 1;
                }
                break;
            }
            if inst.is_mem() {
                if mem_ops >= self.cfg.dcache_ports {
                    self.stats.stall_port += 1;
                    break;
                }
                mem_ops += 1;
            }

            let fetched = self.frontend.pop().expect("peeked");
            if !self.issue(fetched, now, mem) {
                break;
            }
        }
        HostTimes::stop(&mut self.prof, Stage::Issue, t0);
    }

    fn cycle(&self) -> Cycle {
        self.cycle
    }

    fn retired(&self) -> u64 {
        self.seq
    }

    fn halted(&self) -> bool {
        self.halted
    }

    fn drain_commits_into(&mut self, out: &mut Vec<Commit>) {
        out.append(&mut self.commits);
    }

    fn next_event_cycle(&self) -> Cycle {
        let now = self.cycle;
        if self.halted {
            return Cycle::MAX;
        }
        let fetch = self.frontend.next_fetch_cycle(now);
        let issue = match self.frontend.peek() {
            // An empty queue is refilled only by fetch, which `fetch`
            // already covers.
            None => Cycle::MAX,
            Some(f) => self.regs.ready_after(f.inst.sources()).max(now),
        };
        fetch.min(issue)
    }

    fn skip_to(&mut self, target: Cycle) {
        let from = self.cycle;
        debug_assert!(from < target && target <= self.next_event_cycle());
        let n = target - from;
        self.frontend.note_skipped(from, target);
        // Nothing fetches or issues inside the window, so one stall reason
        // holds for every skipped cycle — the same slot-0 bookkeeping
        // `tick` would have done.
        if self.frontend.peek().is_none() {
            self.stats.stall_frontend += n;
        } else {
            self.stats.stall_operand += n;
        }
        self.cycle = target;
    }

    fn gate_to(&mut self, target: Cycle) {
        // Clock gate: dead time, not stall time — no counters move, and
        // absolute-cycle state (outstanding I-miss, operand timers) ages
        // naturally across the gate.
        self.cycle = self.cycle.max(target);
    }

    fn core_id(&self) -> usize {
        self.id
    }

    fn model_name(&self) -> &'static str {
        "in-order"
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        let bu = self.frontend.branch_unit_ref();
        vec![
            ("issued", self.stats.issued),
            ("stall_frontend", self.stats.stall_frontend),
            ("stall_operand", self.stats.stall_operand),
            ("stall_port", self.stats.stall_port),
            ("mispredicts", self.stats.mispredicts),
            ("cond_predictions", bu.cond_predictions),
            ("cond_mispredictions", bu.cond_mispredictions),
        ]
    }

    fn set_trace(&mut self, on: bool) {
        if on {
            if self.trace.is_none() {
                self.trace = Some(Box::new(TraceBuf::new()));
            }
        } else {
            self.trace = None;
        }
    }

    fn take_trace(&mut self) -> Option<TraceBuf> {
        self.trace.take().map(|mut tb| {
            tb.close(self.cycle);
            *tb
        })
    }

    fn set_host_prof(&mut self, on: bool) {
        if on {
            if self.prof.is_none() {
                self.prof = Some(Box::new(HostTimes::new()));
            }
        } else {
            self.prof = None;
        }
    }

    fn host_times(&self) -> Option<&HostTimes> {
        self.prof.as_deref()
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.tag("INOC");
        w.put_u64(self.cycle);
        w.put_u64(self.seq);
        w.put_bool(self.halted);
        self.frontend.save_state(w);
        self.regs.save_state(w);
        w.put_usize(self.commits.len());
        for c in &self.commits {
            c.save_state(w);
        }
        for v in [
            self.stats.stall_frontend,
            self.stats.stall_operand,
            self.stats.stall_port,
            self.stats.mispredicts,
            self.stats.issued,
        ] {
            w.put_u64(v);
        }
        Ok(())
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.tag("INOC")?;
        let cycle = r.take_u64()?;
        let seq = r.take_u64()?;
        let halted = r.take_bool()?;
        self.frontend.restore_state(r)?;
        self.regs.restore_state(r)?;
        let n = r.take_usize()?;
        self.commits.clear();
        for _ in 0..n {
            self.commits.push(Commit::load(r)?);
        }
        let mut stats = InOrderStats::default();
        for slot in [
            &mut stats.stall_frontend,
            &mut stats.stall_operand,
            &mut stats.stall_port,
            &mut stats.mispredicts,
            &mut stats.issued,
        ] {
            *slot = r.take_u64()?;
        }
        self.cycle = cycle;
        self.seq = seq;
        self.halted = halted;
        self.stats = stats;
        Ok(())
    }

    fn warm_boot(&mut self, regs: &[u64; NUM_REGS], pc: u64) {
        let mut image = RegImage::new();
        for (i, &v) in regs.iter().enumerate() {
            if let Some(reg) = Reg::from_index(i as u8) {
                image.write(reg, v, 0, 0);
            }
        }
        self.regs = image;
        self.halted = false;
        self.frontend.warm_reset(pc);
    }

    fn warm_predictor(&mut self, pc: u64, inst: Inst, taken: bool, next_pc: u64) {
        self.frontend.resolve(pc, inst, taken, next_pc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sst_isa::{Asm, Interp, Reg, StopReason};
    use sst_mem::{MemConfig, MemSystem};

    fn run(
        build: impl FnOnce(&mut Asm),
        max_cycles: u64,
    ) -> (InOrderCore, MemSystem, sst_isa::Program) {
        let mut a = Asm::new();
        build(&mut a);
        let p = a.finish().unwrap();
        let mut mem = MemSystem::new(&MemConfig::default(), 1);
        p.load_into(mem.mem_mut());
        let mut core = InOrderCore::new(InOrderConfig::default(), 0, &p);
        while !core.halted() && core.cycle() < max_cycles {
            core.tick(&mut mem.bus(0));
        }
        assert!(core.halted(), "program did not finish in {max_cycles} cycles");
        (core, mem, p)
    }

    /// Full co-simulation: every commit must match the interpreter step.
    fn cosim(build: impl Fn(&mut Asm), max_cycles: u64) -> (InOrderCore, MemSystem) {
        let (mut core, mem, p) = run(&build, max_cycles);
        let mut interp = Interp::new(&p);
        let commits = core.drain_commits();
        assert!(!commits.is_empty());
        for (i, c) in commits.iter().enumerate() {
            let ev = interp.step().expect("interp ok");
            assert_eq!(c.pc, ev.pc, "commit {i}: pc mismatch");
            assert_eq!(c.inst, ev.inst, "commit {i}: inst mismatch");
            assert_eq!(
                c.reg_write, ev.reg_write,
                "commit {i} at pc {:#x}: register write mismatch",
                c.pc
            );
            assert_eq!(c.seq, i as u64 + 1, "commit seq must be dense");
        }
        assert!(interp.is_halted());
        (core, mem)
    }

    #[test]
    fn cosim_arithmetic_loop() {
        cosim(
            |a| {
                a.li(Reg::x(5), 50);
                a.li(Reg::x(6), 0);
                let top = a.here();
                a.add(Reg::x(6), Reg::x(6), Reg::x(5));
                a.addi(Reg::x(5), Reg::x(5), -1);
                a.bne(Reg::x(5), Reg::ZERO, top);
                a.halt();
            },
            100_000,
        );
    }

    #[test]
    fn cosim_memory_traffic() {
        cosim(
            |a| {
                let buf = a.reserve(4096);
                a.la(Reg::x(1), buf);
                a.li(Reg::x(2), 64);
                let top = a.here();
                a.sd(Reg::x(2), Reg::x(1), 0);
                a.ld(Reg::x(3), Reg::x(1), 0);
                a.add(Reg::x(4), Reg::x(4), Reg::x(3));
                a.addi(Reg::x(1), Reg::x(1), 8);
                a.addi(Reg::x(2), Reg::x(2), -1);
                a.bne(Reg::x(2), Reg::ZERO, top);
                a.halt();
            },
            1_000_000,
        );
    }

    #[test]
    fn cosim_calls_and_fp() {
        cosim(
            |a| {
                let vals = a.data_f64(&[1.0, 2.0, 3.0, 4.0]);
                a.la(Reg::x(10), vals);
                a.li(Reg::x(11), 4);
                let f = a.label();
                let top = a.here();
                a.ld(Reg::f(0), Reg::x(10), 0);
                a.call(f);
                a.addi(Reg::x(10), Reg::x(10), 8);
                a.addi(Reg::x(11), Reg::x(11), -1);
                a.bne(Reg::x(11), Reg::ZERO, top);
                a.halt();
                a.bind(f);
                a.fadd(Reg::f(1), Reg::f(1), Reg::f(0));
                a.fmul(Reg::f(2), Reg::f(1), Reg::f(1));
                a.ret();
            },
            1_000_000,
        );
    }

    #[test]
    fn final_register_state_matches_interp() {
        let (core, _mem, p) = run(
            |a| {
                a.li(Reg::x(5), 1000);
                a.li(Reg::x(6), 7);
                a.mul(Reg::x(7), Reg::x(5), Reg::x(6));
                a.div(Reg::x(8), Reg::x(7), Reg::x(6));
                a.halt();
            },
            100_000,
        );
        let mut i = Interp::new(&p);
        assert_eq!(i.run(1000).unwrap().stop, StopReason::Halt);
        assert_eq!(core.regs().value(Reg::x(7)), i.state().read(Reg::x(7)));
        assert_eq!(core.regs().value(Reg::x(8)), i.state().read(Reg::x(8)));
    }

    #[test]
    fn dependent_miss_chain_is_slow() {
        // Pointer chase: each load depends on the previous one. The
        // stall-on-use core must pay roughly the full memory latency per
        // hop.
        let hops = 16u64;
        let (core, mem, _p) = run(
            |a| {
                // Build a chain: node[i] -> node[i+1], 1 MiB apart.
                let stride = 1 << 20;
                let first = a.data_u64(&[0]); // patched below via code
                let _ = first;
                // Instead of patching, write the chain with code first.
                let base = a.reserve(stride * (hops + 1));
                a.la(Reg::x(1), base);
                a.li(Reg::x(2), hops as i64);
                a.li(Reg::x(3), stride as i64);
                let w = a.here();
                a.add(Reg::x(4), Reg::x(1), Reg::x(3));
                a.sd(Reg::x(4), Reg::x(1), 0);
                a.mv(Reg::x(1), Reg::x(4));
                a.addi(Reg::x(2), Reg::x(2), -1);
                a.bne(Reg::x(2), Reg::ZERO, w);
                // Chase it.
                a.la(Reg::x(1), base);
                a.li(Reg::x(2), hops as i64);
                let c = a.here();
                a.ld(Reg::x(1), Reg::x(1), 0);
                a.addi(Reg::x(2), Reg::x(2), -1);
                a.bne(Reg::x(2), Reg::ZERO, c);
                a.halt();
            },
            10_000_000,
        );
        let st = mem.stats();
        assert!(st.dram_reads > hops, "chase misses in DRAM");
        assert!(
            core.stats.stall_operand > hops * 100,
            "stall-on-use dominated: {} stalls",
            core.stats.stall_operand
        );
    }

    #[test]
    fn independent_misses_overlap() {
        // Two interleaved independent chases: MLP 2. Total time should be
        // well under 2x a single chase of the same total length.
        let build_two = |a: &mut Asm| {
            let stride = 1 << 20;
            let hops = 16u64;
            let base1 = a.reserve(stride * (hops + 1));
            let base2 = a.reserve(stride * (hops + 1));
            for base in [base1, base2] {
                a.la(Reg::x(1), base);
                a.li(Reg::x(2), hops as i64);
                a.li(Reg::x(3), stride as i64);
                let w = a.here();
                a.add(Reg::x(4), Reg::x(1), Reg::x(3));
                a.sd(Reg::x(4), Reg::x(1), 0);
                a.mv(Reg::x(1), Reg::x(4));
                a.addi(Reg::x(2), Reg::x(2), -1);
                a.bne(Reg::x(2), Reg::ZERO, w);
            }
            a.la(Reg::x(10), base1);
            a.la(Reg::x(11), base2);
            a.li(Reg::x(2), hops as i64);
            let c = a.here();
            a.ld(Reg::x(10), Reg::x(10), 0);
            a.ld(Reg::x(11), Reg::x(11), 0);
            a.addi(Reg::x(2), Reg::x(2), -1);
            a.bne(Reg::x(2), Reg::ZERO, c);
            a.halt();
        };
        let (core2, _m, _) = run(build_two, 10_000_000);

        // Serial version: one chain of 2*hops.
        let build_one = |a: &mut Asm| {
            let stride = 1 << 20;
            let hops = 32u64;
            let base = a.reserve(stride * (hops + 1));
            a.la(Reg::x(1), base);
            a.li(Reg::x(2), hops as i64);
            a.li(Reg::x(3), stride as i64);
            let w = a.here();
            a.add(Reg::x(4), Reg::x(1), Reg::x(3));
            a.sd(Reg::x(4), Reg::x(1), 0);
            a.mv(Reg::x(1), Reg::x(4));
            a.addi(Reg::x(2), Reg::x(2), -1);
            a.bne(Reg::x(2), Reg::ZERO, w);
            a.la(Reg::x(1), base);
            a.li(Reg::x(2), hops as i64);
            let c = a.here();
            a.ld(Reg::x(1), Reg::x(1), 0);
            a.addi(Reg::x(2), Reg::x(2), -1);
            a.bne(Reg::x(2), Reg::ZERO, c);
            a.halt();
        };
        let (core1, _m, _) = run(build_one, 10_000_000);
        assert!(
            (core2.cycle() as f64) < core1.cycle() as f64 * 0.8,
            "MLP-2 chase ({}) should beat serial chase ({})",
            core2.cycle(),
            core1.cycle()
        );
    }

    #[test]
    fn mispredict_penalty_visible() {
        // Data-dependent unpredictable-ish branch pattern via xorshift.
        let (core, _m, _) = run(
            |a| {
                a.li(Reg::x(1), 88172645463325252u64 as i64);
                a.li(Reg::x(2), 2000); // iterations
                a.li(Reg::x(9), 0);
                let top = a.here();
                // xorshift64
                a.slli(Reg::x(3), Reg::x(1), 13);
                a.xor(Reg::x(1), Reg::x(1), Reg::x(3));
                a.srli(Reg::x(3), Reg::x(1), 7);
                a.xor(Reg::x(1), Reg::x(1), Reg::x(3));
                a.slli(Reg::x(3), Reg::x(1), 17);
                a.xor(Reg::x(1), Reg::x(1), Reg::x(3));
                a.andi(Reg::x(4), Reg::x(1), 1);
                let skip = a.label();
                a.beq(Reg::x(4), Reg::ZERO, skip);
                a.addi(Reg::x(9), Reg::x(9), 1);
                a.bind(skip);
                a.addi(Reg::x(2), Reg::x(2), -1);
                a.bne(Reg::x(2), Reg::ZERO, top);
                a.halt();
            },
            10_000_000,
        );
        assert!(
            core.stats.mispredicts > 200,
            "random branches mispredict: {}",
            core.stats.mispredicts
        );
    }

    #[test]
    fn halted_core_stops_advancing_state() {
        let (mut core, mut mem, _p) = run(
            |a| {
                a.li(Reg::x(1), 5);
                a.halt();
            },
            10_000,
        );
        let retired = core.retired();
        for _ in 0..100 {
            core.tick(&mut mem.bus(0));
        }
        assert_eq!(core.retired(), retired);
    }
}
