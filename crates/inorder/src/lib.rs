//! # sst-inorder
//!
//! The in-order, stall-on-use baseline core of the SST study.
//!
//! This is the simplest machine in the comparison: a `width`-wide in-order
//! pipeline that issues instructions in program order, records each
//! destination's readiness cycle, and stalls issue when a consumer's source
//! is not yet ready ("stall-on-use"). Independent loads can overlap (the
//! MSHRs in `sst-mem` bound that), but a dependent use of a miss blocks the
//! whole pipeline — precisely the behaviour SST's execute-ahead mechanism
//! attacks.
//!
//! The core shares its frontend, latency table, and memory hierarchy with
//! every other model in the workspace, so comparisons isolate the pipeline
//! organization.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod core;

pub use crate::core::{InOrderConfig, InOrderCore, InOrderStats};
