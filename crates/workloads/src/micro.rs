//! Microbenchmarks with precisely controlled memory-level parallelism.

use sst_isa::Reg;

use crate::common::{slot_asm, pointer_chain, rng};
use crate::{Class, Scale, Workload};

/// Pure pointer chase: MLP 1, every hop a dependent miss. The worst case
/// for every latency-tolerance mechanism (there is nothing to run ahead
/// on).
pub fn chase(scale: Scale, seed: u64, slot: usize) -> Workload {
    let (nodes, hops) = match scale {
        Scale::Smoke => (32 * 1024, 1_500),
        Scale::Full => (256 * 1024, 20_000),
    };
    let mut r = rng("chase", seed);
    let mut a = slot_asm(slot);
    let chain = pointer_chain(&mut a, &mut r, nodes, 64);
    a.la(Reg::x(1), chain);
    a.li(Reg::x(2), hops);
    let top = a.here();
    a.ld(Reg::x(1), Reg::x(1), 0);
    a.addi(Reg::x(2), Reg::x(2), -1);
    a.bne(Reg::x(2), Reg::ZERO, top);
    a.halt();
    Workload {
        name: "chase",
        class: Class::Micro,
        program: a.finish().expect("chase assembles"),
        skip_insts: (hops as u64 / 10) * 4,
        description: "single dependent pointer chase (MLP 1)",
    }
}

/// Eight interleaved independent chases, each with an immediate dependent
/// use of its loaded value. A stall-on-use in-order pipeline serializes at
/// the first use (MLP 1); a mechanism that can defer the uses exposes all
/// eight misses at once (MLP 8).
pub fn mlp8(scale: Scale, seed: u64, slot: usize) -> Workload {
    let (nodes, hops) = match scale {
        Scale::Smoke => (8 * 1024, 300),
        Scale::Full => (64 * 1024, 3_000),
    };
    let mut r = rng("mlp8", seed);
    let mut a = slot_asm(slot);
    let chains: Vec<u64> = (0..8)
        .map(|_| pointer_chain(&mut a, &mut r, nodes, 64))
        .collect();
    for (i, &c) in chains.iter().enumerate() {
        a.la(Reg::x(10 + i as u8), c);
    }
    a.li(Reg::x(2), hops);
    a.li(Reg::x(20), 0);
    let top = a.here();
    for i in 0..8u8 {
        a.ld(Reg::x(10 + i), Reg::x(10 + i), 0);
        // Immediate dependent use: blocks a stall-on-use pipeline here.
        a.add(Reg::x(20), Reg::x(20), Reg::x(10 + i));
    }
    a.addi(Reg::x(2), Reg::x(2), -1);
    a.bne(Reg::x(2), Reg::ZERO, top);
    a.halt();
    Workload {
        name: "mlp8",
        class: Class::Micro,
        program: a.finish().expect("mlp8 assembles"),
        skip_insts: (hops as u64 / 10) * 18,
        description: "eight interleaved independent chases (MLP 8)",
    }
}
