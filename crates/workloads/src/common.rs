//! Shared generator helpers: seeded data-image construction and common
//! code idioms.

use sst_isa::{Asm, Reg};
use sst_prng::Prng;

/// An [`Asm`] whose text/data segments live in `slot`'s private address
/// range. Slot 0 is the default layout; each further slot is offset by
/// 64 GiB so multiprogrammed CMP workloads never alias.
pub fn slot_asm(slot: usize) -> Asm {
    let off = (slot as u64) << 36;
    Asm::with_bases(sst_isa::DEFAULT_TEXT_BASE + off, sst_isa::DEFAULT_DATA_BASE + off)
}

/// A seeded RNG for data-image generation (deterministic per workload+seed).
pub fn rng(workload: &str, seed: u64) -> Prng {
    let mut h = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for b in workload.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01B3);
    }
    Prng::seed_from_u64(h)
}

/// Builds a random-cycle pointer chain of `nodes` nodes of `node_bytes`
/// bytes each inside a reserved region; offset 0 of each node holds the
/// absolute address of the next node, the rest of the node is filled with
/// random payload words. Returns the region base (== the first node).
///
/// A single cycle through a random permutation gives the classic
/// cache-hostile chase: successive hops are far apart and unpredictable.
pub fn pointer_chain(a: &mut Asm, rng: &mut Prng, nodes: u64, node_bytes: u64) -> u64 {
    assert!(node_bytes >= 8 && node_bytes % 8 == 0);
    // Sattolo's algorithm: a uniformly random single cycle.
    let mut perm: Vec<u64> = (0..nodes).collect();
    let mut i = nodes as usize - 1;
    while i > 0 {
        let j = rng.gen_range(0..i);
        perm.swap(i, j);
        i -= 1;
    }
    // The region starts at the (aligned) current data cursor, so the next
    // `data_u64` lands exactly there and absolute links can be computed
    // up front.
    a.align_data(64);
    let region = a.data_cursor_addr();
    let mut words: Vec<u64> = vec![0; (nodes * node_bytes / 8) as usize];
    let words_per_node = (node_bytes / 8) as usize;
    for k in 0..nodes as usize {
        let cur = perm[k];
        let next = perm[(k + 1) % nodes as usize];
        let idx = cur as usize * words_per_node;
        words[idx] = region + next * node_bytes;
        for w in 1..words_per_node {
            words[idx + w] = rng.gen();
        }
    }
    let actual = a.data_u64(&words);
    assert_eq!(actual, region, "image must land at the precomputed base");
    region
}

/// Emits an xorshift64 step on `state`, clobbering `tmp`.
pub fn xorshift(a: &mut Asm, state: Reg, tmp: Reg) {
    a.slli(tmp, state, 13);
    a.xor(state, state, tmp);
    a.srli(tmp, state, 7);
    a.xor(state, state, tmp);
    a.slli(tmp, state, 17);
    a.xor(state, state, tmp);
}

/// Fills a reserved region with random 64-bit words; returns its base.
pub fn random_words(a: &mut Asm, rng: &mut Prng, count: u64) -> u64 {
    let words: Vec<u64> = (0..count).map(|_| rng.gen()).collect();
    a.data_u64(&words)
}

/// Fills a region with random bytes; returns its base.
pub fn random_bytes(a: &mut Asm, rng: &mut Prng, count: u64) -> u64 {
    let bytes: Vec<u8> = (0..count).map(|_| rng.gen()).collect();
    a.data_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sst_isa::{Interp, Reg, StopReason};

    #[test]
    fn pointer_chain_is_a_single_cycle() {
        let mut a = Asm::new();
        let mut r = rng("t", 1);
        let nodes = 64;
        let base = pointer_chain(&mut a, &mut r, nodes, 64);
        // Walk it functionally and require we visit every node once.
        a.la(Reg::x(1), base);
        a.li(Reg::x(2), nodes as i64);
        let top = a.here();
        a.ld(Reg::x(1), Reg::x(1), 0);
        a.addi(Reg::x(2), Reg::x(2), -1);
        a.bne(Reg::x(2), Reg::ZERO, top);
        a.halt();
        let p = a.finish().unwrap();
        let mut i = Interp::new(&p);
        assert_eq!(i.run(10_000).unwrap().stop, StopReason::Halt);
        assert_eq!(
            i.state().read(Reg::x(1)),
            base,
            "after `nodes` hops the cycle returns to the start"
        );
    }

    #[test]
    fn xorshift_matches_reference() {
        let mut a = Asm::new();
        a.li(Reg::x(1), 88172645463325252u64 as i64);
        xorshift(&mut a, Reg::x(1), Reg::x(2));
        a.halt();
        let p = a.finish().unwrap();
        let mut i = Interp::new(&p);
        i.run(100).unwrap();
        // Reference xorshift64.
        let mut x = 88172645463325252u64;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        assert_eq!(i.state().read(Reg::x(1)), x);
    }

    #[test]
    fn rng_distinguishes_workloads_and_seeds() {
        let a: u64 = rng("oltp", 1).gen();
        let b: u64 = rng("oltp", 2).gen();
        let c: u64 = rng("web", 1).gen();
        assert_ne!(a, b);
        assert_ne!(a, c);
        let a2: u64 = rng("oltp", 1).gen();
        assert_eq!(a, a2);
    }
}
