//! SPEC-CPU-like integer and floating-point kernels.

use sst_isa::Reg;

use crate::common::{slot_asm, pointer_chain, random_bytes, random_words, rng, xorshift};
use crate::{Class, Scale, Workload};

/// `mcf`-like: pure pointer chasing over a large graph with minimal
/// compute — the latency-bound, MLP-1 extreme.
pub fn mcf_like(scale: Scale, seed: u64, slot: usize) -> Workload {
    let (nodes, hops) = match scale {
        Scale::Smoke => (32 * 1024, 2_000),      // 2 MiB
        Scale::Full => (256 * 1024, 30_000),     // 16 MiB
    };
    let mut r = rng("mcf", seed);
    let mut a = slot_asm(slot);
    let chain = pointer_chain(&mut a, &mut r, nodes, 64);

    a.la(Reg::x(1), chain);
    a.li(Reg::x(2), hops);
    a.li(Reg::x(10), 0);
    let top = a.here();
    a.ld(Reg::x(3), Reg::x(1), 8); // cost field
    a.add(Reg::x(10), Reg::x(10), Reg::x(3));
    a.ld(Reg::x(1), Reg::x(1), 0); // next arc
    a.addi(Reg::x(2), Reg::x(2), -1);
    a.bne(Reg::x(2), Reg::ZERO, top);
    a.halt();

    Workload {
        name: "mcf",
        class: Class::SpecInt,
        program: a.finish().expect("mcf assembles"),
        skip_insts: (hops as u64 / 10) * 6,
        description: "pointer chase over a large arc graph (MLP 1)",
    }
}

/// `gcc`-like: a branchy interpreter over a random opcode stream with
/// occasional symbol-table derefs. Mispredict-heavy, moderate miss rate.
pub fn gcc_like(scale: Scale, seed: u64, slot: usize) -> Workload {
    let (stream_bytes, symbols, iters) = match scale {
        Scale::Smoke => (128 * 1024, 16 * 1024, 2_000),
        Scale::Full => (2 * 1024 * 1024, 256 * 1024, 30_000),
    };
    let mut r = rng("gcc", seed);
    let mut a = slot_asm(slot);
    let stream = random_bytes(&mut a, &mut r, stream_bytes);
    let symtab = random_words(&mut a, &mut r, symbols); // 8B entries

    a.la(Reg::x(20), stream);
    a.la(Reg::x(21), symtab);
    a.li(Reg::x(22), 0); // stream cursor
    a.li(Reg::x(10), 0); // accumulator
    a.li(Reg::x(2), iters);
    let top = a.here();

    // Fetch the next opcode byte (sequential: mostly cache-friendly).
    a.li(Reg::x(4), stream_bytes as i64 - 1);
    a.and(Reg::x(5), Reg::x(22), Reg::x(4));
    a.add(Reg::x(5), Reg::x(5), Reg::x(20));
    a.lbu(Reg::x(6), Reg::x(5), 0);
    a.addi(Reg::x(22), Reg::x(22), 1);

    // 4-way switch on the low bits (random -> mispredicts).
    let c1 = a.label();
    let c23 = a.label();
    let c3 = a.label();
    let join = a.label();
    a.andi(Reg::x(7), Reg::x(6), 3);
    a.andi(Reg::x(8), Reg::x(7), 2);
    a.bne(Reg::x(8), Reg::ZERO, c23);
    a.bne(Reg::x(7), Reg::ZERO, c1);
    // case 0: arithmetic
    a.add(Reg::x(10), Reg::x(10), Reg::x(6));
    a.j(join);
    a.bind(c1); // case 1: shift mix
    a.slli(Reg::x(9), Reg::x(10), 3);
    a.xor(Reg::x(10), Reg::x(9), Reg::x(6));
    a.j(join);
    a.bind(c23);
    a.andi(Reg::x(8), Reg::x(7), 1);
    a.bne(Reg::x(8), Reg::ZERO, c3);
    // case 2: symbol-table deref (can miss)
    a.li(Reg::x(4), (symbols as i64 - 1) * 8);
    a.slli(Reg::x(9), Reg::x(10), 3);
    a.and(Reg::x(9), Reg::x(9), Reg::x(4));
    a.add(Reg::x(9), Reg::x(9), Reg::x(21));
    a.ld(Reg::x(11), Reg::x(9), 0);
    a.add(Reg::x(10), Reg::x(10), Reg::x(11));
    a.j(join);
    a.bind(c3); // case 3: compare chain
    a.slti(Reg::x(9), Reg::x(10), 0);
    a.add(Reg::x(10), Reg::x(10), Reg::x(9));
    a.xori(Reg::x(10), Reg::x(10), 0x2a);
    a.bind(join);

    a.addi(Reg::x(2), Reg::x(2), -1);
    a.bne(Reg::x(2), Reg::ZERO, top);
    a.halt();

    Workload {
        name: "gcc",
        class: Class::SpecInt,
        program: a.finish().expect("gcc assembles"),
        skip_insts: (iters as u64 / 10) * 15,
        description: "branchy opcode interpreter with symbol-table derefs",
    }
}

/// `gzip`-like: byte stream + CRC-style table lookups + bit manipulation.
/// Cache-resident, long dependence through the accumulator.
pub fn gzip_like(scale: Scale, seed: u64, slot: usize) -> Workload {
    let (stream_bytes, iters) = match scale {
        Scale::Smoke => (64 * 1024, 3_000),
        Scale::Full => (512 * 1024, 50_000),
    };
    let mut r = rng("gzip", seed);
    let mut a = slot_asm(slot);
    let stream = random_bytes(&mut a, &mut r, stream_bytes);
    let table = random_words(&mut a, &mut r, 256); // 2 KiB CRC table

    a.la(Reg::x(20), stream);
    a.la(Reg::x(21), table);
    a.li(Reg::x(22), 0);
    a.li(Reg::x(10), !0i64); // crc
    a.li(Reg::x(2), iters);
    let top = a.here();
    a.li(Reg::x(4), stream_bytes as i64 - 1);
    a.and(Reg::x(5), Reg::x(22), Reg::x(4));
    a.add(Reg::x(5), Reg::x(5), Reg::x(20));
    a.lbu(Reg::x(6), Reg::x(5), 0);
    a.addi(Reg::x(22), Reg::x(22), 1);
    // crc = table[(crc ^ byte) & 0xff] ^ (crc >> 8)
    a.xor(Reg::x(7), Reg::x(10), Reg::x(6));
    a.andi(Reg::x(7), Reg::x(7), 0xff);
    a.slli(Reg::x(7), Reg::x(7), 3);
    a.add(Reg::x(7), Reg::x(7), Reg::x(21));
    a.ld(Reg::x(8), Reg::x(7), 0);
    a.srli(Reg::x(9), Reg::x(10), 8);
    a.xor(Reg::x(10), Reg::x(8), Reg::x(9));
    a.addi(Reg::x(2), Reg::x(2), -1);
    a.bne(Reg::x(2), Reg::ZERO, top);
    a.halt();

    Workload {
        name: "gzip",
        class: Class::SpecInt,
        program: a.finish().expect("gzip assembles"),
        skip_insts: (iters as u64 / 10) * 12,
        description: "CRC-style table-driven byte processing (cache resident)",
    }
}

/// GUPS: random read-modify-write updates over a huge table. Every
/// iteration is independent — the MLP-rich extreme.
pub fn gups(scale: Scale, seed: u64, slot: usize) -> Workload {
    let (table_words, updates) = match scale {
        Scale::Smoke => (256 * 1024, 1_500),     // 2 MiB
        Scale::Full => (4 * 1024 * 1024, 20_000), // 32 MiB
    };
    let mut r = rng("gups", seed);
    let mut a = slot_asm(slot);
    let table = random_words(&mut a, &mut r, table_words.min(1024 * 1024));
    // For very large tables, only the first chunk is initialized; the rest
    // reads as zero, which is fine for xor updates.
    if table_words > 1024 * 1024 {
        a.reserve((table_words - 1024 * 1024) * 8);
    }

    let state = Reg::x(1);
    let tmp = Reg::x(3);
    a.li(state, 0x9E37_79B9_7F4A_7C15u64 as i64);
    a.la(Reg::x(20), table);
    a.li(Reg::x(2), updates);
    let top = a.here();
    xorshift(&mut a, state, tmp);
    a.li(Reg::x(4), (table_words as i64 - 1) * 8);
    a.slli(Reg::x(5), state, 3);
    a.and(Reg::x(5), Reg::x(5), Reg::x(4));
    a.add(Reg::x(5), Reg::x(5), Reg::x(20));
    a.ld(Reg::x(6), Reg::x(5), 0);
    a.xor(Reg::x(6), Reg::x(6), state);
    a.sd(Reg::x(6), Reg::x(5), 0);
    a.addi(Reg::x(2), Reg::x(2), -1);
    a.bne(Reg::x(2), Reg::ZERO, top);
    a.halt();

    Workload {
        name: "gups",
        class: Class::SpecInt,
        program: a.finish().expect("gups assembles"),
        skip_insts: (updates as u64 / 10) * 13,
        description: "random read-modify-write updates (independent misses)",
    }
}

/// STREAM-like triad: `a[i] = b[i] + k * c[i]` over long f64 arrays.
/// Unit-stride, bandwidth-bound, prefetch-friendly.
pub fn stream_like(scale: Scale, seed: u64, slot: usize) -> Workload {
    let (elems, passes) = match scale {
        Scale::Smoke => (32 * 1024, 1),      // 3 x 256 KiB
        Scale::Full => (256 * 1024, 2),      // 3 x 2 MiB
    };
    let mut r = rng("stream", seed);
    let mut a = slot_asm(slot);
    let b: Vec<f64> = (0..elems).map(|_| r.gen::<f64>()).collect();
    let c: Vec<f64> = (0..elems).map(|_| r.gen::<f64>()).collect();
    let b_base = a.data_f64(&b);
    let c_base = a.data_f64(&c);
    let a_base = a.reserve(elems * 8);

    a.li(Reg::x(9), passes);
    let kreg = Reg::f(10);
    a.li(Reg::x(4), 3.0f64.to_bits() as i64);
    a.mv(kreg, Reg::x(4));
    let pass = a.here();
    a.la(Reg::x(1), b_base);
    a.la(Reg::x(2), c_base);
    a.la(Reg::x(3), a_base);
    a.li(Reg::x(5), elems as i64);
    let top = a.here();
    a.ld(Reg::f(0), Reg::x(1), 0);
    a.ld(Reg::f(1), Reg::x(2), 0);
    a.fmul(Reg::f(2), Reg::f(1), kreg);
    a.fadd(Reg::f(3), Reg::f(0), Reg::f(2));
    a.sd(Reg::f(3), Reg::x(3), 0);
    a.addi(Reg::x(1), Reg::x(1), 8);
    a.addi(Reg::x(2), Reg::x(2), 8);
    a.addi(Reg::x(3), Reg::x(3), 8);
    a.addi(Reg::x(5), Reg::x(5), -1);
    a.bne(Reg::x(5), Reg::ZERO, top);
    a.addi(Reg::x(9), Reg::x(9), -1);
    a.bne(Reg::x(9), Reg::ZERO, pass);
    a.halt();

    Workload {
        name: "stream",
        class: Class::SpecFp,
        program: a.finish().expect("stream assembles"),
        skip_insts: 2_000,
        description: "unit-stride f64 triad (bandwidth bound)",
    }
}

/// Stencil: 5-point Jacobi sweep over an f64 grid. Strided with reuse.
pub fn stencil_like(scale: Scale, seed: u64, slot: usize) -> Workload {
    let (nx, ny, sweeps) = match scale {
        Scale::Smoke => (128usize, 64usize, 2),
        Scale::Full => (512, 256, 3), // 1 MiB grids
    };
    let mut r = rng("stencil", seed);
    let mut a = slot_asm(slot);
    let grid: Vec<f64> = (0..nx * ny).map(|_| r.gen::<f64>()).collect();
    let src = a.data_f64(&grid);
    let dst = a.reserve((nx * ny) as u64 * 8);
    let row_bytes = (nx * 8) as i64;

    a.li(Reg::x(9), sweeps);
    let sweep = a.here();
    a.la(Reg::x(1), src + row_bytes as u64 + 8); // interior start (center)
    a.la(Reg::x(2), dst + row_bytes as u64 + 8);
    // Neighbor-row pointers kept in registers (rows can exceed the 12-bit
    // load-offset range).
    a.la(Reg::x(3), src + 8); // up
    a.la(Reg::x(4), src + 2 * row_bytes as u64 + 8); // down
    a.li(Reg::x(5), ((ny - 2) * (nx - 2)) as i64);
    a.li(Reg::x(6), 0); // column counter for row wrap
    let top = a.here();
    a.ld(Reg::f(0), Reg::x(1), 0);
    a.ld(Reg::f(1), Reg::x(1), -8);
    a.ld(Reg::f(2), Reg::x(1), 8);
    a.ld(Reg::f(3), Reg::x(3), 0);
    a.ld(Reg::f(4), Reg::x(4), 0);
    a.fadd(Reg::f(5), Reg::f(1), Reg::f(2));
    a.fadd(Reg::f(6), Reg::f(3), Reg::f(4));
    a.fadd(Reg::f(5), Reg::f(5), Reg::f(6));
    a.fadd(Reg::f(5), Reg::f(5), Reg::f(0));
    a.sd(Reg::f(5), Reg::x(2), 0);
    a.addi(Reg::x(1), Reg::x(1), 8);
    a.addi(Reg::x(2), Reg::x(2), 8);
    a.addi(Reg::x(3), Reg::x(3), 8);
    a.addi(Reg::x(4), Reg::x(4), 8);
    a.addi(Reg::x(6), Reg::x(6), 1);
    // Row wrap: skip the two boundary columns.
    a.li(Reg::x(7), (nx - 2) as i64);
    let no_wrap = a.label();
    a.bne(Reg::x(6), Reg::x(7), no_wrap);
    a.addi(Reg::x(1), Reg::x(1), 16);
    a.addi(Reg::x(2), Reg::x(2), 16);
    a.addi(Reg::x(3), Reg::x(3), 16);
    a.addi(Reg::x(4), Reg::x(4), 16);
    a.li(Reg::x(6), 0);
    a.bind(no_wrap);
    a.addi(Reg::x(5), Reg::x(5), -1);
    a.bne(Reg::x(5), Reg::ZERO, top);
    a.addi(Reg::x(9), Reg::x(9), -1);
    a.bne(Reg::x(9), Reg::ZERO, sweep);
    a.halt();

    Workload {
        name: "stencil",
        class: Class::SpecFp,
        program: a.finish().expect("stencil assembles"),
        skip_insts: 2_000,
        description: "5-point Jacobi sweep over an f64 grid",
    }
}

/// Matmul: naive `n x n` f64 matrix multiply, cache-resident compute-bound
/// (the workload where a wide OoO should shine).
pub fn matmul_like(scale: Scale, seed: u64, slot: usize) -> Workload {
    let n: usize = match scale {
        Scale::Smoke => 20,
        Scale::Full => 36,
    };
    let mut r = rng("matmul", seed);
    let mut a = slot_asm(slot);
    let ma: Vec<f64> = (0..n * n).map(|_| r.gen::<f64>()).collect();
    let mb: Vec<f64> = (0..n * n).map(|_| r.gen::<f64>()).collect();
    let a_base = a.data_f64(&ma);
    let b_base = a.data_f64(&mb);
    let c_base = a.reserve((n * n) as u64 * 8);
    let row = (n * 8) as i64;

    // for i { for j { acc = 0; for k { acc += A[i][k]*B[k][j] }; C[i][j]=acc } }
    a.li(Reg::x(1), n as i64); // i counter
    a.la(Reg::x(11), a_base); // A row ptr
    a.la(Reg::x(13), c_base); // C row ptr
    let i_loop = a.here();
    a.li(Reg::x(2), n as i64); // j counter
    a.la(Reg::x(12), b_base); // B column ptr (top of column j)
    a.mv(Reg::x(14), Reg::x(13)); // C element ptr
    let j_loop = a.here();
    a.li(Reg::x(3), n as i64); // k counter
    a.mv(Reg::x(15), Reg::x(11)); // A element ptr
    a.mv(Reg::x(16), Reg::x(12)); // B element ptr
    a.li(Reg::x(4), 0);
    a.mv(Reg::f(0), Reg::x(4)); // acc = 0.0
    let k_loop = a.here();
    a.ld(Reg::f(1), Reg::x(15), 0);
    a.ld(Reg::f(2), Reg::x(16), 0);
    a.fmul(Reg::f(3), Reg::f(1), Reg::f(2));
    a.fadd(Reg::f(0), Reg::f(0), Reg::f(3));
    a.addi(Reg::x(15), Reg::x(15), 8);
    a.addi(Reg::x(16), Reg::x(16), row);
    a.addi(Reg::x(3), Reg::x(3), -1);
    a.bne(Reg::x(3), Reg::ZERO, k_loop);
    a.sd(Reg::f(0), Reg::x(14), 0);
    a.addi(Reg::x(14), Reg::x(14), 8);
    a.addi(Reg::x(12), Reg::x(12), 8); // next column
    a.addi(Reg::x(2), Reg::x(2), -1);
    a.bne(Reg::x(2), Reg::ZERO, j_loop);
    a.addi(Reg::x(11), Reg::x(11), row);
    a.addi(Reg::x(13), Reg::x(13), row);
    a.addi(Reg::x(1), Reg::x(1), -1);
    a.bne(Reg::x(1), Reg::ZERO, i_loop);
    a.halt();

    Workload {
        name: "matmul",
        class: Class::SpecFp,
        program: a.finish().expect("matmul assembles"),
        skip_insts: 2_000,
        description: "dense f64 matrix multiply (compute bound)",
    }
}
