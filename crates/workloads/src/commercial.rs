//! Commercial-workload stand-ins: OLTP, ERP/Java-server, web.
//!
//! These model the memory behaviour the paper's introduction attributes to
//! commercial server code: large data footprints with poor cache locality,
//! dependent load chains (index/row navigation), data-dependent branches,
//! and enough instruction-level independence between transactions for an
//! execute-ahead machine to exploit.

use sst_isa::Reg;

use crate::common::{slot_asm, pointer_chain, random_bytes, random_words, rng, xorshift};
use crate::{Class, Scale, Workload};

/// Nominal instructions per OLTP transaction (one trip round the main
/// loop, averaged over the data-dependent branch arms). The service layer
/// uses this to convert offered load into an arrival rate.
pub const OLTP_TXN_INSTS: u64 = 55;
/// Nominal instructions per ERP iteration.
pub const ERP_TXN_INSTS: u64 = 40;
/// Nominal instructions per web request.
pub const WEB_TXN_INSTS: u64 = 60;

/// Transaction count for server variants: effectively endless — the
/// service driver slices requests off the running loop and never lets it
/// reach the halt (it would take ~centuries of simulated time).
const SERVER_TXNS: i64 = 1 << 42;

/// OLTP / database: hash-directory probe, two-hop bucket-chain walk, row
/// processing with a data-dependent branch, log append, hot-counter update.
/// Large footprint, miss-dominated, deep dependence behind each miss.
pub fn oltp(scale: Scale, seed: u64, slot: usize) -> Workload {
    let txns = match scale {
        Scale::Smoke => 300,
        Scale::Full => 4_000,
    };
    oltp_build(scale, seed, slot, txns, (txns as u64 / 10) * OLTP_TXN_INSTS)
}

/// OLTP with an explicit transaction count, for runs that need a
/// specific instruction budget (the sampling benchmark runs ~10M
/// instructions, far beyond the standard `Full` sizing). Keeps the
/// standard warm-up convention: the first 10% of transactions are
/// marked as skip instructions.
pub fn oltp_sized(scale: Scale, seed: u64, slot: usize, txns: i64) -> Workload {
    oltp_build(scale, seed, slot, txns, (txns as u64 / 10) * OLTP_TXN_INSTS)
}

/// The endless-loop OLTP variant for the service driver (`sst-traffic`).
pub fn oltp_server(scale: Scale, seed: u64, slot: usize) -> Workload {
    oltp_build(scale, seed, slot, SERVER_TXNS, 0)
}

fn oltp_build(scale: Scale, seed: u64, slot: usize, txns: i64, skip_insts: u64) -> Workload {
    let (nodes, dir_entries) = match scale {
        Scale::Smoke => (32 * 1024, 4 * 1024),    // 2 MiB chain
        Scale::Full => (512 * 1024, 64 * 1024),   // 32 MiB chain
    };
    let mut r = rng("oltp", seed);
    let mut a = slot_asm(slot);

    let chain = pointer_chain(&mut a, &mut r, nodes, 64);
    // Hash directory: pointers to random chain nodes.
    let dir_words: Vec<u64> = (0..dir_entries)
        .map(|_| chain + (r.gen_range(0..nodes)) * 64)
        .collect();
    let dir = a.data_u64(&dir_words);
    let log = a.reserve(64 * 1024);
    let hot = a.data_u64(&[0]);

    let state = Reg::x(1);
    let tmp = Reg::x(3);
    a.li(state, 0x2545_F491_4F6C_DD1Du64 as i64);
    a.la(Reg::x(20), dir);
    a.la(Reg::x(21), log);
    a.la(Reg::x(22), hot);
    a.li(Reg::x(23), 0); // txn counter (log cursor)
    a.li(Reg::x(2), txns);
    let top = a.here();

    // Probe: hash -> directory entry -> bucket head.
    xorshift(&mut a, state, tmp);
    a.li(Reg::x(4), (dir_entries as i64 - 1) * 8);
    a.slli(Reg::x(5), state, 3);
    a.and(Reg::x(5), Reg::x(5), Reg::x(4));
    a.add(Reg::x(5), Reg::x(5), Reg::x(20));
    a.ld(Reg::x(6), Reg::x(5), 0); // directory entry (often misses)
    // Two dependent chain hops (index navigation).
    a.ld(Reg::x(7), Reg::x(6), 0); // hop 1
    a.ld(Reg::x(8), Reg::x(7), 0); // hop 2
    // Row fields (same lines as the pointers: cheap once fetched).
    a.ld(Reg::x(9), Reg::x(7), 8);
    a.ld(Reg::x(10), Reg::x(8), 16);

    // Row processing: a substantial dependent computation rooted at the
    // fetched fields (this is what fills the deferred queue).
    a.xor(Reg::x(11), Reg::x(9), Reg::x(10));
    for _ in 0..7 {
        a.slli(Reg::x(12), Reg::x(11), 7);
        a.xor(Reg::x(11), Reg::x(11), Reg::x(12));
        a.srli(Reg::x(12), Reg::x(11), 9);
        a.add(Reg::x(11), Reg::x(11), Reg::x(12));
    }

    // Data-dependent branch on a row predicate (~50/50, unpredictable).
    a.andi(Reg::x(13), Reg::x(11), 1);
    let even = a.label();
    let join = a.label();
    a.beq(Reg::x(13), Reg::ZERO, even);
    a.addi(Reg::x(14), Reg::x(14), 1);
    a.slli(Reg::x(11), Reg::x(11), 1);
    a.j(join);
    a.bind(even);
    a.addi(Reg::x(15), Reg::x(15), 1);
    a.srli(Reg::x(11), Reg::x(11), 1);
    a.bind(join);

    // Log append (sequential stores, wraps in 64 KiB).
    a.slli(Reg::x(16), Reg::x(23), 3);
    a.li(Reg::x(18), 0xfff8);
    a.and(Reg::x(16), Reg::x(16), Reg::x(18));
    a.add(Reg::x(16), Reg::x(16), Reg::x(21));
    a.sd(Reg::x(11), Reg::x(16), 0);
    a.addi(Reg::x(23), Reg::x(23), 1);

    // Hot-counter update (always cached).
    a.ld(Reg::x(17), Reg::x(22), 0);
    a.add(Reg::x(17), Reg::x(17), Reg::x(13));
    a.sd(Reg::x(17), Reg::x(22), 0);

    a.addi(Reg::x(2), Reg::x(2), -1);
    a.bne(Reg::x(2), Reg::ZERO, top);
    a.halt();

    Workload {
        name: "oltp",
        class: Class::Commercial,
        program: a.finish().expect("oltp assembles"),
        skip_insts,
        description: "hash probe + 2-hop bucket chain + row processing + log append",
    }
}

/// ERP / Java-server: object-graph navigation with a hot working set,
/// moderate compute per object, occasional field updates.
pub fn erp(scale: Scale, seed: u64, slot: usize) -> Workload {
    let iters = match scale {
        Scale::Smoke => 400,
        Scale::Full => 5_000,
    };
    erp_build(scale, seed, slot, iters, (iters as u64 / 10) * ERP_TXN_INSTS)
}

/// The endless-loop ERP variant for the service driver.
pub fn erp_server(scale: Scale, seed: u64, slot: usize) -> Workload {
    erp_build(scale, seed, slot, SERVER_TXNS, 0)
}

fn erp_build(scale: Scale, seed: u64, slot: usize, iters: i64, skip_insts: u64) -> Workload {
    let (objects, hot_objects) = match scale {
        Scale::Smoke => (16 * 1024, 1024),        // 1 MiB of objects
        Scale::Full => (128 * 1024, 8 * 1024),    // 8 MiB of objects
    };
    let mut r = rng("erp", seed);
    let mut a = slot_asm(slot);

    let heap = pointer_chain(&mut a, &mut r, objects, 64);
    // Object handle table: all objects, first `hot_objects` are "hot".
    let handles: Vec<u64> = (0..objects)
        .map(|_| heap + r.gen_range(0..objects) * 64)
        .collect();
    let table = a.data_u64(&handles);

    let state = Reg::x(1);
    let tmp = Reg::x(3);
    a.li(state, 0x0DDB_1A5E_5BAD_5EEDu64 as i64);
    a.la(Reg::x(20), table);
    a.li(Reg::x(2), iters);
    let top = a.here();

    xorshift(&mut a, state, tmp);
    // 3 of 4 references go to the hot subset (predictable branch).
    a.andi(Reg::x(4), state, 3);
    let cold = a.label();
    let picked = a.label();
    a.beq(Reg::x(4), Reg::ZERO, cold);
    a.li(Reg::x(5), (hot_objects as i64 - 1) * 8);
    a.j(picked);
    a.bind(cold);
    a.li(Reg::x(5), (objects as i64 - 1) * 8);
    a.bind(picked);
    a.srli(Reg::x(6), state, 3);
    a.slli(Reg::x(6), Reg::x(6), 3);
    a.and(Reg::x(6), Reg::x(6), Reg::x(5));
    a.add(Reg::x(6), Reg::x(6), Reg::x(20));
    a.ld(Reg::x(7), Reg::x(6), 0); // handle
    a.ld(Reg::x(8), Reg::x(7), 0); // object header (one dependent hop)
    a.ld(Reg::x(9), Reg::x(7), 8); // field

    // Method-ish compute on the fields.
    a.add(Reg::x(10), Reg::x(9), Reg::x(8));
    for _ in 0..4 {
        a.xor(Reg::x(11), Reg::x(10), Reg::x(9));
        a.slli(Reg::x(10), Reg::x(11), 3);
        a.srli(Reg::x(12), Reg::x(10), 5);
        a.add(Reg::x(10), Reg::x(10), Reg::x(12));
    }
    // Occasional field write-back (1 in 4).
    a.andi(Reg::x(13), state, 12);
    let no_write = a.label();
    a.bne(Reg::x(13), Reg::ZERO, no_write);
    a.sd(Reg::x(10), Reg::x(7), 16);
    a.bind(no_write);

    a.addi(Reg::x(2), Reg::x(2), -1);
    a.bne(Reg::x(2), Reg::ZERO, top);
    a.halt();

    Workload {
        name: "erp",
        class: Class::Commercial,
        program: a.finish().expect("erp assembles"),
        skip_insts,
        description: "object-graph navigation, hot working set, field updates",
    }
}

/// Web server: per request, a short header scan (data-dependent inner
/// loop), a session-table lookup (dependent pointer hop into a large
/// footprint), response formatting, and an access-log append. Branchier
/// than OLTP/ERP with a moderate off-chip miss rate — a real server's mix
/// is mostly lookup and bookkeeping around a small amount of byte
/// scanning.
pub fn web(scale: Scale, seed: u64, slot: usize) -> Workload {
    let requests = match scale {
        Scale::Smoke => 250,
        Scale::Full => 3_000,
    };
    web_build(scale, seed, slot, requests, (requests as u64 / 10) * WEB_TXN_INSTS)
}

/// The endless-loop web variant for the service driver.
pub fn web_server(scale: Scale, seed: u64, slot: usize) -> Workload {
    web_build(scale, seed, slot, SERVER_TXNS, 0)
}

fn web_build(scale: Scale, seed: u64, slot: usize, requests: i64, skip_insts: u64) -> Workload {
    // The request buffer is a small connection ring: a real server parses
    // bytes it just received (cache-warm); the off-chip misses come from
    // session state, not the scan.
    // Web is the least memory-bound of the commercial suite: a modest
    // session footprint (partially L2-resident) and a fair amount of
    // per-request formatting compute.
    let (buf_bytes, sessions) = match scale {
        Scale::Smoke => (64 * 1024, 8 * 1024),
        Scale::Full => (64 * 1024, 64 * 1024),
    };
    let mut r = rng("web", seed);
    let mut a = slot_asm(slot);

    // Request buffer: short runs of nonzero bytes with zero terminators
    // (header tokens, mean length ~7).
    let mut bytes: Vec<u8> = Vec::with_capacity(buf_bytes as usize);
    while bytes.len() < buf_bytes as usize {
        let len = r.gen_range(3..12usize);
        for _ in 0..len {
            bytes.push(r.gen_range(1..=255u8));
        }
        bytes.push(0);
    }
    bytes.truncate(buf_bytes as usize);
    *bytes.last_mut().expect("nonempty") = 0;
    let buf = a.data_bytes(&bytes);
    // Session table: pointers into a large object heap (8 MiB full scale).
    let heap = pointer_chain(&mut a, &mut r, sessions, 64);
    let handles: Vec<u64> = (0..sessions)
        .map(|_| heap + r.gen_range(0..sessions) * 64)
        .collect();
    let session_tab = a.data_u64(&handles);
    let table = random_words(&mut a, &mut r, 8 * 1024); // 64 KiB mime table
    let stats = a.reserve(sessions * 8); // flat per-session counters
    let out = a.reserve(64 * 1024);

    let state = Reg::x(1);
    let tmp = Reg::x(3);
    a.li(state, 0xFACE_FEED_0BAD_F00Du64 as i64);
    a.la(Reg::x(20), buf);
    a.la(Reg::x(21), table);
    a.la(Reg::x(22), out);
    a.la(Reg::x(24), session_tab);
    a.li(Reg::x(23), 0); // request number
    a.li(Reg::x(2), requests);
    let top = a.here();

    // Pick a random 128-aligned offset into the buffer.
    xorshift(&mut a, state, tmp);
    a.li(Reg::x(4), buf_bytes as i64 - 256);
    a.and(Reg::x(5), state, Reg::x(4));
    a.srli(Reg::x(5), Reg::x(5), 7);
    a.slli(Reg::x(5), Reg::x(5), 7);
    a.add(Reg::x(5), Reg::x(5), Reg::x(20)); // scan pointer
    a.li(Reg::x(6), 0); // rolling hash
    a.li(Reg::x(7), 0); // length

    // Scan one header token (data-dependent loop, short).
    let scan = a.here();
    let done = a.label();
    a.lbu(Reg::x(8), Reg::x(5), 0);
    a.beq(Reg::x(8), Reg::ZERO, done);
    // hash = hash*31 + byte  (31x = (x<<5) - x)
    a.slli(Reg::x(9), Reg::x(6), 5);
    a.sub(Reg::x(9), Reg::x(9), Reg::x(6));
    a.add(Reg::x(6), Reg::x(9), Reg::x(8));
    a.addi(Reg::x(5), Reg::x(5), 1);
    a.addi(Reg::x(7), Reg::x(7), 1);
    a.j(scan);
    a.bind(done);

    // Session lookup: random handle -> object header (dependent hop into
    // the big heap; this is where the off-chip misses live).
    a.li(Reg::x(13), (sessions as i64 - 1) * 8);
    a.srli(Reg::x(14), state, 5);
    a.slli(Reg::x(14), Reg::x(14), 3);
    a.and(Reg::x(14), Reg::x(14), Reg::x(13));
    a.add(Reg::x(14), Reg::x(14), Reg::x(24));
    a.ld(Reg::x(15), Reg::x(14), 0); // session handle (misses)
    a.ld(Reg::x(16), Reg::x(15), 8); // session state (dependent)
    a.ld(Reg::x(17), Reg::x(15), 16); // payload (dependent)
    // Bump the per-session counter in the flat stats array (its address
    // comes straight from the session index — servers keep such counters
    // in directly indexed tables, not behind the object pointer).
    a.la(Reg::x(18), stats);
    a.srli(Reg::x(19), Reg::x(14), 0);
    a.and(Reg::x(19), Reg::x(14), Reg::x(13));
    a.add(Reg::x(19), Reg::x(19), Reg::x(18));
    a.ld(Reg::x(25), Reg::x(19), 0);
    a.addi(Reg::x(25), Reg::x(25), 1);
    a.sd(Reg::x(25), Reg::x(19), 0);

    // Response formatting: mime lookup + a realistic chunk of compute on
    // the header hash and session state (escaping, checksums, headers).
    a.li(Reg::x(13), 0xfff8);
    a.and(Reg::x(10), Reg::x(6), Reg::x(13));
    a.add(Reg::x(10), Reg::x(10), Reg::x(21));
    a.ld(Reg::x(11), Reg::x(10), 0);
    a.xor(Reg::x(11), Reg::x(11), Reg::x(16));
    for _ in 0..6 {
        a.slli(Reg::x(9), Reg::x(11), 3);
        a.add(Reg::x(11), Reg::x(11), Reg::x(9));
        a.srli(Reg::x(9), Reg::x(11), 7);
        a.xor(Reg::x(11), Reg::x(11), Reg::x(9));
        a.xor(Reg::x(26), Reg::x(26), Reg::x(11));
        a.addi(Reg::x(26), Reg::x(26), 13);
    }

    // Access-log append.
    a.slli(Reg::x(12), Reg::x(23), 3);
    a.and(Reg::x(12), Reg::x(12), Reg::x(13));
    a.add(Reg::x(12), Reg::x(12), Reg::x(22));
    a.sd(Reg::x(11), Reg::x(12), 0);
    a.sd(Reg::x(7), Reg::x(12), 8);
    a.addi(Reg::x(23), Reg::x(23), 1);

    a.addi(Reg::x(2), Reg::x(2), -1);
    a.bne(Reg::x(2), Reg::ZERO, top);
    a.halt();

    let _ = random_bytes; // (see spec.rs for byte-stream users)
    Workload {
        name: "web",
        class: Class::Commercial,
        program: a.finish().expect("web assembles"),
        skip_insts,
        description: "header-token scan, session-table lookup, response formatting, log append",
    }
}
