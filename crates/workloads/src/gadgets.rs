//! Speculative-leakage gadget kernels (experiment E13, "does SST leak?").
//!
//! Each gadget is a Spectre-v1-shaped bounds-check-bypass loop tuned so the
//! *architectural* path is short and the *mispredicted* path is long. The
//! skeleton shared by all three:
//!
//! * an off-chip pointer chase produces the guard condition two dependent
//!   misses deep (`l1` chain node → `l2` node → condition word), so every
//!   deferral-based core speculates past the guard for one to two full
//!   memory latencies before replay can resolve it;
//! * the guard branches *to* the body when the condition says "authorized"
//!   (~1/8 of iterations, RNG-drawn so no history predictor can learn it).
//!   The predictor settles on taken for the guard, so the body runs
//!   speculatively on **every** iteration — but architecturally only on
//!   authorized ones;
//! * a per-iteration trip count comes from a *warm* `limits[]` array and is
//!   large exactly on the *unauthorized* iterations — so the long body only
//!   ever runs under a misprediction and its memory footprint is pure
//!   speculative residue (authorized iterations run a two-trip stub);
//! * the body reads a cache-resident secret byte and touches a
//!   secret-selected probe line (classic Flush+Reload transmitter). The
//!   probe cursor advances on the *committed* path once per iteration, so
//!   each speculative window probes fresh lines and the distinct-line count
//!   measures window length, not rollback cadence.
//!
//! The gadgets are registered in [`crate::Workload::by_name`] but
//! deliberately kept out of [`crate::Workload::all_names`]: they measure
//! leakage, not performance, and only experiment E13 runs them.
//!
//! The three variants differ only in the transmitter:
//!
//! * `g_bcb` — the headline: secret-indexed *prefetch* probes (no deferred
//!   destination, so the deferred queue never back-pressures the run-ahead
//!   window; the leak scales with the speculation window).
//! * `g_chase` — the probe address depends on the *not-there* chase value
//!   itself, so a deferral pipeline never issues the probe at all: NT
//!   deferral blocks the classic transmitter. The contrast case.
//! * `g_store` — speculative *stores* as the transmitter: squashed store
//!   buffer entries still warm their target lines.

use sst_isa::Reg;
use sst_prng::Prng;

use crate::common::{rng, slot_asm, xorshift};
use crate::{Class, Scale, Workload};

/// Outer-loop iterations (cold chase nodes) per scale.
fn iters(scale: Scale) -> u64 {
    match scale {
        Scale::Smoke => 256,
        Scale::Full => 2048,
    }
}

/// Architectural (correct-path) body trip count.
const K_SMALL: u64 = 2;

/// The shared data image: a randomly-ordered chain of level-1 nodes, each
/// pointing at a randomly-placed level-2 node whose first byte is the
/// branch condition, plus a warm byte array of per-iteration trip counts.
struct Layout {
    /// First level-1 node (== loop entry pointer).
    l1_head: u64,
    /// Per-iteration trip counts, one byte each (warm).
    limits: u64,
    /// 64-byte secret array (warm).
    secret: u64,
    /// Probe region base (cold, untouched by the data image).
    probe: u64,
    /// Number of architecturally-authorized (guard-taken) iterations.
    taken: u64,
}

/// Builds the two-level chase image. Level-1 nodes hold
/// `[next_l1, my_l2, junk...]`; the level-2 node's first word is non-zero
/// exactly on taken iterations. Both levels are laid out in independent
/// random orders so the stride prefetcher cannot hide the misses.
fn build_layout(a: &mut sst_isa::Asm, r: &mut Prng, m: u64, k_big: u8, probe_bytes: u64) -> Layout {
    let taken_pat: Vec<bool> = {
        let mut v: Vec<bool> = (0..m).map(|_| r.gen_range(0..8usize) == 0).collect();
        // Keep a floor of authorized iterations so the guard's prediction
        // stays profitable-looking and architectural body code is covered.
        if v.iter().filter(|&&t| t).count() < 4 {
            for i in [m / 5, 2 * m / 5, 3 * m / 5, 4 * m / 5] {
                v[i as usize] = true;
            }
        }
        // The first iterations warm the pipeline; keep them unauthorized.
        v[0] = false;
        v[1] = false;
        v
    };

    // Visit orders: position p in the chain occupies node index perm[p].
    let perm = permutation(r, m);
    let lperm = permutation(r, m);

    a.align_data(64);
    let l1_region = a.data_cursor_addr();
    let l2_region = l1_region + m * 64;
    let mut words = vec![0u64; (2 * m * 8) as usize];
    for p in 0..m as usize {
        let node = perm[p] as usize;
        let next = perm[(p + 1) % m as usize];
        let l2 = lperm[p];
        words[node * 8] = l1_region + next * 64;
        words[node * 8 + 1] = l2_region + l2 * 64;
        for w in 2..8 {
            words[node * 8 + w] = r.gen();
        }
        let l2i = (m as usize + l2 as usize) * 8;
        words[l2i] = u64::from(taken_pat[p]);
        for w in 1..8 {
            words[l2i + w] = r.gen();
        }
    }
    let actual = a.data_u64(&words);
    assert_eq!(actual, l1_region);

    // Inverted on purpose: the *unauthorized* (mispredicted) iterations
    // carry the big trip count, so the long body is speculation-only.
    let limit_bytes: Vec<u8> = taken_pat
        .iter()
        .map(|&t| if t { K_SMALL as u8 } else { k_big })
        .collect();
    let limits = a.data_bytes(&limit_bytes);
    let secret_bytes: Vec<u8> = (0..64).map(|_| r.gen()).collect();
    let secret = a.data_bytes(&secret_bytes);
    a.align_data(64);
    let probe = a.reserve(probe_bytes);

    Layout {
        l1_head: l1_region + perm[0] * 64,
        limits,
        secret,
        probe,
        taken: taken_pat.iter().filter(|&&t| t).count() as u64,
    }
}

fn permutation(r: &mut Prng, n: u64) -> Vec<u64> {
    let mut perm: Vec<u64> = (0..n).collect();
    let mut i = n as usize - 1;
    while i > 0 {
        let j = r.gen_range(0..i);
        perm.swap(i, j);
        i -= 1;
    }
    perm
}

/// Register plan shared by all three gadgets.
mod regs {
    use sst_isa::Reg;
    pub const L1: Reg = Reg::x(1); // current level-1 node
    pub const CNT: Reg = Reg::x(2); // outer countdown
    pub const LIM: Reg = Reg::x(3); // limits base
    pub const SEC: Reg = Reg::x(4); // secret base
    pub const CUR: Reg = Reg::x(5); // probe cursor
    pub const L2P: Reg = Reg::x(6); // level-2 pointer (NT under deferral)
    pub const B2: Reg = Reg::x(7); // branch condition (NT under deferral)
    pub const K: Reg = Reg::x(9); // body countdown
    pub const S: Reg = Reg::x(10); // secret byte
    pub const T1: Reg = Reg::x(11);
    pub const T2: Reg = Reg::x(12);
    pub const T3: Reg = Reg::x(13); // body-local probe cursor
    pub const P: Reg = Reg::x(20); // outer up-counter (limits index)
}

/// Emits prologue (pointers, warm-ups) and the loop head through the
/// vulnerable guard; returns `(body, skip, top)`. The guard branches *to*
/// `body` on authorized iterations; the caller must emit the tail at the
/// fall-through, then bind `body` (after `halt`) ending with a jump back
/// to `skip`.
///
/// Why the body lives on the branch-*target* path: deferred branches
/// resolve at replay time, long after the ahead strand has run hundreds of
/// other branches, so the gshare update lands under a global history that
/// never matches the history at the guard's own fetch. The fetch-indexed
/// table entry therefore keeps its weakly-taken initial value, and the
/// frontend predicts the guard taken on every iteration — exactly the
/// Spectre-v1 situation, where the interesting path is the one the
/// predictor keeps choosing against the architectural outcome.
fn emit_head(
    a: &mut sst_isa::Asm,
    lay: &Layout,
    m: u64,
) -> (sst_isa::Label, sst_isa::Label, sst_isa::Label) {
    use regs::*;
    a.la(L1, lay.l1_head);
    a.li(CNT, m as i64);
    a.la(LIM, lay.limits);
    a.la(SEC, lay.secret);
    a.la(CUR, lay.probe);
    a.li(P, 0);
    // Warm the limits array and the secret line so body trip counts and
    // secret bytes are always near hits (never deferred).
    a.li(T1, (m as i64 + 63) / 64);
    a.mv(T2, LIM);
    let warm = a.here();
    a.lbu(S, T2, 0);
    a.addi(T2, T2, 64);
    a.addi(T1, T1, -1);
    a.bne(T1, Reg::ZERO, warm);
    a.lbu(S, SEC, 0);

    let body = a.label();
    let skip = a.label();
    let top = a.here();
    a.ld(L2P, L1, 8); // cold miss 1: defers, L2P goes NT
    a.add(T1, LIM, P);
    a.lbu(K, T1, 0); // warm: trip count architecturally known
    a.ld(B2, L2P, 0); // NT base: defers unissued; replay = cold miss 2
    a.ld(L1, L1, 0); // next node (same line as miss 1)
    a.bne(B2, Reg::ZERO, body); // the guard: predicted taken, ~7/8 not
    (body, skip, top)
}

/// Emits the loop tail: `skip:` label, counters, a deferred-queue drain
/// window, back-branch, halt.
///
/// The drain window — a register-only countdown a bit longer than two
/// memory round trips — is what gives the experiment its epoch structure:
/// it lets replay resolve both chase misses and empty the deferred queue
/// before the next iteration's cold miss, so every iteration is its own
/// speculative epoch. Untaken iterations then *commit* (their residue is
/// legitimate) and each taken iteration rolls back exactly once, with a
/// sweep covering just its own body. Without it, chase deferrals pile up
/// across iterations into one never-committing epoch that fails on the
/// first mispredicted branch anywhere inside it, and every design degrades
/// into scout-like restart behaviour.
fn emit_tail(a: &mut sst_isa::Asm, skip: sst_isa::Label, top: sst_isa::Label, stride: u64) {
    use regs::*;
    a.bind(skip);
    a.addi(P, P, 1);
    // Advance the probe cursor on the committed path, one full body's worth
    // per iteration, so successive speculative windows touch disjoint lines.
    a.li(T2, stride as i64);
    a.add(CUR, CUR, T2);
    a.addi(CNT, CNT, -1);
    a.li(T1, 1200);
    let drain = a.here();
    a.addi(T1, T1, -1);
    a.bne(T1, Reg::ZERO, drain);
    a.bne(CNT, Reg::ZERO, top);
    a.halt();
}

/// Headline bounds-check-bypass gadget: secret-indexed prefetch probes.
pub fn g_bcb(scale: Scale, seed: u64, slot: usize) -> Workload {
    const K_BIG: u8 = 255;
    let m = iters(scale);
    let mut r = rng("g_bcb", seed);
    let mut a = slot_asm(slot);
    // Worst-case cursor: every iteration speculatively runs the full body.
    let probe_bytes = m * u64::from(K_BIG) * 512 + 4096;
    let lay = build_layout(&mut a, &mut r, m, K_BIG, probe_bytes);
    let (body, skip, top) = emit_head(&mut a, &lay, m);
    emit_tail(&mut a, skip, top, u64::from(K_BIG) * 512);
    {
        use regs::*;
        a.bind(body);
        a.mv(T3, CUR); // body-local cursor: commits never see it move
        let trip = a.here();
        a.andi(T1, K, 63);
        a.add(T1, SEC, T1);
        a.lbu(S, T1, 0); // secret byte: L1 hit
        // A dependent mixing chain on the secret (the transmitter's
        // "computation on stolen data"). Deliberately serial: it pins the
        // body to ~1 probe per ~30 cycles, below the MSHR-sustainable fill
        // rate, so the leak is bounded by *speculation-window length* —
        // the quantity that separates the pipeline designs — instead of
        // by miss-handling throughput, which is the same for all of them.
        for _ in 0..4 {
            xorshift(&mut a, S, T2);
        }
        a.andi(S, S, 7);
        a.slli(T2, S, 6); // secret picks 1 of 8 candidate lines
        a.add(T2, T3, T2);
        a.prefetch(T2, 0); // THE LEAK: fills a secret-selected line
        a.addi(T3, T3, 512); // next 8-line candidate group
        a.addi(K, K, -1);
        a.bne(K, Reg::ZERO, trip);
        a.j(skip);
    }
    debug_assert!(lay.taken >= 4, "gadget needs authorized iterations");
    Workload {
        name: "g_bcb",
        class: Class::Micro,
        program: a.finish().expect("g_bcb assembles"),
        // Warm-up: the limits sweep plus the first two (unauthorized)
        // iterations, drain windows included.
        skip_insts: 5000,
        description: "bounds-check-bypass gadget: secret-indexed prefetch probes",
    }
}

/// Contrast gadget: the probe address depends on the not-there chase value
/// itself, so deferral pipelines never issue the probe (NT blocks the
/// transmitter) while an OoO machine's wrong-path walk would poison it.
pub fn g_chase(scale: Scale, seed: u64, slot: usize) -> Workload {
    const K_BIG: u8 = 16; // deferred probes occupy DQ slots: keep it small
    let m = iters(scale);
    let mut r = rng("g_chase", seed);
    let mut a = slot_asm(slot);
    let probe_bytes = m * u64::from(K_BIG) * 512 + 4096;
    let lay = build_layout(&mut a, &mut r, m, K_BIG, probe_bytes);
    let (body, skip, top) = emit_head(&mut a, &lay, m);
    emit_tail(&mut a, skip, top, u64::from(K_BIG) * 512);
    {
        use regs::*;
        a.bind(body);
        a.mv(T3, CUR);
        let trip = a.here();
        a.slli(T1, B2, 6); // address chains off the NT condition value
        a.slli(T2, K, 6);
        a.add(T1, T1, T2);
        a.add(T1, T1, T3);
        a.ld(S, T1, 0); // NT base: defers without touching memory
        a.addi(T3, T3, 512);
        a.addi(K, K, -1);
        a.bne(K, Reg::ZERO, trip);
        a.j(skip);
    }
    debug_assert!(lay.taken >= 4, "gadget needs authorized iterations");
    Workload {
        name: "g_chase",
        class: Class::Micro,
        program: a.finish().expect("g_chase assembles"),
        skip_insts: 5000,
        description: "NT-dependent probe gadget: deferral blocks the transmitter",
    }
}

/// Store-transmitter gadget: squashed speculative stores still warm their
/// target lines through the store buffer's line-warm prefetch.
pub fn g_store(scale: Scale, seed: u64, slot: usize) -> Workload {
    const K_BIG: u8 = 48; // stays under the 64-entry STB
    let m = iters(scale);
    let mut r = rng("g_store", seed);
    let mut a = slot_asm(slot);
    let probe_bytes = m * u64::from(K_BIG) * 512 + 4096;
    let lay = build_layout(&mut a, &mut r, m, K_BIG, probe_bytes);
    let (body, skip, top) = emit_head(&mut a, &lay, m);
    emit_tail(&mut a, skip, top, u64::from(K_BIG) * 512);
    {
        use regs::*;
        a.bind(body);
        a.mv(T3, CUR);
        let trip = a.here();
        a.andi(T1, K, 63);
        a.add(T1, SEC, T1);
        a.lbu(S, T1, 0); // secret byte: L1 hit
        // Same serial mixing chain as g_bcb (see there): keeps the store
        // rate window-bound rather than miss-throughput-bound.
        for _ in 0..4 {
            xorshift(&mut a, S, T2);
        }
        a.andi(S, S, 7);
        a.slli(T2, S, 6);
        a.add(T2, T3, T2);
        a.sd(S, T2, 0); // THE LEAK: speculative store warms the line
        a.addi(T3, T3, 512);
        a.addi(K, K, -1);
        a.bne(K, Reg::ZERO, trip);
        a.j(skip);
    }
    debug_assert!(lay.taken >= 4, "gadget needs authorized iterations");
    Workload {
        name: "g_store",
        class: Class::Micro,
        program: a.finish().expect("g_store assembles"),
        skip_insts: 5000,
        description: "store-transmitter gadget: squashed stores warm lines",
    }
}

/// Gadget names, for E13's experiment matrix.
pub fn gadget_names() -> &'static [&'static str] {
    &["g_bcb", "g_chase", "g_store"]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sst_isa::{Interp, StopReason};

    #[test]
    fn gadgets_build_and_halt_functionally() {
        for name in gadget_names() {
            let w = Workload::by_name(name, Scale::Smoke, 7).unwrap();
            let mut i = Interp::new(&w.program);
            let out = i
                .run(20_000_000)
                .unwrap_or_else(|t| panic!("{name}: trap {t}"));
            assert_eq!(out.stop, StopReason::Halt, "{name} did not halt");
            assert!(out.steps > w.skip_insts, "{name}: warm-up exceeds run");
        }
    }

    #[test]
    fn gadgets_are_deterministic_and_off_the_perf_roster() {
        for name in gadget_names() {
            let a = Workload::by_name(name, Scale::Smoke, 5).unwrap();
            let b = Workload::by_name(name, Scale::Smoke, 5).unwrap();
            assert_eq!(a.program.text, b.program.text);
            assert!(!Workload::all_names().contains(name));
        }
    }

    #[test]
    fn architectural_body_work_is_short() {
        // The long body must only ever run speculatively: the functional
        // (architectural) instruction count stays near the K_SMALL floor.
        let w = Workload::by_name("g_bcb", Scale::Smoke, 7).unwrap();
        let mut i = Interp::new(&w.program);
        let out = i.run(20_000_000).unwrap();
        let m = iters(Scale::Smoke);
        // Per iteration the committed path runs the head (~6), the tail
        // with its 1200-trip drain window (~2407), and on ~1/8 authorized
        // iterations a K_SMALL-trip body stub. If the K_BIG body leaked
        // into architectural execution it would add ~255×11 insts on 7/8
        // of iterations — roughly double the total.
        assert!(
            out.steps < m * 3000,
            "architectural path ran the speculative body: {} steps",
            out.steps
        );
        assert!(out.steps > m * 2400, "drain window missing: {} steps", out.steps);
    }
}
