//! # sst-workloads
//!
//! The benchmark suite for the SST study. The paper evaluates commercial
//! workloads (OLTP/database, ERP/Java-server, web) and SPEC CPU; those
//! traces are proprietary, so this crate builds synthetic stand-ins that
//! pin the four properties the paper's results actually depend on:
//!
//! 1. the fraction of off-chip load misses,
//! 2. the depth of the dependence chain behind each miss,
//! 3. the independent work (memory-level parallelism) available past a
//!    miss, and
//! 4. branch predictability.
//!
//! See `DESIGN.md` (substitution S2) for the mapping. Every workload is a
//! real program in the workspace ISA whose *data* (pointer graphs, hash
//! tables, payloads) is generated host-side into the binary image, so the
//! simulated instruction stream is pure steady-state work.
//!
//! ```
//! use sst_workloads::{Workload, Scale};
//!
//! let w = Workload::by_name("oltp", Scale::Smoke, 42).unwrap();
//! assert_eq!(w.name, "oltp");
//! // w.program runs on any core model; w.skip_insts marks warm-up.
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod commercial;
mod common;
mod gadgets;
mod micro;
mod spec;

pub use commercial::oltp_sized;
pub use gadgets::gadget_names;

use sst_isa::Program;

/// Workload footprint / duration scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Tiny: unit tests (seconds of wall-clock across all models).
    Smoke,
    /// Full: the experiment harness.
    Full,
}

/// Category, mirroring the paper's suite structure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Class {
    /// Commercial server workloads (the paper's headline suite).
    Commercial,
    /// SPEC-CPU-like integer kernels.
    SpecInt,
    /// SPEC-CPU-like floating-point kernels.
    SpecFp,
    /// Microbenchmarks with controlled memory behaviour.
    Micro,
}

impl Class {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Class::Commercial => "commercial",
            Class::SpecInt => "spec-int",
            Class::SpecFp => "spec-fp",
            Class::Micro => "micro",
        }
    }
}

/// A ready-to-run benchmark.
pub struct Workload {
    /// Short name ("oltp", "mcf", ...).
    pub name: &'static str,
    /// Suite category.
    pub class: Class,
    /// The program (text + host-generated data image).
    pub program: Program,
    /// Instructions to treat as warm-up when computing steady-state IPC.
    pub skip_insts: u64,
    /// One-line description for reports.
    pub description: &'static str,
}

impl Workload {
    /// Builds a workload by name at address slot 0. Returns `None` for
    /// unknown names.
    pub fn by_name(name: &str, scale: Scale, seed: u64) -> Option<Workload> {
        Workload::by_name_slot(name, scale, seed, 0)
    }

    /// Builds a workload whose text/data live in `slot`'s private 64 GiB
    /// address range, so multiprogrammed CMP mixes never alias.
    pub fn by_name_slot(name: &str, scale: Scale, seed: u64, slot: usize) -> Option<Workload> {
        Some(match name {
            "oltp" => commercial::oltp(scale, seed, slot),
            "erp" => commercial::erp(scale, seed, slot),
            "web" => commercial::web(scale, seed, slot),
            "mcf" => spec::mcf_like(scale, seed, slot),
            "gcc" => spec::gcc_like(scale, seed, slot),
            "gzip" => spec::gzip_like(scale, seed, slot),
            "gups" => spec::gups(scale, seed, slot),
            "stream" => spec::stream_like(scale, seed, slot),
            "stencil" => spec::stencil_like(scale, seed, slot),
            "matmul" => spec::matmul_like(scale, seed, slot),
            "chase" => micro::chase(scale, seed, slot),
            "mlp8" => micro::mlp8(scale, seed, slot),
            // E13 leakage gadgets: buildable by name, but deliberately not
            // in `all_names` — they measure leakage, not performance.
            "g_bcb" => gadgets::g_bcb(scale, seed, slot),
            "g_chase" => gadgets::g_chase(scale, seed, slot),
            "g_store" => gadgets::g_store(scale, seed, slot),
            _ => return None,
        })
    }

    /// All workload names, suite order.
    pub fn all_names() -> &'static [&'static str] {
        &[
            "oltp", "erp", "web", "mcf", "gcc", "gzip", "gups", "stream", "stencil", "matmul",
            "chase", "mlp8",
        ]
    }

    /// The commercial suite (the paper's headline comparison set).
    pub fn commercial_names() -> &'static [&'static str] {
        &["oltp", "erp", "web"]
    }

    /// The SPEC-like integer set.
    pub fn spec_int_names() -> &'static [&'static str] {
        &["mcf", "gcc", "gzip", "gups"]
    }

    /// The SPEC-like floating-point set.
    pub fn spec_fp_names() -> &'static [&'static str] {
        &["stream", "stencil", "matmul"]
    }

    /// Builds every workload in a name list.
    pub fn suite(names: &[&str], scale: Scale, seed: u64) -> Vec<Workload> {
        names
            .iter()
            .map(|n| Workload::by_name(n, scale, seed).expect("known name"))
            .collect()
    }
}

/// A commercial workload packaged for the service driver: the same kernel
/// as [`Workload::by_name`], but with an effectively endless main loop
/// (the driver slices *requests* — N transactions' worth of retired
/// instructions — off the running loop, so the program must never halt on
/// its own) and the nominal per-transaction instruction count the traffic
/// layer needs to convert offered load into an arrival rate.
pub struct ServerKernel {
    /// The endless-loop kernel (`skip_insts` is 0: warm-up is the traffic
    /// layer's business, expressed in requests).
    pub workload: Workload,
    /// Nominal instructions per transaction (one main-loop trip).
    pub txn_insts: u64,
}

impl ServerKernel {
    /// Builds a server kernel by name at address slot `slot` (one slot per
    /// core, as in [`Workload::by_name_slot`]). Only the commercial suite
    /// has server variants; other names return `None`.
    pub fn by_name(name: &str, scale: Scale, seed: u64, slot: usize) -> Option<ServerKernel> {
        let (workload, txn_insts) = match name {
            "oltp" => (commercial::oltp_server(scale, seed, slot), commercial::OLTP_TXN_INSTS),
            "erp" => (commercial::erp_server(scale, seed, slot), commercial::ERP_TXN_INSTS),
            "web" => (commercial::web_server(scale, seed, slot), commercial::WEB_TXN_INSTS),
            _ => return None,
        };
        Some(ServerKernel { workload, txn_insts })
    }

    /// Nominal per-transaction instruction count by name, without building
    /// the (expensive) data image. `None` for non-server names.
    pub fn txn_insts_of(name: &str) -> Option<u64> {
        Some(match name {
            "oltp" => commercial::OLTP_TXN_INSTS,
            "erp" => commercial::ERP_TXN_INSTS,
            "web" => commercial::WEB_TXN_INSTS,
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sst_isa::{Interp, StopReason};

    #[test]
    fn every_workload_builds_and_halts_functionally() {
        for name in Workload::all_names() {
            let w = Workload::by_name(name, Scale::Smoke, 7).unwrap();
            let mut i = Interp::new(&w.program);
            let out = i.run(20_000_000).unwrap_or_else(|t| panic!("{name}: trap {t}"));
            assert_eq!(out.stop, StopReason::Halt, "{name} did not halt");
            assert!(
                out.steps > w.skip_insts,
                "{name}: ran {} insts but skip is {}",
                out.steps,
                w.skip_insts
            );
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(Workload::by_name("nope", Scale::Smoke, 1).is_none());
    }

    #[test]
    fn server_kernels_build_and_never_halt_early() {
        for name in Workload::commercial_names() {
            let k = ServerKernel::by_name(name, Scale::Smoke, 3, 1).unwrap();
            assert_eq!(k.workload.skip_insts, 0, "{name}");
            assert!(k.txn_insts > 0);
            assert_eq!(ServerKernel::txn_insts_of(name), Some(k.txn_insts));
            let mut i = Interp::new(&k.workload.program);
            let out = i.run(200_000).unwrap_or_else(|t| panic!("{name}: trap {t}"));
            assert_eq!(out.stop, StopReason::StepLimit, "{name} halted early");
        }
        assert!(ServerKernel::by_name("mcf", Scale::Smoke, 3, 0).is_none());
        assert!(ServerKernel::txn_insts_of("mcf").is_none());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Workload::by_name("oltp", Scale::Smoke, 5).unwrap();
        let b = Workload::by_name("oltp", Scale::Smoke, 5).unwrap();
        assert_eq!(a.program.text, b.program.text);
        assert_eq!(a.program.data.len(), b.program.data.len());
        for (x, y) in a.program.data.iter().zip(&b.program.data) {
            assert_eq!(x, y);
        }
        let c = Workload::by_name("oltp", Scale::Smoke, 6).unwrap();
        let same_data = a
            .program
            .data
            .iter()
            .zip(&c.program.data)
            .all(|(x, y)| x == y);
        assert!(!same_data, "different seeds must change the data image");
    }

    #[test]
    fn suites_partition_sensibly() {
        let all = Workload::all_names();
        for n in Workload::commercial_names() {
            assert!(all.contains(n));
        }
        for n in Workload::spec_int_names() {
            assert!(all.contains(n));
        }
        for n in Workload::spec_fp_names() {
            assert!(all.contains(n));
        }
    }
}
